/**
 * @file
 * Quickstart: build a small trace through the public API, run AeroDrome,
 * and inspect the violation report.
 *
 * The trace is rho2 from the paper (Figure 2): two transactions whose
 * reads and writes interleave so that each must be serialized before the
 * other — a classic atomicity violation.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "oracle/serializability_oracle.hpp"
#include "trace/builder.hpp"
#include "trace/metainfo.hpp"

int
main()
{
    using namespace aero;

    // 1. Build a trace. Thread/variable/lock names are interned for you.
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x"); // T1 must come before T2 ...
    b.write("t2", "y").read("t1", "y"); // ... and T2 before T1. Cycle!
    b.end("t2").end("t1");
    Trace trace = b.take();

    std::printf("trace (%zu events):\n", trace.size());
    for (const Event& e : trace.events())
        std::printf("  %s\n", trace.format_event(e).c_str());

    // 2. Run the AeroDrome checker (single streaming pass, linear time).
    AeroDromeOpt checker(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());
    RunResult result = run_checker(checker, trace);

    if (result.violation) {
        const Violation& v = *result.details;
        std::printf("\nconflict-serializability VIOLATION\n");
        std::printf("  at event %zu: %s\n", v.event_index,
                    trace.format_event(trace[v.event_index]).c_str());
        std::printf("  charged to thread: %s\n",
                    trace.threads().name_of(v.thread, "t").c_str());
        std::printf("  reason: %s\n", v.reason.c_str());
    } else {
        std::printf("\ntrace is conflict serializable\n");
    }

    // 3. Cross-check with the offline oracle (Definition 1, exact).
    OracleResult oracle = check_serializability(trace);
    std::printf("\noracle: %s (%llu transactions, %llu edges)\n",
                oracle.serializable ? "serializable" : "NOT serializable",
                static_cast<unsigned long long>(oracle.num_transactions),
                static_cast<unsigned long long>(oracle.num_edges));
    // The demo trace is *supposed* to violate; finding the violation is
    // success. (aerocheck is the CLI with checker-style exit codes.)
    return result.violation && oracle.serializable == false ? 0 : 1;
}
