/**
 * @file
 * Schedule exploration: atomicity bugs are interleaving-dependent, so a
 * single run proves little. This example takes one racy work-queue
 * program and sweeps scheduling policies and seeds, reporting which
 * fraction of schedules each policy condemns — the kind of exploration
 * CTrigger-style tools automate (Related Work, Section 6).
 *
 * The program: worker threads pop "jobs" from a shared counter with a
 * lock-protected read, then mark the job done with a *separately* locked
 * write — atomic blocks that are not actually atomic. Whether a cycle
 * materializes depends on the interleaving, so detection rates differ
 * between fairness-heavy (round-robin), uniform-random, and sticky
 * (coarse-quantum) schedulers.
 *
 *   $ ./schedule_explorer [schedules-per-policy]
 */

#include <cstdio>
#include <cstdlib>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "sim/program.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace aero;

constexpr uint32_t kWorkers = 4;
constexpr uint32_t kJobsPerWorker = 6;
constexpr uint32_t kQueueHead = 0; // shared counter variable
constexpr uint32_t kLock = 0;

sim::Program
make_work_queue()
{
    sim::Program prog;
    for (uint32_t w = 0; w < kWorkers; ++w) {
        sim::ThreadProgram& th = prog.thread(w);
        for (uint32_t j = 0; j < kJobsPerWorker; ++j) {
            uint32_t done_flag = 1 + w * kJobsPerWorker + j;
            th.begin();
            // pop: read the head under the lock ...
            th.acquire(kLock);
            th.read(kQueueHead);
            th.release(kLock);
            th.compute();
            // ... then update it under a *second* critical section: the
            // transaction is not atomic even though every access is
            // locked.
            th.acquire(kLock);
            th.write(kQueueHead);
            th.release(kLock);
            th.write(done_flag); // private completion flag
            th.end();
        }
    }
    return prog;
}

double
detection_rate(const sim::Program& prog, sim::Policy policy,
               uint32_t schedules)
{
    uint32_t flagged = 0;
    for (uint64_t seed = 1; seed <= schedules; ++seed) {
        sim::SchedulerOptions opts;
        opts.policy = policy;
        opts.seed = seed;
        opts.quantum = 3;
        opts.stickiness = 0.9;
        sim::SimResult sim = sim::run_program(prog, opts);
        if (sim.deadlocked)
            continue;
        AeroDromeOpt checker(sim.trace.num_threads(),
                             sim.trace.num_vars(),
                             sim.trace.num_locks());
        flagged += run_checker(checker, sim.trace).violation;
    }
    return 100.0 * flagged / schedules;
}

} // namespace

int
main(int argc, char** argv)
{
    uint32_t schedules = argc > 1
                             ? static_cast<uint32_t>(std::atoi(argv[1]))
                             : 300;
    sim::Program prog = make_work_queue();

    std::printf("work queue: %u workers x %u jobs; %u schedules per "
                "policy\n\n",
                kWorkers, kJobsPerWorker, schedules);
    struct {
        const char* name;
        sim::Policy policy;
    } policies[] = {
        {"round-robin (quantum 3)", sim::Policy::kRoundRobin},
        {"uniform random", sim::Policy::kRandom},
        {"sticky (p=0.9)", sim::Policy::kSticky},
    };
    for (const auto& p : policies) {
        std::printf("  %-24s -> %5.1f%% of schedules flagged "
                    "non-atomic\n",
                    p.name, detection_rate(prog, p.policy, schedules));
    }
    std::printf("\nThe spec (each pop atomic) is broken by design; how "
                "often a checker can\nprove it depends on the schedule — "
                "sticky schedules context-switch less\nand hide the bug "
                "more often.\n");
    return 0;
}
