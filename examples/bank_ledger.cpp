/**
 * @file
 * Bank-ledger example: the classic check-then-act atomicity bug, caught
 * end to end through the program simulator.
 *
 * Tellers transfer money between accounts. Each transfer is declared
 * atomic (a transaction), and comes in two flavours:
 *
 *  - buggy:  read both balances, then write both balances, with the lock
 *    taken separately around each access (the infamous "synchronized
 *    getters don't make the sequence atomic" pattern);
 *  - fixed:  one lock held across the whole transfer (strict 2PL).
 *
 * The example schedules both programs under many seeds and reports how
 * often AeroDrome flags the buggy variant (the fixed one must never be
 * flagged). This mirrors how a dynamic atomicity checker is actually
 * used: instrument, run, and let the analysis condemn the interleavings
 * that break the spec.
 *
 *   $ ./bank_ledger [schedules]
 */

#include <cstdio>
#include <cstdlib>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "sim/program.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace aero;

constexpr uint32_t kAccounts = 4;
constexpr uint32_t kTellers = 3;
constexpr uint32_t kTransfersPerTeller = 5;
constexpr uint32_t kGlobalLock = 0;

/** One teller thread repeatedly transferring between two accounts. */
void
add_teller(sim::Program& prog, uint32_t teller, bool fixed)
{
    sim::ThreadProgram& th = prog.thread(teller);
    for (uint32_t i = 0; i < kTransfersPerTeller; ++i) {
        uint32_t from = (teller + i) % kAccounts;
        uint32_t to = (teller + i + 1) % kAccounts;
        th.begin(); // the transfer is specified to be atomic
        if (fixed) {
            th.acquire(kGlobalLock);
        }
        // Check phase: read both balances.
        if (!fixed)
            th.acquire(kGlobalLock);
        th.read(from);
        th.read(to);
        if (!fixed)
            th.release(kGlobalLock);
        th.compute(); // compute new balances (no shared access)
        // Act phase: write both balances.
        if (!fixed)
            th.acquire(kGlobalLock);
        th.write(from);
        th.write(to);
        if (!fixed)
            th.release(kGlobalLock);
        if (fixed) {
            th.release(kGlobalLock);
        }
        th.end();
    }
}

/** Run one scheduled execution through AeroDrome. */
bool
violates(const sim::Program& prog, uint64_t seed)
{
    sim::SchedulerOptions opts;
    opts.policy = sim::Policy::kRandom;
    opts.seed = seed;
    sim::SimResult sim = sim::run_program(prog, opts);
    if (sim.deadlocked) {
        std::printf("unexpected deadlock at seed %llu\n",
                    static_cast<unsigned long long>(seed));
        std::exit(2);
    }
    AeroDromeOpt checker(sim.trace.num_threads(), sim.trace.num_vars(),
                         sim.trace.num_locks());
    return run_checker(checker, sim.trace).violation;
}

} // namespace

int
main(int argc, char** argv)
{
    uint32_t schedules = argc > 1
                             ? static_cast<uint32_t>(std::atoi(argv[1]))
                             : 200;

    sim::Program buggy, fixed;
    for (uint32_t t = 0; t < kTellers; ++t) {
        add_teller(buggy, t, /*fixed=*/false);
        add_teller(fixed, t, /*fixed=*/true);
    }

    uint32_t buggy_flagged = 0, fixed_flagged = 0;
    for (uint64_t seed = 1; seed <= schedules; ++seed) {
        buggy_flagged += violates(buggy, seed);
        fixed_flagged += violates(fixed, seed);
    }

    std::printf("bank ledger: %u tellers x %u transfers, %u schedules\n",
                kTellers, kTransfersPerTeller, schedules);
    std::printf("  buggy transfer (lock per access): %u/%u schedules "
                "flagged non-atomic\n",
                buggy_flagged, schedules);
    std::printf("  fixed transfer (lock spans txn) : %u/%u schedules "
                "flagged non-atomic\n",
                fixed_flagged, schedules);

    if (fixed_flagged != 0) {
        std::printf("ERROR: the fixed variant must never be flagged\n");
        return 1;
    }
    if (buggy_flagged == 0) {
        std::printf("NOTE: no schedule exposed the bug; try more "
                    "schedules\n");
    }
    return 0;
}
