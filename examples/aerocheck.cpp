/**
 * @file
 * aerocheck — command-line atomicity checker over trace logs.
 *
 * The "production" front end: pick an engine, stream a trace file in
 * constant memory, get a violation report with evidence and engine
 * statistics. Complements trace_pipeline (which demonstrates the
 * generate-then-analyze workflow) by exposing every engine and knob.
 *
 * Usage:
 *   aerocheck <trace[.bin]> [--engine NAME] [--budget SECONDS]
 *             [--shards N] [--merge-epoch K|end] [--no-merge-barriers]
 *             [--batch N] [--ingest-block N] [--pin] [--resync]
 *             [--watchdog MS] [--gc=on|off] [--validate] [--stats]
 *             [--witness]
 *
 * The trace format is sniffed from the AEROTRC1 magic, not the file
 * extension (the ".bin" suffix only breaks ties for files too short to
 * sniff); a ".bin" file without the magic is rejected as corrupt rather
 * than mis-parsed as text.
 *
 *   --engine: aerodrome (default) | aerodrome-tuned | aerodrome-readopt |
 *             aerodrome-basic | velodrome | velodrome-pk
 *   --shards: check with N parallel engine shards (src/shard/README.md);
 *             defaults to the AERO_SHARDS env var, else 1 (single engine)
 *   --merge-epoch: periodic frontier-merge cadence for sharded runs
 *             (default: AERO_MERGE_EPOCH env, else 64). Every cadence is
 *             *exact* — the divergence barriers merge wherever a stale
 *             clock could otherwise be consulted — so K only bounds
 *             staleness latency. 1 = lockstep (a barrier per event),
 *             "end" = divergence barriers only, 0 = never merge (sound
 *             but detection may lag; implies --no-merge-barriers)
 *   --no-merge-barriers: legacy periodic-only merging; shard violations
 *             between merges are confirmed by suspect-window replay
 *   --batch:  sharded runs only — transport block size in events: the
 *             reader stages this many events per shard before publishing
 *             them into the ring as one block (default: AERO_BATCH env,
 *             else 256; 1 = per-event transport)
 *   --ingest-block: single-engine runs — events decoded per
 *             EventSource::next_n block in the check loop (default:
 *             AERO_INGEST_BLOCK env, else 4096); sharded runs decode in
 *             --batch sized blocks instead. Echoed by --stats
 *   --pin:    pin shard worker s to core s mod hardware_concurrency
 *             (Linux; no-op elsewhere or single-engine)
 *   --gc:     force clock-entry reclamation and thread-slot recycling on
 *             or off for this run (default: the AERO_GC env, else off);
 *             verdicts are identical either way, memory is not —
 *             long-running streams with thread churn need gc on
 *   --resync: skip corrupt records and keep checking (the verdict
 *             degrades to "no violation found", exit 5, when records
 *             were skipped) instead of stopping at the first one
 *   --watchdog: sharded runs only — evict a shard worker whose
 *             heartbeat freezes for MS milliseconds and recover it from
 *             the last merge checkpoint (src/shard/README.md, "Failure
 *             model"); 0 (default) disables recovery
 *   --validate: run the well-formedness validator first (loads the
 *               trace into memory)
 *   --stats: print engine-specific statistics after the run (per shard
 *            plus totals when sharded)
 *   --witness: on a violation, reconstruct and print a witness cycle
 *              (one offending SCC of the transaction graph over the
 *              prefix up to the violating event; loads the trace)
 *
 * Exit code: 0 = serializable, 1 = violation, 2 = usage/input error,
 * 3 = budget exceeded, 4 = corrupt input stream (strict mode),
 * 5 = completed degraded (resync skips or worker recovery: a reported
 * violation would still be real, but "no violation" is not a proof),
 * 6 = internal error (contained panic / resource cap).
 *
 * Fault injection (robustness drills): AERO_FAULT_PLAN=site:kind:trigger
 * in the environment arms the process-wide FaultInjector before the run
 * (src/support/fault.hpp for the grammar).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "oracle/serializability_oracle.hpp"
#include "shard/sharded_runner.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/str.hpp"
#include "trace/binary_io.hpp"
#include "trace/stream.hpp"
#include "trace/text_io.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace {

using namespace aero;

struct Args {
    std::string path;
    std::string engine = "aerodrome";
    double budget = 0;
    uint32_t shards = 0; // 0: AERO_SHARDS env, else single engine
    /** UINT64_MAX - 1: unset (resolve AERO_MERGE_EPOCH env, else 64). */
    uint64_t merge_epoch = kMergeEpochUnset;
    bool merge_barriers = true;
    uint32_t batch = 0; // 0: AERO_BATCH env, else 256
    uint32_t ingest_block = 0; // 0: AERO_INGEST_BLOCK env, else 4096
    bool pin_workers = false;
    bool resync = false;
    uint32_t watchdog_ms = 0;
    int gc = -1; // -1: engine default (AERO_GC env), 0/1: forced
    bool validate_first = false;
    bool stats = false;
    bool witness = false;

    static constexpr uint64_t kMergeEpochUnset = UINT64_MAX - 1;
};

/** "end" = barriers only; otherwise a bounded decimal. */
bool
parse_merge_epoch(const char* s, uint64_t& out)
{
    if (std::strcmp(s, "end") == 0) {
        out = ShardOptions::kMergeEndOnly;
        return true;
    }
    char* end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (s[0] == '\0' || s[0] == '-' || !end || *end != '\0' ||
        v > (1ull << 30))
        return false;
    out = v;
    return true;
}

/** Reconstruct and print one witness cycle over the violating prefix. */
void
print_witness(const Trace& trace, size_t violation_index)
{
    Trace prefix;
    for (size_t i = 0; i <= violation_index && i < trace.size(); ++i)
        prefix.push(trace[i]);
    OracleOptions oopts;
    oopts.collect_txn_info = true;
    OracleResult oracle = check_serializability(prefix, oopts);
    if (oracle.serializable) {
        // Possible when the engine reports at an end event whose witness
        // needs the full <=E machinery; fall back to the full trace.
        std::printf("  (no cycle in the strict prefix; witness spans "
                    "later events)\n");
        return;
    }
    std::printf("  witness cycle (%zu transactions):\n",
                oracle.witness_scc.size());
    for (uint32_t node : oracle.witness_scc) {
        if (node >= oracle.txn_info.size())
            continue;
        const TxnInfo& info = oracle.txn_info[node];
        std::printf("    %s txn of thread %s: events [%zu..%zu]%s\n",
                    info.unary ? "unary" : "block",
                    trace.threads().name_of(info.thread, "t").c_str(),
                    info.first_event, info.last_event,
                    info.completed ? "" : " (still open)");
    }
}

/** Parse a decimal integer in [lo, hi]; false on garbage/out-of-range. */
bool
parse_bounded(const char* s, unsigned long lo, unsigned long hi,
              unsigned long& out)
{
    char* end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (s[0] == '\0' || s[0] == '-' || !end || *end != '\0' || v < lo ||
        v > hi)
        return false;
    out = v;
    return true;
}

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <trace[.bin]> [--engine NAME] [--budget S] "
                 "[--shards N] [--merge-epoch K|end] "
                 "[--no-merge-barriers] [--batch N] [--ingest-block N] "
                 "[--pin] [--resync] "
                 "[--watchdog MS] [--gc=on|off] [--validate] [--stats]\n"
                 "engines: aerodrome aerodrome-tuned aerodrome-readopt "
                 "aerodrome-basic velodrome velodrome-pk\n",
                 argv0);
    return 2;
}

std::unique_ptr<AtomicityChecker>
make_engine(const std::string& name)
{
    // Streamed input: dimensions are unknown up front; every engine
    // grows its state on demand.
    if (name == "aerodrome")
        return std::make_unique<AeroDromeOpt>(0, 0, 0);
    if (name == "aerodrome-tuned")
        return std::make_unique<AeroDromeTuned>(0, 0, 0);
    if (name == "aerodrome-readopt")
        return std::make_unique<AeroDromeReadOpt>(0, 0, 0);
    if (name == "aerodrome-basic")
        return std::make_unique<AeroDromeBasic>(0, 0, 0);
    if (name == "velodrome")
        return std::make_unique<Velodrome>(0, 0, 0);
    if (name == "velodrome-pk")
        return std::make_unique<VelodromePK>(0, 0, 0);
    return nullptr;
}

/** One-line reclamation summary pulled out of the counter list; silent
 *  when the engine has no reclamation counters at all. */
void
print_gc_block(const StatList& counters)
{
    auto get = [&counters](const char* key, uint64_t& out) {
        for (const auto& [k, v] : counters)
            if (k == key) {
                out = v;
                return true;
            }
        return false;
    };
    uint64_t sweeps = 0, reclaimed = 0, rows = 0, live = 0, retired = 0,
             recycled = 0;
    if (!get("gc_sweeps", sweeps))
        return;
    get("gc_reclaimed", reclaimed);
    get("gc_rows_freed", rows);
    get("gc_live_entries", live);
    get("slots_retired", retired);
    get("slots_recycled", recycled);
    if (sweeps == 0 && retired == 0) {
        std::printf("  reclamation: off (nothing retired or swept; "
                    "--gc=on or AERO_GC=1 to enable)\n");
        return;
    }
    std::printf("  reclamation: %s sweeps, %s entries reclaimed, %s "
                "rows freed, %s live entries after the last sweep, "
                "%s thread slots retired (%s reissued)\n",
                with_commas(sweeps).c_str(),
                with_commas(reclaimed).c_str(), with_commas(rows).c_str(),
                with_commas(live).c_str(), with_commas(retired).c_str(),
                with_commas(recycled).c_str());
}

void
print_counters(const StatList& counters)
{
    if (counters.empty()) {
        std::printf("  (no statistics exposed by this engine)\n");
        return;
    }
    size_t width = 0;
    for (const auto& [name, value] : counters)
        width = std::max(width, name.size());
    for (const auto& [name, value] : counters) {
        std::printf("  %-*s %s\n", static_cast<int>(width + 1),
                    (name + ":").c_str(), with_commas(value).c_str());
    }
}

/** Per-shard breakdown plus the name-wise totals. */
void
print_shard_stats(const ShardRunResult& r)
{
    for (uint32_t s = 0; s < r.shard_counters.size(); ++s) {
        std::printf("  shard %u (%s events, %s bytes of state):\n", s,
                    with_commas(r.shard_events[s]).c_str(),
                    with_commas(r.shard_memory_bytes[s]).c_str());
        for (const auto& [name, value] : r.shard_counters[s]) {
            std::printf("    %-20s %s\n", (name + ":").c_str(),
                        with_commas(value).c_str());
        }
    }
    std::printf("  totals over %u shards (%s frontier merges, %s from "
                "divergence barriers):\n",
                r.shards, with_commas(r.frontier_merges).c_str(),
                with_commas(r.barrier_merges).c_str());
    print_counters(r.result.counters);
    const double avg_run =
        r.transport_runs ? static_cast<double>(r.transport_run_events) /
                               static_cast<double>(r.transport_runs)
                         : 0.0;
    std::printf("  transport: batch %u, %s blocks pushed (%s partial "
                "flushes), avg routed-run length %.1f\n",
                r.batch, with_commas(r.blocks_pushed).c_str(),
                with_commas(r.partial_flushes).c_str(), avg_run);
    if (r.suspects > 0) {
        std::printf("  suspect replay: %s suspects, %s replays "
                    "(%s confirmed, %s refined, %s upheld)\n",
                    with_commas(r.suspects).c_str(),
                    with_commas(r.replays).c_str(),
                    with_commas(r.replay_confirmed).c_str(),
                    with_commas(r.replay_refined).c_str(),
                    with_commas(r.replay_upheld).c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--engine" && i + 1 < argc) {
            args.engine = argv[++i];
        } else if (a == "--budget" && i + 1 < argc) {
            args.budget = std::stod(argv[++i]);
        } else if (a == "--shards" && i + 1 < argc) {
            unsigned long v = 0;
            if (!parse_bounded(argv[++i], 1, ShardOptions::kMaxShards, v))
                return usage(argv[0]);
            args.shards = static_cast<uint32_t>(v);
        } else if (a == "--merge-epoch" && i + 1 < argc) {
            if (!parse_merge_epoch(argv[++i], args.merge_epoch))
                return usage(argv[0]);
        } else if (a == "--no-merge-barriers") {
            args.merge_barriers = false;
        } else if (a == "--batch" && i + 1 < argc) {
            unsigned long v = 0;
            if (!parse_bounded(argv[++i], 1, 65536, v))
                return usage(argv[0]);
            args.batch = static_cast<uint32_t>(v);
        } else if (a == "--ingest-block" && i + 1 < argc) {
            unsigned long v = 0;
            if (!parse_bounded(argv[++i], 1, 1ul << 22, v))
                return usage(argv[0]);
            args.ingest_block = static_cast<uint32_t>(v);
        } else if (a == "--pin") {
            args.pin_workers = true;
        } else if (a == "--resync") {
            args.resync = true;
        } else if (a == "--watchdog" && i + 1 < argc) {
            unsigned long v = 0;
            if (!parse_bounded(argv[++i], 0, 3600ul * 1000, v))
                return usage(argv[0]);
            args.watchdog_ms = static_cast<uint32_t>(v);
        } else if (a == "--gc=on" || a == "--gc=1") {
            args.gc = 1;
        } else if (a == "--gc=off" || a == "--gc=0") {
            args.gc = 0;
        } else if (a == "--validate") {
            args.validate_first = true;
        } else if (a == "--stats") {
            args.stats = true;
        } else if (a == "--witness") {
            args.witness = true;
        } else if (a == "--help") {
            return usage(argv[0]);
        } else if (args.path.empty()) {
            args.path = a;
        } else {
            return usage(argv[0]);
        }
    }
    if (args.path.empty())
        return usage(argv[0]);

    auto checker = make_engine(args.engine);
    if (!checker) {
        std::fprintf(stderr, "unknown engine '%s'\n", args.engine.c_str());
        return usage(argv[0]);
    }
    if (args.gc >= 0)
        checker->set_gc(args.gc == 1);

    // Contain engine panics as a structured internal-error outcome (exit
    // 6 with context) instead of an abort, and arm any AERO_FAULT_PLAN
    // robustness drill requested by the environment.
    set_panic_handler(&throwing_panic_handler);
    FaultInjector::instance().arm_from_env();

    try {
        if (args.validate_first) {
            Trace t = trace_is_binary(args.path)
                          ? read_binary_file(args.path)
                          : read_text_file(args.path);
            auto v = validate(t);
            if (!v.ok) {
                std::fprintf(stderr,
                             "trace is ill-formed at event %zu: %s\n",
                             v.event_index, v.message.c_str());
                return 2;
            }
            std::printf("trace is well-formed (%s events)\n",
                        with_commas(t.size()).c_str());
        }

        std::unique_ptr<std::istream> storage;
        auto source = open_event_source(args.path, storage);
        source->set_resync(args.resync);

        RunBudget budget;
        budget.max_seconds = args.budget;

        uint32_t shards = args.shards;
        if (shards == 0) {
            // CI and batch scripts select sharding per process; garbage
            // or out-of-range values fall back to a single engine.
            unsigned long v = 0;
            const char* env = std::getenv("AERO_SHARDS");
            shards = (env && parse_bounded(env, 1, ShardOptions::kMaxShards,
                                           v))
                         ? static_cast<uint32_t>(v)
                         : 1;
        }

        RunResult r;
        std::optional<ShardRunResult> sharded;
        uint64_t merge_epoch = args.merge_epoch;
        if (merge_epoch == Args::kMergeEpochUnset) {
            merge_epoch = 64; // exact epoch mode: K only bounds staleness
            if (const char* env = std::getenv("AERO_MERGE_EPOCH")) {
                if (!parse_merge_epoch(env, merge_epoch))
                    merge_epoch = 64;
            }
        }

        if (shards > 1) {
            ShardOptions sopts;
            sopts.shards = shards;
            sopts.merge_epoch = merge_epoch;
            sopts.divergence_barriers = args.merge_barriers;
            sopts.batch_size = args.batch; // 0: AERO_BATCH env, else 256
            sopts.pin_workers = args.pin_workers;
            // The replay buffers one merge window of the stream; without
            // periodic merges that window is the whole input, which a
            // constant-memory CLI run must not hold.
            sopts.confirm_replay = merge_epoch >= 2 &&
                                   merge_epoch != ShardOptions::kMergeEndOnly;
            sopts.watchdog_ms = args.watchdog_ms;
            sopts.budget = budget;
            sharded = run_sharded(
                [&args] {
                    auto e = make_engine(args.engine);
                    if (args.gc >= 0)
                        e->set_gc(args.gc == 1);
                    return e;
                },
                *source, sopts);
            r = sharded->result;
        } else {
            r = run_checker_stream(*checker, *source, budget,
                                   args.ingest_block);
        }

        const RunStatus status = r.status();
        const char* verdict = "serializable";
        switch (status) {
          case RunStatus::kOk:
            break;
          case RunStatus::kViolation:
            verdict = "VIOLATION";
            break;
          case RunStatus::kTimeout:
            verdict = "BUDGET EXCEEDED";
            break;
          case RunStatus::kDegraded:
            verdict = "no violation found (DEGRADED)";
            break;
          case RunStatus::kStreamError:
            verdict = "ABORTED ON CORRUPT INPUT";
            break;
          case RunStatus::kInternalError:
            verdict = "INTERNAL ERROR";
            break;
        }
        std::printf("%s%s: %s after %s events in %s\n",
                    std::string(checker->name()).c_str(),
                    shards > 1
                        ? (" x" + std::to_string(shards) + " shards").c_str()
                        : "",
                    verdict, with_commas(r.events_processed).c_str(),
                    format_duration(r.seconds).c_str());
        if (r.stream_error) {
            std::printf("  input error [%s] at event %s, byte offset %s: "
                        "%s\n",
                        stream_error_cause_name(r.stream_error->cause),
                        with_commas(r.stream_error->event_index).c_str(),
                        with_commas(r.stream_error->byte_offset).c_str(),
                        r.stream_error->message.c_str());
        }
        if (r.stream_errors_recovered > 0) {
            std::printf("  resync: skipped %s corrupt record(s):\n",
                        with_commas(r.stream_errors_recovered).c_str());
            for (const StreamError& err : source->recovered_errors()) {
                std::printf("    [%s] event %s, byte offset %s: %s\n",
                            stream_error_cause_name(err.cause),
                            with_commas(err.event_index).c_str(),
                            with_commas(err.byte_offset).c_str(),
                            err.message.c_str());
            }
        }
        if (r.degraded)
            std::printf("  degraded: %s\n", r.degraded_reason.c_str());
        if (!r.internal_error.empty())
            std::printf("  internal error: %s\n", r.internal_error.c_str());
        if (sharded && (sharded->recoveries > 0 ||
                        sharded->shards_abandoned > 0)) {
            std::printf("  worker recovery: %s recoveries, %s shards "
                        "abandoned, %s events dropped\n",
                        with_commas(sharded->recoveries).c_str(),
                        with_commas(sharded->shards_abandoned).c_str(),
                        with_commas(sharded->events_dropped).c_str());
        }
        if (r.violation) {
            std::printf("  at event index %zu, thread id %u",
                        r.details->event_index, r.details->thread);
            if (shards > 1)
                std::printf(" (shard %u)", r.details->shard);
            std::printf(": %s\n", r.details->reason.c_str());
            if (args.witness) {
                Trace t = trace_is_binary(args.path)
                              ? read_binary_file(args.path)
                              : read_text_file(args.path);
                print_witness(t, r.details->event_index);
            }
        }
        if (args.stats) {
            // Sharded runs decode in transport-batch blocks (the decode
            // pipe); single-engine runs use the resolved ingest block.
            const size_t block = sharded
                                     ? sharded->batch
                                     : resolve_ingest_block(args.ingest_block);
            std::printf("  ingest: %s source, block %s\n",
                        source->source_kind(),
                        with_commas(block).c_str());
            if (sharded) {
                print_shard_stats(*sharded);
                print_gc_block(sharded->result.counters);
            } else {
                print_counters(checker->counters());
                print_gc_block(checker->counters());
            }
        }
        switch (status) {
          case RunStatus::kOk:
            return 0;
          case RunStatus::kViolation:
            return 1;
          case RunStatus::kTimeout:
            return 3;
          case RunStatus::kStreamError:
            return 4;
          case RunStatus::kDegraded:
            return 5;
          case RunStatus::kInternalError:
            return 6;
        }
        return 6; // unreachable
    } catch (const StreamCorruption& e) {
        // Corruption detected outside the runner loop (e.g. a bad binary
        // header rejected while opening the source).
        const StreamError& err = e.error();
        std::fprintf(stderr,
                     "corrupt input [%s] at event %llu, byte offset %llu: "
                     "%s\n",
                     stream_error_cause_name(err.cause),
                     static_cast<unsigned long long>(err.event_index),
                     static_cast<unsigned long long>(err.byte_offset),
                     err.message.c_str());
        return 4;
    } catch (const FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
