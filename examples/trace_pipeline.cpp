/**
 * @file
 * End-to-end trace pipeline, mirroring the paper's artifact workflow
 * (Appendix D): generate or load an execution log, print its MetaInfo,
 * then analyze it with both AeroDrome and Velodrome and compare.
 *
 * Usage:
 *   trace_pipeline gen <star|pipeline|ring|naive> <out.trace[.bin]>
 *       generate a workload and write it as a text (or, with .bin,
 *       binary) trace log;
 *   trace_pipeline analyze <in.trace[.bin]> [--budget SECONDS]
 *       load a trace log, print MetaInfo, and run both checkers —
 *       the equivalent of the paper's metainfo.py / aerodrome.py /
 *       velodrome.py scripts in one binary.
 *
 * Example session:
 *   $ ./trace_pipeline gen star /tmp/star.trace.bin
 *   $ ./trace_pipeline analyze /tmp/star.trace.bin --budget 5
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/report.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/assert.hpp"
#include "support/str.hpp"
#include "trace/binary_io.hpp"
#include "trace/metainfo.hpp"
#include "trace/text_io.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"

namespace {

using namespace aero;

bool
is_binary_path(const std::string& path)
{
    return path.size() > 4 &&
           path.compare(path.size() - 4, 4, ".bin") == 0;
}

int
cmd_gen(const std::string& kind, const std::string& path)
{
    Trace trace;
    if (kind == "star") {
        gen::StarOptions opts;
        opts.producers = 3;
        opts.consumers = 3;
        opts.rounds = 20000;
        trace = gen::make_star(opts);
    } else if (kind == "pipeline") {
        trace = gen::make_pipeline(4, 50000);
    } else if (kind == "ring") {
        trace = gen::make_ring(4);
    } else if (kind == "naive") {
        gen::NaiveSpecOptions opts;
        opts.threads = 6;
        opts.events_per_thread = 100000;
        opts.conflict_position = 0.9;
        trace = gen::make_naive_spec(opts);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n", kind.c_str());
        return 2;
    }
    if (is_binary_path(path))
        write_binary_file(path, trace);
    else
        write_text_file(path, trace);
    std::printf("wrote %s events to %s\n",
                with_commas(trace.size()).c_str(), path.c_str());
    return 0;
}

int
cmd_analyze(const std::string& path, double budget)
{
    Trace trace = is_binary_path(path) ? read_binary_file(path)
                                       : read_text_file(path);

    auto wf = validate(trace);
    std::printf("== %s ==\n", path.c_str());
    std::printf("well-formed: %s\n", wf.ok ? "yes" : wf.message.c_str());

    std::printf("\n-- metainfo --\n");
    print_metainfo(std::cout, compute_metainfo(trace));

    RunBudget rb;
    rb.max_seconds = budget;

    std::printf("\n-- analyses --\n");
    AeroDromeOpt aero(trace.num_threads(), trace.num_vars(),
                      trace.num_locks());
    RunResult ar = run_checker(aero, trace, rb);
    std::printf("AeroDrome: %-3s in %s (%s events)\n", ar.verdict(),
                format_duration(ar.seconds).c_str(),
                with_commas(ar.events_processed).c_str());
    if (ar.violation) {
        std::printf("  violation at event %zu (%s): %s\n",
                    ar.details->event_index,
                    trace.format_event(trace[ar.details->event_index])
                        .c_str(),
                    ar.details->reason.c_str());
    }

    Velodrome velo(trace.num_threads(), trace.num_vars(),
                   trace.num_locks());
    RunResult vr = run_checker(velo, trace, rb);
    std::printf("Velodrome: %-3s in %s (%s events, peak graph %s nodes)\n",
                vr.verdict(), format_duration(vr.seconds).c_str(),
                with_commas(vr.events_processed).c_str(),
                with_commas(velo.stats().max_live_nodes).c_str());

    if (!vr.timed_out && !ar.timed_out && vr.violation != ar.violation) {
        std::printf("NOTE: verdicts differ — possible open-transaction "
                    "witness (Theorem 3)\n");
    }
    if (ar.seconds > 0 && !ar.timed_out) {
        std::printf("speed-up (Velodrome/AeroDrome): %s\n",
                    format_speedup(vr.seconds / ar.seconds,
                                   vr.timed_out).c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s gen <star|pipeline|ring|naive> <out>\n"
                     "       %s analyze <in> [--budget SECONDS]\n",
                     argv[0], argv[0]);
        return 2;
    }
    std::string cmd = argv[1];
    try {
        if (cmd == "gen" && argc >= 4)
            return cmd_gen(argv[2], argv[3]);
        if (cmd == "analyze") {
            double budget = 10.0;
            for (int i = 3; i < argc; ++i) {
                if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
                    budget = std::stod(argv[++i]);
            }
            return cmd_analyze(argv[2], budget);
        }
    } catch (const aero::FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}
