/**
 * @file
 * Unit and model-based fuzz tests for the epoch-adaptive clock layer
 * (vc/epoch.hpp + vc/adaptive_clock.hpp).
 *
 * The key property is *exactness*: an AdaptiveClockTable entry must
 * denote, after every operation, precisely the vector time the scalar
 * VectorClock reference implementation computes — the epoch form is a
 * representation, not an approximation. The fuzz drives a table and a
 * VectorClock model through identical random operation sequences (with
 * sound purity flags, sometimes conservatively false) and compares after
 * every step, with epochs both on and off.
 */

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/epoch.hpp"
#include "vc/vector_clock.hpp"

namespace aero {
namespace {

TEST(Epoch, EncodesValueAndThread)
{
    Epoch e(42, 7);
    EXPECT_EQ(e.value(), 42u);
    EXPECT_EQ(e.thread(), 7u);
    EXPECT_FALSE(e.is_bottom());
    EXPECT_EQ(e.get(7), 42u);
    EXPECT_EQ(e.get(6), 0u);
    EXPECT_EQ(e.get(8), 0u);
    EXPECT_EQ(Epoch::from_bits(e.bits()), e);
}

TEST(Epoch, BottomIsZeroWord)
{
    Epoch bot;
    EXPECT_TRUE(bot.is_bottom());
    EXPECT_EQ(bot.bits(), 0u);
    EXPECT_EQ(bot.get(0), 0u);
    EXPECT_EQ(bot.get(3), 0u);
    EXPECT_TRUE(bot.to_vector_clock().is_bottom());
}

TEST(Epoch, LeqAgainstVector)
{
    Epoch e(3, 1);
    VectorClock v{0, 3, 0};
    EXPECT_TRUE(e.leq(v));
    v.set(1, 2);
    EXPECT_FALSE(e.leq(v));
}

TEST(Epoch, ToVectorClock)
{
    EXPECT_EQ(Epoch(5, 2).to_vector_clock(), (VectorClock{0, 0, 5}));
}

/** A scratch clock bank holding one row per "thread clock" the test
 *  feeds into the table, so ConstClockRefs have the right dimension. */
class AdaptiveTableTest : public ::testing::Test {
protected:
    static constexpr size_t kDim = 6;

    void
    SetUp() override
    {
        scratch_.ensure_dim(kDim);
        scratch_.ensure_rows(1);
        tbl_.ensure_dim(kDim);
        // Pin the mode: these tests must not depend on the AERO_EPOCHS
        // environment default (tests that want epochs off set it off).
        tbl_.set_epochs_enabled(true);
    }

    /** Load `v` into the scratch row and return a ref to it. */
    ConstClockRef
    ref(const VectorClock& v)
    {
        ClockRef r = scratch_[0];
        r.clear();
        for (size_t i = 0; i < kDim; ++i)
            r.set(i, v.get(i));
        return scratch_[0];
    }

    ClockBank scratch_;
    AdaptiveClockTable tbl_;
};

TEST_F(AdaptiveTableTest, FreshEntriesAreBottomEpochs)
{
    uint32_t i = tbl_.add_entry();
    EXPECT_FALSE(tbl_.is_inflated(i));
    EXPECT_TRUE(tbl_.is_bottom(i));
    EXPECT_EQ(tbl_.get(i, 0), 0u);
    EXPECT_EQ(tbl_.arena_rows(), 0u);
}

TEST_F(AdaptiveTableTest, PureAssignStaysEpoch)
{
    uint32_t i = tbl_.add_entry();
    VectorClock c{0, 0, 9};
    tbl_.assign(i, ref(c), /*t=*/2, /*c_pure=*/true);
    EXPECT_FALSE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.epoch_at(i), Epoch(9, 2));
    EXPECT_EQ(tbl_.to_vector_clock(i), c);
    EXPECT_EQ(tbl_.stats().inflations, 0u);
    EXPECT_GT(tbl_.stats().epoch_fast, 0u);
}

TEST_F(AdaptiveTableTest, ImpureAssignInflates)
{
    uint32_t i = tbl_.add_entry();
    VectorClock c{1, 2, 3};
    tbl_.assign(i, ref(c), /*t=*/0, /*c_pure=*/false);
    EXPECT_TRUE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.to_vector_clock(i), c);
    EXPECT_EQ(tbl_.stats().inflations, 1u);
}

TEST_F(AdaptiveTableTest, ForeignPureJoinInflatesExactly)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{4}), 0, true); // epoch 4@0
    tbl_.join(i, ref(VectorClock{0, 7}), 1, true); // foreign epoch source
    EXPECT_TRUE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.to_vector_clock(i), (VectorClock{4, 7}));
}

TEST_F(AdaptiveTableTest, SameThreadJoinKeepsEpoch)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{4}), 0, true);
    tbl_.join(i, ref(VectorClock{6}), 0, true);
    EXPECT_FALSE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.epoch_at(i), Epoch(6, 0));
    tbl_.join(i, ref(VectorClock{5}), 0, true); // older value: no-op
    EXPECT_EQ(tbl_.epoch_at(i), Epoch(6, 0));
}

TEST_F(AdaptiveTableTest, JoinExceptPureSourceIsNoOp)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{3}), 0, true);
    tbl_.join_except(i, ref(VectorClock{0, 0, 8}), 2, true);
    EXPECT_FALSE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.epoch_at(i), Epoch(3, 0));
}

TEST_F(AdaptiveTableTest, JoinExceptImpureZeroesTheRightComponent)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{3}), 0, true); // epoch 3@0
    tbl_.join_except(i, ref(VectorClock{9, 5, 2}), /*t=*/0, false);
    // Result = bot[3/0] |_| <9,5,2>[0/0] = <3,5,2>.
    EXPECT_TRUE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.to_vector_clock(i), (VectorClock{3, 5, 2}));
}

TEST_F(AdaptiveTableTest, EpochsOffAlwaysInflates)
{
    tbl_.set_epochs_enabled(false);
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{0, 0, 9}), 2, true);
    EXPECT_TRUE(tbl_.is_inflated(i));
    EXPECT_EQ(tbl_.to_vector_clock(i), (VectorClock{0, 0, 9}));
}

TEST_F(AdaptiveTableTest, JoinIntoMaintainsDestinationPurity)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{0, 4}), 1, true); // epoch 4@1

    scratch_.ensure_rows(2);
    ClockRef dst = scratch_[1];
    dst.clear();
    dst.set(0, 2); // dst = clock of thread 0, pure
    uint8_t pure = 1;

    // Joining one's own epoch keeps purity.
    uint32_t own = tbl_.add_entry();
    tbl_.assign(own, ref(VectorClock{5}), 0, true);
    tbl_.join_into(dst, own, /*dst_thread=*/0, pure);
    EXPECT_EQ(pure, 1);
    EXPECT_EQ(dst.get(0), 5u);

    // Joining a foreign epoch clears it.
    tbl_.join_into(dst, i, /*dst_thread=*/0, pure);
    EXPECT_EQ(pure, 0);
    EXPECT_EQ(dst.get(1), 4u);
}

TEST_F(AdaptiveTableTest, VectorLeqEntryBothRepresentations)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{0, 6}), 1, true); // epoch 6@1

    // Pure comparand of thread 1.
    EXPECT_TRUE(tbl_.vector_leq_entry(ref(VectorClock{0, 6}), i, 1, true));
    EXPECT_FALSE(tbl_.vector_leq_entry(ref(VectorClock{0, 7}), i, 1, true));
    // Pure comparand of another thread: only bottom fits under an epoch.
    EXPECT_FALSE(tbl_.vector_leq_entry(ref(VectorClock{3}), i, 0, true));
    // Impure comparand against the epoch.
    EXPECT_TRUE(tbl_.vector_leq_entry(ref(VectorClock{0, 2}), i, 0, false));
    EXPECT_FALSE(
        tbl_.vector_leq_entry(ref(VectorClock{1, 2}), i, 0, false));

    // Inflate and re-check against the row form.
    tbl_.join(i, ref(VectorClock{2, 6, 1}), 0, false);
    ASSERT_TRUE(tbl_.is_inflated(i));
    EXPECT_TRUE(tbl_.vector_leq_entry(ref(VectorClock{2, 6}), i, 0, false));
    EXPECT_FALSE(
        tbl_.vector_leq_entry(ref(VectorClock{3, 0}), i, 0, false));
}

// --- Model-based fuzz ------------------------------------------------------

/** Drive a table and a VectorClock model through the same random ops. */
void
fuzz_against_model(uint64_t seed, bool epochs_on)
{
    constexpr size_t kEntries = 12;
    constexpr size_t kThreads = 5;
    constexpr int kOps = 2500;

    Rng rng(seed);
    AdaptiveClockTable tbl;
    tbl.set_epochs_enabled(epochs_on);
    tbl.ensure_dim(kThreads);
    std::vector<VectorClock> model(kEntries);
    for (size_t i = 0; i < kEntries; ++i)
        tbl.add_entry();

    // "Thread clocks" as sources: a pure set (bot[v/t]) and a free set.
    ClockBank clocks(kThreads, kThreads);

    for (int op = 0; op < kOps; ++op) {
        size_t i = rng.next_below(kEntries);
        ThreadId t = static_cast<ThreadId>(rng.next_below(kThreads));
        bool pure = rng.next_bool(0.5);

        // Build the source clock: pure sources are bot[v/t]; impure ones
        // are arbitrary (and occasionally *actually* pure, modelling the
        // engines' conservative purity bits).
        ClockRef src = clocks[t];
        src.clear();
        if (pure || rng.next_bool(0.3)) {
            src.set(t, static_cast<ClockValue>(rng.next_range(0, 50)));
        } else {
            for (size_t j = 0; j < kThreads; ++j) {
                if (rng.next_bool(0.5))
                    src.set(j,
                            static_cast<ClockValue>(rng.next_range(0, 50)));
            }
        }
        VectorClock vsrc = ConstClockRef(src).to_vector_clock();

        switch (rng.next_below(4)) {
          case 0:
            tbl.assign(i, src, t, pure);
            model[i] = vsrc;
            break;
          case 1:
            tbl.join(i, src, t, pure);
            model[i].join(vsrc);
            break;
          case 2:
            tbl.join_except(i, src, t, pure);
            model[i].join_except(vsrc, t);
            break;
          case 3: {
            // join_into a destination clock; model it too.
            ThreadId d = static_cast<ThreadId>(rng.next_below(kThreads));
            if (d == t)
                break; // keep src row intact as the destination source
            ClockRef dst = clocks[d];
            VectorClock vdst = ConstClockRef(dst).to_vector_clock();
            uint8_t dst_pure = 0; // conservative is always sound
            tbl.join_into(dst, i, d, dst_pure);
            vdst.join(tbl.to_vector_clock(i));
            ASSERT_EQ(ConstClockRef(dst).to_vector_clock(), vdst)
                << "join_into diverged at op " << op;
            break;
          }
        }

        ASSERT_EQ(tbl.to_vector_clock(i), model[i])
            << "entry " << i << " diverged at op " << op
            << " (epochs=" << epochs_on << ")";
        // Spot-check component reads and orderings.
        ThreadId probe = static_cast<ThreadId>(rng.next_below(kThreads));
        ASSERT_EQ(tbl.get(i, probe), model[i].get(probe));
        ASSERT_EQ(tbl.vector_leq_entry(src, i, t, false),
                  ConstClockRef(src).to_vector_clock().leq(model[i]));
    }
}

TEST(AdaptiveClockFuzz, MatchesVectorClockModelEpochsOn)
{
    for (uint64_t seed = 1; seed <= 20; ++seed)
        fuzz_against_model(seed, /*epochs_on=*/true);
}

TEST(AdaptiveClockFuzz, MatchesVectorClockModelEpochsOff)
{
    for (uint64_t seed = 1; seed <= 20; ++seed)
        fuzz_against_model(seed, /*epochs_on=*/false);
}

} // namespace
} // namespace aero
