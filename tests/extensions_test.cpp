/**
 * @file
 * Tests for the two extension engines:
 *
 *  - VelodromePK: Velodrome with Pearce-Kelly incremental topological
 *    ordering (a stronger graph baseline);
 *  - AeroDromeTuned: Algorithm 3 plus active-thread tracking and
 *    FastTrack-style same-epoch fast paths (the paper's future-work
 *    direction).
 *
 * Both must agree with the oracle on the fuzz corpus; AeroDromeTuned
 * must give identical *verdicts* to AeroDromeOpt (detection points may
 * differ: skipped repeat accesses can defer a check to the backstop at
 * the next end event, which is where Algorithm 1 would have reported
 * anyway).
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "gen/random_program.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "trace/builder.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace aero {
namespace {

template <typename Checker>
RunResult
run(const Trace& trace)
{
    Checker checker(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    return run_checker(checker, trace);
}

// --- Paper traces through the extension engines ---------------------------

Trace
rho2()
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    return b.take();
}

TEST(Extensions, Rho2Verdicts)
{
    EXPECT_TRUE(run<VelodromePK>(rho2()).violation);
    EXPECT_TRUE(run<AeroDromeTuned>(rho2()).violation);
}

TEST(Extensions, RingAndPipelineVerdicts)
{
    for (uint32_t k = 2; k <= 5; ++k) {
        Trace ring = gen::make_ring(k);
        EXPECT_TRUE(run<VelodromePK>(ring).violation);
        EXPECT_TRUE(run<AeroDromeTuned>(ring).violation);
    }
    Trace pipe = gen::make_pipeline(4, 200);
    EXPECT_FALSE(run<VelodromePK>(pipe).violation);
    EXPECT_FALSE(run<AeroDromeTuned>(pipe).violation);
}

// --- VelodromePK specifics -------------------------------------------------

TEST(VelodromePk, FastPathDominatesOnForwardFlowingGraphs)
{
    // Pipeline edges always point from lower to higher topological order:
    // every insertion should take the O(1) fast path. GC is disabled so
    // the edges actually get inserted (with GC the cascade deletes the
    // sources first and no edges materialize at all).
    Trace t = gen::make_pipeline(4, 500);
    VelodromeOptions opts;
    opts.garbage_collect = false;
    VelodromePK v(t.num_threads(), t.num_vars(), t.num_locks(), opts);
    EXPECT_FALSE(run_checker(v, t).violation);
    EXPECT_GT(v.fast_edges(), 0u);
    EXPECT_EQ(v.reordered_edges(), 0u);
}

TEST(VelodromePk, ReordersOnBackEdges)
{
    // The star's hub is created first (lowest order); producer
    // transactions created later point *into* it, forcing reorders.
    gen::StarOptions opts;
    opts.producers = 2;
    opts.consumers = 2;
    opts.rounds = 50;
    Trace t = gen::make_star(opts);
    VelodromePK v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run_checker(v, t).violation);
    EXPECT_GT(v.reordered_edges(), 0u);
}

TEST(VelodromePk, GcStillCollects)
{
    Trace t = gen::make_independent(4, 100, 6);
    VelodromePK v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run_checker(v, t).violation);
    EXPECT_LE(v.stats().max_live_nodes, 8u);
}

TEST(VelodromePk, DetectsOpenTransactionCycles)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    EXPECT_TRUE(run<VelodromePK>(b.trace()).violation);
}

// --- AeroDromeTuned specifics ----------------------------------------------

TEST(AeroDromeTuned, SameEpochReadsSkipped)
{
    TraceBuilder b;
    b.begin("t1").write("t1", "seed"); // make the txn non-collectible? no:
    b.end("t1");
    b.begin("t2");
    b.read("t2", "seed");
    for (int i = 0; i < 99; ++i)
        b.read("t2", "seed"); // identical repeats
    b.end("t2");
    Trace t = b.take();
    AeroDromeTuned checker(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run_checker(checker, t).violation);
    EXPECT_GE(checker.tuned_stats().same_epoch_reads, 99u);
}

TEST(AeroDromeTuned, SameEpochWritesSkipped)
{
    TraceBuilder b;
    b.begin("t1");
    for (int i = 0; i < 100; ++i)
        b.write("t1", "x");
    b.end("t1");
    Trace t = b.take();
    AeroDromeTuned checker(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run_checker(checker, t).violation);
    EXPECT_GE(checker.tuned_stats().same_epoch_writes, 99u);
}

TEST(AeroDromeTuned, InterveningWriteInvalidatesReadSkip)
{
    // t2's repeated reads must re-check after t1 writes in between; the
    // second batch must flag the violation (t1's txn is still open, t2
    // read stale data inside its own txn... here it creates the cycle).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x");
    b.read("t2", "x").read("t2", "x"); // second is same-epoch
    b.write("t2", "y");
    b.read("t1", "y");
    b.end("t1"); // closes T1: witness now has one open transaction
    b.end("t2");
    EXPECT_TRUE(run<AeroDromeTuned>(b.trace()).violation);
}

TEST(AeroDromeTuned, VerdictMatchesOptOnPatterns)
{
    std::vector<Trace> traces;
    traces.push_back(gen::make_ring(3));
    traces.push_back(gen::make_pipeline(3, 100));
    traces.push_back(gen::make_reader_mesh(5, 200));
    {
        gen::StarOptions s;
        s.rounds = 100;
        s.violation_at_end = true;
        traces.push_back(gen::make_star(s));
    }
    for (const Trace& t : traces) {
        EXPECT_EQ(run<AeroDromeTuned>(t).violation,
                  run<AeroDromeOpt>(t).violation);
    }
}

// --- Differential sweep with the extension engines --------------------------

class ExtensionDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtensionDifferential, AgreeWithOracle)
{
    gen::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.threads = 2 + GetParam() % 5;
    opts.shared_vars = 2 + GetParam() % 9;
    opts.locks = 1 + GetParam() % 3;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);

    sim::SchedulerOptions sched;
    sched.seed = GetParam() * 31 + 7;
    sched.policy = (GetParam() % 2) ? sim::Policy::kRandom
                                    : sim::Policy::kSticky;
    sim::SimResult sim = sim::run_program(prog, sched);
    ASSERT_FALSE(sim.deadlocked);
    const Trace& trace = sim.trace;

    bool expected = !check_serializability(trace).serializable;
    EXPECT_EQ(run<VelodromePK>(trace).violation, expected)
        << "Velodrome-PK vs oracle, seed " << GetParam();
    EXPECT_EQ(run<AeroDromeTuned>(trace).violation, expected)
        << "AeroDrome-tuned vs oracle, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionDifferential,
                         ::testing::Range<uint64_t>(2000, 2150));

} // namespace
} // namespace aero
