/**
 * @file
 * Tests for the streaming event sources and the streaming runner:
 * equivalence with the materialized path, incremental interning,
 * truncation handling, and constant-memory verdicts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/assert.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/stream.hpp"
#include "trace/text_io.hpp"

namespace aero {
namespace {

Trace
sample_trace()
{
    TraceBuilder b;
    b.fork("t0", "t1");
    b.begin("t1").acquire("t1", "m").write("t1", "x");
    b.release("t1", "m").end("t1");
    b.begin("t0").read("t0", "x").end("t0");
    b.join("t0", "t1");
    return b.take();
}

std::vector<Event>
drain(EventSource& src)
{
    std::vector<Event> out;
    Event e;
    while (src.next(e))
        out.push_back(e);
    return out;
}

TEST(TraceSource, YieldsAllEvents)
{
    Trace t = sample_trace();
    TraceSource src(t);
    auto events = drain(src);
    ASSERT_EQ(events.size(), t.size());
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i], t[i]);
    Event e;
    EXPECT_FALSE(src.next(e)); // stays exhausted
}

TEST(TextEventSource, MatchesBatchReader)
{
    Trace t = sample_trace();
    std::ostringstream os;
    write_text(os, t);

    std::istringstream is(os.str());
    TextEventSource src(is);
    auto events = drain(src);
    ASSERT_EQ(events.size(), t.size());
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i], t[i]) << "event " << i;
    // Name tables were built incrementally and agree with the original.
    uint32_t id;
    EXPECT_TRUE(src.threads().lookup("t1", id));
    EXPECT_TRUE(src.vars().lookup("x", id));
    EXPECT_TRUE(src.locks().lookup("m", id));
}

TEST(TextEventSource, SkipsCommentsAndRejectsGarbage)
{
    std::istringstream is("# c\n\nt0 w x\nt0 zap y\n");
    TextEventSource src(is);
    Event e;
    EXPECT_TRUE(src.next(e));
    EXPECT_EQ(e.op, Op::kWrite);
    EXPECT_THROW(src.next(e), FatalError);
}

TEST(BinaryEventSource, MatchesBatchReader)
{
    Trace t = gen::make_pipeline(3, 50);
    std::ostringstream os(std::ios::binary);
    write_binary(os, t);

    std::istringstream is(os.str(), std::ios::binary);
    BinaryEventSource src(is);
    EXPECT_EQ(src.expected_events(), t.size());
    EXPECT_EQ(src.num_threads(), t.num_threads());
    auto events = drain(src);
    ASSERT_EQ(events.size(), t.size());
    for (size_t i = 0; i < events.size(); ++i)
        ASSERT_EQ(events[i], t[i]);
}

TEST(BinaryEventSource, DetectsTruncation)
{
    Trace t = sample_trace();
    std::ostringstream os(std::ios::binary);
    write_binary(os, t);
    std::string data = os.str();
    data.resize(data.size() - 2);
    std::istringstream is(data, std::ios::binary);
    BinaryEventSource src(is);
    Event e;
    EXPECT_THROW({
        while (src.next(e)) {
        }
    }, FatalError);
}

TEST(StreamRunner, SameVerdictAsMaterialized)
{
    for (bool violation : {false, true}) {
        gen::StarOptions opts;
        opts.rounds = 200;
        opts.violation_at_end = violation;
        Trace t = gen::make_star(opts);

        AeroDromeOpt batch(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult rb = run_checker(batch, t);

        std::ostringstream os(std::ios::binary);
        write_binary(os, t);
        std::istringstream is(os.str(), std::ios::binary);
        BinaryEventSource src(is);
        AeroDromeOpt stream(0, 0, 0); // dimensions grow on demand
        RunResult rs = run_checker_stream(stream, src);

        EXPECT_EQ(rb.violation, rs.violation);
        EXPECT_EQ(rb.events_processed, rs.events_processed);
        if (violation) {
            EXPECT_EQ(rb.details->event_index, rs.details->event_index);
        }
    }
}

TEST(StreamRunner, OpenEventSourceByExtension)
{
    Trace t = sample_trace();
    write_binary_file("/tmp/aero_stream_test.trace.bin", t);
    write_text_file("/tmp/aero_stream_test.trace", t);
    for (const char* path :
         {"/tmp/aero_stream_test.trace.bin", "/tmp/aero_stream_test.trace"}) {
        std::unique_ptr<std::istream> storage;
        auto src = open_event_source(path, storage);
        auto events = drain(*src);
        ASSERT_EQ(events.size(), t.size()) << path;
    }
}

TEST(StreamRunner, MissingFileThrows)
{
    std::unique_ptr<std::istream> storage;
    EXPECT_THROW(open_event_source("/nonexistent/foo.trace", storage),
                 FatalError);
}

} // namespace
} // namespace aero
