/**
 * @file
 * Robustness: the checkers document a well-formedness *assumption*, but
 * real instrumentation drops events (missed releases, truncated logs,
 * torn fork/join pairs). The engines must never crash or corrupt memory
 * on such input — verdicts on ill-formed traces are unspecified, crashes
 * are bugs. This suite feeds systematically broken and randomly mutated
 * traces to every engine and to the oracle.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/stream.hpp"
#include "trace/text_io.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace aero {
namespace {

/** Run every engine and the oracle; the only requirement is no crash. */
void
exercise_all(const Trace& t)
{
    auto run_one = [&](auto&& checker) {
        run_checker(checker, t);
    };
    run_one(AeroDromeBasic(t.num_threads(), t.num_vars(), t.num_locks()));
    run_one(AeroDromeReadOpt(t.num_threads(), t.num_vars(),
                             t.num_locks()));
    run_one(AeroDromeOpt(t.num_threads(), t.num_vars(), t.num_locks()));
    run_one(AeroDromeTuned(t.num_threads(), t.num_vars(), t.num_locks()));
    run_one(Velodrome(t.num_threads(), t.num_vars(), t.num_locks()));
    run_one(VelodromePK(t.num_threads(), t.num_vars(), t.num_locks()));
    check_serializability(t);
}

TEST(Robustness, EmptyTrace)
{
    Trace t;
    exercise_all(t);
}

TEST(Robustness, EndWithoutBegin)
{
    Trace t;
    t.end(0);
    t.end(0);
    t.write(0, 0);
    t.end(1);
    exercise_all(t);
}

TEST(Robustness, UnmatchedBegins)
{
    Trace t;
    t.begin(0);
    t.begin(0);
    t.begin(1);
    t.write(0, 0);
    t.read(1, 0);
    exercise_all(t);
}

TEST(Robustness, ReleaseWithoutAcquire)
{
    Trace t;
    t.release(0, 0);
    t.release(1, 0);
    t.acquire(0, 0);
    t.release(0, 0);
    exercise_all(t);
}

TEST(Robustness, DoubleAcquireAcrossThreads)
{
    Trace t;
    t.acquire(0, 0);
    t.acquire(1, 0); // exclusion violated by the (broken) logger
    t.release(0, 0);
    t.release(1, 0);
    exercise_all(t);
}

TEST(Robustness, ForkAfterChildRan)
{
    Trace t;
    t.write(1, 0);
    t.fork(0, 1);
    t.write(1, 0);
    exercise_all(t);
}

TEST(Robustness, DoubleForkAndSelfJoin)
{
    Trace t;
    t.fork(0, 1);
    t.fork(2, 1);
    t.join(1, 1); // nonsensical, must still not crash
    exercise_all(t);
}

TEST(Robustness, EventsAfterJoin)
{
    Trace t;
    t.write(1, 0);
    t.join(0, 1);
    t.write(1, 0);
    t.join(0, 1);
    exercise_all(t);
}

TEST(Robustness, LargeSparseIds)
{
    // Ids far beyond anything seen before must only grow state.
    Trace t;
    t.begin(0);
    t.write(0, 1000);
    t.acquire(0, 200);
    t.release(0, 200);
    t.fork(0, 50);
    t.write(50, 1000);
    t.end(0);
    exercise_all(t);
}

/** Mutation fuzz: random edits of well-formed traces. */
class MutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzz, NoCrashOnMutatedTraces)
{
    gen::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.threads = 3 + GetParam() % 3;
    opts.shared_vars = 4;
    opts.locks = 2;
    opts.steps_per_thread = 40;
    sim::SimResult sim = sim::run_program(gen::make_random_program(opts));
    ASSERT_FALSE(sim.deadlocked);

    Rng rng(GetParam() * 77 + 5);
    std::vector<Event> ev(sim.trace.events());
    // Apply a handful of destructive mutations.
    for (int m = 0; m < 8 && !ev.empty(); ++m) {
        switch (rng.next_below(4)) {
          case 0: // drop a random event
            ev.erase(ev.begin() +
                     static_cast<long>(rng.next_below(ev.size())));
            break;
          case 1: // duplicate a random event
            ev.push_back(ev[rng.next_below(ev.size())]);
            break;
          case 2: { // swap two arbitrary events (may break everything)
            size_t a = rng.next_below(ev.size());
            size_t b = rng.next_below(ev.size());
            std::swap(ev[a], ev[b]);
            break;
          }
          case 3: { // retarget an event
            Event& e = ev[rng.next_below(ev.size())];
            e.target = static_cast<uint32_t>(rng.next_below(64));
            break;
          }
        }
    }
    Trace mutated;
    for (const Event& e : ev)
        mutated.push(e);
    // Well-formedness usually broken now; engines must survive anyway.
    exercise_all(mutated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range<uint64_t>(4000, 4060));

// --- Byte-level corruption fuzz ---------------------------------------------
//
// The mutation fuzz above corrupts at the *event* level; real logs rot at
// the *byte* level — flipped bits, torn tails, overwritten blocks,
// including inside the header. Serialize a well-formed trace, corrupt
// its image deterministically (corrupt_bytes — the same payloads the
// AERO_FAULTS reader hooks inject, available in every build), and
// stream it through a checker. The contract: the run ends in a
// structured status — ok, violation, or stream-error with populated
// evidence (degraded for a resync run) — never an abort, a hang, or an
// unstructured throw. The ASan+UBSan CI job runs this suite to pin
// "no crash" down to "no leak, no overflow".

/** One small well-formed trace per seed, varied in shape. */
Trace
fuzz_corpus_trace(uint64_t seed)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = 2 + seed % 4;
    opts.shared_vars = 3 + seed % 5;
    opts.locks = 1 + seed % 2;
    opts.steps_per_thread = 30;
    sim::SimResult sim = sim::run_program(gen::make_random_program(opts));
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

/** Cycle through every byte-corruption kind. */
FaultKind
fuzz_kind(uint64_t seed)
{
    switch (seed % 3) {
      case 0:
        return FaultKind::kBitFlip;
      case 1:
        return FaultKind::kTruncate;
      default:
        return FaultKind::kGarbage;
    }
}

/** Stream a (possibly corrupt) binary image; every outcome must be
 *  structured. `resync` additionally allows the degraded completion. */
void
expect_structured_binary_outcome(const std::string& image, bool resync)
{
    std::istringstream in(image, std::ios::binary);
    RunResult r;
    try {
        BinaryEventSource src(in); // throws on a corrupt header
        src.set_resync(resync);
        AeroDromeOpt engine(0, 0, 0);
        r = run_checker_stream(engine, src);
    } catch (const StreamCorruption& e) {
        EXPECT_FALSE(e.error().message.empty());
        return; // header rejection is a structured outcome
    }
    const RunStatus status = r.status();
    EXPECT_TRUE(status == RunStatus::kOk ||
                status == RunStatus::kViolation ||
                status == RunStatus::kStreamError ||
                (resync && status == RunStatus::kDegraded))
        << run_status_name(status);
    if (status == RunStatus::kStreamError) {
        EXPECT_FALSE(r.stream_error->message.empty());
        EXPECT_LE(r.stream_error->event_index, r.events_processed);
    }
}

class CorruptionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzz, BinaryByteCorruptionEndsStructured)
{
    const uint64_t seed = GetParam();
    Trace t = fuzz_corpus_trace(seed);
    std::ostringstream blob;
    write_binary(blob, t);
    std::string image = blob.str();

    // Half the seeds may hit the header (offset 0 on), half are pinned
    // past it so record-level damage stays well represented.
    const uint64_t min_offset = (seed % 2) ? 16 : 0;
    const uint64_t offset =
        corrupt_bytes(image, fuzz_kind(seed), seed * 2654435761u,
                      min_offset);
    ASSERT_LT(offset, blob.str().size()) << "corruption missed the image";

    expect_structured_binary_outcome(image, /*resync=*/false);
    expect_structured_binary_outcome(image, /*resync=*/true);
}

TEST_P(CorruptionFuzz, TextByteCorruptionEndsStructured)
{
    // The text reader has its own parser and alphabet; give it the same
    // treatment on a subset (one serialization per seed is enough — the
    // format is line-oriented, so every kind lands inside some record).
    const uint64_t seed = GetParam();
    if (seed % 4 != 0)
        GTEST_SKIP() << "text subset runs every 4th seed";
    Trace t = fuzz_corpus_trace(seed);
    std::ostringstream blob;
    write_text(blob, t);
    std::string image = blob.str();
    corrupt_bytes(image, fuzz_kind(seed), seed * 0x9e3779b9u);

    for (bool resync : {false, true}) {
        std::istringstream in(image);
        TextEventSource src(in);
        src.set_resync(resync);
        AeroDromeOpt engine(0, 0, 0);
        RunResult r = run_checker_stream(engine, src);
        const RunStatus status = r.status();
        EXPECT_TRUE(status == RunStatus::kOk ||
                    status == RunStatus::kViolation ||
                    status == RunStatus::kStreamError ||
                    (resync && status == RunStatus::kDegraded))
            << run_status_name(status);
        if (status == RunStatus::kStreamError) {
            EXPECT_FALSE(r.stream_error->message.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz,
                         ::testing::Range<uint64_t>(7000, 7220));

} // namespace
} // namespace aero
