/**
 * @file
 * Shard-parity differential suite (see src/shard/README.md).
 *
 * Exact modes — lockstep (merge_epoch == 1) and, since the divergence
 * barriers landed, every epoch cadence (merge_epoch in {4, 64,
 * end-only}) — are bit-exact with the single-engine run: for every fuzz
 * seed, directed trace and adversarial cross-shard family, every
 * AeroDrome engine, shards in {2, 4, 8} (plus AERO_SHARDS when set),
 * merge epochs plus AERO_MERGE_EPOCH when set, and the epoch-adaptive
 * storage both on and off, the sharded verdict must match the
 * single-engine verdict *event for event*: same verdict, same violating
 * event index, same thread.
 *
 * The legacy periodic-only mode (divergence_barriers off) is sound but
 * its detection may lag a cross-shard cycle: the suite asserts the
 * soundness direction on the whole corpus (a serializable baseline
 * stays serializable sharded; a sharded violation implies a baseline
 * violation at or before it), including the adversarial families built
 * to defeat it, and that the suspect-window confirmation replay only
 * ever moves a verdict *toward* the exact one.
 *
 * Determinism: these runs use the inline driver, whose semantics are
 * identical to the threaded pipeline (enforced by shard_test); a
 * threaded spot check runs on a small subset here.
 *
 * Reclamation (AERO_GC / set_gc) must be verdict-invisible: a corpus
 * pass runs gc-on engines (sweep forced every transaction end) single
 * and sharded against the gc-off baseline. CI additionally re-runs the
 * whole suite under AERO_GC=1, which flips every engine's default.
 *
 * The transport block size (ShardOptions::batch_size) is pure plumbing
 * and must be verdict-invariant: a dedicated sweep holds the threaded
 * pipeline to bit-exactness at batch {1, 7, 64, 256}, and the
 * worker-failure matrix re-runs its kill/stall contract at batch {1, 64}
 * so recovery mid-block is covered too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/adversarial.hpp"
#include "gen/patterns.hpp"
#include "gen/random_program.hpp"
#include "shard/sharded_runner.hpp"
#include "sim/scheduler.hpp"
#include "support/fault.hpp"
#include "trace/builder.hpp"

namespace aero {
namespace {

Trace
fuzz_trace(uint64_t seed, uint32_t threads, uint32_t vars, uint32_t locks,
           double txnp)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = threads;
    opts.shared_vars = vars;
    opts.locks = locks;
    opts.txn_probability = txnp;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);
    sim::SchedulerOptions sched;
    sched.seed = seed * 7919 + 13;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

template <typename Engine>
EngineFactory
factory(bool epochs)
{
    return [epochs] {
        auto engine = std::make_unique<Engine>(0, 0, 0);
        engine->set_epochs(epochs);
        return engine;
    };
}

template <typename Engine>
RunResult
baseline(const Trace& t, bool epochs)
{
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_epochs(epochs);
    return run_checker(engine, t);
}

/** Factory with reclamation forced on (independent of AERO_GC) and the
 *  sweep hook at every transaction end, so sweeps actually interleave
 *  with the merge cadence instead of waiting for table growth. */
template <typename Engine>
EngineFactory
gc_factory(bool epochs)
{
    return [epochs] {
        auto engine = std::make_unique<Engine>(0, 0, 0);
        engine->set_epochs(epochs);
        engine->set_gc(true);
        engine->set_gc_sweep_every(1);
        return engine;
    };
}

std::vector<uint32_t>
shard_counts()
{
    std::vector<uint32_t> counts = {2, 4, 8};
    if (const char* env = std::getenv("AERO_SHARDS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 2 && n <= 64 &&
            std::find(counts.begin(), counts.end(),
                      static_cast<uint32_t>(n)) == counts.end())
            counts.push_back(static_cast<uint32_t>(n));
    }
    return counts;
}

/** The exact epoch cadences under test: the checked defaults plus the
 *  AERO_MERGE_EPOCH CI sweep value, plus barrier-only mode. */
std::vector<uint64_t>
exact_merge_epochs()
{
    std::vector<uint64_t> epochs = {4, 64, ShardOptions::kMergeEndOnly};
    if (const char* env = std::getenv("AERO_MERGE_EPOCH")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 2 &&
            std::find(epochs.begin(), epochs.end(),
                      static_cast<uint64_t>(n)) == epochs.end())
            epochs.push_back(static_cast<uint64_t>(n));
    }
    return epochs;
}

/** Any sharded configuration must reproduce the single-engine verdict
 *  event for event. */
template <typename Engine>
void
expect_exact(const Trace& t, ShardPolicy policy, uint64_t merge_epoch,
             bool epochs, const RunResult& expected)
{
    for (uint32_t shards : shard_counts()) {
        ShardOptions opts;
        opts.shards = shards;
        opts.merge_epoch = merge_epoch;
        opts.policy = policy;
        ShardRunResult r = run_sharded_inline(factory<Engine>(epochs), t,
                                              opts);
        SCOPED_TRACE(::testing::Message()
                     << "engine=" << Engine(0, 0, 0).name()
                     << " shards=" << shards
                     << " merge_epoch=" << merge_epoch
                     << " epochs=" << epochs);
        ASSERT_EQ(r.result.violation, expected.violation);
        EXPECT_EQ(r.suspects, 0u) << "exact mode demoted a verdict";
        if (expected.violation) {
            EXPECT_EQ(r.result.details->event_index,
                      expected.details->event_index);
            EXPECT_EQ(r.result.details->thread, expected.details->thread);
            EXPECT_EQ(r.result.events_processed,
                      expected.events_processed);
        }
    }
}

/** Exactness of every epoch cadence (divergence barriers on). */
template <typename Engine>
void
expect_epoch_mode_exact(const Trace& t, ShardPolicy policy)
{
    for (bool epochs : {true, false}) {
        RunResult expected = baseline<Engine>(t, epochs);
        for (uint64_t merge_epoch : exact_merge_epochs())
            expect_exact<Engine>(t, policy, merge_epoch, epochs, expected);
    }
}

/** Lockstep sharded run must equal the single-engine run exactly. */
template <typename Engine>
void
expect_lockstep_exact(const Trace& t, ShardPolicy policy)
{
    for (bool epochs : {true, false}) {
        RunResult expected = baseline<Engine>(t, epochs);
        for (uint32_t shards : shard_counts()) {
            ShardOptions opts;
            opts.shards = shards;
            opts.merge_epoch = 1;
            opts.policy = policy;
            ShardRunResult r =
                run_sharded_inline(factory<Engine>(epochs), t, opts);
            SCOPED_TRACE(::testing::Message()
                         << "engine=" << Engine(0, 0, 0).name()
                         << " shards=" << shards << " epochs=" << epochs);
            ASSERT_EQ(r.result.violation, expected.violation);
            if (expected.violation) {
                EXPECT_EQ(r.result.details->event_index,
                          expected.details->event_index);
                EXPECT_EQ(r.result.details->thread,
                          expected.details->thread);
                EXPECT_EQ(r.result.events_processed,
                          expected.events_processed);
            }
        }
    }
}

/**
 * The legacy periodic-only mode (divergence barriers off) must never
 * fabricate a violation, and any violation it reports — whether the raw
 * shard suspect or its replay-confirmed refinement — must be at-or-after
 * the single-engine detection. Run with and without the confirmation
 * replay; the replay may only move a verdict toward the exact one.
 */
template <typename Engine>
void
expect_legacy_epoch_mode_sound(const Trace& t, ShardPolicy policy)
{
    for (bool epochs : {true, false}) {
        RunResult expected = baseline<Engine>(t, epochs);
        for (uint32_t shards : shard_counts()) {
            for (uint64_t merge_epoch : {uint64_t{4}, uint64_t{64},
                                         uint64_t{1024}}) {
                ShardOptions opts;
                opts.shards = shards;
                opts.merge_epoch = merge_epoch;
                opts.policy = policy;
                opts.divergence_barriers = false;
                opts.confirm_replay = false;
                ShardRunResult raw =
                    run_sharded_inline(factory<Engine>(epochs), t, opts);
                opts.confirm_replay = true;
                ShardRunResult confirmed =
                    run_sharded_inline(factory<Engine>(epochs), t, opts);
                SCOPED_TRACE(::testing::Message()
                             << "engine=" << Engine(0, 0, 0).name()
                             << " shards=" << shards
                             << " merge_epoch=" << merge_epoch
                             << " epochs=" << epochs);
                for (const ShardRunResult* r : {&raw, &confirmed}) {
                    if (!expected.violation) {
                        EXPECT_FALSE(r->result.violation)
                            << "sharded run fabricated a violation";
                    } else if (r->result.violation) {
                        EXPECT_GE(r->result.details->event_index,
                                  expected.details->event_index)
                            << "sharded run fired before the exact engine";
                    }
                }
                if (confirmed.result.violation) {
                    ASSERT_TRUE(raw.result.violation);
                    EXPECT_EQ(confirmed.suspects, 1u);
                    EXPECT_EQ(confirmed.replay_confirmed +
                                  confirmed.replay_refined +
                                  confirmed.replay_upheld,
                              confirmed.replays);
                    // The replay only ever refines toward the baseline.
                    EXPECT_LE(confirmed.result.details->event_index,
                              raw.result.details->event_index);
                    EXPECT_GE(confirmed.result.details->event_index,
                              expected.details->event_index);
                }
            }
        }
    }
}

struct ParityParams {
    uint64_t seed;
    uint32_t threads;
    uint32_t vars;
    uint32_t locks;
    double txn_probability;
};

void
PrintTo(const ParityParams& p, std::ostream* os)
{
    *os << "seed=" << p.seed << " threads=" << p.threads
        << " vars=" << p.vars << " locks=" << p.locks
        << " txnp=" << p.txn_probability;
}

class ShardParity : public ::testing::TestWithParam<ParityParams> {};

TEST_P(ShardParity, LockstepMatchesSingleEngineEventForEvent)
{
    const ParityParams& p = GetParam();
    Trace t = fuzz_trace(p.seed, p.threads, p.vars, p.locks,
                         p.txn_probability);
    expect_lockstep_exact<AeroDromeBasic>(t, &hash_shard_policy);
    expect_lockstep_exact<AeroDromeReadOpt>(t, &hash_shard_policy);
    expect_lockstep_exact<AeroDromeOpt>(t, &hash_shard_policy);
    expect_lockstep_exact<AeroDromeTuned>(t, &hash_shard_policy);
}

TEST_P(ShardParity, EpochModeMatchesSingleEngineEventForEvent)
{
    const ParityParams& p = GetParam();
    Trace t = fuzz_trace(p.seed, p.threads, p.vars, p.locks,
                         p.txn_probability);
    expect_epoch_mode_exact<AeroDromeBasic>(t, &hash_shard_policy);
    expect_epoch_mode_exact<AeroDromeReadOpt>(t, &hash_shard_policy);
    expect_epoch_mode_exact<AeroDromeOpt>(t, &hash_shard_policy);
    expect_epoch_mode_exact<AeroDromeTuned>(t, &hash_shard_policy);
}

TEST_P(ShardParity, GcOnReproducesTheGcOffVerdict)
{
    const ParityParams& p = GetParam();
    Trace t = fuzz_trace(p.seed, p.threads, p.vars, p.locks,
                         p.txn_probability);
    // Reclamation must be invisible to verdicts: with sweeps forced at
    // every transaction end, both the single-engine and the sharded
    // runs must reproduce that engine's own gc-off verdict event for
    // event (engines may legitimately flag different events, so each
    // is held to its own baseline).
    auto check = [&](const RunResult& r, const RunResult& expected,
                     const char* what) {
        SCOPED_TRACE(what);
        ASSERT_EQ(r.violation, expected.violation);
        if (expected.violation) {
            EXPECT_EQ(r.details->event_index,
                      expected.details->event_index);
            EXPECT_EQ(r.details->thread, expected.details->thread);
        }
    };

    auto single_gc = [&](auto tag) {
        using Engine = decltype(tag);
        Engine e(t.num_threads(), t.num_vars(), t.num_locks());
        e.set_epochs(true);
        e.set_gc(true);
        e.set_gc_sweep_every(1);
        return run_checker(e, t);
    };

    const RunResult opt_off = baseline<AeroDromeOpt>(t, true);
    check(single_gc(AeroDromeOpt(0, 0, 0)), opt_off,
          "single-engine opt gc on");
    check(single_gc(AeroDromeBasic(0, 0, 0)),
          baseline<AeroDromeBasic>(t, true), "single-engine basic gc on");
    const RunResult tuned_off = baseline<AeroDromeTuned>(t, true);
    check(single_gc(AeroDromeTuned(0, 0, 0)), tuned_off,
          "single-engine tuned gc on");

    for (uint32_t shards : {2u, 4u}) {
        ShardOptions opts;
        opts.shards = shards;
        opts.merge_epoch = 4;
        ShardRunResult r =
            run_sharded_inline(gc_factory<AeroDromeOpt>(true), t, opts);
        SCOPED_TRACE(::testing::Message() << "shards=" << shards);
        check(r.result, opt_off, "sharded opt gc on");
        EXPECT_EQ(r.suspects, 0u);
        ShardRunResult rt =
            run_sharded_inline(gc_factory<AeroDromeTuned>(true), t, opts);
        check(rt.result, tuned_off, "sharded tuned gc on");
    }
}

TEST_P(ShardParity, LegacyEpochModeIsSoundOnTheCorpus)
{
    const ParityParams& p = GetParam();
    Trace t = fuzz_trace(p.seed, p.threads, p.vars, p.locks,
                         p.txn_probability);
    expect_legacy_epoch_mode_sound<AeroDromeOpt>(t, &hash_shard_policy);
    expect_legacy_epoch_mode_sound<AeroDromeReadOpt>(t,
                                                     &hash_shard_policy);
}

std::vector<ParityParams>
make_params()
{
    std::vector<ParityParams> out;
    uint64_t seed = 9000;
    for (uint32_t threads : {2u, 4u, 8u}) {
        for (uint32_t vars : {2u, 6u, 24u}) {
            for (double txnp : {0.3, 0.8}) {
                out.push_back({seed++, threads, vars, 1 + threads / 2,
                               txnp});
            }
        }
    }
    // A few var-heavy shapes (mostly cross-shard variable traffic).
    for (uint64_t s = 9100; s < 9110; ++s)
        out.push_back({s, 4, 16, 1, 0.9});
    return out;
}

INSTANTIATE_TEST_SUITE_P(FuzzCorpus, ShardParity,
                         ::testing::ValuesIn(make_params()));

// --- Directed cross-shard-cycle traces --------------------------------------
//
// With modulo placement and two shards, x(var 0) lives on shard 0 and
// y(var 1) on shard 1, so these traces force the violating cycle's edges
// through both shards and stress the frontier merge.

/** t1: [w(x) ... r(y)] vs t2: [r(x) w(y)] — the closing read of y sees
 *  t1's own transaction through a chain that crossed shards. */
Trace
cross_shard_cycle()
{
    TraceBuilder b;
    b.begin("t1").write("t1", "x");   // 0,1
    b.begin("t2").read("t2", "x");    // 2,3  edge t1 -> t2 (shard 0)
    b.write("t2", "y");               // 4    W_y := C_t2   (shard 1)
    b.read("t1", "y");                // 5    closes the cycle
    b.end("t1").end("t2");
    return b.take();
}

/** Same cycle, but the t1 -> t2 edge is carried by a lock handoff:
 *  t1 releases l *inside* its open transaction, so the (replicated)
 *  release publishes t1's in-transaction clock to L_l in every shard
 *  and t2's acquire picks it up everywhere — no variable, and hence no
 *  frontier merge, is needed to transport that edge. */
Trace
cross_shard_lock_cycle()
{
    TraceBuilder b;
    b.begin("t1").write("t1", "x");
    b.acquire("t1", "l").release("t1", "l");
    b.acquire("t2", "l");
    b.begin("t2").write("t2", "y");
    b.read("t1", "y");
    b.end("t1").end("t2");
    return b.take();
}

/** Serializable cross-shard ping-pong: ordered handoffs only. */
Trace
cross_shard_serializable()
{
    TraceBuilder b;
    for (int round = 0; round < 8; ++round) {
        b.begin("t1").write("t1", "x").write("t1", "y").end("t1");
        b.begin("t2").read("t2", "x").read("t2", "y").end("t2");
    }
    return b.take();
}

/** Three-shard cycle: t1 -> t2 via x (shard 0), t2 -> t3 via y (shard
 *  1), t3 -> t1 via z (shard 2). */
Trace
three_shard_cycle()
{
    TraceBuilder b;
    b.begin("t1").write("t1", "x");
    b.begin("t2").read("t2", "x").write("t2", "y");
    b.begin("t3").read("t3", "y").write("t3", "z");
    b.read("t1", "z");
    b.end("t1").end("t2").end("t3");
    return b.take();
}

TEST(ShardParityDirected, CrossShardCyclesAreExactInLockstep)
{
    for (const Trace& t : {cross_shard_cycle(), cross_shard_lock_cycle(),
                           three_shard_cycle(), cross_shard_serializable()}) {
        expect_lockstep_exact<AeroDromeBasic>(t, &modulo_shard_policy);
        expect_lockstep_exact<AeroDromeReadOpt>(t, &modulo_shard_policy);
        expect_lockstep_exact<AeroDromeOpt>(t, &modulo_shard_policy);
        expect_lockstep_exact<AeroDromeTuned>(t, &modulo_shard_policy);
    }
}

TEST(ShardParityDirected, MergeBeforeTheCarrierWriteRestoresExactness)
{
    // In cross_shard_cycle() the cross-shard hop is: t2 learns the
    // t1-ordering at event 3 (shard 0) and publishes W_y at event 4
    // (shard 1). A merge at global index 4 sits exactly between the two
    // hops, so merge_epoch == 4 must reproduce the single-engine verdict
    // index for index; merge_epoch == 2 (boundary at 2 and 4) likewise.
    Trace t = cross_shard_cycle();
    RunResult expected = baseline<AeroDromeOpt>(t, true);
    ASSERT_TRUE(expected.violation);
    ASSERT_EQ(expected.details->event_index, 5u);

    for (uint64_t merge_epoch : {uint64_t{2}, uint64_t{4}}) {
        ShardOptions opts;
        opts.shards = 2;
        opts.merge_epoch = merge_epoch;
        opts.policy = &modulo_shard_policy;
        ShardRunResult r =
            run_sharded_inline(factory<AeroDromeOpt>(true), t, opts);
        ASSERT_TRUE(r.result.violation)
            << "merge_epoch=" << merge_epoch;
        EXPECT_EQ(r.result.details->event_index,
                  expected.details->event_index);
        EXPECT_EQ(r.result.details->thread, expected.details->thread);
    }
}

TEST(ShardParityDirected, LockCarriedCycleSurvivesAnyMergeCadence)
{
    // The carrier edge travels through replicated lock events, so every
    // shard sees it without any frontier merge at all: verdict and index
    // must match the single engine even with merging disabled.
    Trace t = cross_shard_lock_cycle();
    RunResult expected = baseline<AeroDromeOpt>(t, true);
    ASSERT_TRUE(expected.violation);

    for (uint64_t merge_epoch : {uint64_t{0}, uint64_t{16}}) {
        ShardOptions opts;
        opts.shards = 2;
        opts.merge_epoch = merge_epoch;
        opts.policy = &modulo_shard_policy;
        ShardRunResult r =
            run_sharded_inline(factory<AeroDromeOpt>(true), t, opts);
        ASSERT_TRUE(r.result.violation);
        EXPECT_EQ(r.result.details->event_index,
                  expected.details->event_index);
    }
}

// --- Adversarial cross-shard families (gen/adversarial.hpp) -----------------
//
// Parameterized traces built to defeat naive epoch merging: transitive
// chains hopping between shard-owned variables inside one merge window
// while the carrier transactions are still open. Exact epoch mode must
// reproduce the single-engine verdict on every one of them; the legacy
// periodic-only mode must stay sound (these are exactly its blind spots).

std::vector<gen::CrossShardAdversaryOptions>
adversarial_corpus()
{
    std::vector<gen::CrossShardAdversaryOptions> out;
    for (uint32_t hops : {1u, 2u, 3u, 7u}) {
        for (uint32_t offset : {0u, 1u, 2u, 3u, 5u}) {
            for (bool open_carriers : {true, false}) {
                gen::CrossShardAdversaryOptions o;
                o.hops = hops;
                o.offset = offset;
                o.open_carriers = open_carriers;
                out.push_back(o);
                o.close_by_write = true;
                out.push_back(o);
            }
        }
    }
    // Targeted variants on the core open-carrier shape.
    for (uint32_t hops : {2u, 3u}) {
        gen::CrossShardAdversaryOptions o;
        o.hops = hops;
        o.retouch = true; // late detection point for lagging modes
        out.push_back(o);
        o.retouch = false;
        o.lock_carrier = true; // replicated carrier: no merge needed
        out.push_back(o);
        o.lock_carrier = false;
        o.same_shard = true; // control: single-shard chain
        out.push_back(o);
        o.same_shard = false;
        o.serializable = true; // control: no cycle anywhere
        out.push_back(o);
    }
    return out;
}

TEST(ShardParityAdversarial, ExactEpochModeMatchesSingleEngine)
{
    for (const auto& params : adversarial_corpus()) {
        Trace t = gen::make_cross_shard_adversary(params);
        SCOPED_TRACE(::testing::Message()
                     << "hops=" << params.hops << " offset=" << params.offset
                     << " open=" << params.open_carriers
                     << " write=" << params.close_by_write
                     << " lock=" << params.lock_carrier
                     << " retouch=" << params.retouch
                     << " same_shard=" << params.same_shard
                     << " serializable=" << params.serializable);
        expect_epoch_mode_exact<AeroDromeBasic>(t, &modulo_shard_policy);
        expect_epoch_mode_exact<AeroDromeReadOpt>(t, &modulo_shard_policy);
        expect_epoch_mode_exact<AeroDromeOpt>(t, &modulo_shard_policy);
        expect_epoch_mode_exact<AeroDromeTuned>(t, &modulo_shard_policy);
        // Lockstep agrees too, and the two exact modes agree with each
        // other by transitivity.
        expect_lockstep_exact<AeroDromeOpt>(t, &modulo_shard_policy);
    }
}

TEST(ShardParityAdversarial, LegacyEpochModeStaysSoundOnItsBlindSpots)
{
    for (const auto& params : adversarial_corpus()) {
        Trace t = gen::make_cross_shard_adversary(params);
        SCOPED_TRACE(::testing::Message()
                     << "hops=" << params.hops << " offset=" << params.offset
                     << " open=" << params.open_carriers);
        expect_legacy_epoch_mode_sound<AeroDromeOpt>(t,
                                                     &modulo_shard_policy);
        expect_legacy_epoch_mode_sound<AeroDromeTuned>(
            t, &modulo_shard_policy);
    }
}

TEST(ShardParityAdversarial, OpenCarrierChainDefeatsPeriodicOnlyMerging)
{
    // Document the gap the divergence barriers close: with open carriers
    // and one merge window covering the whole chain, the periodic-only
    // mode misses the violation outright, while exact epoch mode nails
    // the single-engine index. (This is the regression guard for the
    // motivation of the barriers — if periodic-only merging ever became
    // exact here, the barriers would be dead weight.)
    gen::CrossShardAdversaryOptions params;
    params.hops = 2;
    params.open_carriers = true;
    Trace t = gen::make_cross_shard_adversary(params);
    RunResult expected = baseline<AeroDromeOpt>(t, true);
    ASSERT_TRUE(expected.violation);

    ShardOptions opts;
    opts.shards = 2;
    opts.merge_epoch = 1024; // one window spans the entire trace
    opts.policy = &modulo_shard_policy;
    opts.divergence_barriers = false;
    ShardRunResult lagging =
        run_sharded_inline(factory<AeroDromeOpt>(true), t, opts);
    EXPECT_FALSE(lagging.result.violation)
        << "periodic-only merging unexpectedly caught the chain";

    opts.divergence_barriers = true;
    ShardRunResult exact =
        run_sharded_inline(factory<AeroDromeOpt>(true), t, opts);
    ASSERT_TRUE(exact.result.violation);
    EXPECT_EQ(exact.result.details->event_index,
              expected.details->event_index);
    EXPECT_EQ(exact.result.details->thread, expected.details->thread);
    EXPECT_GT(exact.barrier_merges, 0u);
}

TEST(ShardParityAdversarial, ThreadedExactEpochSpotCheck)
{
    // The inline driver carries the adversarial corpus; make sure the
    // real pipeline (queues, workers, barrier, planner) agrees on the
    // core shapes at several cadences.
    for (uint32_t hops : {2u, 3u}) {
        gen::CrossShardAdversaryOptions params;
        params.hops = hops;
        Trace t = gen::make_cross_shard_adversary(params);
        RunResult expected = baseline<AeroDromeTuned>(t, true);
        for (uint64_t merge_epoch :
             {uint64_t{4}, uint64_t{64}, ShardOptions::kMergeEndOnly}) {
            ShardOptions opts;
            opts.shards = 2;
            opts.merge_epoch = merge_epoch;
            opts.policy = &modulo_shard_policy;
            ShardRunResult r =
                run_sharded(factory<AeroDromeTuned>(true), t, opts);
            SCOPED_TRACE(::testing::Message()
                         << "hops=" << hops
                         << " merge_epoch=" << merge_epoch);
            ASSERT_EQ(r.result.violation, expected.violation);
            if (expected.violation) {
                EXPECT_EQ(r.result.details->event_index,
                          expected.details->event_index);
                EXPECT_EQ(r.result.details->thread,
                          expected.details->thread);
            }
        }
    }
}

// --- Batch-size invariance ---------------------------------------------------
//
// The block transport (src/shard/README.md, "Block transport") cuts
// runs at every planned merge point, so barrier placement — and with it
// the verdict — cannot depend on the block size. Hold the threaded
// pipeline to bit-exactness across batch sizes spanning degenerate
// (1, per-event), misaligned (7), and realistic (64, 256) blocks.

TEST(ShardParityBatch, ThreadedVerdictsAreBatchInvariant)
{
    std::vector<Trace> traces = {cross_shard_cycle(), three_shard_cycle(),
                                 cross_shard_serializable()};
    for (uint32_t hops : {2u, 3u}) {
        gen::CrossShardAdversaryOptions params;
        params.hops = hops;
        traces.push_back(gen::make_cross_shard_adversary(params));
    }
    for (uint64_t seed : {uint64_t{9000}, uint64_t{9104}})
        traces.push_back(fuzz_trace(seed, 4, 6, 2, 0.8));

    for (size_t ti = 0; ti < traces.size(); ++ti) {
        const Trace& t = traces[ti];
        RunResult expected = baseline<AeroDromeOpt>(t, true);
        for (uint32_t batch : {1u, 7u, 64u, 256u}) {
            for (uint64_t merge_epoch :
                 {uint64_t{4}, ShardOptions::kMergeEndOnly}) {
                ShardOptions opts;
                opts.shards = 2;
                opts.merge_epoch = merge_epoch;
                opts.policy = &modulo_shard_policy;
                opts.batch_size = batch;
                ShardRunResult r =
                    run_sharded(factory<AeroDromeOpt>(true), t, opts);
                SCOPED_TRACE(::testing::Message()
                             << "trace=" << ti << " batch=" << batch
                             << " merge_epoch=" << merge_epoch);
                EXPECT_EQ(r.batch, batch);
                ASSERT_EQ(r.result.violation, expected.violation);
                if (expected.violation) {
                    EXPECT_EQ(r.result.details->event_index,
                              expected.details->event_index);
                    EXPECT_EQ(r.result.details->thread,
                              expected.details->thread);
                }
            }
        }
    }
}

// --- Worker-failure parity matrix -------------------------------------------
//
// The recovery path (src/shard/README.md, "Failure model") promises: a
// worker killed or stalled at any point either recovers to the *exact*
// single-engine verdict (checkpoint + intact replay window) or completes
// with the degraded flag raised — and a reported violation is real
// either way. Sweep injected kill/stall across both shards and a spread
// of trigger offsets (death before any work, inside the first window,
// mid-stream) on a serializable and a violating trace, and hold every
// run to that contract against the single-engine oracle.

/** Long cross-shard ping-pong: ordered handoffs only, serializable. */
Trace
failure_matrix_serializable()
{
    TraceBuilder b;
    for (int round = 0; round < 60; ++round) {
        b.begin("t1").write("t1", "x").write("t1", "y").end("t1");
        b.begin("t2").read("t2", "x").read("t2", "y").end("t2");
    }
    return b.take();
}

/** Same ping-pong, then a cross-shard cycle closes late: the violation
 *  sits past every trigger offset, so a recovered lane must still carry
 *  the clocks that expose it. */
Trace
failure_matrix_violating()
{
    TraceBuilder b;
    for (int round = 0; round < 40; ++round) {
        b.begin("t1").write("t1", "x").write("t1", "y").end("t1");
        b.begin("t2").read("t2", "x").read("t2", "y").end("t2");
    }
    b.begin("t1").write("t1", "x");
    b.begin("t2").read("t2", "x").write("t2", "y");
    b.read("t1", "y");
    b.end("t1").end("t2");
    return b.take();
}

/** RAII disarm so a failing assertion cannot leak an armed plan into
 *  the next test. */
struct ArmedPlan {
    explicit ArmedPlan(const FaultPlan& plan)
    {
        FaultInjector::instance().arm(plan);
    }
    ~ArmedPlan() { FaultInjector::instance().disarm(); }
};

TEST(ShardWorkerFailure, KillAndStallMatrixMatchesOracleOrDegrades)
{
    struct Workload {
        const char* name;
        Trace trace;
    };
    const Workload workloads[] = {
        {"serializable", failure_matrix_serializable()},
        {"violating", failure_matrix_violating()},
    };
    for (const Workload& wl : workloads) {
        RunResult expected = baseline<AeroDromeOpt>(wl.trace, true);
        for (FaultKind kind :
             {FaultKind::kWorkerKill, FaultKind::kWorkerStall}) {
            for (uint32_t shard : {0u, 1u}) {
                for (uint64_t trigger : {uint64_t{0}, uint64_t{1},
                                         uint64_t{5}, uint64_t{13}}) {
                    SCOPED_TRACE(::testing::Message()
                                 << wl.name << " kind="
                                 << fault_kind_name(kind)
                                 << " shard=" << shard
                                 << " trigger=" << trigger);
                    FaultPlan plan;
                    plan.site = FaultSite::kWorker;
                    plan.kind = kind;
                    plan.trigger = trigger;
                    plan.shard = shard;
                    plan.duration = 2000; // stall cap >> watchdog
                    ArmedPlan armed(plan);

                    ShardOptions opts;
                    opts.shards = 2;
                    opts.merge_epoch = 4;
                    opts.policy = &modulo_shard_policy;
                    opts.queue_capacity = 64;
                    opts.watchdog_ms = 150;
                    ShardRunResult r =
                        run_sharded(factory<AeroDromeOpt>(true), wl.trace,
                                    opts);
                    ASSERT_GE(r.recoveries, 1u)
                        << "the injected failure never tripped recovery";
                    if (!r.result.degraded) {
                        // Exact recovery: the full single-engine verdict,
                        // index for index.
                        ASSERT_EQ(r.result.violation, expected.violation);
                        if (expected.violation) {
                            EXPECT_EQ(r.result.details->event_index,
                                      expected.details->event_index);
                            EXPECT_EQ(r.result.details->thread,
                                      expected.details->thread);
                        }
                    } else if (r.result.violation) {
                        // Degraded completions keep soundness: a reported
                        // violation is real, so the oracle must violate
                        // at or before it.
                        ASSERT_TRUE(expected.violation);
                        EXPECT_GE(r.result.details->event_index,
                                  expected.details->event_index);
                    }
                }
            }
        }
    }
}

TEST(ShardWorkerFailure, KillAndStallMatrixHoldsUnderBatchedTransport)
{
    // Same contract as the matrix above, re-run with the block transport
    // engaged: batch 1 (every event its own block) and batch 64 (a whole
    // ring's worth staged per publish, so a kill mid-block forces the
    // reader's redeliver-floor path). Recovery must still land on the
    // exact oracle verdict or finish degraded-but-sound.
    struct Workload {
        const char* name;
        Trace trace;
    };
    const Workload workloads[] = {
        {"serializable", failure_matrix_serializable()},
        {"violating", failure_matrix_violating()},
    };
    for (const Workload& wl : workloads) {
        RunResult expected = baseline<AeroDromeOpt>(wl.trace, true);
        for (FaultKind kind :
             {FaultKind::kWorkerKill, FaultKind::kWorkerStall}) {
            for (uint32_t batch : {1u, 64u}) {
                for (uint64_t trigger : {uint64_t{0}, uint64_t{5}}) {
                    SCOPED_TRACE(::testing::Message()
                                 << wl.name << " kind="
                                 << fault_kind_name(kind)
                                 << " batch=" << batch
                                 << " trigger=" << trigger);
                    FaultPlan plan;
                    plan.site = FaultSite::kWorker;
                    plan.kind = kind;
                    plan.trigger = trigger;
                    plan.shard = 1;
                    plan.duration = 2000; // stall cap >> watchdog
                    ArmedPlan armed(plan);

                    ShardOptions opts;
                    opts.shards = 2;
                    opts.merge_epoch = 4;
                    opts.policy = &modulo_shard_policy;
                    opts.queue_capacity = 64;
                    opts.watchdog_ms = 150;
                    opts.batch_size = batch;
                    ShardRunResult r =
                        run_sharded(factory<AeroDromeOpt>(true), wl.trace,
                                    opts);
                    ASSERT_GE(r.recoveries, 1u)
                        << "the injected failure never tripped recovery";
                    if (!r.result.degraded) {
                        ASSERT_EQ(r.result.violation, expected.violation);
                        if (expected.violation) {
                            EXPECT_EQ(r.result.details->event_index,
                                      expected.details->event_index);
                            EXPECT_EQ(r.result.details->thread,
                                      expected.details->thread);
                        }
                    } else if (r.result.violation) {
                        ASSERT_TRUE(expected.violation);
                        EXPECT_GE(r.result.details->event_index,
                                  expected.details->event_index);
                    }
                }
            }
        }
    }
}

TEST(ShardWorkerFailure, DelayBelowTheDeadlineStaysExact)
{
    // A worker that hiccups but keeps heartbeating must not be evicted:
    // no recovery, no degradation, bit-exact verdict.
    Trace t = failure_matrix_violating();
    RunResult expected = baseline<AeroDromeOpt>(t, true);
    ASSERT_TRUE(expected.violation);

    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerDelay;
    plan.trigger = 9;
    plan.duration = 30; // well under the 500ms deadline
    ArmedPlan armed(plan);

    ShardOptions opts;
    opts.shards = 2;
    opts.merge_epoch = 4;
    opts.policy = &modulo_shard_policy;
    opts.queue_capacity = 64;
    opts.watchdog_ms = 500;
    ShardRunResult r = run_sharded(factory<AeroDromeOpt>(true), t, opts);
    EXPECT_EQ(r.recoveries, 0u);
    EXPECT_FALSE(r.result.degraded);
    ASSERT_TRUE(r.result.violation);
    EXPECT_EQ(r.result.details->event_index, expected.details->event_index);
    EXPECT_EQ(r.result.details->thread, expected.details->thread);
}

TEST(ShardWorkerFailure, KillBeforeAnyMergeRecoversExactly)
{
    // With merging disabled there is never a checkpoint to lose: the
    // replacement engine replays the shard's stream from the beginning,
    // so even a death on the very first item recovers without giving up
    // exactness (degraded must stay false).
    Trace t = failure_matrix_serializable();

    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerKill;
    plan.trigger = 0;
    plan.shard = 1;
    ArmedPlan armed(plan);

    ShardOptions opts;
    opts.shards = 2;
    opts.merge_epoch = 0;
    opts.confirm_replay = false;
    opts.policy = &modulo_shard_policy;
    opts.queue_capacity = 64;
    opts.watchdog_ms = 150;
    ShardRunResult r = run_sharded(factory<AeroDromeOpt>(true), t, opts);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_FALSE(r.result.degraded)
        << "reason: " << r.result.degraded_reason;
    EXPECT_FALSE(r.result.violation);
    EXPECT_EQ(r.result.status(), RunStatus::kOk);
}

TEST(ShardParityDirected, ThreadedLockstepSpotCheck)
{
    // The inline driver carries the corpus; make sure the real pipeline
    // (queues, workers, merge barrier) agrees on the directed traces.
    for (const Trace& t : {cross_shard_cycle(), three_shard_cycle(),
                           cross_shard_serializable()}) {
        RunResult expected = baseline<AeroDromeOpt>(t, true);
        ShardOptions opts;
        opts.shards = 2;
        opts.merge_epoch = 1;
        opts.policy = &modulo_shard_policy;
        ShardRunResult r = run_sharded(factory<AeroDromeOpt>(true), t,
                                       opts);
        ASSERT_EQ(r.result.violation, expected.violation);
        if (expected.violation) {
            EXPECT_EQ(r.result.details->event_index,
                      expected.details->event_index);
            EXPECT_EQ(r.result.details->thread, expected.details->thread);
        }
    }
}

} // namespace
} // namespace aero
