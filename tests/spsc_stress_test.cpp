/**
 * @file
 * Dedicated stress suite for the sharded runner's SPSC ring
 * (shard/spsc_queue.hpp) — run under ThreadSanitizer in CI alongside the
 * shard tests.
 *
 * Covers the three regimes the runner leans on:
 *   - wraparound: tiny capacities force the indices around the ring many
 *     thousands of times while FIFO order must hold exactly;
 *   - backoff state transitions: producer/consumer pacing is randomized
 *     (bursts, yields, sleeps) so both sides repeatedly walk the
 *     spin -> yield -> sleep ladder of SpscBackoff and reset it;
 *   - shutdown-while-full: the runner's shutdown pushes an EOF marker
 *     with a blocking push() that may find the ring completely full and
 *     must still hand every prior item over, in order, to a consumer
 *     that drains late;
 *   - batch transport: try_push_n/try_pop_n and their waiting variants
 *     (the block transport of the sharded reader) must keep exact FIFO
 *     order across wraparound splits, partial reservations, mixed
 *     single/batch producers and consumers, and shutdown with a partial
 *     block still in flight.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "shard/spsc_queue.hpp"

namespace aero {
namespace {

/** Randomized pacing: mostly full speed, sometimes yield, sometimes a
 *  real sleep (long enough to push the partner into its sleep phase). */
struct Pacing {
    std::mt19937 rng;
    int yield_pct;
    int sleep_pct;

    Pacing(uint32_t seed, int yield_pct_, int sleep_pct_)
        : rng(seed), yield_pct(yield_pct_), sleep_pct(sleep_pct_)
    {}

    void
    step()
    {
        int roll = static_cast<int>(rng() % 100);
        if (roll < sleep_pct) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50 + rng() % 300));
        } else if (roll < sleep_pct + yield_pct) {
            std::this_thread::yield();
        }
    }
};

struct Item {
    uint64_t seq = 0;
    bool eof = false;
};

/** Push [0, n) + EOF through the ring with the given pacing; the
 *  consumer asserts strict FIFO sequencing. */
void
run_stream(size_t capacity, uint64_t n, uint32_t seed, int prod_yield,
           int prod_sleep, int cons_yield, int cons_sleep)
{
    SpscQueue<Item> q(capacity);
    std::atomic<uint64_t> received{0};

    std::thread producer([&] {
        Pacing pace(seed, prod_yield, prod_sleep);
        for (uint64_t i = 0; i < n; ++i) {
            q.push({i, false});
            pace.step();
        }
        q.push({n, true});
    });

    Pacing pace(seed + 1, cons_yield, cons_sleep);
    uint64_t expect = 0;
    for (;;) {
        Item it = q.pop();
        if (it.eof) {
            EXPECT_EQ(it.seq, n);
            break;
        }
        ASSERT_EQ(it.seq, expect) << "FIFO order broken";
        ++expect;
        ++received;
        pace.step();
    }
    producer.join();
    EXPECT_EQ(received.load(), n);
}

TEST(SpscStress, TinyRingWrapsThousandsOfTimesInOrder)
{
    // Capacity 2 (rounds to a 4-slot ring): every few pushes wrap the
    // indices; 40k items ≈ 10k wraparounds with both sides full speed.
    run_stream(/*capacity=*/2, /*n=*/40000, /*seed=*/1, 0, 0, 0, 0);
}

TEST(SpscStress, RandomizedPacingWalksTheBackoffLadder)
{
    // Producer sleeps sometimes (consumer spins through empty: spin,
    // yield, sleep phases); consumer sleeps sometimes (producer backs
    // off on full). Several seeds for schedule diversity.
    for (uint32_t seed : {7u, 8u, 9u}) {
        run_stream(/*capacity=*/8, /*n=*/4000, seed,
                   /*prod_yield=*/10, /*prod_sleep=*/2,
                   /*cons_yield=*/10, /*cons_sleep=*/2);
    }
}

TEST(SpscStress, SlowConsumerKeepsProducerBlockedOnFull)
{
    // Consumer sleeps a lot: the ring is full almost always and the
    // producer's blocking push() lives in its sleep phase.
    run_stream(/*capacity=*/4, /*n=*/600, /*seed=*/21, 0, 0, 0, 30);
}

TEST(SpscStress, SlowProducerKeepsConsumerBlockedOnEmpty)
{
    run_stream(/*capacity=*/4, /*n=*/600, /*seed=*/22, 0, 30, 0, 0);
}

TEST(SpscStress, ShutdownWhileFullDeliversEverything)
{
    // The producer fills the ring to the brim with try_push, then issues
    // the runner-style blocking EOF push while the ring is still full;
    // the consumer starts draining only afterwards. Repeated at shifted
    // ring offsets so the full condition lands on every slot alignment.
    for (int round = 0; round < 64; ++round) {
        SpscQueue<Item> q(4);
        // Shift the ring's start position.
        for (int i = 0; i < round % 5; ++i) {
            q.push({0, false});
            Item dummy;
            ASSERT_TRUE(q.try_pop(dummy));
        }
        uint64_t pushed = 0;
        while (q.try_push({pushed, false}))
            ++pushed;
        ASSERT_EQ(pushed, q.capacity()) << "ring reports the wrong fill";

        std::thread producer([&] {
            q.push({pushed, true}); // blocks until the consumer drains
        });
        std::this_thread::sleep_for(std::chrono::microseconds(200));

        uint64_t expect = 0;
        for (;;) {
            Item it = q.pop();
            if (it.eof) {
                EXPECT_EQ(it.seq, pushed);
                break;
            }
            ASSERT_EQ(it.seq, expect);
            ++expect;
        }
        producer.join();
        EXPECT_EQ(expect, pushed);
        Item leftover;
        EXPECT_FALSE(q.try_pop(leftover)) << "items after EOF";
    }
}

TEST(SpscStress, BoundedWaitSurfacesADeadPartnerThenRecovers)
{
    // The runner's watchdog leans on push_wait/pop_wait timing out when
    // the other side is sick: a producer facing a dead consumer must get
    // control back, and the same queue must work normally once a live
    // consumer appears (timeout does not corrupt the ring).
    SpscQueue<Item> q(4);
    uint64_t pushed = 0;
    while (q.try_push({pushed, false}))
        ++pushed;
    EXPECT_FALSE(q.push_wait({pushed, false}, /*max_wait_us=*/5000))
        << "full ring with no consumer must time out";

    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        uint64_t expect = 0;
        for (;;) {
            Item it;
            // A live-but-slow producer: bounded pops keep succeeding.
            ASSERT_TRUE(q.pop_wait(it, /*max_wait_us=*/1000000));
            if (it.eof)
                break;
            ASSERT_EQ(it.seq, expect++);
        }
        EXPECT_EQ(expect, pushed + 1);
    });
    // The retry after the timeout delivers the same item unduplicated.
    ASSERT_TRUE(q.push_wait({pushed, false}, /*max_wait_us=*/1000000));
    q.push({pushed + 1, true});
    consumer.join();

    Item leftover;
    EXPECT_FALSE(q.try_pop(leftover));
    EXPECT_FALSE(q.pop_wait(leftover, /*max_wait_us=*/5000))
        << "drained ring with no producer must time out";
}

/** Batch-variant counterpart of run_stream: producer pushes blocks of
 *  `prod_block`, consumer pops blocks of `cons_block`; strict FIFO must
 *  hold across every wraparound split and partial reservation. */
void
run_block_stream(size_t capacity, uint64_t n, size_t prod_block,
                 size_t cons_block, uint32_t seed, int prod_sleep,
                 int cons_sleep)
{
    SpscQueue<Item> q(capacity);
    std::thread producer([&] {
        Pacing pace(seed, 5, prod_sleep);
        std::vector<Item> block(prod_block);
        uint64_t next = 0;
        while (next < n) {
            const size_t m =
                std::min<uint64_t>(prod_block, n - next);
            for (size_t i = 0; i < m; ++i)
                block[i] = {next + i, false};
            size_t done = 0;
            while (done < m) {
                // max_wait_us == 0: wait forever — the batch variants'
                // "no deadline" convention, same as push()/pop().
                done += q.push_n_wait(block.data() + done, m - done,
                                      /*max_wait_us=*/0);
            }
            next += m;
            pace.step();
        }
        q.push({n, true});
    });

    Pacing pace(seed + 1, 5, cons_sleep);
    std::vector<Item> block(cons_block);
    uint64_t expect = 0;
    bool eof = false;
    while (!eof) {
        const size_t got =
            q.pop_n_wait(block.data(), cons_block, /*max_wait_us=*/0);
        ASSERT_GT(got, 0u);
        for (size_t i = 0; i < got; ++i) {
            if (block[i].eof) {
                EXPECT_EQ(block[i].seq, n);
                EXPECT_EQ(i, got - 1) << "items after EOF in a block";
                eof = true;
                break;
            }
            ASSERT_EQ(block[i].seq, expect) << "FIFO order broken";
            ++expect;
        }
        pace.step();
    }
    producer.join();
    EXPECT_EQ(expect, n);
}

TEST(SpscStress, BatchTransportWrapsTinyRingsInOrder)
{
    // Blocks larger than the ring: every reservation is partial and
    // nearly every one splits across the wrap boundary.
    run_block_stream(/*capacity=*/2, /*n=*/40000, /*prod_block=*/7,
                     /*cons_block=*/5, /*seed=*/31, 0, 0);
    // Blocks at exactly the ring capacity and at 1 (degenerate).
    run_block_stream(/*capacity=*/8, /*n=*/20000, /*prod_block=*/8,
                     /*cons_block=*/8, /*seed=*/32, 0, 0);
    run_block_stream(/*capacity=*/4, /*n=*/5000, /*prod_block=*/1,
                     /*cons_block=*/1, /*seed=*/33, 0, 0);
}

TEST(SpscStress, BatchTransportSurvivesRandomizedPacing)
{
    for (uint32_t seed : {41u, 42u, 43u}) {
        run_block_stream(/*capacity=*/16, /*n=*/8000, /*prod_block=*/13,
                         /*cons_block=*/6, seed, /*prod_sleep=*/2,
                         /*cons_sleep=*/2);
    }
}

TEST(SpscStress, MixedSingleAndBatchProducersKeepFifo)
{
    // The runner mixes batch pushes (event blocks) with single-item
    // pushes (markers, EOF) on the same ring; the consumer likewise
    // mixes pop() with pop_n_wait. Order must stay exact.
    SpscQueue<Item> q(8);
    const uint64_t n = 30000;
    std::thread producer([&] {
        std::mt19937 rng(51);
        std::vector<Item> block(5);
        uint64_t next = 0;
        while (next < n) {
            if (rng() % 3 == 0) {
                q.push({next++, false});
                continue;
            }
            const size_t m = std::min<uint64_t>(1 + rng() % 5, n - next);
            for (size_t i = 0; i < m; ++i)
                block[i] = {next + i, false};
            size_t done = 0;
            while (done < m)
                done += q.push_n_wait(block.data() + done, m - done, 0);
            next += m;
        }
        q.push({n, true});
    });

    std::mt19937 rng(52);
    std::vector<Item> block(6);
    uint64_t expect = 0;
    bool eof = false;
    while (!eof) {
        if (rng() % 3 == 0) {
            Item it = q.pop();
            if (it.eof) {
                EXPECT_EQ(it.seq, n);
                break;
            }
            ASSERT_EQ(it.seq, expect++);
            continue;
        }
        const size_t got = q.pop_n_wait(block.data(), 1 + rng() % 6, 0);
        ASSERT_GT(got, 0u);
        for (size_t i = 0; i < got; ++i) {
            if (block[i].eof) {
                EXPECT_EQ(block[i].seq, n);
                eof = true;
                break;
            }
            ASSERT_EQ(block[i].seq, expect++);
        }
    }
    producer.join();
    EXPECT_EQ(expect, n);
}

TEST(SpscStress, BatchShutdownWhileFullDrainsThePartialBlock)
{
    // The runner's shutdown flushes a partial staged block into a ring
    // that may be full: push_n_wait makes partial progress (items [0,
    // ret) are in the ring exactly once), the caller retries with the
    // remainder, and a late consumer still sees every item once, in
    // order — the no-loss/no-duplication contract.
    for (int round = 0; round < 32; ++round) {
        SpscQueue<Item> q(4);
        for (int i = 0; i < round % 5; ++i) { // shift the ring's offset
            q.push({0, false});
            Item dummy;
            ASSERT_TRUE(q.try_pop(dummy));
        }
        uint64_t pushed = 0;
        while (q.try_push({pushed, false}))
            ++pushed;

        // Partial block: 3 events + EOF, pushed against the full ring.
        const uint64_t total = pushed + 3;
        std::thread producer([&] {
            Item tail[4] = {{pushed, false},
                            {pushed + 1, false},
                            {pushed + 2, false},
                            {total, true}};
            size_t done = 0;
            while (done < 4) {
                const size_t got =
                    q.push_n_wait(tail + done, 4 - done,
                                  /*max_wait_us=*/2000);
                done += got; // timeouts interleave with progress
            }
        });
        std::this_thread::sleep_for(std::chrono::microseconds(200));

        uint64_t expect = 0;
        for (;;) {
            Item it = q.pop();
            if (it.eof) {
                EXPECT_EQ(it.seq, total);
                break;
            }
            ASSERT_EQ(it.seq, expect);
            ++expect;
        }
        producer.join();
        EXPECT_EQ(expect, total);
        Item leftover;
        EXPECT_FALSE(q.try_pop(leftover)) << "items after EOF";
    }
}

TEST(SpscStress, BatchBoundedWaitTimesOutAndRecovers)
{
    SpscQueue<Item> q(4);
    std::vector<Item> block(8);
    for (size_t i = 0; i < block.size(); ++i)
        block[i] = {i, false};
    // No consumer: the batch push fills the ring, then times out with
    // partial progress reported.
    const size_t pushed =
        q.push_n_wait(block.data(), block.size(), /*max_wait_us=*/5000);
    EXPECT_EQ(pushed, q.capacity());
    std::vector<Item> out(8);
    size_t got = 0;
    while (got < pushed)
        got += q.pop_n_wait(out.data() + got, out.size() - got,
                            /*max_wait_us=*/5000);
    for (size_t i = 0; i < got; ++i)
        EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(q.pop_n_wait(out.data(), out.size(), /*max_wait_us=*/5000),
              0u)
        << "drained ring with no producer must time out";
}

TEST(SpscStress, SingleThreadedWraparoundInvariants)
{
    SpscQueue<uint64_t> q(3); // rounds up: capacity() == 3 means 4 slots
    EXPECT_GE(q.capacity(), 3u);
    uint64_t seq = 0, expect = 0;
    // Drive the indices across the wrap boundary many times with mixed
    // fill levels.
    for (int round = 0; round < 1000; ++round) {
        const size_t burst = 1 + (round % q.capacity());
        for (size_t i = 0; i < burst; ++i)
            ASSERT_TRUE(q.try_push(seq++));
        if (round % 7 == 0) {
            // Fill to the brim, confirm full is detected exactly once.
            while (q.try_push(seq))
                ++seq;
            uint64_t reject;
            EXPECT_FALSE(q.try_push(reject = seq));
        }
        uint64_t out;
        while (q.try_pop(out))
            ASSERT_EQ(out, expect++);
        EXPECT_FALSE(q.try_pop(out));
    }
    EXPECT_EQ(expect, seq);
}

} // namespace
} // namespace aero
