/**
 * @file
 * Block ingestion: the batched decoders must be observably identical to
 * the per-event reference reader.
 *
 * PR 7 made corrupt input a first-class outcome with an exact contract
 * (StreamError cause + event index + absolute byte offset, strict and
 * resync modes); the block readers re-implement decode for speed, so
 * this suite pins them to the reference byte-for-byte: every trace in a
 * fuzz corpus — clean, bit-flipped, truncated, garbled — must produce
 * the same events, the same terminal error, and the same recovered-error
 * list through BinaryEventSource::next_n and MappedBinaryEventSource
 * (mmap and buffered windows) at block sizes {1, 7, 256, 4096} as
 * through BinaryEventSource::next() one event at a time.
 *
 * Also here: the magic-sniffing format decision (extension only breaks
 * ties), the AERO_MMAP=0 fallback, and the block runner's budget-poll
 * boundaries (a block larger than check_interval must not blow past
 * max_seconds).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "sim/scheduler.hpp"
#include "support/fault.hpp"
#include "trace/binary_io.hpp"
#include "trace/mapped_reader.hpp"
#include "trace/stream.hpp"

namespace aero {
namespace {

/** One small well-formed trace per seed, shape-varied like the
 *  robustness fuzz corpus. */
Trace
corpus_trace(uint64_t seed)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = 2 + seed % 4;
    opts.shared_vars = 3 + seed % 5;
    opts.locks = 1 + seed % 2;
    opts.steps_per_thread = 30;
    sim::SimResult sim = sim::run_program(gen::make_random_program(opts));
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

/** Synthetic trace whose ids need multi-byte varints, so the batched
 *  kernel's clean-span boundaries (LEB128 continuation bits) are
 *  exercised, not just the all-1-byte fast path. */
Trace
wide_id_trace()
{
    Trace t;
    for (uint32_t i = 0; i < 120; ++i) {
        const ThreadId tid = (i * 37) % 200;       // 2-byte tids past 127
        const uint32_t var = (i * 991) % 20000;    // up to 3-byte vars
        t.begin(tid);
        t.write(tid, var);
        t.read(tid, var / 2);
        t.end(tid);
    }
    return t;
}

FaultKind
fuzz_kind(uint64_t seed)
{
    switch (seed % 3) {
      case 0:
        return FaultKind::kBitFlip;
      case 1:
        return FaultKind::kTruncate;
      default:
        return FaultKind::kGarbage;
    }
}

/** Everything observable about one full drain of a source. */
struct DrainResult {
    std::vector<Event> events;
    bool threw = false;
    StreamError error; // valid when threw
    std::vector<StreamError> recovered;
    uint64_t recovered_total = 0;
};

void
capture_tail(EventSource& src, DrainResult& out)
{
    out.recovered = src.recovered_errors();
    out.recovered_total = src.recovered_error_count();
}

/** Reference: the per-event reader, one next() at a time. */
DrainResult
drain_reference(const std::string& image, bool resync)
{
    DrainResult out;
    std::istringstream in(image, std::ios::binary);
    try {
        BinaryEventSource src(in);
        src.set_resync(resync);
        Event e;
        while (src.next(e))
            out.events.push_back(e);
        capture_tail(src, out);
    } catch (const StreamCorruption& ex) {
        out.threw = true;
        out.error = ex.error();
    }
    return out;
}

/** Candidate: drain any source via next_n at a given block size. The
 *  strict-mode contract defers a mid-block error to the following call,
 *  so the loop keeps pulling until 0 or a throw. */
DrainResult
drain_batched(EventSource& src, bool resync, size_t block)
{
    DrainResult out;
    src.set_resync(resync);
    std::vector<Event> buf(block);
    try {
        for (;;) {
            const size_t got = src.next_n(buf.data(), block);
            if (got == 0)
                break;
            out.events.insert(out.events.end(), buf.begin(),
                              buf.begin() + static_cast<long>(got));
        }
        capture_tail(src, out);
    } catch (const StreamCorruption& ex) {
        out.threw = true;
        out.error = ex.error();
    }
    return out;
}

void
expect_same_error(const StreamError& a, const StreamError& b,
                  const std::string& what)
{
    EXPECT_EQ(a.cause, b.cause) << what;
    EXPECT_EQ(a.event_index, b.event_index) << what;
    EXPECT_EQ(a.byte_offset, b.byte_offset) << what;
    EXPECT_EQ(a.message, b.message) << what;
}

void
expect_same_drain(const DrainResult& ref, const DrainResult& got,
                  const std::string& what)
{
    ASSERT_EQ(ref.threw, got.threw) << what;
    if (ref.threw)
        expect_same_error(ref.error, got.error, what + " [terminal]");
    ASSERT_EQ(ref.events.size(), got.events.size()) << what;
    for (size_t i = 0; i < ref.events.size(); ++i)
        ASSERT_TRUE(ref.events[i] == got.events[i])
            << what << " event " << i;
    EXPECT_EQ(ref.recovered_total, got.recovered_total) << what;
    ASSERT_EQ(ref.recovered.size(), got.recovered.size()) << what;
    for (size_t i = 0; i < ref.recovered.size(); ++i)
        expect_same_error(ref.recovered[i], got.recovered[i],
                          what + " [recovered " + std::to_string(i) + "]");
}

/** RAII temp file holding a binary image (for the mmap path). */
struct TempImage {
    std::string path;
    explicit TempImage(const std::string& image, const char* tag)
    {
        path = ::testing::TempDir() + "aero_ingest_" + tag + "_" +
               std::to_string(::getpid()) + ".bin";
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(image.data(), static_cast<std::streamsize>(image.size()));
    }
    ~TempImage() { std::remove(path.c_str()); }
};

constexpr size_t kBlocks[] = {1, 7, 256, 4096};

/** The full cross-check of one image: reference next() vs next_n on the
 *  per-event reader and both MappedBinaryEventSource windows, at every
 *  block size, in both modes. Sources whose header is rejected must all
 *  reject with the identical error. */
void
cross_check_image(const std::string& image, const std::string& tag)
{
    TempImage file(image, "xchk");
    for (bool resync : {false, true}) {
        const DrainResult ref = drain_reference(image, resync);
        for (size_t block : kBlocks) {
            const std::string what =
                tag + (resync ? " resync" : " strict") + " block " +
                std::to_string(block);
            {
                std::istringstream in(image, std::ios::binary);
                DrainResult got;
                try {
                    BinaryEventSource src(in);
                    got = drain_batched(src, resync, block);
                } catch (const StreamCorruption& ex) {
                    got.threw = true;
                    got.error = ex.error();
                }
                expect_same_drain(ref, got, what + " [binary.next_n]");
            }
            {
                std::istringstream in(image, std::ios::binary);
                DrainResult got;
                try {
                    MappedBinaryEventSource src(in);
                    EXPECT_FALSE(src.is_mapped());
                    got = drain_batched(src, resync, block);
                } catch (const StreamCorruption& ex) {
                    got.threw = true;
                    got.error = ex.error();
                }
                expect_same_drain(ref, got, what + " [buffered]");
            }
            {
                DrainResult got;
                try {
                    MappedBinaryEventSource src(file.path);
                    got = drain_batched(src, resync, block);
                } catch (const StreamCorruption& ex) {
                    got.threw = true;
                    got.error = ex.error();
                }
                expect_same_drain(ref, got, what + " [mmap]");
            }
        }
        // The batched reader's own next() must match too (block of 1
        // through the block kernel).
        {
            std::istringstream in(image, std::ios::binary);
            DrainResult got;
            try {
                MappedBinaryEventSource src(in);
                src.set_resync(resync);
                Event e;
                while (src.next(e))
                    got.events.push_back(e);
                capture_tail(src, got);
            } catch (const StreamCorruption& ex) {
                got.threw = true;
                got.error = ex.error();
            }
            expect_same_drain(ref, got,
                              tag + (resync ? " resync" : " strict") +
                                  " [mapped.next]");
        }
    }
}

std::string
serialize(const Trace& t)
{
    std::ostringstream blob;
    write_binary(blob, t);
    return blob.str();
}

class BatchedDecodeParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedDecodeParity, CleanAndCorruptImagesMatchReference)
{
    const uint64_t seed = GetParam();
    const std::string clean = serialize(corpus_trace(seed));
    cross_check_image(clean, "clean");

    // Record-level damage (pinned past the header) in every byte-fault
    // flavor, plus an unpinned variant that may hit the header: all
    // readers must reject or recover identically.
    for (uint64_t variant = 0; variant < 4; ++variant) {
        std::string image = clean;
        const uint64_t min_offset = variant < 3 ? 28 : 0;
        corrupt_bytes(image, fuzz_kind(seed + variant),
                      (seed + variant) * 2654435761u, min_offset);
        cross_check_image(image,
                          "corrupt v" + std::to_string(variant));
    }

    // A torn tail (mid-record truncation) is the double-error case:
    // one gap error inside the record, one terminal short-count error.
    if (clean.size() > 30) {
        std::string torn = clean.substr(0, clean.size() - 1);
        cross_check_image(torn, "torn-tail");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedDecodeParity,
                         ::testing::Range<uint64_t>(8600, 8624));

TEST(BatchedDecodeParity, WideIdsCrossCleanSpanBoundaries)
{
    const std::string clean = serialize(wide_id_trace());
    cross_check_image(clean, "wide-ids");
    for (uint64_t v = 0; v < 3; ++v) {
        std::string image = clean;
        corrupt_bytes(image, fuzz_kind(v), 0x51ed2701u + v, 28);
        cross_check_image(image, "wide-ids corrupt v" + std::to_string(v));
    }
}

TEST(BatchedDecodeParity, MappedFallbackUnderAeroMmap0)
{
    const std::string image = serialize(corpus_trace(8777));
    TempImage file(image, "mmap0");
    // Only expect a live mapping when the ambient environment is not
    // already forcing the fallback (the CI AERO_MMAP=0 sweep runs this
    // whole binary with it set).
    const char* ambient = ::getenv("AERO_MMAP");
    const std::string saved = ambient ? ambient : "";
    if (!(ambient && saved == "0")) {
        MappedBinaryEventSource src(file.path);
        EXPECT_TRUE(src.is_mapped());
        EXPECT_STREQ(src.source_kind(), "binary-mmap");
    }
    ::setenv("AERO_MMAP", "0", 1);
    {
        MappedBinaryEventSource src(file.path);
        EXPECT_FALSE(src.is_mapped());
        EXPECT_STREQ(src.source_kind(), "binary-buffered");
        DrainResult got = drain_batched(src, false, 256);
        DrainResult ref = drain_reference(image, false);
        expect_same_drain(ref, got, "AERO_MMAP=0");
    }
    if (ambient)
        ::setenv("AERO_MMAP", saved.c_str(), 1);
    else
        ::unsetenv("AERO_MMAP");
}

TEST(BatchedDecodeParity, CheckerVerdictMatchesMaterialized)
{
    // End to end: a file-backed mapped run and the materialized run must
    // agree on verdict and event count (golden corpora run through this
    // same path via run_checker_stream).
    for (uint64_t seed : {8801ull, 8802ull, 8803ull}) {
        Trace t = corpus_trace(seed);
        TempImage file(serialize(t), "verdict");
        AeroDromeOpt a(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult want = run_checker(a, t);
        MappedBinaryEventSource src(file.path);
        AeroDromeOpt b(0, 0, 0);
        RunResult got = run_checker_stream(b, src);
        EXPECT_EQ(want.violation, got.violation) << seed;
        EXPECT_EQ(want.events_processed, got.events_processed) << seed;
    }
}

// --- Format sniffing ---------------------------------------------------------

TEST(FormatSniffing, MagicBeatsExtension)
{
    // A binary image under a text-looking name must still be binary.
    const std::string image = serialize(corpus_trace(8900));
    std::string path = ::testing::TempDir() + "aero_sniff_bin.trace";
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(image.data(), static_cast<std::streamsize>(image.size()));
    }
    EXPECT_TRUE(trace_is_binary(path));
    std::remove(path.c_str());
}

TEST(FormatSniffing, BinExtensionWithoutMagicIsRejected)
{
    std::string path = ::testing::TempDir() + "aero_sniff_text.bin";
    {
        std::ofstream f(path, std::ios::trunc);
        f << "t0 begin\nt0 w x\nt0 end\n";
    }
    try {
        trace_is_binary(path);
        FAIL() << "contradictory extension was not rejected";
    } catch (const StreamCorruption& e) {
        EXPECT_EQ(e.error().cause, StreamError::Cause::kBadHeader);
        EXPECT_NE(e.error().message.find("magic"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(FormatSniffing, ShortFileFallsBackToExtension)
{
    for (const char* name : {"aero_sniff_short.bin", "aero_sniff_short"}) {
        std::string path = ::testing::TempDir() + name;
        {
            std::ofstream f(path, std::ios::binary | std::ios::trunc);
            f << "abc"; // too short to sniff the 8-byte magic
        }
        const bool want_bin = std::string(name).size() > 4 &&
                              std::string(name).rfind(".bin") ==
                                  std::string(name).size() - 4;
        EXPECT_EQ(trace_is_binary(path), want_bin) << name;
        std::remove(path.c_str());
    }
}

TEST(FormatSniffing, OpenEventSourcePicksBlockReaderForBinary)
{
    const std::string image = serialize(corpus_trace(8901));
    std::string path = ::testing::TempDir() + "aero_sniff_open.bin";
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(image.data(), static_cast<std::streamsize>(image.size()));
    }
    std::unique_ptr<std::istream> storage;
    auto src = open_event_source(path, storage);
    // Under an ambient AERO_MMAP=0 (the CI sweep) the same block reader
    // arrives on its buffered window.
    const char* env = ::getenv("AERO_MMAP");
    EXPECT_STREQ(src->source_kind(),
                 env && std::string(env) == "0" ? "binary-buffered"
                                                : "binary-mmap");
    std::remove(path.c_str());
}

// --- Budget polls at block granularity ---------------------------------------

/** Never-ending benign stream: forces the time budget to be the only
 *  thing that can stop the run. */
class EndlessSource : public EventSource {
public:
    bool
    next(Event& out) override
    {
        out = Event{0, 0, (flip_ = !flip_) ? Op::kBegin : Op::kEnd};
        return true;
    }

private:
    bool flip_ = false;
};

TEST(BlockBudget, HugeBlockCannotBlowPastMaxSeconds)
{
    // Block (1M) >> check_interval (1000): the poll must fire at the
    // first boundary at-or-after each interval *inside* the block, so
    // the run stops on an interval boundary shortly after the deadline
    // instead of draining the whole block first (or never stopping).
    EndlessSource src;
    AeroDromeOpt engine(1, 1, 1);
    RunBudget budget;
    budget.max_seconds = 0.05;
    budget.check_interval = 1000;
    RunResult r = run_checker_stream(engine, src, budget, 1u << 20);
    EXPECT_TRUE(r.timed_out);
    EXPECT_GT(r.events_processed, 0u);
    EXPECT_EQ(r.events_processed % budget.check_interval, 0u)
        << "timeout did not land on a poll boundary";
}

TEST(BlockBudget, ExpiredBudgetStopsAtFirstBoundary)
{
    EndlessSource src;
    AeroDromeOpt engine(1, 1, 1);
    RunBudget budget;
    budget.max_seconds = 1e-9; // already expired at the first poll
    budget.check_interval = 1000;
    RunResult r = run_checker_stream(engine, src, budget, 1u << 20);
    EXPECT_TRUE(r.timed_out);
    EXPECT_EQ(r.events_processed, 0u);
}

TEST(BlockBudget, ResolveIngestBlockEnvAndDefault)
{
    ::unsetenv("AERO_INGEST_BLOCK");
    EXPECT_EQ(resolve_ingest_block(0), kDefaultIngestBlock);
    EXPECT_EQ(resolve_ingest_block(77), 77u);
    ::setenv("AERO_INGEST_BLOCK", "512", 1);
    EXPECT_EQ(resolve_ingest_block(0), 512u);
    EXPECT_EQ(resolve_ingest_block(9), 9u); // explicit beats env
    ::setenv("AERO_INGEST_BLOCK", "garbage", 1);
    EXPECT_EQ(resolve_ingest_block(0), kDefaultIngestBlock);
    ::setenv("AERO_INGEST_BLOCK", "0", 1);
    EXPECT_EQ(resolve_ingest_block(0), kDefaultIngestBlock);
    ::unsetenv("AERO_INGEST_BLOCK");
}

} // namespace
} // namespace aero
