/**
 * @file
 * Tests for the workload generators: every generator's verdict guarantee
 * is checked against the oracle (and spot-checked against the online
 * engines), the 2PL generator is swept for soundness (serializable under
 * every schedule), and the benchmark models are verified to produce the
 * verdicts their table rows advertise.
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/bench_models.hpp"
#include "gen/patterns.hpp"
#include "gen/twopl.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "trace/metainfo.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

bool
aerodrome_verdict(const Trace& t)
{
    AeroDromeOpt a(t.num_threads(), t.num_vars(), t.num_locks());
    return run_checker(a, t).violation;
}

// --- Patterns ---------------------------------------------------------------

TEST(Patterns, RingViolatesForAllSizes)
{
    for (uint32_t k = 2; k <= 6; ++k) {
        Trace t = gen::make_ring(k);
        EXPECT_TRUE(validate(t).ok);
        EXPECT_FALSE(check_serializability(t).serializable);
        EXPECT_TRUE(aerodrome_verdict(t));
    }
}

TEST(Patterns, PipelineSerializable)
{
    Trace t = gen::make_pipeline(4, 100);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_TRUE(check_serializability(t).serializable);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, StarSerializableWithoutInjection)
{
    gen::StarOptions opts;
    opts.rounds = 100;
    Trace t = gen::make_star(opts);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, StarWithInjectionViolates)
{
    gen::StarOptions opts;
    opts.rounds = 100;
    opts.violation_at_end = true;
    Trace t = gen::make_star(opts);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_TRUE(aerodrome_verdict(t));
}

TEST(Patterns, IndependentSerializable)
{
    Trace t = gen::make_independent(6, 50, 8);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_TRUE(check_serializability(t).serializable);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, ReaderMeshSerializable)
{
    Trace t = gen::make_reader_mesh(5, 100);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_TRUE(check_serializability(t).serializable);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, NaiveSpecViolatesWithSharedTraffic)
{
    gen::NaiveSpecOptions opts;
    opts.threads = 4;
    opts.events_per_thread = 2000;
    Trace t = gen::make_naive_spec(opts);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_FALSE(check_serializability(t).serializable);
    EXPECT_TRUE(aerodrome_verdict(t));
}

TEST(Patterns, NaiveSpecSingleThreadSerializable)
{
    gen::NaiveSpecOptions opts;
    opts.threads = 1;
    opts.events_per_thread = 2000;
    Trace t = gen::make_naive_spec(opts);
    EXPECT_TRUE(check_serializability(t).serializable);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, PhilosophersSerializable)
{
    Trace t = gen::make_philosophers(5, 10);
    EXPECT_TRUE(validate(t).ok);
    EXPECT_TRUE(check_serializability(t).serializable);
    EXPECT_FALSE(aerodrome_verdict(t));
}

TEST(Patterns, ForkJoinTreeSerializable)
{
    for (uint32_t depth : {1u, 2u, 3u, 4u}) {
        gen::ForkJoinTreeOptions opts;
        opts.depth = depth;
        Trace t = gen::make_fork_join_tree(opts);
        EXPECT_TRUE(validate(t).ok) << "depth " << depth;
        EXPECT_TRUE(check_serializability(t).serializable)
            << "depth " << depth;
        EXPECT_FALSE(aerodrome_verdict(t)) << "depth " << depth;
    }
}

TEST(Patterns, ForkJoinTreeCombineRaceViolates)
{
    for (uint32_t depth : {2u, 3u, 4u}) {
        gen::ForkJoinTreeOptions opts;
        opts.depth = depth;
        opts.combine_before_join = true;
        Trace t = gen::make_fork_join_tree(opts);
        EXPECT_TRUE(validate(t).ok) << "depth " << depth;
        EXPECT_FALSE(check_serializability(t).serializable)
            << "depth " << depth;
        EXPECT_TRUE(aerodrome_verdict(t)) << "depth " << depth;
    }
}

TEST(Patterns, ForkJoinTreeThreadCount)
{
    gen::ForkJoinTreeOptions opts;
    opts.depth = 3;
    Trace t = gen::make_fork_join_tree(opts);
    EXPECT_EQ(t.num_threads(), 7u);
}

TEST(Patterns, AppendRingIntoExistingTrace)
{
    Trace t = gen::make_independent(3, 10, 4);
    size_t before = t.size();
    gen::append_ring(t, 2, 0, 1000);
    EXPECT_EQ(t.size(), before + 8);
    EXPECT_FALSE(check_serializability(t).serializable);
}

// --- Strict 2PL soundness sweep ----------------------------------------------

struct TwoPlParams {
    uint64_t seed;
    uint32_t threads;
    uint32_t vars;
    uint32_t locks;
    sim::Policy policy;
};

class TwoPlSweep : public ::testing::TestWithParam<TwoPlParams> {};

TEST_P(TwoPlSweep, AlwaysSerializable)
{
    const auto& p = GetParam();
    gen::TwoPlOptions opts;
    opts.seed = p.seed;
    opts.threads = p.threads;
    opts.shared_vars = p.vars;
    opts.locks = p.locks;
    opts.txns_per_thread = 30;
    sim::Program prog = gen::make_twopl_program(opts);

    sim::SchedulerOptions sched;
    sched.seed = p.seed + 1;
    sched.policy = p.policy;
    sim::SimResult sim = sim::run_program(prog, sched);
    ASSERT_FALSE(sim.deadlocked);

    ValidatorOptions vopts;
    vopts.require_closed_transactions = true;
    vopts.require_released_locks = true;
    EXPECT_TRUE(validate(sim.trace, vopts).ok);

    EXPECT_TRUE(check_serializability(sim.trace).serializable);
    EXPECT_FALSE(aerodrome_verdict(sim.trace));
    Velodrome v(sim.trace.num_threads(), sim.trace.num_vars(),
                sim.trace.num_locks());
    EXPECT_FALSE(run_checker(v, sim.trace).violation);
}

std::vector<TwoPlParams>
twopl_params()
{
    std::vector<TwoPlParams> out;
    uint64_t seed = 500;
    for (uint32_t threads : {2u, 4u, 7u}) {
        for (uint32_t vars : {4u, 16u}) {
            for (uint32_t locks : {1u, 3u}) {
                for (sim::Policy pol :
                     {sim::Policy::kRandom, sim::Policy::kSticky}) {
                    out.push_back({seed++, threads, vars, locks, pol});
                }
            }
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Shapes, TwoPlSweep,
                         ::testing::ValuesIn(twopl_params()));

// --- Benchmark models ----------------------------------------------------------

class Table1Models : public ::testing::TestWithParam<size_t> {};
class Table2Models : public ::testing::TestWithParam<size_t> {};

double
test_scale(const gen::BenchModel& m)
{
    // Down-scale for test time but keep at least ~30K events so that
    // probabilistic violations (naive models) still materialize.
    double s = 30000.0 / static_cast<double>(m.events);
    return std::min(1.0, std::max(0.02, s));
}

bool
velodrome_verdict(const Trace& t)
{
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    return run_checker(v, t).violation;
}

TEST_P(Table1Models, VerdictMatchesRow)
{
    const gen::BenchModel& m = gen::table1_models()[GetParam()];
    Trace t = gen::build_model_trace_scaled(m, test_scale(m));
    EXPECT_TRUE(validate(t).ok) << m.name;
    EXPECT_EQ(aerodrome_verdict(t), m.violation) << m.name;
    EXPECT_EQ(velodrome_verdict(t), m.violation) << m.name;
}

TEST_P(Table2Models, VerdictMatchesRow)
{
    const gen::BenchModel& m = gen::table2_models()[GetParam()];
    Trace t = gen::build_model_trace_scaled(m, test_scale(m));
    EXPECT_TRUE(validate(t).ok) << m.name;
    EXPECT_EQ(aerodrome_verdict(t), m.violation) << m.name;
    EXPECT_EQ(velodrome_verdict(t), m.violation) << m.name;
}

INSTANTIATE_TEST_SUITE_P(
    Rows, Table1Models,
    ::testing::Range<size_t>(0, gen::table1_models().size()));
INSTANTIATE_TEST_SUITE_P(
    Rows, Table2Models,
    ::testing::Range<size_t>(0, gen::table2_models().size()));

TEST(BenchModels, RowCountsMatchPaperTables)
{
    EXPECT_EQ(gen::table1_models().size(), 14u);
    EXPECT_EQ(gen::table2_models().size(), 7u);
}

TEST(BenchModels, ScalingChangesEventCount)
{
    const gen::BenchModel& m = gen::table1_models()[0];
    Trace small = gen::build_model_trace_scaled(m, 0.01);
    Trace big = gen::build_model_trace_scaled(m, 0.05);
    EXPECT_LT(small.size() * 2, big.size());
}

TEST(BenchModels, ThreadCountsRoughlyRespected)
{
    for (const auto& m : gen::table1_models()) {
        Trace t = gen::build_model_trace_scaled(m, 0.01);
        MetaInfo info = compute_metainfo(t);
        EXPECT_LE(info.threads, m.threads + 1) << m.name;
        EXPECT_GE(info.threads, std::min<uint32_t>(m.threads, 2)) << m.name;
    }
}

} // namespace
} // namespace aero
