/**
 * @file
 * The paper's worked examples, asserted end to end:
 *
 *  - rho1 (Figure 1): conflict serializable;
 *  - rho2 (Figure 2): violation, detected at t1's read of y; the exact
 *    vector clock evolution of Figure 5 is asserted;
 *  - rho3 (Figure 3): violation detectable only at t1's end event
 *    (Figure 6) — there is no CHB path returning to the same transaction;
 *  - rho4 (Figure 4): violation through a dependency introduced by future
 *    events (Figure 7);
 *
 * plus the prefix behavior of Examples 5 and 6 and the divergence between
 * Velodrome (detects the rho3 cycle at e6) and AeroDrome (at e7).
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "analysis/runner.hpp"
#include "oracle/serializability_oracle.hpp"
#include "trace/builder.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

Trace
rho1()
{
    TraceBuilder b;
    b.begin("t1");          // e1
    b.write("t1", "x");     // e2
    b.begin("t2");          // e3
    b.read("t2", "x");      // e4
    b.end("t2");            // e5
    b.begin("t3");          // e6
    b.write("t3", "z");     // e7
    b.end("t3");            // e8
    b.read("t1", "z");      // e9
    b.end("t1");            // e10
    return b.take();
}

Trace
rho2()
{
    TraceBuilder b;
    b.begin("t1");          // e1
    b.begin("t2");          // e2
    b.write("t1", "x");     // e3
    b.read("t2", "x");      // e4
    b.write("t2", "y");     // e5
    b.read("t1", "y");      // e6
    b.end("t2");            // e7
    b.end("t1");            // e8
    return b.take();
}

Trace
rho3()
{
    TraceBuilder b;
    b.begin("t1");          // e1
    b.begin("t2");          // e2
    b.write("t1", "x");     // e3
    b.write("t2", "y");     // e4
    b.read("t1", "y");      // e5
    b.read("t2", "x");      // e6
    b.end("t1");            // e7
    b.end("t2");            // e8
    return b.take();
}

Trace
rho4()
{
    TraceBuilder b;
    b.begin("t1");          // e1
    b.write("t1", "x");     // e2
    b.begin("t2");          // e3
    b.write("t2", "y");     // e4
    b.read("t2", "x");      // e5
    b.end("t2");            // e6
    b.begin("t3");          // e7
    b.read("t3", "y");      // e8
    b.write("t3", "z");     // e9
    b.end("t3");            // e10
    b.read("t1", "z");      // e11
    b.end("t1");            // e12
    return b.take();
}

template <typename Checker>
RunResult
run(const Trace& trace)
{
    Checker checker(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    return run_checker(checker, trace);
}

// --- Verdicts across all engines -----------------------------------------

template <typename T>
class PaperTraceAllEngines : public ::testing::Test {};

using Engines = ::testing::Types<AeroDromeBasic, AeroDromeReadOpt,
                                 AeroDromeOpt, Velodrome>;
TYPED_TEST_SUITE(PaperTraceAllEngines, Engines);

TYPED_TEST(PaperTraceAllEngines, Rho1Serializable)
{
    EXPECT_FALSE(run<TypeParam>(rho1()).violation);
}

TYPED_TEST(PaperTraceAllEngines, Rho2Violation)
{
    EXPECT_TRUE(run<TypeParam>(rho2()).violation);
}

TYPED_TEST(PaperTraceAllEngines, Rho3Violation)
{
    EXPECT_TRUE(run<TypeParam>(rho3()).violation);
}

TYPED_TEST(PaperTraceAllEngines, Rho4Violation)
{
    EXPECT_TRUE(run<TypeParam>(rho4()).violation);
}

// --- Oracle verdicts ------------------------------------------------------

TEST(PaperTracesOracle, Verdicts)
{
    EXPECT_TRUE(check_serializability(rho1()).serializable);
    for (const Trace& t : {rho2(), rho3(), rho4()}) {
        OracleResult r = check_serializability(t);
        EXPECT_FALSE(r.serializable);
        EXPECT_TRUE(r.detectable_with_one_open);
    }
}

TEST(PaperTracesOracle, Rho1GraphShape)
{
    OracleResult r = check_serializability(rho1());
    // Three transactions, no unary events.
    EXPECT_EQ(r.num_transactions, 3u);
    // T1 -> T2 (x) and T3 -> T1 (z), plus no duplicates.
    EXPECT_EQ(r.num_edges, 2u);
}

// --- Detection points -----------------------------------------------------

TEST(PaperTraces, Rho2DetectedAtReadOfY)
{
    // Figure 5: the violation fires at e6 = <t1, r(y)> (index 5).
    auto r = run<AeroDromeBasic>(rho2());
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.details->event_index, 5u);
    EXPECT_EQ(r.details->thread, 0u); // charged to t1
}

TEST(PaperTraces, Rho3DetectedAtEndEvent)
{
    // Figure 6: no CHB path returns to the same transaction, so the
    // violation is only discovered at e7 = <t1, end> (index 6).
    auto r = run<AeroDromeBasic>(rho3());
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.details->event_index, 6u);
    EXPECT_EQ(r.details->thread, 1u); // charged to t2's active transaction
}

TEST(PaperTraces, Rho3VelodromeDetectsEarlierThanAeroDrome)
{
    // Velodrome sees the cycle as soon as the second edge is inserted at
    // e6 = <t2, r(x)> (index 5); AeroDrome needs the end event.
    auto rv = run<Velodrome>(rho3());
    ASSERT_TRUE(rv.violation);
    EXPECT_EQ(rv.details->event_index, 5u);
}

TEST(PaperTraces, Rho4DetectedAtReadOfZ)
{
    // Figure 7: the violation fires at e11 = <t1, r(z)> (index 10).
    auto r = run<AeroDromeBasic>(rho4());
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.details->event_index, 10u);
    EXPECT_EQ(r.details->thread, 0u);
}

TEST(PaperTraces, Example5PrefixSigma6HasNoAeroDromeViolation)
{
    // Example 5: in the prefix of rho3 up to e6 the conditions of
    // Theorem 2 are not yet satisfied; AeroDrome reports nothing.
    Trace full = rho3();
    Trace prefix;
    for (size_t i = 0; i < 6; ++i)
        prefix.push(full[i]);
    EXPECT_FALSE(run<AeroDromeBasic>(prefix).violation);
    // The oracle agrees: a cycle exists (Definition 1) but every witness
    // has two open transactions, which AeroDrome deliberately skips.
    OracleResult o = check_serializability(prefix);
    EXPECT_FALSE(o.serializable);
    EXPECT_FALSE(o.detectable_with_one_open);
}

// --- Exact clock evolution (Figures 5-7) ----------------------------------

TEST(PaperClockValues, Figure5Rho2)
{
    Trace t = rho2();
    AeroDromeBasic a(t.num_threads(), t.num_vars(), t.num_locks());
    uint32_t x, y;
    ASSERT_TRUE(t.vars().lookup("x", x));
    ASSERT_TRUE(t.vars().lookup("y", y));

    ASSERT_FALSE(a.process(t[0], 0)); // e1: t1 begin
    EXPECT_EQ(a.clock_of(0), (VectorClock{2, 0}));
    ASSERT_FALSE(a.process(t[1], 1)); // e2: t2 begin
    EXPECT_EQ(a.clock_of(1), (VectorClock{0, 2}));
    ASSERT_FALSE(a.process(t[2], 2)); // e3: w(x)
    EXPECT_EQ(a.write_clock_of(x), (VectorClock{2, 0}));
    ASSERT_FALSE(a.process(t[3], 3)); // e4: r(x)
    EXPECT_EQ(a.clock_of(1), (VectorClock{2, 2}));
    ASSERT_FALSE(a.process(t[4], 4)); // e5: w(y)
    EXPECT_EQ(a.write_clock_of(y), (VectorClock{2, 2}));
    // e6: r(y) declares the violation (C_t1^b sqsubseteq W_y).
    EXPECT_TRUE(a.process(t[5], 5));
    EXPECT_TRUE(a.begin_clock_of(0).leq(a.write_clock_of(y)));
}

TEST(PaperClockValues, Figure6Rho3)
{
    Trace t = rho3();
    AeroDromeBasic a(t.num_threads(), t.num_vars(), t.num_locks());
    uint32_t x, y;
    ASSERT_TRUE(t.vars().lookup("x", x));
    ASSERT_TRUE(t.vars().lookup("y", y));

    for (size_t i = 0; i < 4; ++i)
        ASSERT_FALSE(a.process(t[i], i));
    EXPECT_EQ(a.write_clock_of(x), (VectorClock{2, 0}));
    EXPECT_EQ(a.write_clock_of(y), (VectorClock{0, 2}));
    ASSERT_FALSE(a.process(t[4], 4)); // e5: t1 r(y)
    EXPECT_EQ(a.clock_of(0), (VectorClock{2, 2}));
    ASSERT_FALSE(a.process(t[5], 5)); // e6: t2 r(x)
    EXPECT_EQ(a.clock_of(1), (VectorClock{2, 2}));
    // e7: t1 end -> violation (C_t2^b sqsubseteq C_t1).
    EXPECT_TRUE(a.process(t[6], 6));
    EXPECT_TRUE(a.begin_clock_of(1).leq(a.clock_of(0)));
}

TEST(PaperClockValues, Figure7Rho4)
{
    Trace t = rho4();
    AeroDromeBasic a(t.num_threads(), t.num_vars(), t.num_locks());
    uint32_t x, y, z;
    ASSERT_TRUE(t.vars().lookup("x", x));
    ASSERT_TRUE(t.vars().lookup("y", y));
    ASSERT_TRUE(t.vars().lookup("z", z));

    ASSERT_FALSE(a.process(t[0], 0)); // e1
    EXPECT_EQ(a.clock_of(0), (VectorClock{2, 0, 0}));
    ASSERT_FALSE(a.process(t[1], 1)); // e2: w(x)
    EXPECT_EQ(a.write_clock_of(x), (VectorClock{2, 0, 0}));
    ASSERT_FALSE(a.process(t[2], 2)); // e3
    EXPECT_EQ(a.clock_of(1), (VectorClock{0, 2, 0}));
    ASSERT_FALSE(a.process(t[3], 3)); // e4: w(y)
    EXPECT_EQ(a.write_clock_of(y), (VectorClock{0, 2, 0}));
    ASSERT_FALSE(a.process(t[4], 4)); // e5: r(x)
    EXPECT_EQ(a.clock_of(1), (VectorClock{2, 2, 0}));
    ASSERT_FALSE(a.process(t[5], 5)); // e6: t2 end
    // W_y is ordered after C_t2^b, so it absorbs C_t2 (Figure 7 shows
    // W_y = <2,2,0> after e6).
    EXPECT_EQ(a.write_clock_of(y), (VectorClock{2, 2, 0}));
    ASSERT_FALSE(a.process(t[6], 6)); // e7
    EXPECT_EQ(a.clock_of(2), (VectorClock{0, 0, 2}));
    ASSERT_FALSE(a.process(t[7], 7)); // e8: r(y)
    EXPECT_EQ(a.clock_of(2), (VectorClock{2, 2, 2}));
    ASSERT_FALSE(a.process(t[8], 8)); // e9: w(z)
    EXPECT_EQ(a.write_clock_of(z), (VectorClock{2, 2, 2}));
    ASSERT_FALSE(a.process(t[9], 9)); // e10: t3 end
    // e11: t1 r(z) -> violation (C_t1^b sqsubseteq W_z).
    EXPECT_TRUE(a.process(t[10], 10));
}

// --- Example 6 / prefix sigma11 of rho4 -----------------------------------

TEST(PaperTraces, Rho4PrefixSigma10StillSerializable)
{
    // The cycle of rho4 closes only with e11 itself: T3 -> T1 needs t1's
    // read of z. The prefix sigma10 is still conflict serializable, and
    // AeroDrome correctly reports exactly at e11 (Example 6).
    Trace full = rho4();
    Trace prefix;
    for (size_t i = 0; i < 10; ++i)
        prefix.push(full[i]);
    EXPECT_FALSE(run<AeroDromeBasic>(prefix).violation);
    EXPECT_TRUE(check_serializability(prefix).serializable);
}

} // namespace
} // namespace aero
