/**
 * @file
 * Unit tests for AeroDrome behaviors shared by all three variants, plus
 * variant-specific checks (Section 4.1.4 nested/unary handling, lock and
 * fork/join conflicts, Theorem 3's open-transaction caveat, and the
 * optimized engine's lazy/GC statistics).
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "analysis/runner.hpp"
#include "trace/builder.hpp"

namespace aero {
namespace {

template <typename Checker>
RunResult
run(const Trace& trace)
{
    Checker checker(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    return run_checker(checker, trace);
}

template <typename T>
class AeroDromeVariants : public ::testing::Test {};

using Variants =
    ::testing::Types<AeroDromeBasic, AeroDromeReadOpt, AeroDromeOpt>;
TYPED_TEST_SUITE(AeroDromeVariants, Variants);

// --- Lock-mediated cycles ---------------------------------------------------

TYPED_TEST(AeroDromeVariants, LockCycleViolation)
{
    // T1 and T2 both bracket two critical sections; interleaving them
    // creates rel->acq edges in both directions.
    TraceBuilder b;
    b.begin("t1").acquire("t1", "m").write("t1", "x").release("t1", "m");
    b.begin("t2").acquire("t2", "m").write("t2", "x").release("t2", "m");
    b.acquire("t1", "m").write("t1", "x").release("t1", "m").end("t1");
    b.end("t2");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, SequentialLockUseIsSerializable)
{
    TraceBuilder b;
    b.begin("t1").acquire("t1", "m").write("t1", "x");
    b.release("t1", "m").end("t1");
    b.begin("t2").acquire("t2", "m").read("t2", "x");
    b.release("t2", "m").end("t2");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, SameThreadReacquireSkipsCheck)
{
    // lastRelThr short-circuit: a thread re-acquiring its own lock never
    // self-reports.
    TraceBuilder b;
    b.begin("t1").acquire("t1", "m").release("t1", "m");
    b.acquire("t1", "m").release("t1", "m").end("t1");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

// --- Fork / join -------------------------------------------------------------

TYPED_TEST(AeroDromeVariants, ForkOrdersChildAfterParent)
{
    // Parent writes x inside a transaction, forks, child reads x, parent
    // transaction still open when child finishes: serial order exists
    // (parent-then-child), no violation.
    TraceBuilder b;
    b.write("t0", "x");
    b.fork("t0", "t1");
    b.begin("t1").read("t1", "x").end("t1");
    b.join("t0", "t1");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, ForkReadBackCycleViolation)
{
    // Parent txn forks child, child writes x, parent reads x back inside
    // the same txn: fork edge T_parent -> T_child plus data edge
    // T_child -> T_parent closes a cycle.
    TraceBuilder b;
    b.begin("t0");
    b.fork("t0", "t1");
    b.begin("t1").write("t1", "x").end("t1");
    b.read("t0", "x");
    b.end("t0");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, JoinInsideTransactionCycleViolation)
{
    // Child reads parent's in-transaction write, then the parent joins the
    // child inside the same transaction: T_p -> T_c (data) and
    // T_c -> T_p (join).
    TraceBuilder b;
    b.fork("t0", "t1");
    b.begin("t0").write("t0", "x");
    b.begin("t1").read("t1", "x").end("t1");
    b.join("t0", "t1");
    b.end("t0");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, JoinAfterTransactionIsFine)
{
    TraceBuilder b;
    b.fork("t0", "t1");
    b.begin("t0").write("t0", "x").end("t0");
    b.begin("t1").read("t1", "x").end("t1");
    b.join("t0", "t1");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

// --- Nested and unary transactions (Section 4.1.4) ---------------------------

TYPED_TEST(AeroDromeVariants, NestedBlocksUseOutermostOnly)
{
    // Same shape as rho2 but every access is wrapped in an extra inner
    // block; the verdict must be identical (violation).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.begin("t1").write("t1", "x").end("t1");
    b.begin("t2").read("t2", "x").end("t2");
    b.begin("t2").write("t2", "y").end("t2");
    b.begin("t1").read("t1", "y").end("t1");
    b.end("t2").end("t1");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

TEST(AeroDromeExactVariants, InnerEndDoesNotCompleteTransaction)
{
    // A cycle between two still-open outer transactions must not be
    // reported just because an *inner* block closed: Algorithm 1 (and its
    // exact reformulation, Algorithm 2) only report witnesses with at
    // most one open transaction (Theorem 3).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.begin("t1").read("t1", "y").end("t1"); // inner block of T1
    b.read("t2", "x");
    EXPECT_FALSE(run<AeroDromeBasic>(b.trace()).violation);
    EXPECT_FALSE(run<AeroDromeReadOpt>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, UnaryEventsNeverReportThemselves)
{
    // t2's accesses are unary; a would-be cycle through them only exists
    // with transaction granularity on t1's side and is real: t1's txn
    // writes x, t2 reads x (unary), t2 writes y (unary), t1 reads y.
    // Witness: T1 -> U1 -> U2 -> T1 with U1, U2 complete: must report,
    // and the report happens at an event of t1 (the non-unary side).
    TraceBuilder b;
    b.begin("t1").write("t1", "x");
    b.read("t2", "x");
    b.write("t2", "y");
    b.read("t1", "y");
    b.end("t1");
    auto r = run<TypeParam>(b.trace());
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.details->thread, 0u);
}

TYPED_TEST(AeroDromeVariants, PurelyUnaryTraceIsSerializable)
{
    // Without transactions there is nothing to violate: unary
    // transactions are single events and CHB is consistent with trace
    // order, so no cycle can form.
    TraceBuilder b;
    for (int i = 0; i < 10; ++i) {
        b.write("t1", "x").read("t2", "x");
        b.write("t2", "y").read("t1", "y");
    }
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

// --- Theorem 3: open-transaction caveat --------------------------------------

TEST(AeroDromeExactVariants, TwoOpenTransactionsNotReported)
{
    // Cycle between two transactions that never complete: outside
    // Algorithm 1's contract (Theorem 3), not reported.
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    EXPECT_FALSE(run<AeroDromeBasic>(b.trace()).violation);
    EXPECT_FALSE(run<AeroDromeReadOpt>(b.trace()).violation);
}

TEST(AeroDromeOptimized, LiveClockProxyMayReportOpenCyclesEarly)
{
    // Algorithm 3's lazy-write optimization checks conflicts against the
    // writer's *live* clock while the writing transaction is still open.
    // On a genuine cycle between two open transactions, that live clock
    // already carries the other transaction's begin, so the optimized
    // engine reports the (real, Definition 1) violation that Algorithm 1
    // would only surface at the first end event. This is sound — only
    // true <Txn paths flow through the clocks — and on traces whose
    // transactions all complete the verdicts coincide (see the
    // differential suite).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    EXPECT_TRUE(run<AeroDromeOpt>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, OneOpenTransactionIsReported)
{
    // Same cycle, but t2's transaction completes: now a witness with only
    // one open transaction exists and must be reported (at t2's end).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    b.end("t2");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

// --- Write-write conflicts ----------------------------------------------------

TYPED_TEST(AeroDromeVariants, WriteWriteCycleViolation)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "x"); // T1 -> T2
    b.write("t2", "y").write("t1", "y"); // T2 -> T1
    b.end("t1").end("t2");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, ReadSharingIsSerializable)
{
    // Reads do not conflict with reads: many concurrent readers of the
    // same variable are fine.
    TraceBuilder b;
    b.begin("t1").begin("t2").begin("t3");
    for (int i = 0; i < 5; ++i)
        b.read("t1", "x").read("t2", "x").read("t3", "x");
    b.end("t1").end("t2").end("t3");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

TYPED_TEST(AeroDromeVariants, SameThreadWriteReadNoSelfViolation)
{
    // lastWThr short-circuit: a thread reading its own write never
    // self-reports.
    TraceBuilder b;
    b.begin("t1");
    for (int i = 0; i < 4; ++i)
        b.write("t1", "x").read("t1", "x");
    b.end("t1");
    EXPECT_FALSE(run<TypeParam>(b.trace()).violation);
}

// --- Violation evidence -------------------------------------------------------

TYPED_TEST(AeroDromeVariants, ViolationDetailsPopulated)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    auto r = run<TypeParam>(b.trace());
    ASSERT_TRUE(r.violation);
    ASSERT_TRUE(r.details.has_value());
    EXPECT_FALSE(r.details->reason.empty());
    EXPECT_EQ(r.details->event_index, 5u);
    EXPECT_LT(r.details->thread, 2u);
}

// --- Optimized engine specifics -----------------------------------------------

TEST(AeroDromeOptimized, LazyUpdatesAreUsed)
{
    TraceBuilder b;
    b.begin("t1");
    for (int i = 0; i < 50; ++i)
        b.read("t1", "x").write("t1", "y");
    b.end("t1");
    Trace t = b.take();
    AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
    auto r = run_checker(opt, t);
    EXPECT_FALSE(r.violation);
    EXPECT_GE(opt.opt_stats().lazy_reads, 50u);
    EXPECT_GE(opt.opt_stats().lazy_writes, 50u);
}

TEST(AeroDromeOptimized, GcSkipsIsolatedTransactions)
{
    // Thread-private transactions receive no foreign orderings, so every
    // end event takes the garbage-collected fast path.
    TraceBuilder b;
    for (int i = 0; i < 20; ++i) {
        b.begin("t1").write("t1", "a").end("t1");
        b.begin("t2").write("t2", "b").end("t2");
    }
    Trace t = b.take();
    AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
    auto r = run_checker(opt, t);
    EXPECT_FALSE(r.violation);
    EXPECT_EQ(opt.opt_stats().gc_skipped_ends, 40u);
    EXPECT_EQ(opt.opt_stats().propagated_ends, 0u);
}

TEST(AeroDromeOptimized, GcDropsOrderingsOfEdgeFreeTransactions)
{
    // t1's transaction has no incoming edges, so its end event takes the
    // GC fast path and deliberately *drops* its write's ordering (it can
    // never be part of a cycle — Velodrome's GC rule). t2 then receives
    // nothing and is collected as well.
    TraceBuilder b;
    b.begin("t1").write("t1", "x").end("t1");
    b.begin("t2").read("t2", "x").end("t2");
    Trace t = b.take();
    AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
    auto r = run_checker(opt, t);
    EXPECT_FALSE(r.violation);
    EXPECT_EQ(opt.opt_stats().gc_skipped_ends, 2u);
    EXPECT_EQ(opt.opt_stats().propagated_ends, 0u);
}

TEST(AeroDromeOptimized, ConflictingTransactionsPropagate)
{
    // A unary seed write gives t1's transaction an incoming edge, so its
    // end must run the full propagation; t2 then receives t1's ordering
    // through W_x and must propagate too.
    TraceBuilder b;
    b.write("t0", "seed");
    b.begin("t1").read("t1", "seed").write("t1", "x").end("t1");
    b.begin("t2").read("t2", "x").end("t2");
    Trace t = b.take();
    AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
    auto r = run_checker(opt, t);
    EXPECT_FALSE(r.violation);
    EXPECT_EQ(opt.opt_stats().gc_skipped_ends, 0u);
    EXPECT_EQ(opt.opt_stats().propagated_ends, 2u);
}

TEST(AeroDromeOptimized, ForkParentAliveForcesPropagation)
{
    // The child's transaction receives nothing through clocks, but its
    // forking transaction is still alive: hasIncomingEdge must hold.
    TraceBuilder b;
    b.begin("t0");
    b.fork("t0", "t1");
    b.begin("t1").write("t1", "c").end("t1");
    b.end("t0");
    Trace t = b.take();
    AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
    auto r = run_checker(opt, t);
    EXPECT_FALSE(r.violation);
    // t1's end propagates (parent alive); t0's end is collected.
    EXPECT_EQ(opt.opt_stats().propagated_ends, 1u);
    EXPECT_EQ(opt.opt_stats().gc_skipped_ends, 1u);
}

TEST(AeroDromeStats, ComparisonsAndJoinsCounted)
{
    TraceBuilder b;
    b.begin("t1").write("t1", "x").end("t1");
    b.begin("t2").read("t2", "x").end("t2");
    Trace t = b.take();
    AeroDromeBasic basic(t.num_threads(), t.num_vars(), t.num_locks());
    run_checker(basic, t);
    EXPECT_GT(basic.stats().comparisons, 0u);
    EXPECT_GT(basic.stats().joins, 0u);
}

// --- GC transit-ancestry regression --------------------------------------------

TYPED_TEST(AeroDromeVariants, GcMustNotSeverTransitChains)
{
    // Regression for a completeness gap in Algorithm 3 as literally
    // transcribed from the paper. Cycle: A -> P (t0's open transaction
    // feeds t1's first transaction), P -> T (program order), T -> R
    // (t2 reads T's write), R -> A (t0 reads R's write inside A).
    //
    // T receives nothing *during* its lifetime, so the paper's
    // hasIncomingEdge check (C_t^b[0/t] != C_t[0/t], parent alive) lets
    // the GC fast path drop T's lazy write of x — severing the only
    // channel by which R can learn that A precedes it, and silencing the
    // violation even though every witness transaction except A
    // completes. The implementation adds a transit-ancestry guard
    // (propagate when a still-active foreign begin is visible in C_t^b);
    // this test pins the fix for every variant.
    TraceBuilder b;
    b.begin("t0").write("t0", "a");              // A (stays open)
    b.begin("t1").read("t1", "a").end("t1");     // P: A -> P
    b.begin("t1").write("t1", "x").end("t1");    // T: isolated-looking
    b.begin("t2").read("t2", "x");               // R: T -> R
    b.write("t2", "y").end("t2");
    b.read("t0", "y");                           // R -> A: cycle closes
    b.end("t0");
    EXPECT_TRUE(run<TypeParam>(b.trace()).violation);
}

// --- Streaming / dynamic dimensions -------------------------------------------

TYPED_TEST(AeroDromeVariants, DynamicThreadAndVarGrowth)
{
    // Construct the checker with zero dimensions; everything must grow on
    // demand (streaming mode where the trace header is unknown).
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    Trace t = b.take();
    TypeParam checker(0, 0, 0);
    auto r = run_checker(checker, t);
    EXPECT_TRUE(r.violation);
}

} // namespace
} // namespace aero
