/**
 * @file
 * Differential testing: every checker must agree with the offline oracle
 * on randomly generated, well-formed programs under randomized schedules.
 *
 * Ground truth is the oracle's Definition-1 decision. Because the random
 * programs close every transaction they open, every witness consists of
 * completed transactions, so Theorem 3 guarantees AeroDrome reports a
 * violation exactly when the oracle finds one; Velodrome likewise. The
 * basic and read-optimized variants are additionally required to fire at
 * the *same event*, since Algorithm 2 is an exact reformulation of
 * Algorithm 1.
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

template <typename Checker>
RunResult
run(const Trace& trace)
{
    Checker checker(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    return run_checker(checker, trace);
}

struct DiffParams {
    uint64_t seed;
    uint32_t threads;
    uint32_t vars;
    uint32_t locks;
    double txn_probability;
    sim::Policy policy;
};

void
PrintTo(const DiffParams& p, std::ostream* os)
{
    *os << "seed=" << p.seed << " threads=" << p.threads
        << " vars=" << p.vars << " locks=" << p.locks
        << " txnp=" << p.txn_probability
        << " policy=" << static_cast<int>(p.policy);
}

class DifferentialTest : public ::testing::TestWithParam<DiffParams> {};

Trace
generate(const DiffParams& p)
{
    gen::RandomProgramOptions opts;
    opts.seed = p.seed;
    opts.threads = p.threads;
    opts.shared_vars = p.vars;
    opts.locks = p.locks;
    opts.txn_probability = p.txn_probability;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);

    sim::SchedulerOptions sched;
    sched.seed = p.seed * 7919 + 13;
    sched.policy = p.policy;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

TEST_P(DifferentialTest, SimulatedTraceIsWellFormed)
{
    Trace trace = generate(GetParam());
    ValidatorOptions vopts;
    vopts.require_closed_transactions = true;
    vopts.require_released_locks = true;
    auto v = validate(trace, vopts);
    EXPECT_TRUE(v.ok) << v.message << " at event " << v.event_index;
}

TEST_P(DifferentialTest, AllEnginesAgreeWithOracle)
{
    Trace trace = generate(GetParam());
    bool expected = !check_serializability(trace).serializable;

    auto basic = run<AeroDromeBasic>(trace);
    auto readopt = run<AeroDromeReadOpt>(trace);
    auto opt = run<AeroDromeOpt>(trace);
    auto velo = run<Velodrome>(trace);

    EXPECT_EQ(basic.violation, expected) << "AeroDrome-basic vs oracle";
    EXPECT_EQ(readopt.violation, expected) << "AeroDrome-readopt vs oracle";
    EXPECT_EQ(opt.violation, expected) << "AeroDrome-opt vs oracle";
    EXPECT_EQ(velo.violation, expected) << "Velodrome vs oracle";

    if (expected) {
        // Algorithm 2 is an exact reformulation of Algorithm 1: same
        // detection point.
        EXPECT_EQ(basic.details->event_index, readopt.details->event_index);
        // Velodrome can only detect at or before AeroDrome's point (it
        // finds cycles as soon as the closing edge appears; AeroDrome may
        // need a later end event per Theorem 3).
        EXPECT_LE(velo.details->event_index, basic.details->event_index);
    }
}

std::vector<DiffParams>
make_params()
{
    std::vector<DiffParams> out;
    uint64_t seed = 1;
    for (uint32_t threads : {2u, 3u, 5u, 8u}) {
        for (uint32_t vars : {2u, 6u, 24u}) {
            for (double txnp : {0.25, 0.7, 1.0}) {
                for (sim::Policy pol :
                     {sim::Policy::kRandom, sim::Policy::kSticky,
                      sim::Policy::kRoundRobin}) {
                    out.push_back({seed++, threads, vars,
                                   1 + threads / 2, txnp, pol});
                }
            }
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::ValuesIn(make_params()));

/** Deeper sweep on one shape with many seeds. */
class DifferentialSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSeedSweep, AllEnginesAgreeWithOracle)
{
    DiffParams p{GetParam(), 4, 5, 2, 0.8, sim::Policy::kRandom};
    Trace trace = generate(p);
    bool expected = !check_serializability(trace).serializable;
    EXPECT_EQ(run<AeroDromeBasic>(trace).violation, expected);
    EXPECT_EQ(run<AeroDromeReadOpt>(trace).violation, expected);
    EXPECT_EQ(run<AeroDromeOpt>(trace).violation, expected);
    EXPECT_EQ(run<Velodrome>(trace).violation, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedSweep,
                         ::testing::Range<uint64_t>(1000, 1100));

/**
 * Event-for-event agreement of all four AeroDrome engines after the
 * ClockBank migration, processing each fuzz trace in lockstep:
 *
 *  - readopt must return exactly what basic returns at *every* event
 *    (Algorithm 2 is an exact reformulation of Algorithm 1);
 *  - tuned must return exactly what opt returns at every event (the
 *    fast paths are semantics-preserving by construction);
 *  - opt may fire at-or-before basic (the lazy-write live-clock proxy
 *    only ever *adds* orderings the end event would have propagated),
 *    and the final verdicts of all four must coincide.
 */
class EngineLockstep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineLockstep, FourEnginesAgreeEventForEvent)
{
    DiffParams p{GetParam(), 4, 5, 2, 0.8, sim::Policy::kRandom};
    Trace trace = generate(p);

    AeroDromeBasic basic(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());
    AeroDromeReadOpt readopt(trace.num_threads(), trace.num_vars(),
                             trace.num_locks());
    AeroDromeOpt opt(trace.num_threads(), trace.num_vars(),
                     trace.num_locks());
    AeroDromeTuned tuned(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());

    const auto& events = trace.events();
    bool basic_fired = false, opt_fired = false;
    for (size_t i = 0; i < events.size(); ++i) {
        if (!basic_fired) {
            bool b = basic.process(events[i], i);
            bool r = readopt.process(events[i], i);
            ASSERT_EQ(b, r) << "basic/readopt diverged at event " << i;
            basic_fired = b;
        }
        if (!opt_fired) {
            bool o = opt.process(events[i], i);
            bool u = tuned.process(events[i], i);
            ASSERT_EQ(o, u) << "opt/tuned diverged at event " << i;
            opt_fired = o;
        }
    }
    ASSERT_EQ(basic_fired, opt_fired) << "final verdicts diverged";
    if (basic_fired) {
        EXPECT_LE(opt.violation()->event_index,
                  basic.violation()->event_index)
            << "lazy engine fired after the eager one";
        EXPECT_EQ(basic.violation()->event_index,
                  readopt.violation()->event_index);
        EXPECT_EQ(opt.violation()->event_index,
                  tuned.violation()->event_index);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLockstep,
                         ::testing::Range<uint64_t>(1, 200));

} // namespace
} // namespace aero
