/**
 * @file
 * Differential testing: every checker must agree with the offline oracle
 * on randomly generated, well-formed programs under randomized schedules.
 *
 * Ground truth is the oracle's Definition-1 decision. Because the random
 * programs close every transaction they open, every witness consists of
 * completed transactions, so Theorem 3 guarantees AeroDrome reports a
 * violation exactly when the oracle finds one; Velodrome likewise. The
 * basic and read-optimized variants are additionally required to fire at
 * the *same event*, since Algorithm 2 is an exact reformulation of
 * Algorithm 1.
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "gen/random_program.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "trace/builder.hpp"
#include "trace/validator.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

template <typename Checker>
RunResult
run(const Trace& trace)
{
    Checker checker(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    return run_checker(checker, trace);
}

struct DiffParams {
    uint64_t seed;
    uint32_t threads;
    uint32_t vars;
    uint32_t locks;
    double txn_probability;
    sim::Policy policy;
};

void
PrintTo(const DiffParams& p, std::ostream* os)
{
    *os << "seed=" << p.seed << " threads=" << p.threads
        << " vars=" << p.vars << " locks=" << p.locks
        << " txnp=" << p.txn_probability
        << " policy=" << static_cast<int>(p.policy);
}

class DifferentialTest : public ::testing::TestWithParam<DiffParams> {};

Trace
generate(const DiffParams& p)
{
    gen::RandomProgramOptions opts;
    opts.seed = p.seed;
    opts.threads = p.threads;
    opts.shared_vars = p.vars;
    opts.locks = p.locks;
    opts.txn_probability = p.txn_probability;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);

    sim::SchedulerOptions sched;
    sched.seed = p.seed * 7919 + 13;
    sched.policy = p.policy;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

TEST_P(DifferentialTest, SimulatedTraceIsWellFormed)
{
    Trace trace = generate(GetParam());
    ValidatorOptions vopts;
    vopts.require_closed_transactions = true;
    vopts.require_released_locks = true;
    auto v = validate(trace, vopts);
    EXPECT_TRUE(v.ok) << v.message << " at event " << v.event_index;
}

TEST_P(DifferentialTest, AllEnginesAgreeWithOracle)
{
    Trace trace = generate(GetParam());
    bool expected = !check_serializability(trace).serializable;

    auto basic = run<AeroDromeBasic>(trace);
    auto readopt = run<AeroDromeReadOpt>(trace);
    auto opt = run<AeroDromeOpt>(trace);
    auto velo = run<Velodrome>(trace);

    EXPECT_EQ(basic.violation, expected) << "AeroDrome-basic vs oracle";
    EXPECT_EQ(readopt.violation, expected) << "AeroDrome-readopt vs oracle";
    EXPECT_EQ(opt.violation, expected) << "AeroDrome-opt vs oracle";
    EXPECT_EQ(velo.violation, expected) << "Velodrome vs oracle";

    if (expected) {
        // Algorithm 2 is an exact reformulation of Algorithm 1: same
        // detection point.
        EXPECT_EQ(basic.details->event_index, readopt.details->event_index);
        // Velodrome can only detect at or before AeroDrome's point (it
        // finds cycles as soon as the closing edge appears; AeroDrome may
        // need a later end event per Theorem 3).
        EXPECT_LE(velo.details->event_index, basic.details->event_index);
    }
}

std::vector<DiffParams>
make_params()
{
    std::vector<DiffParams> out;
    uint64_t seed = 1;
    for (uint32_t threads : {2u, 3u, 5u, 8u}) {
        for (uint32_t vars : {2u, 6u, 24u}) {
            for (double txnp : {0.25, 0.7, 1.0}) {
                for (sim::Policy pol :
                     {sim::Policy::kRandom, sim::Policy::kSticky,
                      sim::Policy::kRoundRobin}) {
                    out.push_back({seed++, threads, vars,
                                   1 + threads / 2, txnp, pol});
                }
            }
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::ValuesIn(make_params()));

/** Deeper sweep on one shape with many seeds. */
class DifferentialSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSeedSweep, AllEnginesAgreeWithOracle)
{
    DiffParams p{GetParam(), 4, 5, 2, 0.8, sim::Policy::kRandom};
    Trace trace = generate(p);
    bool expected = !check_serializability(trace).serializable;
    EXPECT_EQ(run<AeroDromeBasic>(trace).violation, expected);
    EXPECT_EQ(run<AeroDromeReadOpt>(trace).violation, expected);
    EXPECT_EQ(run<AeroDromeOpt>(trace).violation, expected);
    EXPECT_EQ(run<Velodrome>(trace).violation, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedSweep,
                         ::testing::Range<uint64_t>(1000, 1100));

/**
 * Event-for-event agreement of all four AeroDrome engines after the
 * ClockBank migration, processing each fuzz trace in lockstep:
 *
 *  - readopt must return exactly what basic returns at *every* event
 *    (Algorithm 2 is an exact reformulation of Algorithm 1);
 *  - tuned must return exactly what opt returns at every event (the
 *    fast paths are semantics-preserving by construction);
 *  - opt may fire at-or-before basic (the lazy-write live-clock proxy
 *    only ever *adds* orderings the end event would have propagated),
 *    and the final verdicts of all four must coincide.
 */
class EngineLockstep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineLockstep, FourEnginesAgreeEventForEvent)
{
    DiffParams p{GetParam(), 4, 5, 2, 0.8, sim::Policy::kRandom};
    Trace trace = generate(p);

    AeroDromeBasic basic(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());
    AeroDromeReadOpt readopt(trace.num_threads(), trace.num_vars(),
                             trace.num_locks());
    AeroDromeOpt opt(trace.num_threads(), trace.num_vars(),
                     trace.num_locks());
    AeroDromeTuned tuned(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());

    const auto& events = trace.events();
    bool basic_fired = false, opt_fired = false;
    for (size_t i = 0; i < events.size(); ++i) {
        if (!basic_fired) {
            bool b = basic.process(events[i], i);
            bool r = readopt.process(events[i], i);
            ASSERT_EQ(b, r) << "basic/readopt diverged at event " << i;
            basic_fired = b;
        }
        if (!opt_fired) {
            bool o = opt.process(events[i], i);
            bool u = tuned.process(events[i], i);
            ASSERT_EQ(o, u) << "opt/tuned diverged at event " << i;
            opt_fired = o;
        }
    }
    ASSERT_EQ(basic_fired, opt_fired) << "final verdicts diverged";
    if (basic_fired) {
        EXPECT_LE(opt.violation()->event_index,
                  basic.violation()->event_index)
            << "lazy engine fired after the eager one";
        EXPECT_EQ(basic.violation()->event_index,
                  readopt.violation()->event_index);
        EXPECT_EQ(opt.violation()->event_index,
                  tuned.violation()->event_index);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLockstep,
                         ::testing::Range<uint64_t>(1, 200));

/**
 * Epoch-representation parity: every engine with the epoch-adaptive
 * storage ON must agree *event for event* with itself running epochs OFF
 * (the always-inflated full-vector baseline). The adaptive layer is a
 * representation change, not an approximation, so any divergence — even
 * in the detection point — is a bug in the epoch fast paths.
 */
template <typename Engine>
void
expect_epoch_parity(const Trace& trace)
{
    Engine on(trace.num_threads(), trace.num_vars(), trace.num_locks());
    Engine off(trace.num_threads(), trace.num_vars(), trace.num_locks());
    on.set_epochs(true);
    off.set_epochs(false);

    const auto& events = trace.events();
    for (size_t i = 0; i < events.size(); ++i) {
        bool a = on.process(events[i], i);
        bool b = off.process(events[i], i);
        ASSERT_EQ(a, b) << "epochs on/off diverged at event " << i;
        if (a)
            break;
    }
    ASSERT_EQ(on.has_violation(), off.has_violation());
    if (on.has_violation()) {
        EXPECT_EQ(on.violation()->event_index,
                  off.violation()->event_index);
        EXPECT_EQ(on.violation()->thread, off.violation()->thread);
    }
    // OFF must never have used the epoch representation.
    EXPECT_EQ(off.epoch_stats().epoch_fast, 0u);
}

class EpochParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochParity, AllEnginesAgreeWithEpochsOff)
{
    // High-contention shape: few variables and locks across several
    // threads force inflation of most entries, exercising the slow paths
    // and the promotion boundary.
    DiffParams p{GetParam(), 4, 3, 2, 0.8, sim::Policy::kRandom};
    Trace trace = generate(p);
    expect_epoch_parity<AeroDromeBasic>(trace);
    expect_epoch_parity<AeroDromeReadOpt>(trace);
    expect_epoch_parity<AeroDromeOpt>(trace);
    expect_epoch_parity<AeroDromeTuned>(trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochParity,
                         ::testing::Range<uint64_t>(500, 640));

TEST(EpochAdaptive, UncontendedWorkloadNeverInflates)
{
    // Threads touching disjoint variables: every clock in the per-var
    // tables stays a pure epoch, so the arena must stay empty and the
    // fast path must carry all traffic.
    Trace t = gen::make_independent(4, 50, 6);
    AeroDromeReadOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
    checker.set_epochs(true);
    EXPECT_FALSE(run_checker(checker, t).violation);
    EXPECT_EQ(checker.epoch_stats().inflations, 0u);
    EXPECT_GT(checker.epoch_stats().epoch_fast, 0u);
}

TEST(EpochAdaptive, ContendedVariableInflatesOnceAndStaysExact)
{
    // Unary (outside-transaction) accesses are handled eagerly by every
    // engine: t1's write publishes W_x as an epoch, t2's read absorbs it
    // (making C_t2 impure) and then joins that impure clock into R_x and
    // hR_x — a *forced* inflation — after which t3 keeps using the
    // inflated rows. Serializable throughout; every engine must agree
    // with its epochs-off baseline on the inflated state.
    TraceBuilder b;
    b.write("t1", "x");
    b.read("t2", "x");
    b.read("t3", "x");
    b.write("t3", "y");
    b.read("t2", "y");
    Trace t = b.take();

    AeroDromeTuned checker(t.num_threads(), t.num_vars(), t.num_locks());
    checker.set_epochs(true);
    EXPECT_FALSE(run_checker(checker, t).violation);
    EXPECT_GT(checker.epoch_stats().inflations, 0u);

    expect_epoch_parity<AeroDromeBasic>(t);
    expect_epoch_parity<AeroDromeReadOpt>(t);
    expect_epoch_parity<AeroDromeOpt>(t);
    expect_epoch_parity<AeroDromeTuned>(t);
}

TEST(EpochAdaptive, OpenTransactionContentionParity)
{
    // Contention between two *open* transactions: t2 reads t1's stale
    // write (live-clock proxy), t1's second write flushes t2 as a stale
    // reader — joining t2's impure clock into R_x — and the write-read
    // conflict closes a genuine cycle. The violating event and thread
    // must be identical with epochs on and off.
    TraceBuilder b;
    b.begin("t1").write("t1", "x");
    b.begin("t2").read("t2", "x");
    b.write("t1", "x");
    b.end("t1").end("t2");
    Trace t = b.take();

    AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
    checker.set_epochs(true);
    EXPECT_TRUE(run_checker(checker, t).violation);

    expect_epoch_parity<AeroDromeBasic>(t);
    expect_epoch_parity<AeroDromeReadOpt>(t);
    expect_epoch_parity<AeroDromeOpt>(t);
    expect_epoch_parity<AeroDromeTuned>(t);
}

TEST(EpochAdaptive, LockHandoffParity)
{
    // Lock clocks are adaptive too: a release publishes an epoch while
    // the releasing thread is uncontended, and the first cross-thread
    // acquire consumes it; later impure releases inflate the entry.
    TraceBuilder b;
    b.acquire("t1", "l").write("t1", "x").release("t1", "l");
    b.acquire("t2", "l").read("t2", "x").release("t2", "l");
    b.acquire("t1", "l").write("t1", "x").release("t1", "l");
    b.acquire("t3", "l").read("t3", "x").release("t3", "l");
    Trace t = b.take();
    expect_epoch_parity<AeroDromeBasic>(t);
    expect_epoch_parity<AeroDromeReadOpt>(t);
    expect_epoch_parity<AeroDromeOpt>(t);
    expect_epoch_parity<AeroDromeTuned>(t);
}

} // namespace
} // namespace aero
