/**
 * @file
 * Semantic property tests derived straight from the definitions in
 * Section 2 of the paper.
 *
 * 1. Conflict equivalence: swapping two *adjacent, non-conflicting*
 *    events of different threads yields a conflict-equivalent trace, so
 *    the serializability verdict (and in fact the whole <Txn relation)
 *    must be unchanged. We apply thousands of random adjacent swaps to
 *    traces of both verdicts and re-check with the oracle and AeroDrome.
 *
 * 2. Serial traces are serializable: any trace in which each
 *    transaction's events are contiguous (no interleaving inside
 *    transactions) is trivially conflict serializable.
 *
 * 3. Velodrome and Velodrome-PK are the same decision procedure with
 *    different cycle-check engines: on every fuzz trace they must agree
 *    on the verdict *and* on the exact event at which the cycle closes.
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "oracle/serializability_oracle.hpp"
#include "sim/scheduler.hpp"
#include "support/rng.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace aero {
namespace {

/** Do e and f conflict per the paper's five clauses? */
bool
conflicting(const Event& e, const Event& f)
{
    if (e.tid == f.tid)
        return true;
    if (e.op == Op::kFork && f.tid == e.target)
        return true;
    if (f.op == Op::kFork && e.tid == f.target)
        return true;
    if (e.op == Op::kJoin && f.tid == e.target)
        return true;
    if (f.op == Op::kJoin && e.tid == f.target)
        return true;
    if (op_targets_var(e.op) && op_targets_var(f.op) &&
        e.target == f.target &&
        (e.op == Op::kWrite || f.op == Op::kWrite)) {
        return true;
    }
    // rel -> acq in either order (adjacent swap must also preserve lock
    // well-formedness, so treat any same-lock pair as conflicting).
    if (op_targets_lock(e.op) && op_targets_lock(f.op) &&
        e.target == f.target) {
        return true;
    }
    return false;
}

/** Apply up to `attempts` random adjacent non-conflicting swaps. */
Trace
shuffled_equivalent(const Trace& trace, uint64_t seed, int attempts)
{
    std::vector<Event> ev(trace.events());
    Rng rng(seed);
    for (int i = 0; i < attempts && ev.size() > 1; ++i) {
        size_t p = static_cast<size_t>(rng.next_below(ev.size() - 1));
        if (!conflicting(ev[p], ev[p + 1]))
            std::swap(ev[p], ev[p + 1]);
    }
    Trace out;
    for (const Event& e : ev)
        out.push(e);
    return out;
}

Trace
fuzz_trace(uint64_t seed)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = 3 + seed % 4;
    opts.shared_vars = 3 + seed % 6;
    opts.locks = 1 + seed % 2;
    opts.steps_per_thread = 40;
    sim::Program prog = gen::make_random_program(opts);
    sim::SchedulerOptions sched;
    sched.seed = seed * 101 + 3;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

class CommutationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CommutationSweep, VerdictInvariantUnderNonConflictingSwaps)
{
    Trace original = fuzz_trace(GetParam());
    bool verdict = !check_serializability(original).serializable;
    for (uint64_t round = 0; round < 3; ++round) {
        Trace shuffled = shuffled_equivalent(
            original, GetParam() * 13 + round, 500);
        EXPECT_EQ(!check_serializability(shuffled).serializable, verdict)
            << "oracle verdict changed, seed " << GetParam() << " round "
            << round;
        AeroDromeOpt checker(shuffled.num_threads(), shuffled.num_vars(),
                             shuffled.num_locks());
        EXPECT_EQ(run_checker(checker, shuffled).violation, verdict)
            << "AeroDrome verdict changed, seed " << GetParam()
            << " round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommutationSweep,
                         ::testing::Range<uint64_t>(3000, 3040));

// --- Serial traces -----------------------------------------------------------

class SerialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerialSweep, SerialTracesAreSerializable)
{
    // Schedule the random program with an "infinitely sticky" scheduler
    // plus transaction-aligned programs: emulate seriality by sorting the
    // trace's events transaction-block-wise. Simpler and airtight: run
    // each thread to completion before the next (round robin with a
    // quantum larger than any thread program).
    gen::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.threads = 3 + GetParam() % 4;
    opts.shared_vars = 3;
    opts.locks = 1;
    opts.steps_per_thread = 40;
    opts.fork_join = false; // all threads runnable from the start
    sim::Program prog = gen::make_random_program(opts);

    sim::SchedulerOptions sched;
    sched.policy = sim::Policy::kRoundRobin;
    sched.quantum = 1u << 30; // whole thread runs in one turn
    sim::SimResult sim = sim::run_program(prog, sched);
    ASSERT_FALSE(sim.deadlocked);

    EXPECT_TRUE(check_serializability(sim.trace).serializable);
    AeroDromeOpt checker(sim.trace.num_threads(), sim.trace.num_vars(),
                         sim.trace.num_locks());
    EXPECT_FALSE(run_checker(checker, sim.trace).violation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialSweep,
                         ::testing::Range<uint64_t>(3100, 3130));

// --- Prefix monotonicity -------------------------------------------------------

class PrefixSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefixSweep, ViolationsAreMonotoneInPrefixes)
{
    // Once a trace prefix is non-serializable, every extension is too
    // (edges only accumulate); conversely a serializable full trace has
    // only serializable prefixes. Check the oracle at several cut
    // points, and that AeroDrome's violating prefix matches: the checker
    // must flag exactly the prefixes that contain its detection point.
    Trace trace = fuzz_trace(GetParam() + 40000);
    AeroDromeOpt checker(trace.num_threads(), trace.num_vars(),
                         trace.num_locks());
    RunResult full = run_checker(checker, trace);

    bool seen_violation = false;
    for (size_t cut = trace.size() / 4; cut <= trace.size();
         cut += trace.size() / 4) {
        Trace prefix;
        for (size_t i = 0; i < cut && i < trace.size(); ++i)
            prefix.push(trace[i]);
        bool v = !check_serializability(prefix).serializable;
        EXPECT_TRUE(!seen_violation || v)
            << "violation vanished as the trace grew, seed "
            << GetParam() << " cut " << cut;
        seen_violation = v;

        if (full.violation) {
            AeroDromeOpt pc(prefix.num_threads(), prefix.num_vars(),
                            prefix.num_locks());
            bool expect_flag = full.details->event_index < cut;
            EXPECT_EQ(run_checker(pc, prefix).violation, expect_flag)
                << "seed " << GetParam() << " cut " << cut;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSweep,
                         ::testing::Range<uint64_t>(3300, 3330));

// --- Velodrome vs Velodrome-PK ------------------------------------------------

class VelodromeEngines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VelodromeEngines, SameVerdictSamePoint)
{
    Trace trace = fuzz_trace(GetParam() + 7777);
    Velodrome plain(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());
    VelodromePK pk(trace.num_threads(), trace.num_vars(),
                   trace.num_locks());
    RunResult rp = run_checker(plain, trace);
    RunResult rk = run_checker(pk, trace);
    EXPECT_EQ(rp.violation, rk.violation);
    if (rp.violation && rk.violation) {
        // Both declare at the event whose edge closes the first cycle.
        EXPECT_EQ(rp.details->event_index, rk.details->event_index);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VelodromeEngines,
                         ::testing::Range<uint64_t>(3200, 3260));

} // namespace
} // namespace aero
