/**
 * @file
 * Tests for the sharding trace layer and the sharded runner pipeline:
 *
 *  - router projection: every event lands in exactly the right shard
 *    set, per-shard order preserves trace order, and a one-shard
 *    projection is the identity;
 *  - threaded pipeline vs the deterministic inline driver: identical
 *    joined verdicts (and identical per-shard counters on clean runs)
 *    across shard counts and merge cadences;
 *  - a one-shard sharded run reproduces the plain runner bit-for-bit;
 *  - engines without a clock frontier are rejected;
 *  - streamed runs pre-size engines from the source's dimensions.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "gen/random_program.hpp"
#include "shard/router.hpp"
#include "shard/sharded_runner.hpp"
#include "sim/scheduler.hpp"
#include "support/assert.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/stream.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

Trace
fuzz_trace(uint64_t seed, uint32_t threads = 4, uint32_t vars = 6,
           uint32_t locks = 2, double txnp = 0.8)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = threads;
    opts.shared_vars = vars;
    opts.locks = locks;
    opts.txn_probability = txnp;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);
    sim::SchedulerOptions sched;
    sched.seed = seed * 7919 + 13;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

EngineFactory
aerodrome_factory()
{
    return [] { return std::make_unique<AeroDromeOpt>(0, 0, 0); };
}

// --- Router projection ------------------------------------------------------

TEST(ShardRouter, VarEventsGoToExactlyOneShard)
{
    ShardRouter router(4);
    Trace t = fuzz_trace(11);
    for (const Event& e : t.events()) {
        uint32_t dst = router.shard_of(e);
        if (op_targets_var(e.op)) {
            ASSERT_LT(dst, 4u);
            EXPECT_EQ(dst, router.shard_of_var(e.target));
        } else {
            EXPECT_EQ(dst, ShardRouter::kBroadcast);
        }
    }
}

TEST(ShardRouter, ProjectionDeliversEachEventToTheRightShardSet)
{
    Trace t = fuzz_trace(12);
    ShardRouter router(3, &modulo_shard_policy);
    auto lanes = project(t, router);
    ASSERT_EQ(lanes.size(), 3u);

    // Count how many lanes saw each global index, and check membership.
    std::vector<uint32_t> seen(t.size(), 0);
    for (uint32_t s = 0; s < lanes.size(); ++s) {
        for (const ProjectedEvent& pe : lanes[s]) {
            ASSERT_LT(pe.index, t.size());
            EXPECT_EQ(pe.event, t[pe.index]);
            ++seen[pe.index];
            if (op_targets_var(pe.event.op)) {
                EXPECT_EQ(s, pe.event.target % 3) << "wrong owner shard";
            }
        }
    }
    for (size_t i = 0; i < t.size(); ++i) {
        uint32_t expected = op_targets_var(t[i].op) ? 1u : 3u;
        EXPECT_EQ(seen[i], expected) << "event " << i << " delivered to "
                                     << seen[i] << " shards";
    }
}

TEST(ShardRouter, PerShardOrderPreservesTraceOrder)
{
    Trace t = fuzz_trace(13);
    ShardRouter router(4);
    auto lanes = project(t, router);
    for (const auto& lane : lanes) {
        for (size_t i = 1; i < lane.size(); ++i)
            EXPECT_LT(lane[i - 1].index, lane[i].index);
    }
}

TEST(ShardRouter, OneShardProjectionIsTheIdentity)
{
    Trace t = fuzz_trace(14);
    ShardRouter router(1);
    auto lanes = project(t, router);
    ASSERT_EQ(lanes.size(), 1u);
    ASSERT_EQ(lanes[0].size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(lanes[0][i].event, t[i]);
        EXPECT_EQ(lanes[0][i].index, i);
    }
}

TEST(ShardRouter, PoliciesCoverAllShardsOnDenseIds)
{
    // Both built-in policies must actually spread a dense id range.
    for (ShardPolicy policy :
         {&hash_shard_policy, &modulo_shard_policy}) {
        std::vector<uint32_t> hits(8, 0);
        for (VarId x = 0; x < 256; ++x) {
            uint32_t s = policy(x, 8);
            ASSERT_LT(s, 8u);
            ++hits[s];
        }
        for (uint32_t s = 0; s < 8; ++s)
            EXPECT_GT(hits[s], 0u) << "shard " << s << " never used";
    }
}

// --- Threaded pipeline vs inline driver -------------------------------------

void
expect_same_joined_result(const ShardRunResult& a, const ShardRunResult& b)
{
    ASSERT_EQ(a.result.violation, b.result.violation);
    if (a.result.violation) {
        EXPECT_EQ(a.result.details->event_index,
                  b.result.details->event_index);
        EXPECT_EQ(a.result.details->thread, b.result.details->thread);
        EXPECT_EQ(a.result.details->shard, b.result.details->shard);
        EXPECT_EQ(a.result.details->reason, b.result.details->reason);
    } else {
        // On clean runs the reader drains the whole stream, so the merge
        // cadence — hence the count — is identical. (After a violation
        // the threaded reader may race a few extra markers out before it
        // observes the stop index; the verdict is unaffected.)
        EXPECT_EQ(a.frontier_merges, b.frontier_merges);
    }
}

TEST(ShardedRunner, ThreadedMatchesInlineAcrossCadences)
{
    std::vector<Trace> traces;
    traces.push_back(gen::make_ring(4));          // guaranteed violation
    traces.push_back(gen::make_pipeline(4, 50));  // serializable
    traces.push_back(fuzz_trace(21));
    traces.push_back(fuzz_trace(22, 3, 12, 1, 0.5));

    for (const Trace& t : traces) {
        for (uint32_t shards : {2u, 4u}) {
            for (uint64_t merge_epoch : {uint64_t{0}, uint64_t{1},
                                         uint64_t{64}}) {
                ShardOptions opts;
                opts.shards = shards;
                opts.merge_epoch = merge_epoch;
                ShardRunResult inline_r =
                    run_sharded_inline(aerodrome_factory(), t, opts);
                ShardRunResult threaded_r =
                    run_sharded(aerodrome_factory(), t, opts);
                SCOPED_TRACE(::testing::Message()
                             << "shards=" << shards
                             << " merge_epoch=" << merge_epoch
                             << " events=" << t.size());
                expect_same_joined_result(inline_r, threaded_r);
                if (!inline_r.result.violation) {
                    // Clean runs process every projected event in both
                    // drivers: the per-shard breakdowns must be
                    // bit-identical.
                    EXPECT_EQ(inline_r.shard_events,
                              threaded_r.shard_events);
                    ASSERT_EQ(inline_r.shard_counters.size(),
                              threaded_r.shard_counters.size());
                    for (size_t s = 0; s < inline_r.shard_counters.size();
                         ++s) {
                        EXPECT_EQ(inline_r.shard_counters[s],
                                  threaded_r.shard_counters[s]);
                    }
                }
            }
        }
    }
}

TEST(ShardedRunner, OneShardReproducesThePlainRunner)
{
    for (uint64_t seed : {31u, 32u, 33u}) {
        Trace t = fuzz_trace(seed);
        AeroDromeOpt single(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult expected = run_checker(single, t);

        ShardOptions opts;
        opts.shards = 1;
        ShardRunResult sharded = run_sharded(aerodrome_factory(), t, opts);
        ASSERT_EQ(sharded.result.violation, expected.violation);
        EXPECT_EQ(sharded.result.events_processed,
                  expected.events_processed);
        if (expected.violation) {
            EXPECT_EQ(sharded.result.details->event_index,
                      expected.details->event_index);
            EXPECT_EQ(sharded.result.details->thread,
                      expected.details->thread);
            EXPECT_EQ(sharded.result.details->shard, 0u);
        }
        EXPECT_EQ(sharded.result.counters, expected.counters);
        EXPECT_EQ(sharded.frontier_merges, 0u);
    }
}

TEST(ShardedRunner, AggregateCountersAreNamewiseSums)
{
    Trace t = gen::make_pipeline(4, 100);
    ShardOptions opts;
    opts.shards = 4;
    opts.merge_epoch = 32;
    ShardRunResult r = run_sharded_inline(aerodrome_factory(), t, opts);
    ASSERT_EQ(r.shard_counters.size(), 4u);
    for (const auto& total : r.result.counters) {
        uint64_t sum = 0;
        for (const StatList& per_shard : r.shard_counters) {
            for (const auto& kv : per_shard) {
                if (kv.first == total.first)
                    sum += kv.second;
            }
        }
        EXPECT_EQ(total.second, sum) << "counter " << total.first;
    }
}

TEST(ShardedRunner, SmallQueuesAndManyMergesStillComplete)
{
    // Exercise ring-buffer wraparound, reader back-pressure and barrier
    // traffic together: a long trace through tiny queues with frequent
    // merges.
    Trace t = gen::make_pipeline(4, 500);
    ShardOptions opts;
    opts.shards = 4;
    opts.merge_epoch = 16;
    opts.queue_capacity = 32;
    ShardRunResult threaded = run_sharded(aerodrome_factory(), t, opts);
    ShardRunResult inline_r = run_sharded_inline(aerodrome_factory(), t,
                                                 opts);
    expect_same_joined_result(inline_r, threaded);
    EXPECT_FALSE(threaded.result.violation);
    EXPECT_GT(threaded.frontier_merges, 100u);
}

TEST(ShardedRunner, EngineWithoutFrontierIsRejected)
{
    Trace t = gen::make_ring(3);
    ShardOptions opts;
    opts.shards = 2;
    EXPECT_THROW(
        run_sharded_inline(
            [] { return std::make_unique<Velodrome>(0, 0, 0); }, t, opts),
        FatalError);

    // Rejected even with merging disabled: a frontier-less engine sharded
    // without merges would silently miss cross-shard cycles.
    opts.merge_epoch = 0;
    EXPECT_THROW(
        run_sharded_inline(
            [] { return std::make_unique<Velodrome>(0, 0, 0); }, t, opts),
        FatalError);

    // Absurd shard counts are a FatalError, not a thread bomb.
    opts.shards = ShardOptions::kMaxShards + 1;
    EXPECT_THROW(run_sharded_inline(
                     [] { return std::make_unique<Velodrome>(0, 0, 0); },
                     t, opts),
                 FatalError);

    // ... but a single "shard" needs no frontier and must still work.
    opts.shards = 1;
    ShardRunResult r = run_sharded_inline(
        [] { return std::make_unique<Velodrome>(0, 0, 0); }, t, opts);
    EXPECT_TRUE(r.result.violation);
}

TEST(ShardedRunner, HonorsAeroShardsEnvInTests)
{
    // The CI pass sets AERO_SHARDS; make sure whatever value it names
    // round-trips through the pipeline on a quick trace.
    const char* env = std::getenv("AERO_SHARDS");
    long parsed = env ? std::strtol(env, nullptr, 10) : 0;
    if (parsed < 2 || parsed > 64)
        GTEST_SKIP() << "AERO_SHARDS not set (or outside 2..64)";
    uint32_t shards = static_cast<uint32_t>(parsed);
    Trace t = fuzz_trace(41);
    ShardOptions opts;
    opts.shards = shards;
    opts.merge_epoch = 1;
    ShardRunResult threaded = run_sharded(aerodrome_factory(), t, opts);
    ShardRunResult inline_r = run_sharded_inline(aerodrome_factory(), t,
                                                 opts);
    expect_same_joined_result(inline_r, threaded);
}

// --- Streamed reserve (metainfo dimensions) ---------------------------------

/** Probe checker recording what reserve() was called with. */
class ReserveProbe : public CheckerBase {
public:
    std::string_view name() const override { return "probe"; }
    bool process(const Event&, size_t) override { return false; }

    void
    reserve(uint32_t threads, uint32_t vars, uint32_t locks) override
    {
        reserved_threads = threads;
        reserved_vars = vars;
        reserved_locks = locks;
    }

    uint32_t reserved_threads = 0;
    uint32_t reserved_vars = 0;
    uint32_t reserved_locks = 0;
};

TEST(StreamReserve, BinarySourceForwardsHeaderDimensions)
{
    Trace t = fuzz_trace(51);
    std::stringstream buf;
    write_binary(buf, t);
    BinaryEventSource source(buf);

    ReserveProbe probe;
    RunResult r = run_checker_stream(probe, source);
    EXPECT_EQ(r.events_processed, t.size());
    EXPECT_EQ(probe.reserved_threads, t.num_threads());
    EXPECT_EQ(probe.reserved_vars, t.num_vars());
    EXPECT_EQ(probe.reserved_locks, t.num_locks());
}

TEST(StreamReserve, TraceSourceForwardsTraceDimensions)
{
    Trace t = fuzz_trace(52);
    TraceSource source(t);
    ReserveProbe probe;
    run_checker_stream(probe, source);
    EXPECT_EQ(probe.reserved_threads, t.num_threads());
    EXPECT_EQ(probe.reserved_vars, t.num_vars());
    EXPECT_EQ(probe.reserved_locks, t.num_locks());
}

TEST(StreamReserve, TextSourceHasNoUpfrontDimensions)
{
    std::stringstream text("t1 w x\nt2 r x\n");
    TextEventSource source(text);
    uint32_t a = 0, b = 0, c = 0;
    EXPECT_FALSE(source.dimensions(a, b, c));
}

} // namespace
} // namespace aero
