/**
 * @file
 * Unit tests for the vector clock library (paper, Section 4 notation) and
 * for the ClockBank contiguous arena, including randomized parity fuzzing
 * of the bank kernels against the scalar VectorClock reference.
 */

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "vc/clock_bank.hpp"
#include "vc/flat_table.hpp"
#include "vc/vector_clock.hpp"

namespace aero {
namespace {

TEST(VectorClock, DefaultIsBottom)
{
    VectorClock v;
    EXPECT_TRUE(v.is_bottom());
    EXPECT_EQ(v.dim(), 0u);
    EXPECT_EQ(v.get(0), 0u);
    EXPECT_EQ(v.get(100), 0u);
}

TEST(VectorClock, SetAndGet)
{
    VectorClock v;
    v.set(2, 5);
    EXPECT_EQ(v.get(0), 0u);
    EXPECT_EQ(v.get(2), 5u);
    EXPECT_EQ(v.dim(), 3u);
    EXPECT_FALSE(v.is_bottom());
}

TEST(VectorClock, SettingZeroBeyondDimIsNoop)
{
    VectorClock v;
    v.set(5, 0);
    EXPECT_EQ(v.dim(), 0u);
}

TEST(VectorClock, TickIncrements)
{
    VectorClock v;
    v.tick(1);
    v.tick(1);
    EXPECT_EQ(v.get(1), 2u);
}

TEST(VectorClock, InitializerList)
{
    VectorClock v{2, 0, 1};
    EXPECT_EQ(v.get(0), 2u);
    EXPECT_EQ(v.get(1), 0u);
    EXPECT_EQ(v.get(2), 1u);
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a{2, 0, 1};
    VectorClock b{1, 3};
    a.join(b);
    EXPECT_EQ(a, (VectorClock{2, 3, 1}));
}

TEST(VectorClock, JoinGrowsDimension)
{
    VectorClock a{1};
    VectorClock b{0, 0, 7};
    a.join(b);
    EXPECT_EQ(a.get(2), 7u);
    EXPECT_EQ(a.get(0), 1u);
}

TEST(VectorClock, JoinWithBottomIsIdentity)
{
    VectorClock a{4, 5};
    VectorClock bot;
    a.join(bot);
    EXPECT_EQ(a, (VectorClock{4, 5}));
}

TEST(VectorClock, LeqReflexive)
{
    VectorClock a{1, 2, 3};
    EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, LeqPointwise)
{
    VectorClock a{1, 2};
    VectorClock b{2, 2, 1};
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, LeqIncomparable)
{
    VectorClock a{1, 0};
    VectorClock b{0, 1};
    EXPECT_FALSE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, BottomLeqEverything)
{
    VectorClock bot;
    VectorClock b{0, 1};
    EXPECT_TRUE(bot.leq(b));
    EXPECT_TRUE(bot.leq(bot));
}

TEST(VectorClock, LeqDifferentDims)
{
    VectorClock a{1, 0, 0};
    VectorClock b{1};
    EXPECT_TRUE(a.leq(b));
    EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, LeqExceptSkipsComponent)
{
    VectorClock a{5, 1};
    VectorClock b{0, 2};
    EXPECT_FALSE(a.leq(b));
    EXPECT_TRUE(a.leq_except(b, 0));
    EXPECT_FALSE(a.leq_except(b, 1));
}

TEST(VectorClock, JoinExceptZeroesComponent)
{
    VectorClock a{1, 1, 1};
    VectorClock b{9, 9, 9};
    a.join_except(b, 1);
    EXPECT_EQ(a, (VectorClock{9, 1, 9}));
}

TEST(VectorClock, JoinExceptGrowsDimension)
{
    VectorClock a;
    VectorClock b{3, 4};
    a.join_except(b, 0);
    EXPECT_EQ(a, (VectorClock{0, 4}));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros)
{
    VectorClock a{1, 2};
    VectorClock b{1, 2, 0, 0};
    EXPECT_EQ(a, b);
    b.set(3, 1);
    EXPECT_NE(a, b);
}

TEST(VectorClock, ClearResetsToBottomKeepingDim)
{
    VectorClock a{1, 2};
    a.clear();
    EXPECT_TRUE(a.is_bottom());
}

TEST(VectorClock, ToString)
{
    VectorClock a{2, 0, 1};
    EXPECT_EQ(a.to_string(), "<2,0,1>");
    EXPECT_EQ(VectorClock{}.to_string(), "<>");
}

/** The paper's notation checks: bot[1/t] etc. */
TEST(VectorClock, PaperInitialization)
{
    // C_t := bot[1/t] for thread t = 1 of 3.
    VectorClock c(3);
    c.set(1, 1);
    EXPECT_EQ(c, (VectorClock{0, 1, 0}));
}

/** Join is commutative, associative, idempotent (property sweep). */
TEST(VectorClock, JoinLatticeLaws)
{
    const VectorClock vs[] = {
        {}, {1}, {0, 2}, {3, 1, 4}, {2, 2}, {0, 0, 0, 9},
    };
    for (const auto& a : vs) {
        for (const auto& b : vs) {
            VectorClock ab = a;
            ab.join(b);
            VectorClock ba = b;
            ba.join(a);
            EXPECT_EQ(ab, ba);
            // a <= a |_| b and b <= a |_| b.
            EXPECT_TRUE(a.leq(ab));
            EXPECT_TRUE(b.leq(ab));
            for (const auto& c : vs) {
                VectorClock ab_c = ab;
                ab_c.join(c);
                VectorClock bc = b;
                bc.join(c);
                VectorClock a_bc = a;
                a_bc.join(bc);
                EXPECT_EQ(ab_c, a_bc);
            }
        }
        VectorClock aa = a;
        aa.join(a);
        EXPECT_EQ(aa, a);
    }
}

// --- ClockBank -----------------------------------------------------------

TEST(ClockBank, DefaultIsEmpty)
{
    ClockBank bank;
    EXPECT_EQ(bank.rows(), 0u);
    EXPECT_EQ(bank.dim(), 0u);
    EXPECT_EQ(bank.stride(), 0u);
}

TEST(ClockBank, RowsStartAtBottom)
{
    ClockBank bank(3, 5);
    for (size_t i = 0; i < bank.rows(); ++i) {
        EXPECT_TRUE(bank[i].is_bottom());
        for (size_t d = 0; d < bank.dim(); ++d)
            EXPECT_EQ(bank[i].get(d), 0u);
    }
}

TEST(ClockBank, StrideIsCacheLinePadded)
{
    // 16 ClockValues = one 64-byte line; stride must round up to it.
    EXPECT_EQ(ClockBank(1, 1).stride(), 16u);
    EXPECT_EQ(ClockBank(1, 16).stride(), 16u);
    EXPECT_EQ(ClockBank(1, 17).stride(), 32u);
    ClockBank b(2, 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u);
}

TEST(ClockBank, SetGetTick)
{
    ClockBank bank(2, 4);
    bank[0].set(1, 7);
    bank[0].tick(1);
    bank[1].tick(3);
    EXPECT_EQ(bank[0].get(1), 8u);
    EXPECT_EQ(bank[1].get(3), 1u);
    EXPECT_EQ(bank[1].get(0), 0u);
}

TEST(ClockBank, GrowRowsPreservesContentAndZeroesNewRows)
{
    ClockBank bank(2, 4);
    bank[0].set(2, 9);
    bank[1].set(0, 3);
    bank.ensure_rows(50); // force reallocation past the initial capacity
    EXPECT_EQ(bank.rows(), 50u);
    EXPECT_EQ(bank[0].get(2), 9u);
    EXPECT_EQ(bank[1].get(0), 3u);
    for (size_t i = 2; i < bank.rows(); ++i)
        EXPECT_TRUE(bank[i].is_bottom());
}

TEST(ClockBank, GrowDimWithinStrideIsZeroFilled)
{
    ClockBank bank(2, 3);
    bank[0].set(2, 5);
    bank.ensure_dim(10); // still within the 16-component stride
    EXPECT_EQ(bank.stride(), 16u);
    EXPECT_EQ(bank[0].get(2), 5u);
    for (size_t d = 3; d < 10; ++d)
        EXPECT_EQ(bank[0].get(d), 0u);
}

TEST(ClockBank, GrowDimBeyondStrideRelayouts)
{
    ClockBank bank(3, 8);
    for (size_t i = 0; i < 3; ++i)
        bank[i].set(i, static_cast<ClockValue>(i + 1));
    bank.ensure_dim(40); // past the one-line stride: re-layout copy
    EXPECT_GE(bank.stride(), 48u);
    EXPECT_EQ(bank.stride() % ClockBank::kLineValues, 0u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(bank[i].get(i), i + 1);
        for (size_t d = 8; d < 40; ++d)
            EXPECT_EQ(bank[i].get(d), 0u);
    }
}

TEST(ClockBank, AssignCopiesAcrossBanks)
{
    ClockBank a(1, 6);
    ClockBank b(1, 6);
    a[0].set(4, 11);
    b[0].assign(a[0]);
    EXPECT_EQ(b[0].get(4), 11u);
    a[0].set(4, 12); // copies are independent
    EXPECT_EQ(b[0].get(4), 11u);
}

TEST(ClockBank, SelfJoinIsIdentity)
{
    ClockBank bank(1, 4);
    bank[0].set(1, 3);
    bank[0].join(bank[0]);
    EXPECT_EQ(bank[0].get(1), 3u);
}

TEST(ClockBank, ToVectorClockRoundTrips)
{
    ClockBank bank(1, 3);
    bank[0].set(0, 2);
    bank[0].set(2, 1);
    EXPECT_EQ(bank[0].to_vector_clock(), (VectorClock{2, 0, 1}));
    EXPECT_EQ(bank[0].to_string(), "<2,0,1>");
}

/** Randomized parity fuzzing: every bank kernel must agree with the
 *  scalar VectorClock implementation, across dimensions that exercise
 *  both the small-n scalar path and the SIMD/vectorized path. */
TEST(ClockBank, FuzzParityWithVectorClock)
{
    Rng rng(0xc10cba7eULL);
    for (size_t dim : {1u, 3u, 8u, 16u, 17u, 33u, 64u, 100u}) {
        for (int iter = 0; iter < 200; ++iter) {
            VectorClock va(dim), vb(dim);
            ClockBank bank(2, dim);
            for (size_t d = 0; d < dim; ++d) {
                // Small value range so leq outcomes are well mixed.
                ClockValue x =
                    static_cast<ClockValue>(rng.next_below(4));
                ClockValue y =
                    static_cast<ClockValue>(rng.next_below(4));
                va.set(d, x);
                vb.set(d, y);
                bank[0].set(d, x);
                bank[1].set(d, y);
            }
            size_t skip = rng.next_below(dim + 1); // may be == dim
            EXPECT_EQ(bank[0].leq(bank[1]), va.leq(vb));
            EXPECT_EQ(bank[1].leq(bank[0]), vb.leq(va));
            EXPECT_EQ(bank[0].leq_except(bank[1], skip),
                      va.leq_except(vb, skip));
            EXPECT_EQ(bank[0].is_bottom(), va.is_bottom());

            if (rng.next_bool()) {
                bank[0].join(bank[1]);
                va.join(vb);
            } else {
                bank[0].join_except(bank[1], skip);
                va.join_except(vb, skip);
            }
            EXPECT_EQ(bank[0].to_vector_clock(), va)
                << "dim=" << dim << " iter=" << iter;
        }
    }
}

/** The engines interleave dimension and row growth; parity must survive
 *  arbitrary interleavings of grows and kernel applications. */
TEST(ClockBank, FuzzGrowthParity)
{
    Rng rng(0x9e0ba27eULL);
    for (int iter = 0; iter < 100; ++iter) {
        ClockBank bank(2, 2);
        VectorClock ref[2] = {VectorClock(2), VectorClock(2)};
        size_t dim = 2;
        for (int step = 0; step < 60; ++step) {
            switch (rng.next_below(4)) {
              case 0: { // grow the dimension
                dim += rng.next_below(12);
                bank.ensure_dim(dim);
                break;
              }
              case 1: { // set a component
                size_t row = rng.next_below(2);
                size_t d = rng.next_below(dim);
                ClockValue v =
                    static_cast<ClockValue>(rng.next_below(100));
                bank[row].set(d, v);
                ref[row].set(d, v);
                break;
              }
              case 2: { // join the rows
                bank[0].join(bank[1]);
                ref[0].join(ref[1]);
                break;
              }
              case 3: { // compare
                EXPECT_EQ(bank[0].leq(bank[1]), ref[0].leq(ref[1]));
                break;
              }
            }
        }
        EXPECT_EQ(bank[0].to_vector_clock(), ref[0]);
        EXPECT_EQ(bank[1].to_vector_clock(), ref[1]);
    }
}

// --- FlatTable -----------------------------------------------------------

TEST(FlatTable, GrowBothDimensionsKeepsContentAndFill)
{
    FlatTable<uint32_t> t(2, 3, UINT32_MAX);
    t.at(0, 1) = 7;
    t.at(1, 2) = 8;
    t.ensure_cols(9); // beyond capacity: re-layout
    t.ensure_rows(5);
    EXPECT_EQ(t.rows(), 5u);
    EXPECT_EQ(t.cols(), 9u);
    EXPECT_EQ(t.at(0, 1), 7u);
    EXPECT_EQ(t.at(1, 2), 8u);
    EXPECT_EQ(t.at(0, 5), UINT32_MAX);
    EXPECT_EQ(t.at(4, 0), UINT32_MAX);
    const uint32_t* row = t.row(1);
    EXPECT_EQ(row[2], 8u);
}

} // namespace
} // namespace aero
