/**
 * @file
 * Unit tests for the vector clock library (paper, Section 4 notation).
 */

#include <gtest/gtest.h>

#include "vc/vector_clock.hpp"

namespace aero {
namespace {

TEST(VectorClock, DefaultIsBottom)
{
    VectorClock v;
    EXPECT_TRUE(v.is_bottom());
    EXPECT_EQ(v.dim(), 0u);
    EXPECT_EQ(v.get(0), 0u);
    EXPECT_EQ(v.get(100), 0u);
}

TEST(VectorClock, SetAndGet)
{
    VectorClock v;
    v.set(2, 5);
    EXPECT_EQ(v.get(0), 0u);
    EXPECT_EQ(v.get(2), 5u);
    EXPECT_EQ(v.dim(), 3u);
    EXPECT_FALSE(v.is_bottom());
}

TEST(VectorClock, SettingZeroBeyondDimIsNoop)
{
    VectorClock v;
    v.set(5, 0);
    EXPECT_EQ(v.dim(), 0u);
}

TEST(VectorClock, TickIncrements)
{
    VectorClock v;
    v.tick(1);
    v.tick(1);
    EXPECT_EQ(v.get(1), 2u);
}

TEST(VectorClock, InitializerList)
{
    VectorClock v{2, 0, 1};
    EXPECT_EQ(v.get(0), 2u);
    EXPECT_EQ(v.get(1), 0u);
    EXPECT_EQ(v.get(2), 1u);
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a{2, 0, 1};
    VectorClock b{1, 3};
    a.join(b);
    EXPECT_EQ(a, (VectorClock{2, 3, 1}));
}

TEST(VectorClock, JoinGrowsDimension)
{
    VectorClock a{1};
    VectorClock b{0, 0, 7};
    a.join(b);
    EXPECT_EQ(a.get(2), 7u);
    EXPECT_EQ(a.get(0), 1u);
}

TEST(VectorClock, JoinWithBottomIsIdentity)
{
    VectorClock a{4, 5};
    VectorClock bot;
    a.join(bot);
    EXPECT_EQ(a, (VectorClock{4, 5}));
}

TEST(VectorClock, LeqReflexive)
{
    VectorClock a{1, 2, 3};
    EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, LeqPointwise)
{
    VectorClock a{1, 2};
    VectorClock b{2, 2, 1};
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, LeqIncomparable)
{
    VectorClock a{1, 0};
    VectorClock b{0, 1};
    EXPECT_FALSE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
}

TEST(VectorClock, BottomLeqEverything)
{
    VectorClock bot;
    VectorClock b{0, 1};
    EXPECT_TRUE(bot.leq(b));
    EXPECT_TRUE(bot.leq(bot));
}

TEST(VectorClock, LeqDifferentDims)
{
    VectorClock a{1, 0, 0};
    VectorClock b{1};
    EXPECT_TRUE(a.leq(b));
    EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, LeqExceptSkipsComponent)
{
    VectorClock a{5, 1};
    VectorClock b{0, 2};
    EXPECT_FALSE(a.leq(b));
    EXPECT_TRUE(a.leq_except(b, 0));
    EXPECT_FALSE(a.leq_except(b, 1));
}

TEST(VectorClock, JoinExceptZeroesComponent)
{
    VectorClock a{1, 1, 1};
    VectorClock b{9, 9, 9};
    a.join_except(b, 1);
    EXPECT_EQ(a, (VectorClock{9, 1, 9}));
}

TEST(VectorClock, JoinExceptGrowsDimension)
{
    VectorClock a;
    VectorClock b{3, 4};
    a.join_except(b, 0);
    EXPECT_EQ(a, (VectorClock{0, 4}));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros)
{
    VectorClock a{1, 2};
    VectorClock b{1, 2, 0, 0};
    EXPECT_EQ(a, b);
    b.set(3, 1);
    EXPECT_NE(a, b);
}

TEST(VectorClock, ClearResetsToBottomKeepingDim)
{
    VectorClock a{1, 2};
    a.clear();
    EXPECT_TRUE(a.is_bottom());
}

TEST(VectorClock, ToString)
{
    VectorClock a{2, 0, 1};
    EXPECT_EQ(a.to_string(), "<2,0,1>");
    EXPECT_EQ(VectorClock{}.to_string(), "<>");
}

/** The paper's notation checks: bot[1/t] etc. */
TEST(VectorClock, PaperInitialization)
{
    // C_t := bot[1/t] for thread t = 1 of 3.
    VectorClock c(3);
    c.set(1, 1);
    EXPECT_EQ(c, (VectorClock{0, 1, 0}));
}

/** Join is commutative, associative, idempotent (property sweep). */
TEST(VectorClock, JoinLatticeLaws)
{
    const VectorClock vs[] = {
        {}, {1}, {0, 2}, {3, 1, 4}, {2, 2}, {0, 0, 0, 9},
    };
    for (const auto& a : vs) {
        for (const auto& b : vs) {
            VectorClock ab = a;
            ab.join(b);
            VectorClock ba = b;
            ba.join(a);
            EXPECT_EQ(ab, ba);
            // a <= a |_| b and b <= a |_| b.
            EXPECT_TRUE(a.leq(ab));
            EXPECT_TRUE(b.leq(ab));
            for (const auto& c : vs) {
                VectorClock ab_c = ab;
                ab_c.join(c);
                VectorClock bc = b;
                bc.join(c);
                VectorClock a_bc = a;
                a_bc.join(bc);
                EXPECT_EQ(ab_c, a_bc);
            }
        }
        VectorClock aa = a;
        aa.join(a);
        EXPECT_EQ(aa, a);
    }
}

} // namespace
} // namespace aero
