/**
 * @file
 * Reclamation-safety tests for clock-entry GC and thread-slot recycling
 * (src/vc/gc.hpp, AdaptiveClockTable's gc_* block, the engines'
 * retire_slot; src/vc/README.md, "Reclamation").
 *
 * Directed cases pin the two boundaries the design note calls out:
 *  - strictness: an entry exactly AT the frontier can equal the gate of
 *    a live transaction and must survive a sweep; one tick below is
 *    provably unreachable and must be reclaimed;
 *  - continuation: a reissued thread slot must not alias the dead
 *    thread's stale epochs — the retire path continues the slot's own
 *    component past every value the dead thread minted.
 *
 * The fuzz layer then enforces the global claim the tentpole rests on:
 * reclamation is *invisible* — verdict, firing event and charged thread
 * are bit-identical with gc on (sweeping at every end, the most hostile
 * schedule) and off, for every engine, with epochs on and off and with
 * update-set tracking on and off.
 */

#include <gtest/gtest.h>

#include <memory>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "gen/rolling_stream.hpp"
#include "sim/scheduler.hpp"
#include "trace/builder.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/gc.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

namespace aero {
namespace {

// ---------------------------------------------------------------------
// Frontier semantics.

TEST(GcFrontier, PointwiseMinOverLiveClocks)
{
    ClockBank bank;
    bank.ensure_dim(3);
    bank.ensure_rows(2);
    bank[0].set(0, 7);
    bank[0].set(1, 4);
    bank[1].set(0, 5);
    bank[1].set(1, 9);
    // Component 2 is bottom in both clocks.

    GcFrontier f;
    f.reset(3);
    f.accumulate(bank[0]);
    f.accumulate(bank[1]);
    EXPECT_EQ(f.get(0), 5u);
    EXPECT_EQ(f.get(1), 4u);
    EXPECT_EQ(f.get(2), 0u);
}

TEST(GcFrontier, DeadnessIsAtOrBelowUnlessTheGateIsActive)
{
    ClockBank bank;
    bank.ensure_dim(2);
    bank.ensure_rows(1);
    bank[0].set(1, 5);

    GcFrontier f;
    f.reset(2);
    f.accumulate(bank[0]);

    // AT the frontier with no active transaction at thread 1: the next
    // gate is minted by a begin tick (> 5), so the value is settled.
    EXPECT_TRUE(f.dead_component(1, 5));
    EXPECT_TRUE(f.dead_component(1, 4));
    // Bottom components are trivially dead.
    EXPECT_TRUE(f.dead_component(1, 0));
    EXPECT_TRUE(f.dead_component(0, 0));

    // Thread 1 mid-transaction: its gate equals its own component, so
    // an entry exactly at the gate must survive; one below still dies.
    f.cap_active(1, 5);
    EXPECT_FALSE(f.dead_component(1, 5));
    EXPECT_TRUE(f.dead_component(1, 4));
}

// ---------------------------------------------------------------------
// Table-level reclamation.

class TableGcTest : public ::testing::Test {
protected:
    static constexpr size_t kDim = 4;

    void
    SetUp() override
    {
        scratch_.ensure_dim(kDim);
        scratch_.ensure_rows(1);
        tbl_.ensure_dim(kDim);
        tbl_.set_epochs_enabled(true);
    }

    ConstClockRef
    ref(const VectorClock& v)
    {
        ClockRef r = scratch_[0];
        r.clear();
        for (size_t i = 0; i < kDim && i < v.dim(); ++i)
            r.set(i, v.get(i));
        return scratch_[0];
    }

    /** Frontier with F[u] = f_u for the provided components. */
    GcFrontier
    frontier(const VectorClock& v)
    {
        live_.ensure_dim(kDim);
        live_.ensure_rows(1);
        ClockRef r = live_[0];
        r.clear();
        for (size_t i = 0; i < kDim && i < v.dim(); ++i)
            r.set(i, v.get(i));
        GcFrontier f;
        f.reset(kDim);
        f.accumulate(live_[0]);
        return f;
    }

    ClockBank scratch_;
    ClockBank live_;
    AdaptiveClockTable tbl_;
};

TEST_F(TableGcTest, EntryAtActiveGateSurvivesOneBelowIsReclaimed)
{
    uint32_t at = tbl_.add_entry();
    uint32_t below = tbl_.add_entry();
    tbl_.assign(at, ref(VectorClock{0, 5}), 1, true);    // epoch 5@1
    tbl_.assign(below, ref(VectorClock{0, 4}), 1, true); // epoch 4@1

    // Thread 1 is mid-transaction with gate 5@1: the entry exactly at
    // the gate must survive the sweep; one below must not.
    GcFrontier f = frontier(VectorClock{9, 5, 9, 9});
    f.cap_active(1, 5);
    EXPECT_FALSE(tbl_.gc_dead(at, f));
    EXPECT_TRUE(tbl_.gc_dead(below, f));

    size_t live = tbl_.gc_sweep(f);
    EXPECT_EQ(live, 1u);
    EXPECT_EQ(tbl_.to_vector_clock(at), (VectorClock{0, 5}));
    EXPECT_TRUE(tbl_.is_bottom(below));
    EXPECT_EQ(tbl_.stats().gc_reclaimed.load(), 1u);
}

TEST_F(TableGcTest, SettledEntryAtFrontierIsReclaimed)
{
    // Same entry, but thread 1 is between transactions: 5@1 can never
    // gate again (future gates are minted by begin ticks, > 5).
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{0, 5}), 1, true);
    GcFrontier f = frontier(VectorClock{9, 5, 9, 9});
    EXPECT_TRUE(tbl_.gc_dead(i, f));
    EXPECT_EQ(tbl_.gc_sweep(f), 0u);
    EXPECT_TRUE(tbl_.is_bottom(i));
}

TEST_F(TableGcTest, DeadInflatedRowReturnsToTheArenaFreeList)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{3}), 0, true);
    tbl_.join(i, ref(VectorClock{0, 2}), 1, true); // inflates: {3,2}
    ASSERT_EQ(tbl_.arena_rows_live(), 1u);

    // Every component strictly below the frontier: the row is dead.
    size_t live = tbl_.gc_sweep(frontier(VectorClock{4, 3, 1, 1}));
    EXPECT_EQ(live, 0u);
    EXPECT_EQ(tbl_.arena_rows_live(), 0u);
    EXPECT_TRUE(tbl_.is_bottom(i));
    EXPECT_EQ(tbl_.stats().gc_rows_freed.load(), 1u);

    // The freed row is reused before the arena grows.
    size_t rows_before = tbl_.arena_rows();
    uint32_t j = tbl_.add_entry();
    tbl_.assign(j, ref(VectorClock{5}), 0, true);
    tbl_.join(j, ref(VectorClock{0, 6}), 1, true); // inflates again
    EXPECT_EQ(tbl_.arena_rows(), rows_before);
    EXPECT_EQ(tbl_.arena_rows_live(), 1u);
}

TEST_F(TableGcTest, InflatedRowAtActiveGateSurvives)
{
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{3}), 0, true);
    tbl_.join(i, ref(VectorClock{0, 2}), 1, true); // {3,2}

    // Component 0 equals thread 0's active gate: not dead.
    GcFrontier f = frontier(VectorClock{3, 3, 1, 1});
    f.cap_active(0, 3);
    size_t live = tbl_.gc_sweep(f);
    EXPECT_EQ(live, 1u);
    EXPECT_EQ(tbl_.to_vector_clock(i), (VectorClock{3, 2}));
}

TEST_F(TableGcTest, RecycledIndexIsHandedOutAgain)
{
    uint32_t a = tbl_.add_entry_reusable();
    tbl_.assign(a, ref(VectorClock{0, 4}), 1, true);
    tbl_.gc_sweep(frontier(VectorClock{9, 5, 9, 9})); // 4@1 dies
    ASSERT_TRUE(tbl_.is_bottom(a));

    tbl_.gc_recycle_index(a);
    EXPECT_EQ(tbl_.free_entry_count(), 1u);
    EXPECT_EQ(tbl_.add_entry_reusable(), a);
    EXPECT_EQ(tbl_.free_entry_count(), 0u);

    // add_entry (the triple-contiguity path) must never reuse.
    tbl_.gc_recycle_index(a);
    uint32_t fresh = tbl_.add_entry();
    EXPECT_NE(fresh, a);
}

TEST_F(TableGcTest, SweepWorksWithEpochsDisabled)
{
    tbl_.set_epochs_enabled(false);
    uint32_t i = tbl_.add_entry();
    tbl_.assign(i, ref(VectorClock{0, 4}), 1, false); // inflated form
    size_t live = tbl_.gc_sweep(frontier(VectorClock{9, 5, 9, 9}));
    EXPECT_EQ(live, 0u);
    EXPECT_TRUE(tbl_.is_bottom(i));
}

// ---------------------------------------------------------------------
// Engine-level directed cases.

/** fork a; a writes x in a txn; join a; fork b (reuses a's slot); b runs
 *  a txn reading x. Ordered through the join: no violation — unless a
 *  reissued slot aliases the dead thread's epochs, in which case b's
 *  fresh begin gate could match a's stale W_x and fire spuriously. */
Trace
churn_trace()
{
    TraceBuilder b;
    b.fork("m", "a");
    b.begin("a").write("a", "x").end("a");
    b.join("m", "a");
    b.fork("m", "b");
    b.begin("b").read("b", "x").write("b", "x").end("b");
    b.join("m", "b");
    return b.take();
}

template <typename Engine>
void
expect_no_alias()
{
    Trace tr = churn_trace();
    Engine e(tr.num_threads(), tr.num_vars(), tr.num_locks());
    e.set_gc(true);
    e.set_gc_sweep_every(1);
    RunResult r = run_checker(e, tr);
    EXPECT_FALSE(r.violation) << e.name()
                              << ": reissued slot aliased stale state";
    EXPECT_GE(e.thread_slots().retired(), 1u) << e.name();
    EXPECT_GE(e.thread_slots().recycled(), 1u) << e.name();
}

TEST(EngineGc, RecycledSlotDoesNotAliasStaleEpochs)
{
    expect_no_alias<AeroDromeBasic>();
    expect_no_alias<AeroDromeReadOpt>();
    expect_no_alias<AeroDromeOpt>();
    expect_no_alias<AeroDromeTuned>();
}

TEST(EngineGc, RecyclingKeepsTheRowCountAtTheLivePopulation)
{
    // 1 main + 1 live worker at any time, across 8 generations: the slot
    // map must stay at 2 slots however many external ids appear.
    TraceBuilder b;
    std::string prev = "w0";
    b.fork("m", prev);
    for (int g = 1; g <= 8; ++g) {
        std::string cur = "w" + std::to_string(g);
        b.begin(prev).write(prev, "x").end(prev);
        b.join("m", prev);
        b.fork("m", cur);
        prev = cur;
    }
    b.join("m", prev);
    Trace tr = b.take();

    AeroDromeOpt e(0, 0, 0);
    e.set_gc(true);
    RunResult r = run_checker(e, tr);
    EXPECT_FALSE(r.violation);
    EXPECT_LE(e.thread_slots().slots(), 2u);
    EXPECT_EQ(e.thread_slots().retired(), 9u); // w0..w8
    EXPECT_EQ(e.thread_slots().recycled(), 8u); // w1..w8 reuse w(i-1)'s
}

// ---------------------------------------------------------------------
// Fuzz parity: gc on (sweeping at every end) == gc off, for every
// engine, on verdict, firing event and charged thread.

Trace
fuzz_trace(uint64_t seed)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = 4;
    opts.shared_vars = 5;
    opts.locks = 2;
    opts.txn_probability = 0.8;
    opts.steps_per_thread = 50;
    opts.fork_join = true; // joins make slots retire mid-trace
    sim::Program prog = gen::make_random_program(opts);

    sim::SchedulerOptions sched;
    sched.seed = seed * 7919 + 13;
    sched.policy = sim::Policy::kRandom;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

void
expect_same_outcome(const char* tag, const RunResult& off,
                    const RunResult& on)
{
    ASSERT_EQ(off.violation, on.violation) << tag;
    if (off.violation) {
        EXPECT_EQ(off.details->event_index, on.details->event_index) << tag;
        EXPECT_EQ(off.details->thread, on.details->thread) << tag;
    }
}

// Only basic/readopt expose the update-set toggle.
template <typename Engine>
auto
set_update_sets_if_supported(Engine& e, bool on, int)
    -> decltype(e.set_update_sets(on))
{
    e.set_update_sets(on);
}
template <typename Engine>
void
set_update_sets_if_supported(Engine&, bool, long)
{
}

template <typename Engine>
RunResult
run_aero(const Trace& tr, bool gc, bool epochs, bool upd_sets)
{
    Engine e(tr.num_threads(), tr.num_vars(), tr.num_locks());
    e.set_epochs(epochs);
    e.set_gc(gc);
    if (gc)
        e.set_gc_sweep_every(1); // most hostile sweep schedule
    set_update_sets_if_supported(e, upd_sets, 0);
    return run_checker(e, tr);
}

class GcParityFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcParityFuzz, ReclamationIsInvisible)
{
    Trace tr = fuzz_trace(GetParam());
    for (bool epochs : {true, false}) {
        for (bool upd : {true, false}) {
            expect_same_outcome(
                "basic",
                run_aero<AeroDromeBasic>(tr, false, epochs, upd),
                run_aero<AeroDromeBasic>(tr, true, epochs, upd));
            expect_same_outcome(
                "readopt",
                run_aero<AeroDromeReadOpt>(tr, false, epochs, upd),
                run_aero<AeroDromeReadOpt>(tr, true, epochs, upd));
        }
        // opt/tuned keep their own update-set vectors: no toggle.
        expect_same_outcome("opt",
                            run_aero<AeroDromeOpt>(tr, false, epochs, true),
                            run_aero<AeroDromeOpt>(tr, true, epochs, true));
        expect_same_outcome(
            "tuned", run_aero<AeroDromeTuned>(tr, false, epochs, true),
            run_aero<AeroDromeTuned>(tr, true, epochs, true));
    }

    // The graph engines map set_gc onto their node GC; the reclamation
    // rule (no incoming edges => never on a cycle) is verdict-preserving.
    auto run_graph = [&](auto make, bool gc) {
        auto e = make();
        e->set_gc(gc);
        return run_checker(*e, tr);
    };
    auto mk_velo = [&] {
        return std::make_unique<Velodrome>(tr.num_threads(), tr.num_vars(),
                                           tr.num_locks());
    };
    auto mk_pk = [&] {
        return std::make_unique<VelodromePK>(tr.num_threads(),
                                             tr.num_vars(),
                                             tr.num_locks());
    };
    expect_same_outcome("velodrome", run_graph(mk_velo, false),
                        run_graph(mk_velo, true));
    expect_same_outcome("velodrome-pk", run_graph(mk_pk, false),
                        run_graph(mk_pk, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcParityFuzz,
                         ::testing::Range<uint64_t>(2000, 2040));

// ---------------------------------------------------------------------
// Rolling-stream sanity: the churn workload is violation-free by
// construction; with gc on and heavy churn, every engine must still say
// "no violation", slots must actually recycle, and entries must
// actually be reclaimed.

template <typename Engine>
void
expect_clean_stream()
{
    gen::RollingStreamOptions opts;
    opts.workers = 4;
    opts.churn_every = 256;
    opts.vars = 64;
    opts.hot_window = 32;
    opts.drift_every = 512;
    opts.locks = 4;
    opts.max_events = 20000;
    gen::RollingStreamSource src(opts);

    Engine e(0, 0, 0);
    e.set_gc(true);
    e.set_gc_sweep_every(8);
    RunResult r = run_checker_stream(e, src);
    EXPECT_FALSE(r.violation) << e.name();
    EXPECT_EQ(r.events_processed, opts.max_events) << e.name();
    EXPECT_GT(e.thread_slots().recycled(), 0u) << e.name();
    EXPECT_GT(e.gc_sweeps(), 0u) << e.name();
    // Live population: 1 main + workers (+1 transiently during churn).
    EXPECT_LE(e.thread_slots().slots(), opts.workers + 2u) << e.name();
}

TEST(RollingStream, AllEnginesCleanUnderChurnWithGc)
{
    expect_clean_stream<AeroDromeBasic>();
    expect_clean_stream<AeroDromeReadOpt>();
    expect_clean_stream<AeroDromeOpt>();
    expect_clean_stream<AeroDromeTuned>();
}

} // namespace
} // namespace aero
