/**
 * @file
 * Tests for the analysis harness: the timed runner (budget / "TO"
 * semantics), the transaction tracker, support utilities, and table
 * rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/report.hpp"
#include "analysis/runner.hpp"
#include "analysis/txn_tracker.hpp"
#include "gen/patterns.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace aero {
namespace {

// --- TxnTracker ----------------------------------------------------------

TEST(TxnTracker, OutermostDetection)
{
    TxnTracker tr(2);
    EXPECT_FALSE(tr.active(0));
    EXPECT_TRUE(tr.on_begin(0));   // outermost
    EXPECT_FALSE(tr.on_begin(0));  // nested
    EXPECT_TRUE(tr.active(0));
    EXPECT_FALSE(tr.on_end(0));    // closes nested
    EXPECT_TRUE(tr.on_end(0));     // closes outermost
    EXPECT_FALSE(tr.active(0));
}

TEST(TxnTracker, SequenceNumbers)
{
    TxnTracker tr(1);
    EXPECT_EQ(tr.seq(0), 0u);
    tr.on_begin(0);
    EXPECT_EQ(tr.seq(0), 1u);
    tr.on_end(0);
    tr.on_begin(0);
    EXPECT_EQ(tr.seq(0), 2u);
    // Nested begins do not bump the sequence.
    tr.on_begin(0);
    EXPECT_EQ(tr.seq(0), 2u);
}

TEST(TxnTracker, UnmatchedEndIgnored)
{
    TxnTracker tr(1);
    EXPECT_FALSE(tr.on_end(0));
}

TEST(TxnTracker, DynamicGrowth)
{
    TxnTracker tr;
    EXPECT_FALSE(tr.active(5));
    EXPECT_TRUE(tr.on_begin(5));
    EXPECT_TRUE(tr.active(5));
}

// --- Runner ----------------------------------------------------------------

TEST(Runner, CompletesWithinBudget)
{
    Trace t = gen::make_pipeline(3, 100);
    AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
    RunBudget budget;
    budget.max_seconds = 60;
    RunResult r = run_checker(checker, t, budget);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.violation);
    EXPECT_EQ(r.events_processed, t.size());
    EXPECT_STREQ(r.verdict(), "ok");
}

TEST(Runner, StopsAtViolation)
{
    Trace t = gen::make_ring(2);
    AeroDromeOpt checker(t.num_threads(), t.num_vars(), t.num_locks());
    RunResult r = run_checker(checker, t);
    EXPECT_TRUE(r.violation);
    EXPECT_LT(r.events_processed, t.size() + 1);
    EXPECT_STREQ(r.verdict(), "x");
    ASSERT_TRUE(r.details.has_value());
}

namespace {

/** Checker that burns wall-clock time per event. */
class SlowChecker : public CheckerBase {
public:
    std::string_view name() const override { return "slow"; }
    bool
    process(const Event&, size_t) override
    {
        volatile uint64_t sink = 0;
        for (int i = 0; i < 2000000; ++i)
            sink = sink + static_cast<uint64_t>(i);
        return false;
    }
};

} // namespace

TEST(Runner, TimesOut)
{
    Trace t = gen::make_pipeline(2, 2000);
    SlowChecker checker;
    RunBudget budget;
    budget.max_seconds = 0.05;
    budget.check_interval = 8;
    RunResult r = run_checker(checker, t, budget);
    EXPECT_TRUE(r.timed_out);
    EXPECT_FALSE(r.violation);
    EXPECT_LT(r.events_processed, t.size());
    EXPECT_STREQ(r.verdict(), "TO");
}

// --- Report helpers -----------------------------------------------------------

TEST(Report, TableAlignsColumns)
{
    TextTable table;
    table.header({"Program", "Events", "Speed-up"});
    table.row({"avrora", "2.4B", "> 24000"});
    table.row({"philo", "613", "1"});
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Program"), std::string::npos);
    EXPECT_NE(out.find("avrora"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // All data lines have equal column starts: "Events" and "2.4B" align.
    size_t header_col = out.find("Events");
    size_t row_col = out.find("2.4B");
    size_t header_line_start = out.rfind('\n', header_col);
    size_t row_line_start = out.rfind('\n', row_col);
    EXPECT_EQ(header_col - header_line_start, row_col - row_line_start);
}

TEST(Report, SpeedupFormatting)
{
    EXPECT_EQ(format_speedup(97.0, false), "97.00");
    EXPECT_EQ(format_speedup(24000.0, true), "> 24000");
    EXPECT_EQ(format_speedup(0.86, false), "0.86");
    // Values >= 100 drop decimals (printf %.0f, round-half-even).
    EXPECT_EQ(format_speedup(104.5, false), "104");
    EXPECT_EQ(format_speedup(104.7, false), "105");
    EXPECT_EQ(format_speedup(6545.0, true), "> 6545");
}

// --- Support utilities -----------------------------------------------------

TEST(Support, WithCommas)
{
    EXPECT_EQ(with_commas(0), "0");
    EXPECT_EQ(with_commas(999), "999");
    EXPECT_EQ(with_commas(1000), "1,000");
    EXPECT_EQ(with_commas(1234567), "1,234,567");
    EXPECT_EQ(with_commas(1000000000), "1,000,000,000");
}

TEST(Support, FormatDuration)
{
    EXPECT_EQ(format_duration(0.0000005), "0.5us");
    EXPECT_EQ(format_duration(0.0015), "1.50ms");
    EXPECT_EQ(format_duration(2.345), "2.35s");
    EXPECT_EQ(format_duration(3340), "55m40s");
}

TEST(Support, ParseU64)
{
    uint64_t v = 0;
    EXPECT_TRUE(parse_u64("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_FALSE(parse_u64("", v));
    EXPECT_FALSE(parse_u64("12a", v));
    EXPECT_FALSE(parse_u64("-3", v));
    EXPECT_TRUE(parse_u64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_FALSE(parse_u64("18446744073709551616", v)); // overflow
}

TEST(Support, SplitAndTrim)
{
    auto parts = split("a|b||c", '|');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  x y \t"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_TRUE(starts_with("abcdef", "abc"));
    EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(Support, RngDeterminism)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs = differs || (a.next_u64() != c.next_u64());
    EXPECT_TRUE(differs);
}

TEST(Support, RngBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.next_below(7), 7u);
        int64_t v = r.next_range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Support, RngWeighted)
{
    Rng r(3);
    std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.next_weighted(w), 1u);
}

TEST(Support, RngShuffleIsPermutation)
{
    Rng r(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

} // namespace
} // namespace aero
