/**
 * @file
 * Unit tests for the trace model: builder, name interning, validator,
 * metainfo, and text/binary I/O round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/assert.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/metainfo.hpp"
#include "trace/text_io.hpp"
#include "trace/trace.hpp"
#include "trace/validator.hpp"

namespace aero {
namespace {

Trace
rho2()
{
    // Figure 2 of the paper.
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    return b.take();
}

TEST(TraceBuilder, InternsNamesInOrder)
{
    Trace t = rho2();
    EXPECT_EQ(t.num_threads(), 2u);
    EXPECT_EQ(t.num_vars(), 2u);
    EXPECT_EQ(t.num_locks(), 0u);
    EXPECT_EQ(t.size(), 8u);
    uint32_t id;
    ASSERT_TRUE(t.threads().lookup("t1", id));
    EXPECT_EQ(id, 0u);
    ASSERT_TRUE(t.vars().lookup("y", id));
    EXPECT_EQ(id, 1u);
    EXPECT_FALSE(t.vars().lookup("zz", id));
}

TEST(TraceBuilder, EventContents)
{
    Trace t = rho2();
    EXPECT_EQ(t[0], (Event{0, 0, Op::kBegin}));
    EXPECT_EQ(t[2], (Event{0, 0, Op::kWrite}));
    EXPECT_EQ(t[3], (Event{1, 0, Op::kRead}));
    EXPECT_EQ(t[4], (Event{1, 1, Op::kWrite}));
    EXPECT_EQ(t[7], (Event{0, 0, Op::kEnd}));
}

TEST(Trace, FormatEvent)
{
    TraceBuilder b;
    b.begin("t1").acquire("t1", "m").write("t1", "x").fork("t1", "t2");
    const Trace& t = b.trace();
    EXPECT_EQ(t.format_event(t[0]), "t1 begin");
    EXPECT_EQ(t.format_event(t[1]), "t1 acq m");
    EXPECT_EQ(t.format_event(t[2]), "t1 w x");
    EXPECT_EQ(t.format_event(t[3]), "t1 fork t2");
}

TEST(Trace, AutoNamesForNumericIds)
{
    Trace t;
    t.write(3, 7);
    EXPECT_EQ(t.num_threads(), 4u);
    EXPECT_EQ(t.num_vars(), 8u);
    EXPECT_EQ(t.format_event(t[0]), "t3 w x7");
}

// --- Validator ----------------------------------------------------------

TEST(Validator, AcceptsWellFormed)
{
    TraceBuilder b;
    b.fork("t0", "t1");
    b.begin("t1").acquire("t1", "m").write("t1", "x");
    b.release("t1", "m").end("t1");
    b.join("t0", "t1");
    EXPECT_TRUE(validate(b.trace()).ok);
}

TEST(Validator, RejectsReleaseWithoutHold)
{
    TraceBuilder b;
    b.release("t0", "m");
    auto r = validate(b.trace());
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.event_index, 0u);
}

TEST(Validator, RejectsCrossThreadAcquireOfHeldLock)
{
    TraceBuilder b;
    b.acquire("t0", "m").acquire("t1", "m");
    EXPECT_FALSE(validate(b.trace()).ok);
}

TEST(Validator, ReentrantAcquireOptional)
{
    TraceBuilder b;
    b.acquire("t0", "m").acquire("t0", "m");
    b.release("t0", "m").release("t0", "m");
    EXPECT_FALSE(validate(b.trace()).ok);
    ValidatorOptions opts;
    opts.allow_reentrant_locks = true;
    EXPECT_TRUE(validate(b.trace(), opts).ok);
}

TEST(Validator, ReentrantDepthMustMatch)
{
    TraceBuilder b;
    b.acquire("t0", "m").acquire("t0", "m").release("t0", "m");
    b.release("t0", "m").release("t0", "m"); // one release too many
    ValidatorOptions opts;
    opts.allow_reentrant_locks = true;
    EXPECT_FALSE(validate(b.trace(), opts).ok);
}

TEST(Validator, RejectsEndWithoutBegin)
{
    TraceBuilder b;
    b.end("t0");
    EXPECT_FALSE(validate(b.trace()).ok);
}

TEST(Validator, AllowsNestedTransactions)
{
    TraceBuilder b;
    b.begin("t0").begin("t0").read("t0", "x").end("t0").end("t0");
    EXPECT_TRUE(validate(b.trace()).ok);
}

TEST(Validator, UnclosedTransactionOnlyWithStrictOption)
{
    TraceBuilder b;
    b.begin("t0").read("t0", "x");
    EXPECT_TRUE(validate(b.trace()).ok);
    ValidatorOptions opts;
    opts.require_closed_transactions = true;
    auto r = validate(b.trace(), opts);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.event_index, b.trace().size());
}

TEST(Validator, HeldLockAtEndOnlyWithStrictOption)
{
    TraceBuilder b;
    b.acquire("t0", "m");
    EXPECT_TRUE(validate(b.trace()).ok);
    ValidatorOptions opts;
    opts.require_released_locks = true;
    EXPECT_FALSE(validate(b.trace(), opts).ok);
}

TEST(Validator, RejectsForkAfterChildStarted)
{
    TraceBuilder b;
    b.read("t1", "x").fork("t0", "t1");
    EXPECT_FALSE(validate(b.trace()).ok);
}

TEST(Validator, RejectsDoubleFork)
{
    TraceBuilder b;
    b.fork("t0", "t1").fork("t2", "t1");
    EXPECT_FALSE(validate(b.trace()).ok);
}

TEST(Validator, RejectsEventsAfterJoin)
{
    TraceBuilder b;
    b.read("t1", "x").join("t0", "t1").read("t1", "x");
    EXPECT_FALSE(validate(b.trace()).ok);
}

TEST(Validator, RejectsSelfFork)
{
    Trace t;
    t.fork(0, 0);
    EXPECT_FALSE(validate(t).ok);
}

TEST(Validator, RejectsSelfJoin)
{
    Trace t;
    t.join(0, 0);
    EXPECT_FALSE(validate(t).ok);
}

// --- MetaInfo ------------------------------------------------------------

TEST(MetaInfo, CountsBasics)
{
    Trace t = rho2();
    MetaInfo info = compute_metainfo(t);
    EXPECT_EQ(info.events, 8u);
    EXPECT_EQ(info.threads, 2u);
    EXPECT_EQ(info.vars, 2u);
    EXPECT_EQ(info.locks, 0u);
    EXPECT_EQ(info.transactions, 2u);
    EXPECT_EQ(info.unary_events, 0u);
    EXPECT_EQ(info.max_nesting, 1u);
    EXPECT_EQ(info.per_op[static_cast<size_t>(Op::kWrite)], 2u);
    EXPECT_EQ(info.per_op[static_cast<size_t>(Op::kRead)], 2u);
    EXPECT_DOUBLE_EQ(info.avg_txn_events(), 2.0);
}

TEST(MetaInfo, UnaryAndNested)
{
    TraceBuilder b;
    b.read("t0", "x");                       // unary
    b.begin("t0").begin("t0");               // nested begin
    b.write("t0", "x").end("t0").end("t0");  // txn of 3 inner events
    b.write("t0", "y");                      // unary
    MetaInfo info = compute_metainfo(b.trace());
    EXPECT_EQ(info.transactions, 1u);
    EXPECT_EQ(info.unary_events, 2u);
    EXPECT_EQ(info.max_nesting, 2u);
    EXPECT_EQ(info.max_txn_events, 3u); // inner begin, write, inner end
}

TEST(MetaInfo, PrintSmoke)
{
    std::ostringstream os;
    print_metainfo(os, compute_metainfo(rho2()));
    EXPECT_NE(os.str().find("events:"), std::string::npos);
    EXPECT_NE(os.str().find("transactions:"), std::string::npos);
}

// --- Text I/O -------------------------------------------------------------

TEST(TextIo, RoundTrip)
{
    TraceBuilder b;
    b.fork("t0", "t1").begin("t1").acquire("t1", "m");
    b.write("t1", "x").read("t1", "x").release("t1", "m");
    b.end("t1").join("t0", "t1");
    Trace original = b.take();

    std::ostringstream os;
    write_text(os, original);
    std::istringstream is(os.str());
    Trace parsed = read_text(is);

    ASSERT_EQ(parsed.size(), original.size());
    for (size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i], original[i]) << "event " << i;
}

TEST(TextIo, ParsesCommentsAndBlankLines)
{
    std::istringstream is("# header\n\n t0 begin \nt0 w x\n# done\nt0 end\n");
    Trace t = read_text(is);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t[1].op, Op::kWrite);
}

TEST(TextIo, RejectsUnknownOp)
{
    std::istringstream is("t0 frobnicate x\n");
    EXPECT_THROW(read_text(is), FatalError);
}

TEST(TextIo, RejectsMissingTarget)
{
    std::istringstream is("t0 w\n");
    EXPECT_THROW(read_text(is), FatalError);
}

TEST(TextIo, RejectsTargetOnBegin)
{
    std::istringstream is("t0 begin x\n");
    EXPECT_THROW(read_text(is), FatalError);
}

// --- Binary I/O -----------------------------------------------------------

TEST(BinaryIo, RoundTrip)
{
    Trace original;
    for (uint32_t i = 0; i < 1000; ++i) {
        uint32_t t = i % 5;
        original.begin(t);
        original.write(t, i % 300);
        original.acquire(t, i % 7);
        original.release(t, i % 7);
        original.read(t, (i * 13) % 300);
        original.end(t);
    }
    original.fork(0, 4);

    std::ostringstream os(std::ios::binary);
    write_binary(os, original);
    std::istringstream is(os.str(), std::ios::binary);
    Trace parsed = read_binary(is);

    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.num_threads(), original.num_threads());
    EXPECT_EQ(parsed.num_vars(), original.num_vars());
    EXPECT_EQ(parsed.num_locks(), original.num_locks());
    for (size_t i = 0; i < parsed.size(); ++i)
        ASSERT_EQ(parsed[i], original[i]) << "event " << i;
}

TEST(BinaryIo, RejectsBadMagic)
{
    std::istringstream is("NOTATRACE", std::ios::binary);
    EXPECT_THROW(read_binary(is), FatalError);
}

TEST(BinaryIo, RejectsTruncation)
{
    Trace t;
    t.write(0, 0);
    std::ostringstream os(std::ios::binary);
    write_binary(os, t);
    std::string data = os.str();
    data.resize(data.size() - 1);
    std::istringstream is(data, std::ios::binary);
    EXPECT_THROW(read_binary(is), FatalError);
}

} // namespace
} // namespace aero
