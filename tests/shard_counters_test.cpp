/**
 * @file
 * Concurrent counter reads during a threaded sharded check.
 *
 * Engine statistics are single-writer relaxed atomics (support/
 * counter.hpp) precisely so an operator thread can poll counters()
 * *while* shard workers are processing events. This suite verifies that
 * contract end to end: a reader thread polls every shard engine
 * mid-run, asserting per-counter monotonicity, and the final aggregate
 * must equal what the deterministic inline driver computes for the same
 * configuration. Runs under ThreadSanitizer in CI (name matches the
 * shard test filter), which turns any non-atomic counter into a hard
 * failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aerodrome/aerodrome_readopt.hpp"
#include "gen/patterns.hpp"
#include "shard/sharded_runner.hpp"

namespace aero {
namespace {

/** Forwarding checker that leaves ownership of the real engine with the
 *  test, so a poller thread can outlive the runner's lanes. */
class EngineProxy : public AtomicityChecker {
public:
    explicit EngineProxy(AtomicityChecker* inner) : inner_(inner) {}

    std::string_view name() const override { return inner_->name(); }
    bool
    process(const Event& e, size_t index) override
    {
        return inner_->process(e, index);
    }
    void
    reserve(uint32_t threads, uint32_t vars, uint32_t locks) override
    {
        inner_->reserve(threads, vars, locks);
    }
    StatList counters() const override { return inner_->counters(); }
    bool
    supports_frontier() const override
    {
        return inner_->supports_frontier();
    }
    bool
    uses_live_clock_proxies() const override
    {
        return inner_->uses_live_clock_proxies();
    }
    void
    export_frontier(ClockFrontier& out) const override
    {
        inner_->export_frontier(out);
    }
    void
    adopt_frontier(const ClockFrontier& in) override
    {
        inner_->adopt_frontier(in);
    }
    void
    export_seed(EngineSeed& seed) const override
    {
        inner_->export_seed(seed);
    }
    void reseed(const EngineSeed& seed) override { inner_->reseed(seed); }
    bool has_violation() const override { return inner_->has_violation(); }
    const std::optional<Violation>&
    violation() const override
    {
        return inner_->violation();
    }

private:
    AtomicityChecker* inner_;
};

TEST(ShardCounters, PollingMidRunIsMonotonicAndSumsExactly)
{
    // Big enough that the poller observes genuinely in-flight values,
    // small enough to stay cheap under ThreadSanitizer (the CI TSan job
    // runs this with real worker/poller interleavings).
    Trace t = gen::make_pipeline(8, 1200);

    std::mutex mu;
    std::vector<std::unique_ptr<AtomicityChecker>> engines;
    EngineFactory factory = [&]() -> std::unique_ptr<AtomicityChecker> {
        auto real = std::make_unique<AeroDromeReadOpt>(0, 0, 0);
        auto proxy = std::make_unique<EngineProxy>(real.get());
        std::lock_guard<std::mutex> lk(mu);
        engines.push_back(std::move(real));
        return proxy;
    };

    std::atomic<bool> done{false};
    std::atomic<uint64_t> polls{0};
    std::thread poller([&] {
        // name -> last seen value, per engine slot.
        std::vector<std::map<std::string, uint64_t>> last;
        while (!done.load(std::memory_order_acquire)) {
            std::vector<AtomicityChecker*> snapshot;
            {
                std::lock_guard<std::mutex> lk(mu);
                for (auto& e : engines)
                    snapshot.push_back(e.get());
            }
            if (last.size() < snapshot.size())
                last.resize(snapshot.size());
            for (size_t s = 0; s < snapshot.size(); ++s) {
                for (const auto& [name, value] : snapshot[s]->counters()) {
                    uint64_t& prev = last[s][name];
                    EXPECT_GE(value, prev)
                        << "counter " << name << " of shard " << s
                        << " went backwards mid-run";
                    prev = value;
                }
            }
            ++polls;
            // Poll, don't spin: the workers own the cores.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    ShardOptions opts;
    opts.shards = 4;
    opts.merge_epoch = 64;
    ShardRunResult threaded = run_sharded(factory, t, opts);
    done.store(true, std::memory_order_release);
    poller.join();

    ASSERT_FALSE(threaded.result.violation);
    EXPECT_GT(polls.load(), 0u);

    // The threaded aggregate must equal the deterministic inline run's
    // (clean runs process identical event sets, and the name-wise sum is
    // order-independent).
    ShardRunResult inline_r = run_sharded_inline(
        [] { return std::make_unique<AeroDromeReadOpt>(0, 0, 0); }, t,
        opts);
    ASSERT_FALSE(inline_r.result.violation);
    EXPECT_EQ(threaded.result.counters, inline_r.result.counters);
    EXPECT_EQ(threaded.shard_events, inline_r.shard_events);

    // And the final polled values must match the reported per-shard
    // breakdown exactly — counters() after the run is the same data the
    // poller was watching converge.
    ASSERT_EQ(engines.size(), 4u);
    for (size_t s = 0; s < engines.size(); ++s)
        EXPECT_EQ(engines[s]->counters(), threaded.shard_counters[s]);
}

} // namespace
} // namespace aero
