/**
 * @file
 * Golden-verdict regression corpus.
 *
 * Locks the exact verdict (serializable / violation, violating index and
 * thread) of every engine — the four AeroDrome variants with the
 * epoch-adaptive storage on and off, plus the two Velodrome baselines —
 * over a deterministic corpus: the fuzz-program seeds the differential
 * suites use and the adversarial cross-shard families. Any future engine
 * change that silently shifts a verdict (a check reordered, a gate
 * loosened, a generator drifting) fails this test loudly with the exact
 * corpus line that moved.
 *
 * The expected file is checked in at tests/golden/verdicts.txt. To
 * regenerate after an *intentional* verdict change:
 *
 *     AERO_REGEN_GOLDEN=1 ./build/golden_verdicts_test
 *
 * then review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/adversarial.hpp"
#include "gen/random_program.hpp"
#include "sim/scheduler.hpp"
#include "velodrome/velodrome.hpp"
#include "velodrome/velodrome_pk.hpp"

#ifndef AERO_SOURCE_DIR
#define AERO_SOURCE_DIR "."
#endif

namespace aero {
namespace {

struct Workload {
    std::string name;
    Trace trace;
};

Trace
fuzz_trace(uint64_t seed, uint32_t threads, uint32_t vars, uint32_t locks,
           double txnp)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = threads;
    opts.shared_vars = vars;
    opts.locks = locks;
    opts.txn_probability = txnp;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);
    sim::SchedulerOptions sched;
    sched.seed = seed * 7919 + 13;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

/** The corpus: same shapes the differential suites sweep, named so a
 *  golden mismatch identifies its input immediately. */
std::vector<Workload>
make_corpus()
{
    std::vector<Workload> out;
    uint64_t seed = 9000;
    for (uint32_t threads : {2u, 4u, 8u}) {
        for (uint32_t vars : {2u, 6u, 24u}) {
            for (double txnp : {0.3, 0.8}) {
                char name[64];
                std::snprintf(name, sizeof(name),
                              "fuzz(seed=%llu,thr=%u,vars=%u,txnp=%.1f)",
                              static_cast<unsigned long long>(seed),
                              threads, vars, txnp);
                out.push_back({name, fuzz_trace(seed, threads, vars,
                                                1 + threads / 2, txnp)});
                ++seed;
            }
        }
    }
    for (uint64_t s = 9100; s < 9110; ++s) {
        char name[64];
        std::snprintf(name, sizeof(name), "fuzz-varheavy(seed=%llu)",
                      static_cast<unsigned long long>(s));
        out.push_back({name, fuzz_trace(s, 4, 16, 1, 0.9)});
    }
    for (uint32_t hops : {1u, 2u, 3u}) {
        for (int variant = 0; variant < 4; ++variant) {
            gen::CrossShardAdversaryOptions o;
            o.hops = hops;
            o.open_carriers = (variant != 1);
            o.close_by_write = (variant == 2);
            o.serializable = (variant == 3);
            char name[64];
            std::snprintf(name, sizeof(name), "adversary(hops=%u,v=%d)",
                          hops, variant);
            out.push_back({name, gen::make_cross_shard_adversary(o)});
        }
    }
    return out;
}

void
append_line(std::string& golden, const std::string& workload,
            const char* engine, int epochs, const RunResult& r)
{
    char line[160];
    if (r.violation) {
        std::snprintf(line, sizeof(line),
                      "%s %s epochs=%d verdict=x index=%zu thread=%u\n",
                      workload.c_str(), engine, epochs,
                      r.details->event_index, r.details->thread);
    } else {
        std::snprintf(line, sizeof(line),
                      "%s %s epochs=%d verdict=ok events=%llu\n",
                      workload.c_str(), engine, epochs,
                      static_cast<unsigned long long>(r.events_processed));
    }
    golden += line;
}

template <typename Engine>
void
run_engine(std::string& golden, const Workload& w, const char* name,
           bool epochs, bool gc)
{
    Engine engine(w.trace.num_threads(), w.trace.num_vars(),
                  w.trace.num_locks());
    engine.set_epochs(epochs);
    engine.set_gc(gc);
    if (gc)
        engine.set_gc_sweep_every(1);
    RunResult r = run_checker(engine, w.trace);
    append_line(golden, w.name, name, epochs ? 1 : 0, r);
}

/** The full corpus fixture; with gc on, reclamation sweeps run at every
 *  transaction end and the output must still be byte-identical. */
std::string
generate_golden(bool gc)
{
    std::string golden;
    golden += "# engine x corpus verdict fixture; regenerate with "
              "AERO_REGEN_GOLDEN=1 ./golden_verdicts_test\n";
    for (const Workload& w : make_corpus()) {
        for (bool epochs : {true, false}) {
            run_engine<AeroDromeBasic>(golden, w, "aerodrome-basic",
                                       epochs, gc);
            run_engine<AeroDromeReadOpt>(golden, w, "aerodrome-readopt",
                                         epochs, gc);
            run_engine<AeroDromeOpt>(golden, w, "aerodrome", epochs, gc);
            run_engine<AeroDromeTuned>(golden, w, "aerodrome-tuned",
                                       epochs, gc);
        }
        {
            Velodrome velo(w.trace.num_threads(), w.trace.num_vars(),
                           w.trace.num_locks());
            velo.set_gc(gc);
            append_line(golden, w.name, "velodrome", 0,
                        run_checker(velo, w.trace));
            VelodromePK pk(w.trace.num_threads(), w.trace.num_vars(),
                           w.trace.num_locks());
            pk.set_gc(gc);
            append_line(golden, w.name, "velodrome-pk", 0,
                        run_checker(pk, w.trace));
        }
    }
    return golden;
}

void
expect_matches_fixture(const std::string& golden, bool allow_regen)
{
    const std::string path =
        std::string(AERO_SOURCE_DIR) + "/tests/golden/verdicts.txt";

    if (allow_regen && std::getenv("AERO_REGEN_GOLDEN")) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << golden;
        GTEST_SKIP() << "regenerated " << path << " — review the diff";
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (regenerate with AERO_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (expected == golden) {
        SUCCEED();
        return;
    }
    // Report the first diverging line, not a wall of text.
    std::istringstream a(expected), b(golden);
    std::string la, lb;
    size_t line = 0;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(a, la));
        const bool gb = static_cast<bool>(std::getline(b, lb));
        ++line;
        if (!ga && !gb)
            break;
        ASSERT_TRUE(ga && gb) << "fixture length changed at line " << line;
        ASSERT_EQ(la, lb) << "verdict drifted at line " << line;
    }
    FAIL() << "fixture mismatch"; // unreachable: loop asserts first
}

TEST(GoldenVerdicts, CorpusVerdictsMatchTheCheckedInFixture)
{
    expect_matches_fixture(generate_golden(false), true);
}

TEST(GoldenVerdicts, GcOnReproducesTheFixtureByteForByte)
{
    // Reclamation must not move a single verdict, index, or thread on
    // the whole corpus — the gc-on regeneration hits the same fixture.
    // The gc-on pass never regenerates: the fixture is defined by the
    // gc-off run, and gc must reproduce it.
    expect_matches_fixture(generate_golden(true), false);
}

} // namespace
} // namespace aero
