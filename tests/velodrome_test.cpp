/**
 * @file
 * Unit tests for the Velodrome baseline: cycle detection, unary
 * transactions, the garbage-collection optimization, and graph statistics
 * (the quantities the paper quotes when explaining Velodrome's behavior,
 * e.g. "13 nodes in the graph for pmd" vs "9000 for sunflow").
 */

#include <gtest/gtest.h>

#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "trace/builder.hpp"
#include "velodrome/velodrome.hpp"

namespace aero {
namespace {

RunResult
run(const Trace& trace, Velodrome& v)
{
    return run_checker(v, trace);
}

RunResult
run(const Trace& trace, const VelodromeOptions& opts = {})
{
    Velodrome v(trace.num_threads(), trace.num_vars(), trace.num_locks(),
                opts);
    return run_checker(v, trace);
}

TEST(Velodrome, DetectsSimpleCycle)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    auto r = run(b.trace());
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.details->event_index, 5u); // at t1's read of y
}

TEST(Velodrome, DetectsCycleBetweenOpenTransactions)
{
    // Unlike AeroDrome (Theorem 3), the graph algorithm reports cycles
    // even when both transactions are still open.
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    EXPECT_TRUE(run(b.trace()).violation);
}

TEST(Velodrome, SerializableLocking)
{
    TraceBuilder b;
    for (int i = 0; i < 3; ++i) {
        b.begin("t1").acquire("t1", "m").write("t1", "x");
        b.release("t1", "m").end("t1");
        b.begin("t2").acquire("t2", "m").read("t2", "x");
        b.release("t2", "m").end("t2");
    }
    EXPECT_FALSE(run(b.trace()).violation);
}

TEST(Velodrome, GcCollectsIndependentTransactions)
{
    Trace t = gen::make_independent(4, 50, 6);
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run(t, v).violation);
    // Transactions conflict with nothing foreign; after each end the node
    // is reclaimed, so the live graph never exceeds #threads (their
    // current transactions) by much.
    EXPECT_LE(v.stats().max_live_nodes, 8u);
    EXPECT_GT(v.stats().gc_deleted, 150u);
}

TEST(Velodrome, GcDisabledKeepsNodes)
{
    Trace t = gen::make_independent(4, 50, 6);
    VelodromeOptions opts;
    opts.garbage_collect = false;
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks(), opts);
    EXPECT_FALSE(run(t, v).violation);
    EXPECT_EQ(v.stats().gc_deleted, 0u);
    EXPECT_EQ(v.stats().max_live_nodes, v.stats().total_nodes);
}

TEST(Velodrome, GcOnOffSameVerdicts)
{
    for (uint32_t k : {2u, 3u, 5u}) {
        Trace ring = gen::make_ring(k);
        VelodromeOptions no_gc;
        no_gc.garbage_collect = false;
        EXPECT_TRUE(run(ring).violation);
        EXPECT_TRUE(run(ring, no_gc).violation);
    }
    Trace pipe = gen::make_pipeline(4, 20);
    VelodromeOptions no_gc;
    no_gc.garbage_collect = false;
    EXPECT_FALSE(run(pipe).violation);
    EXPECT_FALSE(run(pipe, no_gc).violation);
}

TEST(Velodrome, PipelineFullyCollected)
{
    // The pipeline's wavefront schedule completes each transaction before
    // its downstream reader begins, so GC cascades through the whole
    // graph: an upstream node with no incoming edges is deleted at its
    // end, the edge out of it is skipped, and the downstream node becomes
    // collectible in turn.
    Trace t = gen::make_pipeline(4, 100);
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run(t, v).violation);
    EXPECT_LE(v.stats().max_live_nodes, 8u);
    EXPECT_GT(v.stats().gc_deleted, 300u);
}

TEST(Velodrome, StarDefeatsGcAndGrowsSuccessorSets)
{
    // In the star workload every producer/consumer transaction hangs off
    // a still-active hub transaction, so nothing is ever collected, and
    // each new producer -> hub edge re-traverses the hub's ever-growing
    // consumer successor set: quadratic work on a serializable trace.
    gen::StarOptions opts;
    opts.producers = 2;
    opts.consumers = 2;
    opts.rounds = 200;
    Trace t = gen::make_star(opts);
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run(t, v).violation);
    EXPECT_GT(v.stats().max_live_nodes, 700u); // ~4 txns/round survive
    EXPECT_GT(v.stats().dfs_visits, 40000u);
    // Collection only happens at the very end, when the hub and feeder
    // transactions finally complete and the whole DAG cascades away; the
    // damage (quadratic DFS work) is already done by then.
}

TEST(Velodrome, UnaryTransactionsChainButDontCycle)
{
    TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.write("t1", "x").read("t2", "x");
    EXPECT_FALSE(run(b.trace()).violation);
}

TEST(Velodrome, UnaryParticipatesInCycle)
{
    // T1 -> unary -> T1 through t2's unary accesses.
    TraceBuilder b;
    b.begin("t1").write("t1", "x");
    b.read("t2", "x");
    b.write("t2", "y");
    b.read("t1", "y");
    b.end("t1");
    EXPECT_TRUE(run(b.trace()).violation);
}

TEST(Velodrome, NestedBlocksUseOutermostOnly)
{
    TraceBuilder b;
    b.begin("t1").begin("t1").write("t1", "x").end("t1");
    b.read("t1", "x").end("t1");
    b.begin("t2").read("t2", "x").end("t2");
    EXPECT_FALSE(run(b.trace()).violation);
}

TEST(Velodrome, EdgeDeduplication)
{
    TraceBuilder b;
    b.begin("t1");
    for (int i = 0; i < 100; ++i)
        b.write("t1", "x");
    b.end("t1");
    b.begin("t2");
    for (int i = 0; i < 100; ++i)
        b.read("t2", "x");
    b.end("t2");
    Trace t = b.take();
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_FALSE(run(t, v).violation);
    // One T1 -> T2 edge regardless of the hundred conflicting pairs.
    EXPECT_LE(v.stats().total_edges, 2u);
}

TEST(Velodrome, StatsTrackTotals)
{
    Trace t = gen::make_ring(3);
    Velodrome v(t.num_threads(), t.num_vars(), t.num_locks());
    EXPECT_TRUE(run(t, v).violation);
    EXPECT_EQ(v.stats().total_nodes, 3u);
    EXPECT_GE(v.stats().total_edges, 3u);
}

TEST(Velodrome, DynamicGrowth)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").read("t2", "x");
    b.write("t2", "y").read("t1", "y");
    b.end("t2").end("t1");
    Trace t = b.take();
    Velodrome v(0, 0, 0);
    EXPECT_TRUE(run_checker(v, t).violation);
}

} // namespace
} // namespace aero
