/**
 * @file
 * Unit tests for the concurrent-program simulator: statement semantics,
 * lock blocking, fork/join gating, scheduling policies, determinism, and
 * deadlock detection.
 */

#include <gtest/gtest.h>

#include "sim/program.hpp"
#include "sim/scheduler.hpp"
#include "support/assert.hpp"
#include "trace/metainfo.hpp"
#include "trace/validator.hpp"

namespace aero::sim {
namespace {

TEST(Program, ThreadAccessorGrows)
{
    Program p;
    p.thread(3).read(0);
    EXPECT_EQ(p.threads.size(), 4u);
    EXPECT_EQ(p.total_statements(), 1u);
}

TEST(Program, ValidateCatchesSelfFork)
{
    Program p;
    p.thread(0).fork(0);
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateCatchesDoubleFork)
{
    Program p;
    p.thread(0).fork(1);
    p.thread(2).fork(1);
    p.thread(1).compute();
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateCatchesOutOfRangeTargets)
{
    Program p;
    p.thread(0).fork(9);
    EXPECT_THROW(p.validate(), FatalError);
    Program q;
    q.thread(0).join(9);
    EXPECT_THROW(q.validate(), FatalError);
}

TEST(Scheduler, SingleThreadSequential)
{
    Program p;
    auto& t = p.thread(0);
    t.begin();
    t.write(0);
    t.read(0);
    t.end();
    SimResult r = run_program(p);
    EXPECT_FALSE(r.deadlocked);
    ASSERT_EQ(r.trace.size(), 4u);
    EXPECT_EQ(r.trace[0].op, Op::kBegin);
    EXPECT_EQ(r.trace[3].op, Op::kEnd);
}

TEST(Scheduler, ComputeEmitsNoEvent)
{
    Program p;
    p.thread(0).compute();
    p.thread(0).write(0);
    p.thread(0).compute();
    SimResult r = run_program(p);
    EXPECT_EQ(r.trace.size(), 1u);
    EXPECT_EQ(r.steps, 3u);
}

TEST(Scheduler, ForkGatesChildExecution)
{
    Program p;
    p.thread(0).compute();
    p.thread(0).fork(1);
    p.thread(1).write(0);
    SimResult r = run_program(p);
    EXPECT_FALSE(r.deadlocked);
    // The child's write must come after the fork event in the trace.
    ASSERT_EQ(r.trace.size(), 2u);
    EXPECT_EQ(r.trace[0].op, Op::kFork);
    EXPECT_EQ(r.trace[1].op, Op::kWrite);
}

TEST(Scheduler, JoinWaitsForChild)
{
    Program p;
    p.thread(0).fork(1);
    p.thread(0).join(1);
    p.thread(0).read(0);
    for (int i = 0; i < 10; ++i)
        p.thread(1).write(0);
    for (uint64_t seed = 0; seed < 20; ++seed) {
        SchedulerOptions opts;
        opts.seed = seed;
        SimResult r = run_program(p, opts);
        EXPECT_FALSE(r.deadlocked);
        // join must appear after all 10 child writes.
        size_t join_pos = 0, last_write = 0;
        for (size_t i = 0; i < r.trace.size(); ++i) {
            if (r.trace[i].op == Op::kJoin)
                join_pos = i;
            if (r.trace[i].op == Op::kWrite)
                last_write = i;
        }
        EXPECT_GT(join_pos, last_write);
    }
}

TEST(Scheduler, LockMutualExclusion)
{
    Program p;
    for (uint32_t t = 0; t < 3; ++t) {
        auto& th = p.thread(t);
        for (int i = 0; i < 20; ++i) {
            th.acquire(0);
            th.write(0);
            th.release(0);
        }
    }
    for (uint64_t seed = 0; seed < 10; ++seed) {
        SchedulerOptions opts;
        opts.seed = seed;
        SimResult r = run_program(p, opts);
        EXPECT_FALSE(r.deadlocked);
        EXPECT_TRUE(validate(r.trace).ok); // validator checks exclusion
    }
}

TEST(Scheduler, DetectsLockDeadlock)
{
    // Classic AB-BA deadlock; with the round-robin quantum of 1 the two
    // threads each grab one lock and then block.
    Program p;
    p.thread(0).acquire(0);
    p.thread(0).acquire(1);
    p.thread(0).release(1);
    p.thread(0).release(0);
    p.thread(1).acquire(1);
    p.thread(1).acquire(0);
    p.thread(1).release(0);
    p.thread(1).release(1);
    SchedulerOptions opts;
    opts.policy = Policy::kRoundRobin;
    opts.quantum = 1;
    SimResult r = run_program(p, opts);
    EXPECT_TRUE(r.deadlocked);
}

TEST(Scheduler, DetectsJoinOfNeverForkedButFinishedIsFine)
{
    // Joining a thread that was runnable from the start and finished.
    Program p;
    p.thread(1).write(0);
    p.thread(0).join(1);
    SimResult r = run_program(p);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Scheduler, DeterministicForSeed)
{
    Program p;
    for (uint32_t t = 0; t < 4; ++t) {
        for (int i = 0; i < 30; ++i) {
            p.thread(t).begin();
            p.thread(t).write(t);
            p.thread(t).end();
        }
    }
    SchedulerOptions opts;
    opts.seed = 42;
    Trace a = run_program(p, opts).trace;
    Trace b = run_program(p, opts).trace;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
    opts.seed = 43;
    Trace c = run_program(p, opts).trace;
    bool same = a.size() == c.size();
    if (same) {
        same = std::equal(a.events().begin(), a.events().end(),
                          c.events().begin());
    }
    EXPECT_FALSE(same) << "different seeds should interleave differently";
}

TEST(Scheduler, RoundRobinRespectsQuantum)
{
    Program p;
    for (uint32_t t = 0; t < 2; ++t) {
        for (int i = 0; i < 8; ++i)
            p.thread(t).write(t);
    }
    SchedulerOptions opts;
    opts.policy = Policy::kRoundRobin;
    opts.quantum = 4;
    Trace tr = run_program(p, opts).trace;
    ASSERT_EQ(tr.size(), 16u);
    // Expect runs of exactly 4 events per thread.
    for (size_t i = 0; i < tr.size(); i += 4) {
        for (size_t j = 1; j < 4; ++j) {
            EXPECT_EQ(tr[i + j].tid, tr[i].tid) << "at " << i + j;
        }
        if (i + 4 < tr.size()) {
            EXPECT_NE(tr[i + 4].tid, tr[i].tid);
        }
    }
}

TEST(Scheduler, StickyProducesLongerRunsThanRandom)
{
    Program p;
    for (uint32_t t = 0; t < 4; ++t) {
        for (int i = 0; i < 200; ++i)
            p.thread(t).write(t);
    }
    auto switches = [](const Trace& tr) {
        size_t n = 0;
        for (size_t i = 1; i < tr.size(); ++i)
            n += tr[i].tid != tr[i - 1].tid;
        return n;
    };
    SchedulerOptions sticky;
    sticky.policy = Policy::kSticky;
    sticky.stickiness = 0.95;
    sticky.seed = 7;
    SchedulerOptions rnd;
    rnd.policy = Policy::kRandom;
    rnd.seed = 7;
    EXPECT_LT(switches(run_program(p, sticky).trace),
              switches(run_program(p, rnd).trace) / 2);
}

TEST(Scheduler, EmitsWellFormedTracesUnderAllPolicies)
{
    Program p;
    p.thread(0).fork(1);
    p.thread(0).fork(2);
    for (uint32_t t = 0; t < 3; ++t) {
        auto& th = p.thread(t);
        for (int i = 0; i < 10; ++i) {
            th.begin();
            th.acquire(0);
            th.write(0);
            th.release(0);
            th.end();
        }
    }
    p.thread(0).join(1);
    p.thread(0).join(2);
    for (Policy pol :
         {Policy::kRoundRobin, Policy::kRandom, Policy::kSticky}) {
        SchedulerOptions opts;
        opts.policy = pol;
        opts.seed = 11;
        SimResult r = run_program(p, opts);
        EXPECT_FALSE(r.deadlocked);
        ValidatorOptions vopts;
        vopts.require_closed_transactions = true;
        vopts.require_released_locks = true;
        EXPECT_TRUE(validate(r.trace, vopts).ok);
    }
}

} // namespace
} // namespace aero::sim
