/**
 * @file
 * Memory soak: on an unbounded-style rolling stream (thread churn +
 * working-set drift, gen/rolling_stream.hpp), engine memory_bytes()
 * must *plateau* once reclamation is on — the second half of the run
 * may not exceed the first half's high-water mark by more than 10% —
 * with and without sharding. The contrast test pins the converse: with
 * gc off the same stream grows the footprint without bound (the thread
 * id space alone inflates every clock), so the plateau is evidence the
 * GC works, not that the workload is small.
 *
 * Event count is CI-budgeted (kDefaultEvents) and overridable via
 * AERO_SOAK_EVENTS for real soaks; the test is labelled `soak` in ctest.
 *
 * The accounting audit at the bottom keeps memory_bytes() honest: on a
 * growth workload the sum the engine reports must cover the bulk of the
 * process-level malloc delta (glibc mallinfo2), so new containers can't
 * silently dodge the soak assertions by going unaccounted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/rolling_stream.hpp"
#include "shard/sharded_runner.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace aero {
namespace {

constexpr uint64_t kDefaultEvents = 600000;

uint64_t
soak_events()
{
    if (const char* v = std::getenv("AERO_SOAK_EVENTS")) {
        uint64_t n = std::strtoull(v, nullptr, 10);
        if (n > 0)
            return n;
    }
    return kDefaultEvents;
}

gen::RollingStreamOptions
stream_opts(uint64_t max_events)
{
    gen::RollingStreamOptions o;
    o.workers = 8;
    o.churn_every = 1024; // heavy churn: ~1 thread generation / 1k events
    o.vars = 2048;
    o.hot_window = 256;
    o.drift_every = 4096;
    o.locks = 8;
    o.max_events = max_events;
    return o;
}

/** Drive `e` over the stream, sampling memory_bytes() every 4096 events;
 *  returns {max over first half, max over second half}. */
template <typename Engine>
std::pair<size_t, size_t>
sample_halves(Engine& e, uint64_t n)
{
    gen::RollingStreamSource src(stream_opts(n));
    Event ev;
    uint64_t i = 0;
    size_t first = 0, second = 0;
    while (src.next(ev)) {
        if (e.process(ev, i))
            ADD_FAILURE() << "stream is violation-free by construction";
        if (++i % 4096 == 0) {
            size_t& half = i <= n / 2 ? first : second;
            half = std::max(half, e.memory_bytes());
        }
    }
    EXPECT_EQ(i, n);
    return {first, second};
}

template <typename Engine>
void
expect_plateau()
{
    const uint64_t n = soak_events();
    Engine e(0, 0, 0);
    e.set_gc(true);
    auto [first, second] = sample_halves(e, n);
    ASSERT_GT(first, 0u);
    EXPECT_LE(second, first + first / 10)
        << e.name() << ": memory grew past the first-half high-water mark "
        << "(" << first << " -> " << second << " bytes)";
    // The plateau must come from actual reclamation, not slack.
    EXPECT_GT(e.thread_slots().recycled(), 0u) << e.name();
    EXPECT_GT(e.gc_sweeps(), 0u) << e.name();
}

TEST(SoakMemory, OptPlateausWithGc) { expect_plateau<AeroDromeOpt>(); }
TEST(SoakMemory, TunedPlateausWithGc) { expect_plateau<AeroDromeTuned>(); }
TEST(SoakMemory, ReadOptPlateausWithGc)
{
    expect_plateau<AeroDromeReadOpt>();
}
TEST(SoakMemory, BasicPlateausWithGc) { expect_plateau<AeroDromeBasic>(); }

TEST(SoakMemory, WithoutGcTheSameStreamGrows)
{
    // Contrast: gc off on a quarter-length run already blows well past
    // the 10% band — the churned thread ids alone widen every clock.
    const uint64_t n = std::max<uint64_t>(soak_events() / 4, 100000);
    AeroDromeOpt e(0, 0, 0);
    e.set_gc(false);
    auto [first, second] = sample_halves(e, n);
    ASSERT_GT(first, 0u);
    EXPECT_GT(second, first + first / 10)
        << "gc-off footprint unexpectedly flat: the soak workload no "
        << "longer stresses reclamation";
}

TEST(SoakMemory, ShardedRunStaysFlatWithGc)
{
    // The sharded runner reports per-shard memory only at end of run, so
    // the plateau check compares a half-length against a full-length
    // run: near-equal end footprints mean the second half added nothing.
    const uint64_t n = soak_events() / 2;
    auto factory = [] {
        auto e = std::make_unique<AeroDromeOpt>(0, 0, 0);
        e->set_gc(true);
        return e;
    };
    ShardOptions opts;
    opts.shards = 2;

    auto total_memory = [&](uint64_t events) {
        gen::RollingStreamSource src(stream_opts(events));
        ShardRunResult r = run_sharded(factory, src, opts);
        EXPECT_FALSE(r.result.violation);
        uint64_t total = 0;
        for (uint64_t m : r.shard_memory_bytes)
            total += m;
        EXPECT_GT(total, 0u);
        return total;
    };

    uint64_t half = total_memory(n / 2);
    uint64_t full = total_memory(n);
    EXPECT_LE(full, half + half / 10)
        << "sharded footprint grew with trace length despite gc ("
        << half << " -> " << full << " bytes)";
}

#if defined(__GLIBC__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)

/** In-use heap bytes (glibc). */
size_t
heap_in_use()
{
    struct mallinfo2 mi = mallinfo2();
    return mi.uordblks;
}

TEST(SoakMemory, AccountingCoversTheMallocDelta)
{
    // Growth workload (gc off) so the engine's own state dominates the
    // process delta; everything else allocated below (stream buffers,
    // trackers) is small next to the clock banks and table.
    const uint64_t n = 100000;
    const size_t before = heap_in_use();
    AeroDromeTuned e(0, 0, 0);
    e.set_gc(false);
    gen::RollingStreamSource src(stream_opts(n));
    Event ev;
    uint64_t i = 0;
    while (src.next(ev))
        ASSERT_FALSE(e.process(ev, i++));
    const size_t delta = heap_in_use() - before;
    const size_t reported = e.memory_bytes();
    // memory_bytes() must cover at least half of what the process
    // actually allocated and held; a big gap means some container went
    // unaccounted and the soak plateau above could be lying.
    EXPECT_GE(reported, delta / 2)
        << "reported " << reported << " of " << delta
        << " malloc-observed bytes";
}

#endif // __GLIBC__ && !ASan && !TSan

} // namespace
} // namespace aero
