/**
 * @file
 * End-event update sets (the table's update windows; see
 * vc/adaptive_clock.hpp and src/vc/README.md "End-event complexity").
 *
 * Three properties:
 *  1. Complexity guard — an end event's sweep visits O(|update set|)
 *     entries, not O(|table|): a cold transaction ending against a table
 *     of 10k+ touched variables must sweep a handful of entries (the
 *     counters expose the visit count), while the AERO_UPDATE_SETS=0
 *     full sweep visits everything.
 *  2. Fuzz parity — for every engine, verdicts (and spot-checked clock
 *     state) are bit-for-bit identical with update sets on and off, over
 *     the random-program corpus. The sets only *skip* entries whose gate
 *     provably cannot fire.
 *  3. Reseed safety — the sharded runner's suspect-window confirmation
 *     replay (which reseeds fresh engines mid-transaction) agrees with
 *     the sets on and off.
 */

#include <gtest/gtest.h>

#include "aerodrome/aerodrome_basic.hpp"
#include "aerodrome/aerodrome_opt.hpp"
#include "aerodrome/aerodrome_readopt.hpp"
#include "aerodrome/aerodrome_tuned.hpp"
#include "analysis/runner.hpp"
#include "gen/random_program.hpp"
#include "shard/sharded_runner.hpp"
#include "sim/scheduler.hpp"
#include "trace/trace.hpp"

namespace aero {
namespace {

/** 10k single-write transactions of thread 0 (one fresh var each), with
 *  one "cold" transaction of thread 1 — nothing ordered into it — split
 *  around them. */
Trace
cold_end_trace(uint32_t touched_vars)
{
    Trace t;
    const uint32_t half = touched_vars / 2;
    for (uint32_t x = 0; x < half; ++x) {
        t.begin(0);
        t.write(0, x);
        t.end(0);
    }
    t.begin(1);
    t.write(1, touched_vars);
    for (uint32_t x = half; x < touched_vars; ++x) {
        t.begin(0);
        t.write(0, x);
        t.end(0);
    }
    t.end(1);
    return t;
}

template <typename Engine>
void
expect_cold_end_sweep_is_small(bool update_sets, uint64_t touched_vars)
{
    Trace t = cold_end_trace(static_cast<uint32_t>(touched_vars));
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_update_sets(update_sets);

    // Feed everything but the final end (thread 1's), then isolate the
    // entries swept by that one cold end event.
    for (size_t i = 0; i + 1 < t.size(); ++i)
        ASSERT_FALSE(engine.process(t[i], i));
    const uint64_t swept_before = engine.stats().end_swept_entries;
    ASSERT_FALSE(engine.process(t[t.size() - 1], t.size() - 1));
    const uint64_t swept = engine.stats().end_swept_entries - swept_before;

    if (update_sets) {
        // Thread 1's transaction wrote one variable; only entries its own
        // accesses (or clocks ordered after its begin — none here) fed
        // can be enrolled. The table itself holds >= touched_vars entries.
        EXPECT_LE(swept, 8u);
    } else {
        // The escape hatch restores the full-table sweep.
        EXPECT_GE(swept, touched_vars);
    }
}

TEST(UpdateSetComplexity, BasicColdEndSweepsSetNotTable)
{
    expect_cold_end_sweep_is_small<AeroDromeBasic>(true, 10000);
}

TEST(UpdateSetComplexity, ReadOptColdEndSweepsSetNotTable)
{
    expect_cold_end_sweep_is_small<AeroDromeReadOpt>(true, 10000);
}

TEST(UpdateSetComplexity, BasicFullSweepWithoutSets)
{
    expect_cold_end_sweep_is_small<AeroDromeBasic>(false, 10000);
}

TEST(UpdateSetComplexity, ReadOptFullSweepWithoutSets)
{
    expect_cold_end_sweep_is_small<AeroDromeReadOpt>(false, 10000);
}

/** A warm end — the transaction that touched every variable — must still
 *  propagate into all of them through the set-driven sweep. */
TEST(UpdateSetComplexity, WarmEndStillSweepsItsOwnAccesses)
{
    const uint32_t vars = 1000;
    Trace t;
    t.begin(0);
    for (uint32_t x = 0; x < vars; ++x)
        t.write(0, x);
    t.end(0);

    AeroDromeReadOpt engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_update_sets(true);
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_FALSE(engine.process(t[i], i));
    EXPECT_GE(engine.stats().end_swept_entries.load(), uint64_t{vars});
}

// --- Fuzz parity: AERO_UPDATE_SETS on vs off, all four engines ------------

Trace
fuzz_trace(uint64_t seed)
{
    gen::RandomProgramOptions opts;
    opts.seed = seed;
    opts.threads = 4;
    opts.shared_vars = 6;
    opts.locks = 2;
    opts.txn_probability = 0.8;
    opts.steps_per_thread = 50;
    sim::Program prog = gen::make_random_program(opts);
    sim::SchedulerOptions sched;
    sched.seed = seed * 7919 + 13;
    sim::SimResult sim = sim::run_program(prog, sched);
    EXPECT_FALSE(sim.deadlocked);
    return std::move(sim.trace);
}

template <typename Engine>
RunResult
run_with_sets(const Trace& t, bool on)
{
    Engine engine(t.num_threads(), t.num_vars(), t.num_locks());
    engine.set_update_sets(on);
    return run_checker(engine, t);
}

void
expect_same_verdict(const RunResult& a, const RunResult& b,
                    const char* what)
{
    ASSERT_EQ(a.violation, b.violation) << what;
    if (a.violation) {
        EXPECT_EQ(a.details->event_index, b.details->event_index) << what;
        EXPECT_EQ(a.details->thread, b.details->thread) << what;
    }
}

TEST(UpdateSetParity, FuzzOnOffAllEngines)
{
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        Trace t = fuzz_trace(seed);

        RunResult basic_on = run_with_sets<AeroDromeBasic>(t, true);
        RunResult basic_off = run_with_sets<AeroDromeBasic>(t, false);
        expect_same_verdict(basic_on, basic_off, "basic on/off");

        RunResult ro_on = run_with_sets<AeroDromeReadOpt>(t, true);
        RunResult ro_off = run_with_sets<AeroDromeReadOpt>(t, false);
        expect_same_verdict(ro_on, ro_off, "readopt on/off");

        // Algorithms 1 and 2 fire at the same event; the sets must not
        // perturb that cross-engine agreement either.
        expect_same_verdict(basic_on, ro_on, "basic vs readopt");

        // opt/tuned carry Algorithm 3's structural update sets (no
        // toggle); their verdict presence must keep matching (Theorem 3
        // — the fuzz corpus closes every transaction it opens).
        AeroDromeOpt opt(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult opt_r = run_checker(opt, t);
        AeroDromeTuned tuned(t.num_threads(), t.num_vars(), t.num_locks());
        RunResult tuned_r = run_checker(tuned, t);
        EXPECT_EQ(basic_on.violation, opt_r.violation) << "seed " << seed;
        expect_same_verdict(opt_r, tuned_r, "opt vs tuned");
    }
}

/** Clock state, not just verdicts: the final W_x clocks of the basic
 *  engine must be identical on serializable traces. */
TEST(UpdateSetParity, FuzzFinalWriteClocksMatch)
{
    for (uint64_t seed = 100; seed < 120; ++seed) {
        Trace t = fuzz_trace(seed);
        AeroDromeBasic on(t.num_threads(), t.num_vars(), t.num_locks());
        on.set_update_sets(true);
        AeroDromeBasic off(t.num_threads(), t.num_vars(), t.num_locks());
        off.set_update_sets(false);
        RunResult r_on = run_checker(on, t);
        RunResult r_off = run_checker(off, t);
        expect_same_verdict(r_on, r_off, "basic on/off");
        if (r_on.violation)
            continue; // engines stop at the violation; state diverges
        for (uint32_t x = 0; x < t.num_vars(); ++x)
            EXPECT_EQ(on.write_clock_of(x), off.write_clock_of(x))
                << "seed " << seed << " var " << x;
        for (uint32_t u = 0; u < t.num_threads(); ++u)
            EXPECT_EQ(on.clock_of(u), off.clock_of(u))
                << "seed " << seed << " thread " << u;
    }
}

// --- Reseed: suspect-window confirmation replay with sets on/off ----------

template <typename Engine>
EngineFactory
factory(bool update_sets)
{
    return [update_sets] {
        auto engine = std::make_unique<Engine>(0, 0, 0);
        engine->set_update_sets(update_sets);
        return engine;
    };
}

TEST(UpdateSetReseed, LegacyReplayParityOnOff)
{
    // Legacy periodic-only mode: violations between merges are demoted
    // to suspects and confirmed by replaying through a *reseeded* fresh
    // engine — the reseed path that must reopen the update windows.
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        Trace t = fuzz_trace(seed);
        ShardOptions opts;
        opts.shards = 4;
        opts.merge_epoch = 16;
        opts.divergence_barriers = false;
        opts.confirm_replay = true;
        ShardRunResult on =
            run_sharded_inline(factory<AeroDromeReadOpt>(true), t, opts);
        ShardRunResult off =
            run_sharded_inline(factory<AeroDromeReadOpt>(false), t, opts);
        ASSERT_EQ(on.result.violation, off.result.violation)
            << "seed " << seed;
        if (on.result.violation) {
            EXPECT_EQ(on.result.details->event_index,
                      off.result.details->event_index)
                << "seed " << seed;
            EXPECT_EQ(on.result.details->thread, off.result.details->thread)
                << "seed " << seed;
        }
    }
}

/** Per-shard memory accounting rides along with the runner results. */
TEST(ShardMemory, AccountingIsPopulated)
{
    Trace t = fuzz_trace(7);
    ShardOptions opts;
    opts.shards = 2;
    ShardRunResult r =
        run_sharded_inline(factory<AeroDromeReadOpt>(true), t, opts);
    ASSERT_EQ(r.shard_memory_bytes.size(), 2u);
    for (uint64_t bytes : r.shard_memory_bytes)
        EXPECT_GT(bytes, 0u); // banks exist once threads were seen
}

} // namespace
} // namespace aero
