/**
 * @file
 * Fault-injection harness suite (src/support/fault.hpp).
 *
 * Covers the plan grammar, the deterministic corruption helper, the
 * always-compiled fault sites (worker kill/stall/delay, ring-full
 * backpressure, alloc-cap breach), the bounded SPSC waits the recovery
 * machinery leans on, and the panic-context plumbing. The per-byte
 * trace-reader sites are compile-gated (-DAERO_FAULTS=ON); their tests
 * skip when the hooks are not present (fault_points_compiled()).
 *
 * Every injected failure must end in a structured RunStatus — never a
 * hang, an abort, or a torn result.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "aerodrome/aerodrome_opt.hpp"
#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "shard/sharded_runner.hpp"
#include "shard/spsc_queue.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "trace/binary_io.hpp"
#include "trace/stream.hpp"
#include "trace/text_io.hpp"

namespace aero {
namespace {

/** Every test leaves the process-wide injector disarmed. */
class Fault : public ::testing::Test {
protected:
    void TearDown() override { FaultInjector::instance().disarm(); }
};

EngineFactory
opt_factory()
{
    return [] { return std::make_unique<AeroDromeOpt>(0, 0, 0); };
}

// --- Plan grammar -----------------------------------------------------------

TEST_F(Fault, PlanParsesMinimalSpec)
{
    auto plan = parse_fault_plan("trace-byte:bit-flip:5");
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->site, FaultSite::kTraceByte);
    EXPECT_EQ(plan->kind, FaultKind::kBitFlip);
    EXPECT_EQ(plan->trigger, 5u);
    EXPECT_EQ(plan->shard, FaultPlan::kAnyShard);
    EXPECT_EQ(plan->seed, 1u);
    EXPECT_EQ(plan->duration, 0u);
}

TEST_F(Fault, PlanParsesFullSpec)
{
    auto plan = parse_fault_plan("worker:kill:3:1:42:100");
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->site, FaultSite::kWorker);
    EXPECT_EQ(plan->kind, FaultKind::kWorkerKill);
    EXPECT_EQ(plan->trigger, 3u);
    EXPECT_EQ(plan->shard, 1u);
    EXPECT_EQ(plan->seed, 42u);
    EXPECT_EQ(plan->duration, 100u);

    auto any = parse_fault_plan("ring:ring-full:7:any");
    ASSERT_TRUE(any.has_value());
    EXPECT_EQ(any->shard, FaultPlan::kAnyShard);
}

TEST_F(Fault, PlanRejectsMalformedSpecs)
{
    // Unknown site / kind, kind-site mismatch, bad arity, bad numbers.
    for (const char* spec :
         {"", "worker", "worker:kill", "bogus:kill:0", "worker:bogus:0",
          "worker:bit-flip:0",      // byte kind on the worker site
          "trace-byte:kill:0",      // worker kind on the byte site
          "alloc:ring-full:0",      // ring kind on the alloc site
          "worker:kill:abc",        // non-numeric trigger
          "worker:kill:-1",         // negative trigger
          "worker:kill:0:zz",       // bad shard
          "worker:kill:0:0:x",      // bad seed
          "worker:kill:0:0:1:x",    // bad duration
          "worker:kill:0:0:1:2:3"}) // too many fields
        EXPECT_FALSE(parse_fault_plan(spec).has_value()) << spec;
}

// --- corrupt_bytes helper ---------------------------------------------------

TEST_F(Fault, CorruptBytesIsDeterministicAndRespectsMinOffset)
{
    const std::string original(256, 'a');
    for (FaultKind kind :
         {FaultKind::kBitFlip, FaultKind::kTruncate, FaultKind::kGarbage}) {
        std::string a = original, b = original;
        const uint64_t off_a = corrupt_bytes(a, kind, /*seed=*/99,
                                             /*min_offset=*/16);
        const uint64_t off_b = corrupt_bytes(b, kind, 99, 16);
        EXPECT_EQ(off_a, off_b);
        EXPECT_EQ(a, b) << "same seed must corrupt identically";
        EXPECT_GE(off_a, 16u);
        EXPECT_LT(off_a, original.size());
        EXPECT_NE(a, original) << "corruption was a no-op";
        if (kind == FaultKind::kTruncate)
            EXPECT_EQ(a.size(), off_a);
        else
            EXPECT_EQ(a.size(), original.size());
    }
    // Different seeds land on different offsets at least sometimes.
    std::string c = original, d = original;
    const uint64_t oc = corrupt_bytes(c, FaultKind::kBitFlip, 1);
    const uint64_t od = corrupt_bytes(d, FaultKind::kBitFlip, 2);
    EXPECT_TRUE(oc != od || c != d);
}

TEST_F(Fault, CorruptBytesOnTooSmallImageIsANoOp)
{
    std::string tiny = "ab";
    const uint64_t off =
        corrupt_bytes(tiny, FaultKind::kGarbage, 5, /*min_offset=*/2);
    EXPECT_EQ(off, tiny.size());
    EXPECT_EQ(tiny, "ab");
}

// --- Compile-gated trace-byte sites -----------------------------------------

TEST_F(Fault, InjectedBinaryTruncationIsAStructuredStreamError)
{
    if (!fault_points_compiled())
        GTEST_SKIP() << "per-byte hooks not compiled (-DAERO_FAULTS=ON)";

    Trace t = gen::make_pipeline(4, 50);
    std::ostringstream blob;
    write_binary(blob, t);

    FaultPlan plan;
    plan.site = FaultSite::kTraceByte;
    plan.kind = FaultKind::kTruncate;
    plan.trigger = 40; // post-header byte count: mid-record territory
    FaultInjector::instance().arm(plan);

    std::istringstream in(blob.str(), std::ios::binary);
    BinaryEventSource src(in);
    AeroDromeOpt engine(0, 0, 0);
    RunResult r = run_checker_stream(engine, src);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    ASSERT_EQ(r.status(), RunStatus::kStreamError);
    EXPECT_EQ(r.stream_error->cause, StreamError::Cause::kTruncated);
    EXPECT_FALSE(r.stream_error->message.empty());
    EXPECT_LT(r.events_processed, t.size());
}

TEST_F(Fault, InjectedTextGarbageStopsStrictAndResyncsWhenAsked)
{
    if (!fault_points_compiled())
        GTEST_SKIP() << "per-byte hooks not compiled (-DAERO_FAULTS=ON)";

    Trace t = gen::make_pipeline(2, 20);
    std::ostringstream text;
    write_text(text, t);

    FaultPlan plan;
    plan.site = FaultSite::kTraceByte;
    plan.kind = FaultKind::kGarbage;
    plan.trigger = 10; // 0-based line count

    // Strict: the corrupt line ends the run with a parse error naming it.
    FaultInjector::instance().arm(plan);
    {
        std::istringstream in(text.str());
        TextEventSource src(in);
        AeroDromeOpt engine(0, 0, 0);
        RunResult r = run_checker_stream(engine, src);
        ASSERT_EQ(r.status(), RunStatus::kStreamError);
        EXPECT_EQ(r.stream_error->cause, StreamError::Cause::kParse);
        EXPECT_EQ(r.stream_error->byte_offset, 11u) << "1-based line no.";
    }

    // Resync: the corrupt line is recorded and skipped; the run finishes
    // degraded, with the rest of the stream checked.
    FaultInjector::instance().arm(plan);
    {
        std::istringstream in(text.str());
        TextEventSource src(in);
        src.set_resync(true);
        AeroDromeOpt engine(0, 0, 0);
        RunResult r = run_checker_stream(engine, src);
        ASSERT_EQ(r.status(), RunStatus::kDegraded);
        EXPECT_EQ(r.stream_errors_recovered, 1u);
        ASSERT_EQ(src.recovered_errors().size(), 1u);
        EXPECT_EQ(src.recovered_errors()[0].byte_offset, 11u);
    }
}

// --- Worker faults (always compiled) ----------------------------------------

/** Serializable workload with plenty of events on every shard. */
Trace
worker_workload()
{
    return gen::make_pipeline(4, 500);
}

TEST_F(Fault, KilledWorkerIsRecoveredAndTheVerdictStaysSound)
{
    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerKill;
    plan.trigger = 25;
    plan.shard = 0;
    FaultInjector::instance().arm(plan);

    Trace t = worker_workload();
    ShardOptions opts;
    opts.shards = 2;
    opts.watchdog_ms = 150;
    ShardRunResult r = run_sharded(opt_factory(), t, opts);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_FALSE(r.result.violation)
        << "recovery fabricated a violation on a serializable trace";
    // Exact when the replay window was intact, degraded otherwise —
    // both are structured completions.
    const RunStatus status = r.result.status();
    EXPECT_TRUE(status == RunStatus::kOk || status == RunStatus::kDegraded)
        << run_status_name(status);
}

TEST_F(Fault, StalledWorkerIsEvictedAndReplaced)
{
    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerStall;
    plan.trigger = 40;
    plan.duration = 5000; // stall cap well past the watchdog deadline
    FaultInjector::instance().arm(plan);

    Trace t = worker_workload();
    ShardOptions opts;
    opts.shards = 2;
    opts.watchdog_ms = 150;
    ShardRunResult r = run_sharded(opt_factory(), t, opts);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_FALSE(r.result.violation);
    const RunStatus status = r.result.status();
    EXPECT_TRUE(status == RunStatus::kOk || status == RunStatus::kDegraded)
        << run_status_name(status);
}

TEST_F(Fault, DelayBelowTheDeadlineCausesNoEviction)
{
    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerDelay;
    plan.trigger = 40;
    plan.duration = 20; // one 20ms hiccup, far below the deadline
    FaultInjector::instance().arm(plan);

    Trace t = worker_workload();
    AeroDromeOpt baseline(t.num_threads(), t.num_vars(), t.num_locks());
    RunResult expected = run_checker(baseline, t);

    ShardOptions opts;
    opts.shards = 2;
    opts.watchdog_ms = 500;
    ShardRunResult r = run_sharded(opt_factory(), t, opts);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    EXPECT_EQ(r.recoveries, 0u) << "a transient hiccup must not evict";
    EXPECT_EQ(r.result.status(), RunStatus::kOk);
    EXPECT_EQ(r.result.violation, expected.violation);
}

TEST_F(Fault, ArmedWorkerFaultTurnsOnADefaultWatchdog)
{
    // A drill with the watchdog left at 0 must still recover: arming a
    // kWorker plan flips on the default deadline so the injected death
    // cannot hang the very harness meant to test it.
    FaultPlan plan;
    plan.site = FaultSite::kWorker;
    plan.kind = FaultKind::kWorkerKill;
    plan.trigger = 25;
    FaultInjector::instance().arm(plan);

    Trace t = worker_workload();
    ShardOptions opts;
    opts.shards = 2; // watchdog_ms stays 0
    ShardRunResult r = run_sharded(opt_factory(), t, opts);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    EXPECT_GE(r.recoveries, 1u);
    EXPECT_FALSE(r.result.violation);
}

// --- Ring and alloc faults --------------------------------------------------

TEST_F(Fault, RingFullBurstOnlyExercisesBackpressure)
{
    FaultPlan plan;
    plan.site = FaultSite::kRingPush;
    plan.kind = FaultKind::kRingFull;
    plan.trigger = 100;
    plan.duration = 64; // burst length in pushes
    FaultInjector::instance().arm(plan);

    Trace t = worker_workload();
    AeroDromeOpt baseline(t.num_threads(), t.num_vars(), t.num_locks());
    RunResult expected = run_checker(baseline, t);

    ShardOptions opts;
    opts.shards = 2;
    ShardRunResult r = run_sharded(opt_factory(), t, opts);
    EXPECT_GE(FaultInjector::instance().fires(), 1u);
    EXPECT_EQ(r.result.status(), RunStatus::kOk)
        << "backpressure must not change the outcome";
    EXPECT_EQ(r.result.violation, expected.violation);
    EXPECT_EQ(r.result.events_processed, expected.events_processed);
}

TEST_F(Fault, AllocCapBreachEndsTheRunAsInternalError)
{
    FaultPlan plan;
    plan.site = FaultSite::kAlloc;
    plan.kind = FaultKind::kAllocCap;
    plan.trigger = 2; // sticky from the second budget poll on
    FaultInjector::instance().arm(plan);

    Trace t = gen::make_pipeline(2, 200);
    RunBudget budget;
    budget.check_interval = 64; // poll often enough to hit the trigger
    AeroDromeOpt engine(t.num_threads(), t.num_vars(), t.num_locks());
    RunResult r = run_checker(engine, t, budget);
    EXPECT_EQ(FaultInjector::instance().fires(), 1u);
    ASSERT_EQ(r.status(), RunStatus::kInternalError);
    EXPECT_NE(r.internal_error.find("injected"), std::string::npos)
        << r.internal_error;
    EXPECT_LT(r.events_processed, t.size());
}

// --- Bounded SPSC waits -----------------------------------------------------

TEST_F(Fault, FullRingPushWaitTimesOutInsteadOfHanging)
{
    SpscQueue<int> q(2);
    int filled = 0;
    while (q.try_push(filled))
        ++filled;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.push_wait(99, /*max_wait_us=*/20000));
    const auto waited = std::chrono::steady_clock::now() - start;
    // The bound is a floor (whole sleep quanta), but a sick consumer
    // must surface within the same order of magnitude, not never.
    EXPECT_LT(waited, std::chrono::seconds(10));
    // Nothing was pushed; the ring still drains exactly what was there.
    for (int i = 0; i < filled; ++i) {
        int out = -1;
        ASSERT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, i);
    }
    int leftover;
    EXPECT_FALSE(q.try_pop(leftover));
}

TEST_F(Fault, EmptyRingPopWaitTimesOutAndLeavesOutUntouched)
{
    SpscQueue<int> q(4);
    int out = 424242;
    EXPECT_FALSE(q.pop_wait(out, /*max_wait_us=*/20000));
    EXPECT_EQ(out, 424242);
}

TEST_F(Fault, BackoffBudgetIsAFloorNotForever)
{
    SpscBackoff backoff(/*max_wait_us=*/300);
    int pauses = 0;
    while (backoff.pause())
        ++pauses;
    // 64 spins + 192 yields + ceil(300/100) sleeps, then exhaustion.
    EXPECT_GE(pauses, 256);
    EXPECT_LT(pauses, 10000);
    backoff.reset();
    EXPECT_TRUE(backoff.pause()) << "reset must restore the budget";
}

// --- Panic context ----------------------------------------------------------

TEST_F(Fault, PanicMessageNamesTheEventIndexAndShard)
{
    PanicHandler prev = set_panic_handler(&throwing_panic_handler);
    {
        PanicContextScope scope(/*shard=*/3);
        scope.set_index(1234);
        try {
            panic(__FILE__, __LINE__, "drill");
            FAIL() << "panic returned";
        } catch (const InternalError& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("while processing event 1234"),
                      std::string::npos)
                << msg;
            EXPECT_NE(msg.find("(shard 3)"), std::string::npos) << msg;
        }
    }
    // Outside any scope the message carries no position suffix.
    try {
        panic(__FILE__, __LINE__, "drill");
        FAIL() << "panic returned";
    } catch (const InternalError& e) {
        EXPECT_EQ(std::string(e.what()).find("while processing"),
                  std::string::npos);
    }
    set_panic_handler(prev);
}

} // namespace
} // namespace aero
