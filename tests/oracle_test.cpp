/**
 * @file
 * Unit tests for the offline conflict-serializability oracle: Definition 1
 * semantics, graph construction (transitive subsumption of old conflicts),
 * and the Theorem 3 "detectable with one open transaction" classifier.
 */

#include <gtest/gtest.h>

#include "gen/patterns.hpp"
#include "oracle/serializability_oracle.hpp"
#include "trace/builder.hpp"

namespace aero {
namespace {

TEST(Oracle, EmptyTraceSerializable)
{
    Trace t;
    OracleResult r = check_serializability(t);
    EXPECT_TRUE(r.serializable);
    EXPECT_EQ(r.num_transactions, 0u);
}

TEST(Oracle, SingleThreadAlwaysSerializable)
{
    TraceBuilder b;
    for (int i = 0; i < 5; ++i) {
        b.begin("t1").write("t1", "x").read("t1", "x").end("t1");
        b.write("t1", "y"); // unary
    }
    EXPECT_TRUE(check_serializability(b.trace()).serializable);
}

TEST(Oracle, RingsOfAllSizesViolate)
{
    for (uint32_t k = 2; k <= 8; ++k) {
        OracleResult r = check_serializability(gen::make_ring(k));
        EXPECT_FALSE(r.serializable) << "ring size " << k;
        EXPECT_TRUE(r.detectable_with_one_open);
        EXPECT_EQ(r.witness_scc.size(), k) << "ring size " << k;
    }
}

TEST(Oracle, PipelineSerializable)
{
    EXPECT_TRUE(
        check_serializability(gen::make_pipeline(5, 50)).serializable);
}

TEST(Oracle, StarSerializableUnlessInjected)
{
    gen::StarOptions opts;
    opts.rounds = 50;
    EXPECT_TRUE(check_serializability(gen::make_star(opts)).serializable);
    opts.violation_at_end = true;
    EXPECT_FALSE(check_serializability(gen::make_star(opts)).serializable);
}

TEST(Oracle, TransitiveSubsumption)
{
    // w(x) by T1, w(x) by T2, r(x) by T3: the old T1->T3 conflict is
    // implied through T2; the graph needs only the last-writer edges and
    // must still find the T3->T1 cycle when T1 later reads T3's output.
    TraceBuilder b;
    b.begin("t1").begin("t2").begin("t3");
    b.write("t1", "x");
    b.write("t2", "x");
    b.read("t3", "x");
    b.write("t3", "y");
    b.read("t1", "y"); // T3 -> T1, closing T1 -> T2 -> T3 -> T1
    b.end("t1").end("t2").end("t3");
    OracleResult r = check_serializability(b.trace());
    EXPECT_FALSE(r.serializable);
    EXPECT_EQ(r.witness_scc.size(), 3u);
}

TEST(Oracle, ReadsDoNotConflict)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.read("t1", "x").read("t2", "x").read("t1", "x").read("t2", "x");
    b.end("t1").end("t2");
    EXPECT_TRUE(check_serializability(b.trace()).serializable);
}

TEST(Oracle, LockEdgesCountAsConflicts)
{
    // rel -> acq ordering in both directions between two transactions.
    TraceBuilder b;
    b.begin("t1").acquire("t1", "m").release("t1", "m");
    b.begin("t2").acquire("t2", "m").release("t2", "m");
    b.acquire("t1", "m").release("t1", "m");
    b.end("t1").end("t2");
    EXPECT_FALSE(check_serializability(b.trace()).serializable);
}

TEST(Oracle, ForkJoinEdges)
{
    // Child's transaction must come after the forking transaction and
    // before the joining one; sandwiching the join inside the forking
    // transaction with a data read-back creates a cycle.
    TraceBuilder b;
    b.begin("t0").fork("t0", "t1");
    b.begin("t1").write("t1", "x").end("t1");
    b.read("t0", "x").end("t0");
    EXPECT_FALSE(check_serializability(b.trace()).serializable);
}

TEST(Oracle, CountsUnaryTransactions)
{
    TraceBuilder b;
    b.write("t1", "a");                          // unary
    b.begin("t1").write("t1", "b").end("t1");    // txn
    b.read("t1", "a");                           // unary
    OracleResult r = check_serializability(b.trace());
    EXPECT_EQ(r.num_transactions, 3u);
    EXPECT_TRUE(r.serializable);
}

// --- Theorem 3 classifier ---------------------------------------------------

TEST(Oracle, TwoOpenTransactionsNotDetectable)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    OracleResult r = check_serializability(b.trace());
    EXPECT_FALSE(r.serializable);
    EXPECT_FALSE(r.detectable_with_one_open);
}

TEST(Oracle, OneOpenTransactionDetectable)
{
    TraceBuilder b;
    b.begin("t1").begin("t2");
    b.write("t1", "x").write("t2", "y");
    b.read("t1", "y").read("t2", "x");
    b.end("t2");
    OracleResult r = check_serializability(b.trace());
    EXPECT_FALSE(r.serializable);
    EXPECT_TRUE(r.detectable_with_one_open);
}

TEST(Oracle, AllCompleteDetectable)
{
    OracleResult r = check_serializability(gen::make_ring(4));
    EXPECT_TRUE(r.detectable_with_one_open);
}

TEST(Oracle, MixedSccOneOpenCycleFound)
{
    // Three-node SCC where one cycle uses an open transaction but a
    // two-node completed cycle also exists: detectable.
    TraceBuilder b;
    b.begin("t1").begin("t2").begin("t3");
    b.write("t1", "x").read("t2", "x"); // T1 -> T2
    b.write("t2", "y").read("t1", "y"); // T2 -> T1 (cycle, both open yet)
    b.write("t3", "z");
    b.read("t1", "z"); // T3 -> T1
    b.write("t1", "w").read("t3", "w"); // T1 -> T3
    b.end("t1").end("t2");
    // t3 never ends: the T1<->T3 cycle has one open member; the T1<->T2
    // cycle has zero.
    OracleResult r = check_serializability(b.trace());
    EXPECT_FALSE(r.serializable);
    EXPECT_TRUE(r.detectable_with_one_open);
    EXPECT_EQ(r.witness_scc.size(), 3u);
}

TEST(Oracle, EdgeAndNodeCounts)
{
    OracleResult r = check_serializability(gen::make_ring(3));
    EXPECT_EQ(r.num_transactions, 3u);
    // Ring edges w->r for each pair.
    EXPECT_EQ(r.num_edges, 3u);
}

// --- Transaction info / witness reconstruction -------------------------------

TEST(Oracle, TxnInfoDisabledByDefault)
{
    OracleResult r = check_serializability(gen::make_ring(3));
    EXPECT_TRUE(r.txn_info.empty());
}

TEST(Oracle, TxnInfoDescribesWitness)
{
    OracleOptions opts;
    opts.collect_txn_info = true;
    Trace t = gen::make_ring(3);
    OracleResult r = check_serializability(t, opts);
    ASSERT_EQ(r.txn_info.size(), 3u);
    for (uint32_t node : r.witness_scc) {
        const TxnInfo& info = r.txn_info[node];
        EXPECT_FALSE(info.unary);
        EXPECT_TRUE(info.completed);
        EXPECT_LT(info.thread, 3u);
        EXPECT_LE(info.first_event, info.last_event);
        // The recorded range really starts at that thread's begin.
        EXPECT_EQ(t[info.first_event].op, Op::kBegin);
        EXPECT_EQ(t[info.first_event].tid, info.thread);
        EXPECT_EQ(t[info.last_event].op, Op::kEnd);
    }
}

TEST(Oracle, TxnInfoMarksUnaryAndOpen)
{
    TraceBuilder b;
    b.write("t0", "a");                      // node 0: unary
    b.begin("t1").read("t1", "a");           // node 1: block, stays open
    OracleOptions opts;
    opts.collect_txn_info = true;
    OracleResult r = check_serializability(b.trace(), opts);
    ASSERT_EQ(r.txn_info.size(), 2u);
    EXPECT_TRUE(r.txn_info[0].unary);
    EXPECT_TRUE(r.txn_info[0].completed);
    EXPECT_EQ(r.txn_info[0].first_event, 0u);
    EXPECT_FALSE(r.txn_info[1].unary);
    EXPECT_FALSE(r.txn_info[1].completed);
    EXPECT_EQ(r.txn_info[1].first_event, 1u);
    EXPECT_EQ(r.txn_info[1].last_event, 2u);
}

} // namespace
} // namespace aero
