#include "vc/clock_bank.hpp"

#include <new>

#ifdef AERO_VC_X86_DISPATCH
#include <immintrin.h>
#endif

namespace aero {

#ifdef AERO_VC_X86_DISPATCH
namespace vck {
namespace detail {

const bool kHaveAvx2 = __builtin_cpu_supports("avx2");

__attribute__((target("avx2"))) void
join_avx2(ClockValue* dst, const ClockValue* src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_max_epu32(d, s));
    }
    for (; i < n; ++i)
        dst[i] = dst[i] < src[i] ? src[i] : dst[i];
}

__attribute__((target("avx2"))) bool
leq_avx2(const ClockValue* a, const ClockValue* b, size_t n)
{
    // a <= b pointwise iff max(a, b) == b lane-wise; accumulate lane
    // mismatches and check once per block so the common all-ok case runs
    // branch-free.
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i bad = _mm256_setzero_si256();
        for (size_t j = i; j < i + 32; j += 8) {
            __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(a + j));
            __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(b + j));
            __m256i mx = _mm256_max_epu32(va, vb);
            bad = _mm256_or_si256(bad, _mm256_xor_si256(mx, vb));
        }
        if (!_mm256_testz_si256(bad, bad))
            return false;
    }
    __m256i bad = _mm256_setzero_si256();
    for (; i + 8 <= n; i += 8) {
        __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        __m256i mx = _mm256_max_epu32(va, vb);
        bad = _mm256_or_si256(bad, _mm256_xor_si256(mx, vb));
    }
    if (!_mm256_testz_si256(bad, bad))
        return false;
    for (; i < n; ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

} // namespace detail
} // namespace vck
#endif // AERO_VC_X86_DISPATCH

namespace {

constexpr size_t kAlignment = 64;

ClockValue*
alloc_aligned(size_t values)
{
    return static_cast<ClockValue*>(::operator new(
        values * sizeof(ClockValue), std::align_val_t(kAlignment)));
}

void
free_aligned(ClockValue* p)
{
    ::operator delete(p, std::align_val_t(kAlignment));
}

size_t
round_to_line(size_t values)
{
    const size_t line = ClockBank::kLineValues;
    return (values + line - 1) / line * line;
}

} // namespace

void
ClockBank::release()
{
    free_aligned(data_);
    data_ = nullptr;
    rows_ = row_cap_ = dim_ = stride_ = 0;
}

void
ClockBank::relayout(size_t new_row_cap, size_t new_stride)
{
    ClockValue* fresh = alloc_aligned(new_row_cap * new_stride);
    std::memset(fresh, 0, new_row_cap * new_stride * sizeof(ClockValue));
    for (size_t i = 0; i < rows_; ++i) {
        std::memcpy(fresh + i * new_stride, data_ + i * stride_,
                    dim_ * sizeof(ClockValue));
    }
    free_aligned(data_);
    data_ = fresh;
    row_cap_ = new_row_cap;
    stride_ = new_stride;
}

void
ClockBank::ensure_rows(size_t n)
{
    if (n <= rows_)
        return;
    if (stride_ == 0)
        stride_ = kLineValues; // dimension still 0: reserve one line
    if (n > row_cap_) {
        size_t new_cap = row_cap_ < 4 ? 4 : row_cap_ * 2;
        if (new_cap < n)
            new_cap = n;
        relayout(new_cap, stride_);
    }
    // Rows rows_..n are already zero (relayout and first allocation zero
    // the whole arena, and clear() keeps retired rows at bottom).
    rows_ = n;
}

void
ClockBank::ensure_dim(size_t d)
{
    if (d <= dim_)
        return;
    if (d > stride_) {
        size_t want = stride_ < kLineValues ? kLineValues : stride_ * 2;
        if (want < d)
            want = d;
        size_t new_stride = round_to_line(want);
        if (row_cap_ == 0) {
            stride_ = new_stride; // nothing allocated yet
        } else {
            relayout(row_cap_, new_stride);
        }
    }
    // Components dim_..d are zero in every row (the padding invariant), so
    // exposing them is free.
    dim_ = d;
}

} // namespace aero
