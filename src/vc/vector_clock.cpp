#include "vc/vector_clock.hpp"

#include <algorithm>

namespace aero {

void
VectorClock::set(size_t t, ClockValue v)
{
    if (t >= c_.size()) {
        if (v == 0)
            return; // implicit zero already
        c_.resize(t + 1, 0);
    }
    c_[t] = v;
}

void
VectorClock::tick(size_t t)
{
    if (t >= c_.size())
        c_.resize(t + 1, 0);
    ++c_[t];
}

bool
VectorClock::is_bottom() const
{
    return std::all_of(c_.begin(), c_.end(),
                       [](ClockValue v) { return v == 0; });
}

void
VectorClock::join(const VectorClock& other)
{
    if (other.c_.size() > c_.size())
        c_.resize(other.c_.size(), 0);
    for (size_t i = 0; i < other.c_.size(); ++i)
        c_[i] = std::max(c_[i], other.c_[i]);
}

bool
VectorClock::leq(const VectorClock& other) const
{
    for (size_t i = 0; i < c_.size(); ++i) {
        if (c_[i] > other.get(i))
            return false;
    }
    return true;
}

bool
VectorClock::leq_except(const VectorClock& other, size_t skip) const
{
    for (size_t i = 0; i < c_.size(); ++i) {
        if (i != skip && c_[i] > other.get(i))
            return false;
    }
    return true;
}

bool
VectorClock::operator==(const VectorClock& other) const
{
    size_t n = std::max(c_.size(), other.c_.size());
    for (size_t i = 0; i < n; ++i) {
        if (get(i) != other.get(i))
            return false;
    }
    return true;
}

void
VectorClock::clear()
{
    std::fill(c_.begin(), c_.end(), 0);
}

void
VectorClock::join_except(const VectorClock& other, size_t zeroed)
{
    if (other.c_.size() > c_.size())
        c_.resize(other.c_.size(), 0);
    for (size_t i = 0; i < other.c_.size(); ++i) {
        if (i != zeroed)
            c_[i] = std::max(c_[i], other.c_[i]);
    }
}

std::string
VectorClock::to_string() const
{
    std::string out = "<";
    for (size_t i = 0; i < c_.size(); ++i) {
        if (i > 0)
            out += ",";
        out += std::to_string(c_[i]);
    }
    out += ">";
    return out;
}

} // namespace aero
