#pragma once

/**
 * @file
 * GcFrontier — the live-thread minimum frontier that drives clock-entry
 * reclamation (AdaptiveClockTable::gc_sweep and the engines' thread-slot
 * retirement; see src/vc/README.md, "Reclamation").
 *
 * F[u] = min over the clocks C_w of every *live* thread w of C_w(u). An
 * entry E every non-bottom component u of which satisfies E(u) <= F[u]
 * is invisible to clock evolution: every live clock dominates it, so any
 * join the entry would have contributed downstream is a no-op.
 *
 * Deadness must additionally guarantee the entry can never fire a begin
 * gate again. A gate of thread u tests component u against cb_u(u), and
 * u's own component only grows at u's outermost begins, so:
 *
 *   - while u has NO active transaction, every future gate of u is
 *     minted by a begin tick and is therefore strictly larger than
 *     C_u(u) >= F[u] >= E(u) — non-strict domination already blocks it;
 *   - while u's transaction IS active, cb_u(u) == C_u(u) and an entry
 *     exactly at that value could still satisfy the gate. cap_active()
 *     lowers F[u] to C_u(u) - 1 for exactly those threads, restoring
 *     strictness only where a live gate actually exists;
 *   - a retired (joined) thread's component is never the subject of a
 *     gate until its slot is reissued, and reissue continues the dead
 *     clock (the new thread starts one past the dead thread's own
 *     component), so reissued gates exceed every value the dead thread
 *     ever minted.
 *
 * The non-strict form matters in practice: a live thread that never
 * begins transactions (e.g. the forking main thread) never ticks its
 * own component, so F at that component is pinned at its initial value
 * — which fork propagation puts into every clock in the system. Under a
 * strict rule nothing would ever die; under <=, such components are
 * simply "settled" and entries carrying them reclaim normally.
 *
 * Frontiers may be cached between sweeps: a stale frontier is pointwise
 * <= any later legitimate one (live clocks only grow; retirement only
 * removes rows from the minimum after their values were absorbed by the
 * joiner; a stale active-cap is at most one below the clock it capped),
 * so a stale frontier is merely more conservative, never wrong.
 */

#include <cstdint>
#include <vector>

#include "vc/clock_bank.hpp"

namespace aero {

/** Pointwise minimum over a set of live-thread clocks, with per-component
 *  caps at active-transaction gates. */
class GcFrontier {
public:
    /** Start a new accumulation over `dim` components. */
    void
    reset(size_t dim)
    {
        f_.assign(dim, 0);
        rows_ = 0;
    }

    /** Fold one live thread's clock into the pointwise minimum.
     *  Components at or beyond c.dim() are bottom in that clock and pin
     *  the minimum to zero. */
    void
    accumulate(ConstClockRef c)
    {
        const size_t shared = c.dim() < f_.size() ? c.dim() : f_.size();
        if (rows_++ == 0) {
            for (size_t j = 0; j < shared; ++j)
                f_[j] = c.get(j);
        } else {
            for (size_t j = 0; j < shared; ++j) {
                const ClockValue v = c.get(j);
                if (v < f_[j])
                    f_[j] = v;
            }
        }
        for (size_t j = shared; j < f_.size(); ++j)
            f_[j] = 0;
    }

    /** Thread u has an active transaction whose begin gate equals its
     *  current own component `own` (cb_u(u) == C_u(u)): cap F[u] one
     *  below so an entry exactly at the gate survives. Call after all
     *  accumulate() calls. */
    void
    cap_active(size_t u, ClockValue own)
    {
        if (u >= f_.size())
            return;
        const ClockValue cap = own == 0 ? 0 : own - 1;
        if (f_[u] > cap)
            f_[u] = cap;
    }

    /** True when no live clock has been accumulated (an all-zero
     *  frontier: nothing non-bottom is dead). */
    bool empty() const { return rows_ == 0; }

    size_t dim() const { return f_.size(); }

    ClockValue get(size_t u) const { return u < f_.size() ? f_[u] : 0; }

    /** Is epoch value v at component u bottom or at-or-below the
     *  frontier? */
    bool
    dead_component(size_t u, ClockValue v) const
    {
        return v == 0 || (u < f_.size() && v <= f_[u]);
    }

    /** Is the row at or below the frontier at every non-bottom
     *  component? (A bottom row is trivially dead.) */
    bool
    dead_row(ConstClockRef row) const
    {
        for (size_t j = 0; j < row.dim(); ++j) {
            const ClockValue v = row.get(j);
            if (v != 0 && !(j < f_.size() && v <= f_[j]))
                return false;
        }
        return true;
    }

    size_t memory_bytes() const { return f_.capacity() * sizeof(ClockValue); }

private:
    std::vector<ClockValue> f_;
    size_t rows_ = 0;
};

} // namespace aero
