#pragma once

/**
 * @file
 * ClockBank — contiguous, SIMD-friendly storage for families of
 * same-dimension vector clocks.
 *
 * The checker engines keep many clocks of one dimension (|Thr|): per-thread
 * C_t/C_t^b, per-lock L_l, per-variable W_x/R_x/hR_x. Storing them as
 * `std::vector<VectorClock>` costs one heap allocation and one pointer
 * indirection per clock, so the hot join/leq loops chase pointers and
 * touch scattered cache lines. A ClockBank instead packs N clocks into one
 * flat ClockValue array:
 *
 *   row i  ->  data[i * stride .. i * stride + dim)
 *
 * with `stride` rounded up to a whole cache line (16 ClockValues = 64
 * bytes) and the base pointer 64-byte aligned, so every clock starts on a
 * cache-line boundary and a sweep over rows is a pure streaming access.
 * Components beyond `dim` (the padding) are kept zero at all times — the
 * vector-time bottom for threads not yet seen — which makes dimension
 * growth within the current stride free.
 *
 * Access is handle-based: `bank[i]` returns a ClockRef/ConstClockRef (raw
 * pointer + dimension). Refs are invalidated by ensure_rows/ensure_dim,
 * exactly like vector iterators; engines take refs only after all
 * ensure_* calls for the current event.
 *
 * The pointwise kernels (vck::join / leq / ...) are tight loops over
 * __restrict pointers written so the compiler auto-vectorizes them at
 * -O2; an explicit AVX2 path is used when the build enables it (e.g.
 * -march=native via the AERO_NATIVE cmake option). Define AERO_VC_NO_SIMD
 * to force the scalar loops.
 *
 * See src/vc/README.md for the layout diagram and invariants.
 */

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>

#include "vc/vector_clock.hpp"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(AERO_VC_NO_SIMD)
#define AERO_VC_X86_DISPATCH 1
#endif

namespace aero {

/** Pointwise kernels over raw clock component arrays. */
namespace vck {

#ifdef AERO_VC_X86_DISPATCH
namespace detail {
/** True iff the CPU supports AVX2 (queried once at startup). */
extern const bool kHaveAvx2;
/** Out-of-line AVX2 bodies, compiled with target("avx2") so the library
 *  works on any x86-64 build flags; dispatched at runtime. */
void join_avx2(ClockValue* dst, const ClockValue* src, size_t n);
bool leq_avx2(const ClockValue* a, const ClockValue* b, size_t n);
} // namespace detail
#endif

/** dst := dst |_| src over n components (pointwise max). */
inline void
join(ClockValue* __restrict dst, const ClockValue* __restrict src, size_t n)
{
#ifdef AERO_VC_X86_DISPATCH
    if (n >= 16 && detail::kHaveAvx2) {
        detail::join_avx2(dst, src, n);
        return;
    }
#endif
    if (n == 16) {
        // Exactly one cache line (the padded-stride sweet spot): without
        // AVX2 a constant-trip loop still inlines to straight-line SIMD
        // with no loop overhead.
        for (size_t i = 0; i < 16; ++i)
            dst[i] = dst[i] < src[i] ? src[i] : dst[i];
        return;
    }
    for (size_t i = 0; i < n; ++i)
        dst[i] = dst[i] < src[i] ? src[i] : dst[i];
}

/** a sqsubseteq b: pointwise <= over n components. Branchless inner
 *  blocks (so the compiler can vectorize the compare+or reduction) with
 *  an early exit every block. */
inline bool
leq(const ClockValue* __restrict a, const ClockValue* __restrict b, size_t n)
{
#ifdef AERO_VC_X86_DISPATCH
    if (n >= 16 && detail::kHaveAvx2)
        return detail::leq_avx2(a, b, n);
#endif
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        uint32_t bad = 0;
        for (size_t j = i; j < i + 16; ++j)
            bad |= static_cast<uint32_t>(a[j] > b[j]);
        if (bad)
            return false;
    }
    for (; i < n; ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

/** a sqsubseteq b ignoring component `skip` (the paper's C[0/t]-style
 *  comparisons). Counts violations branchlessly, then discounts one at
 *  `skip` if present. */
inline bool
leq_except(const ClockValue* __restrict a, const ClockValue* __restrict b,
           size_t n, size_t skip)
{
    size_t bad = 0;
    for (size_t i = 0; i < n; ++i)
        bad += static_cast<size_t>(a[i] > b[i]);
    if (skip < n && a[skip] > b[skip])
        --bad;
    return bad == 0;
}

/** dst := dst |_| src with src[zeroed] treated as 0: a full join with the
 *  `zeroed` slot saved and restored (max(dst[z], 0) == dst[z]). */
inline void
join_except(ClockValue* __restrict dst, const ClockValue* __restrict src,
            size_t n, size_t zeroed)
{
    ClockValue saved = zeroed < n ? dst[zeroed] : 0;
    join(dst, src, n);
    if (zeroed < n)
        dst[zeroed] = saved;
}

/** True iff all n components are zero. */
inline bool
is_bottom(const ClockValue* __restrict a, size_t n)
{
    uint32_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc |= a[i];
    return acc == 0;
}

} // namespace vck

class ClockBank;

/** Read-only handle to one clock in a ClockBank. */
class ConstClockRef {
public:
    ConstClockRef(const ClockValue* v, size_t dim) : v_(v), dim_(dim) {}

    /** Component t, 0 beyond the stored dimension (implicit bottom). */
    ClockValue
    get(size_t t) const
    {
        return t < dim_ ? v_[t] : 0;
    }

    size_t dim() const { return dim_; }
    const ClockValue* data() const { return v_; }

    bool
    leq(ConstClockRef o) const
    {
        assert(dim_ == o.dim_);
        return vck::leq(v_, o.v_, dim_);
    }

    bool
    leq_except(ConstClockRef o, size_t skip) const
    {
        assert(dim_ == o.dim_);
        return vck::leq_except(v_, o.v_, dim_, skip);
    }

    bool is_bottom() const { return vck::is_bottom(v_, dim_); }

    /** Materialize as a scalar VectorClock (tests, reports). */
    VectorClock
    to_vector_clock() const
    {
        VectorClock out;
        for (size_t i = 0; i < dim_; ++i)
            out.set(i, v_[i]);
        return out;
    }

    std::string
    to_string() const
    {
        std::string out = "<";
        for (size_t i = 0; i < dim_; ++i) {
            if (i > 0)
                out += ",";
            out += std::to_string(v_[i]);
        }
        out += ">";
        return out;
    }

protected:
    const ClockValue* v_;
    size_t dim_;
};

/** Mutable handle to one clock in a ClockBank. */
class ClockRef : public ConstClockRef {
public:
    ClockRef(ClockValue* v, size_t dim) : ConstClockRef(v, dim) {}

    ClockValue* data() { return mut(); }

    void
    set(size_t t, ClockValue v)
    {
        assert(t < dim_);
        mut()[t] = v;
    }

    void
    tick(size_t t)
    {
        assert(t < dim_);
        ++mut()[t];
    }

    void
    join(ConstClockRef o)
    {
        assert(dim_ == o.dim());
        if (v_ == o.data())
            return; // self-join is the identity; keep __restrict honest
        vck::join(mut(), o.data(), dim_);
    }

    void
    join_except(ConstClockRef o, size_t zeroed)
    {
        assert(dim_ == o.dim());
        if (v_ == o.data())
            return;
        vck::join_except(mut(), o.data(), dim_, zeroed);
    }

    /** *this := o (same-dimension copy). */
    void
    assign(ConstClockRef o)
    {
        assert(dim_ == o.dim());
        if (v_ != o.data())
            std::memcpy(mut(), o.data(), dim_ * sizeof(ClockValue));
    }

    /** Reset to bottom. */
    void
    clear()
    {
        std::memset(mut(), 0, dim_ * sizeof(ClockValue));
    }

private:
    ClockValue* mut() { return const_cast<ClockValue*>(v_); }
};

/**
 * A bank of `rows()` vector clocks, each of dimension `dim()`, stored
 * contiguously with cache-line-aligned rows.
 *
 * Growth is amortized in both directions: row capacity doubles, and the
 * per-row stride doubles (in cache-line units) when the dimension
 * outgrows it, triggering a single re-layout copy. Padding components
 * (dim..stride) are zero at all times.
 */
class ClockBank {
public:
    /** Components per cache line; strides are multiples of this. */
    static constexpr size_t kLineValues = 64 / sizeof(ClockValue);

    ClockBank() = default;

    ClockBank(size_t rows, size_t dim)
    {
        ensure_dim(dim);
        ensure_rows(rows);
    }

    ClockBank(ClockBank&& other) noexcept { swap(other); }

    ClockBank&
    operator=(ClockBank&& other) noexcept
    {
        if (this != &other) {
            release();
            swap(other);
        }
        return *this;
    }

    ClockBank(const ClockBank&) = delete;
    ClockBank& operator=(const ClockBank&) = delete;

    ~ClockBank() { release(); }

    size_t rows() const { return rows_; }
    size_t dim() const { return dim_; }
    size_t stride() const { return stride_; }

    /** Bytes of the backing allocation (per-shard memory accounting). */
    size_t
    memory_bytes() const
    {
        return row_cap_ * stride_ * sizeof(ClockValue);
    }

    /** Grow to at least n rows (new rows are bottom). Invalidates refs. */
    void ensure_rows(size_t n);

    /** Grow the clock dimension to at least d (new components are 0 in
     *  every row). Invalidates refs. */
    void ensure_dim(size_t d);

    ClockRef
    operator[](size_t i)
    {
        assert(i < rows_);
        return ClockRef(data_ + i * stride_, dim_);
    }

    ConstClockRef
    operator[](size_t i) const
    {
        assert(i < rows_);
        return ConstClockRef(data_ + i * stride_, dim_);
    }

    /** Raw base pointer (benchmarks, tests). */
    const ClockValue* data() const { return data_; }

private:
    void release();

    void
    swap(ClockBank& other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(rows_, other.rows_);
        std::swap(row_cap_, other.row_cap_);
        std::swap(dim_, other.dim_);
        std::swap(stride_, other.stride_);
    }

    /** Re-allocate to (row_cap, stride), copying live rows and zeroing
     *  everything else. */
    void relayout(size_t new_row_cap, size_t new_stride);

    ClockValue* data_ = nullptr;
    size_t rows_ = 0;    ///< live rows
    size_t row_cap_ = 0; ///< allocated rows
    size_t dim_ = 0;     ///< live components per row
    size_t stride_ = 0;  ///< allocated components per row (multiple of 16)
};

} // namespace aero
