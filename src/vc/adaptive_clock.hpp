#pragma once

/**
 * @file
 * AdaptiveClockTable — epoch-adaptive storage for a family of clocks that
 * are epochs (vc/epoch.hpp) in the uncontended common case and ClockBank
 * rows once contended.
 *
 * Every entry is one tagged 64-bit word:
 *
 *   bit 63 = 0:  the entry IS the vector bot[v/t], packed as an Epoch
 *                (value v in bits 0..31, thread t in bits 32..62);
 *   bit 63 = 1:  bits 0..62 index a row of the shared inflation arena
 *                (a ClockBank) holding the full vector.
 *
 * Promotion is one-way: the first operation whose result is not
 * epoch-shaped inflates the entry into a fresh arena row, and the entry
 * stays inflated for the rest of the run ("promote on first contention,
 * never demote"). Because only contended entries ever inflate, the arena
 * is a *combined bank region* holding exactly the slow-path rows of every
 * clock family an engine hands to one table (locks, W_x, R_x, hR_x,
 * R_{t,x}), which is what makes the end-event propagation sweep a single
 * streaming pass (see the engines' handle_end).
 *
 * Exactness. The table is a representation change, not an approximation:
 * after every operation, the abstract vector an entry denotes equals the
 * one the full-vector code path would have computed, so engine verdicts
 * are bit-for-bit independent of the epochs on/off toggle (enforced by
 * the differential suite). The O(1) fast paths rely on callers passing a
 * *purity* bit for source clocks — "this clock equals bot[c[t]/t]" — that
 * must be sound (may be conservatively false, never wrongly true).
 *
 * Toggle: entries behave as always-inflated when epochs are disabled
 * (set_epochs_enabled(false), default from the AERO_EPOCHS env var),
 * which is the PR 1 ClockBank representation plus one indirection.
 */

#include <cassert>
#include <cstdint>
#include <vector>

#include "support/counter.hpp"
#include "trace/event.hpp"
#include "vc/clock_bank.hpp"
#include "vc/epoch.hpp"
#include "vc/gc.hpp"

namespace aero {

/** Process-wide default for new tables: false iff AERO_EPOCHS is set to
 *  "0"/"off" in the environment (read once). */
bool epochs_enabled_default();

/** Process-wide default for dead-state reclamation (clock-entry GC and
 *  thread-slot recycling in the engines): true iff AERO_GC is set to
 *  "1"/"on" in the environment (read once). Off by default — unbounded
 *  traces opt in; every verdict is bit-identical either way (enforced by
 *  tests/gc_test.cpp parity fuzzing and the AERO_GC=1 CI pass). */
bool gc_enabled_default();

/** Process-wide default for update-set tracking: false iff
 *  AERO_UPDATE_SETS is set to "0"/"off" in the environment (read once).
 *  Off reproduces the full-table end sweep — the differential escape
 *  hatch. */
bool update_sets_enabled_default();

/** Counters for the evaluation harness and the runner's report.
 *  Single-writer relaxed atomics (support/counter.hpp): safe to read
 *  from another thread while the owning shard worker keeps counting. */
struct AdaptiveClockStats {
    /** Operations resolved in O(1): the entry stayed (or was read as) an
     *  epoch, or a pure source reduced the update to one component of an
     *  inflated row. The "fast path carried it" count. */
    RelaxedCounter epoch_fast;
    /** O(dim) operations on inflated entries (the bank slow path). */
    RelaxedCounter vector_ops;
    /** Entries promoted epoch -> arena row. */
    RelaxedCounter inflations;
    /** Entries enrolled into a thread's update window (unique per
     *  (entry, open window); see open_update_window). */
    RelaxedCounter upd_enrolled;
    /** Dead entries reset to bottom by gc_reclaim (README,
     *  "Reclamation"). */
    RelaxedCounter gc_reclaimed;
    /** Arena rows returned to the row free-list by gc_reclaim. */
    RelaxedCounter gc_rows_freed;
};

/**
 * Join `src` (the clock of thread `src_thread`, pure iff `src_pure`) into
 * `dst` (the clock of thread `dst_thread`), maintaining dst's purity flag.
 * This is the engines' C_t := C_t |_| clk step with the O(1) pure-source
 * fast path.
 */
inline void
join_qualified(ClockRef dst, ThreadId dst_thread, uint8_t& dst_pure,
               ConstClockRef src, ThreadId src_thread, bool src_pure)
{
    if (src_pure) {
        // src == bot[v/src_thread]: a one-component join.
        ClockValue v = src.get(src_thread);
        if (v > dst.get(src_thread)) {
            dst.set(src_thread, v);
            if (src_thread != dst_thread)
                dst_pure = 0;
        }
        return;
    }
    if (dst.data() == src.data())
        return; // self-join is the identity
    if (dst_pure && src.is_bottom())
        return; // joining bottom preserves purity
    dst.join(src);
    dst_pure = 0; // conservative: src may have foreign components
}

/** A family of epoch-adaptive clocks sharing one inflation arena. */
class AdaptiveClockTable {
public:
    AdaptiveClockTable() : epochs_(epochs_enabled_default()) {}

    /** Toggle the epoch representation (call before feeding events; with
     *  epochs off every entry inflates on first mutation). */
    void set_epochs_enabled(bool on) { epochs_ = on; }
    bool epochs_enabled() const { return epochs_; }

    size_t size() const { return entries_.size(); }
    size_t dim() const { return arena_.dim(); }

    /** Append one bottom entry; returns its index. Callers relying on
     *  consecutive indices (the engines' per-variable W/R/hR triples)
     *  must use this, never add_entry_reusable. */
    uint32_t
    add_entry()
    {
        entries_.push_back(0);
        return static_cast<uint32_t>(entries_.size() - 1);
    }

    /** Like add_entry, but prefers indices returned by gc_recycle_index
     *  (the retired per-thread reader entries of the basic engine), so a
     *  churning thread population reuses entry words instead of growing
     *  the table forever. */
    uint32_t
    add_entry_reusable()
    {
        if (!free_entries_.empty()) {
            uint32_t i = free_entries_.back();
            free_entries_.pop_back();
            return i;
        }
        return add_entry();
    }

    /** Grow the arena clock dimension (threads seen; engines keep all
     *  their banks and tables at one shared dimension). */
    void ensure_dim(size_t d) { arena_.ensure_dim(d); }

    // --- Per-thread update windows (Algorithm 3's update sets, lifted to
    // --- table entries) -----------------------------------------------------
    //
    // A window tracks, for one thread t with an active transaction, every
    // entry whose end-event gate `cb_t(t) <= entry(t)` can possibly fire.
    // The gate value cb_t(t) is minted fresh by the tick at t's outermost
    // begin, so no entry can satisfy the gate when the window opens; an
    // entry can only come to satisfy it through a later assign/join whose
    // *source clock* already carries component t at or above the gate —
    // which is exactly when the mutators below enroll the entry. Window
    // sweeps at end events may therefore visit only the enrolled entries
    // instead of the whole table; enrollment is an over-approximation
    // (assign can lower a component again), so sweeps still apply the
    // real gate. Frontier adoption never touches table entries and gate
    // values are frozen for the life of a transaction, so merges in the
    // sharded runner preserve the invariant; reseeding does not (it can
    // grow cb_t mid-transaction), so reseeded engines must reopen windows
    // via reopen-after-reseed (untracked when the table is already
    // populated — the end sweep then falls back to the full table).

    /** Toggle update-set tracking (default from AERO_UPDATE_SETS; call
     *  before feeding events). Off = every window untracked = full-table
     *  end sweeps. */
    void set_update_sets_enabled(bool on) { upd_sets_ = on; }
    bool update_sets_enabled() const { return upd_sets_; }

    /**
     * Open thread t's window with gate `gate` (= cb_t(t) right after the
     * outermost begin), clearing any previous enrollment. A zero gate —
     * impossible on well-formed state — leaves the window untracked.
     */
    void
    open_update_window(ThreadId t, ClockValue gate)
    {
        if (!upd_sets_)
            return;
        if (t >= upd_.size()) {
            upd_.resize(t + 1);
            upd_gate_.resize(t + 1, 0);
        }
        close_update_window(t);
        if (gate == 0)
            return;
        upd_[t].tracked = 1;
        upd_gate_[t] = gate;
        open_windows_.push_back(t);
    }

    /** Stop enrolling into t's window but keep its entries readable —
     *  called at the top of an end sweep so the sweep's own joins no
     *  longer append to the list being iterated. */
    void
    seal_update_window(ThreadId t)
    {
        if (t < upd_gate_.size() && upd_gate_[t] != 0) {
            upd_gate_[t] = 0;
            for (size_t k = 0; k < open_windows_.size(); ++k) {
                if (open_windows_[k] == t) {
                    open_windows_[k] = open_windows_.back();
                    open_windows_.pop_back();
                    break;
                }
            }
        }
    }

    /** Drop t's window entirely (after its end sweep, or on reseed). */
    void
    close_update_window(ThreadId t)
    {
        if (t >= upd_.size())
            return;
        seal_update_window(t);
        UpdWindow& w = upd_[t];
        for (uint32_t i : w.list)
            w.member[i] = 0;
        w.list.clear();
        w.tracked = 0;
    }

    /** True iff t's end sweep may visit only update_entries(t); false
     *  demands the full-table sweep (tracking off, untracked window). */
    bool
    update_window_tracked(ThreadId t) const
    {
        return upd_sets_ && t < upd_.size() && upd_[t].tracked != 0;
    }

    /** The entries enrolled in t's window (valid while sealed, until
     *  close_update_window). Unordered; duplicates never occur. Callers
     *  must check update_window_tracked(t) first. */
    const std::vector<uint32_t>&
    update_entries(ThreadId t) const
    {
        assert(update_window_tracked(t));
        return upd_[t].list;
    }

    bool
    is_inflated(size_t i) const
    {
        return (entries_[i] & kInflatedTag) != 0;
    }

    /** The entry as an epoch; valid iff !is_inflated(i). */
    Epoch
    epoch_at(size_t i) const
    {
        assert(!is_inflated(i));
        return Epoch::from_bits(entries_[i]);
    }

    /** The entry's arena row; valid iff is_inflated(i). Invalidated by
     *  any operation that may inflate another entry. */
    ConstClockRef
    row_at(size_t i) const
    {
        assert(is_inflated(i));
        return arena_[entries_[i] & ~kInflatedTag];
    }

    /** Component t of entry i. O(1) for both representations. */
    ClockValue
    get(size_t i, size_t t) const
    {
        uint64_t bits = entries_[i];
        if (bits & kInflatedTag)
            return arena_[bits & ~kInflatedTag].get(t);
        return Epoch::from_bits(bits).get(t);
    }

    bool
    is_bottom(size_t i) const
    {
        uint64_t bits = entries_[i];
        if (bits & kInflatedTag)
            return arena_[bits & ~kInflatedTag].is_bottom();
        return Epoch::from_bits(bits).is_bottom();
    }

    /** entry_i := c, where c is thread t's clock (pure iff c_pure). */
    void
    assign(size_t i, ConstClockRef c, ThreadId t, bool c_pure)
    {
        if (!open_windows_.empty())
            enroll(i, c, t, c_pure, /*zero_t=*/false);
        if (epochs_ && c_pure && !is_inflated(i)) {
            entries_[i] = Epoch(c.get(t), t).bits();
            ++stats_.epoch_fast;
            return;
        }
        assign_slow(i, c, t, c_pure);
    }

    /** entry_i := entry_i |_| c. */
    void
    join(size_t i, ConstClockRef c, ThreadId t, bool c_pure)
    {
        if (!open_windows_.empty())
            enroll(i, c, t, c_pure, /*zero_t=*/false);
        uint64_t bits = entries_[i];
        if (c_pure) {
            ClockValue v = c.get(t);
            if (bits & kInflatedTag) {
                // One-component join into the existing row.
                ClockRef row = mut_row(bits);
                if (v > row.get(t))
                    row.set(t, v);
                ++stats_.epoch_fast;
                return;
            }
            Epoch e = Epoch::from_bits(bits);
            if (epochs_ && (e.is_bottom() || e.thread() == t)) {
                ClockValue cur = e.thread() == t ? e.value() : 0;
                entries_[i] = Epoch(v > cur ? v : cur, t).bits();
                ++stats_.epoch_fast;
                return;
            }
            if (v == 0) {
                ++stats_.epoch_fast;
                return; // joining bottom
            }
        }
        join_slow(i, c, t, c_pure);
    }

    /** entry_i := entry_i |_| c[0/t] (the hR_x update). A pure source is
     *  a complete no-op: bot[v/t] with component t zeroed is bottom. */
    void
    join_except(size_t i, ConstClockRef c, ThreadId t, bool c_pure)
    {
        if (!open_windows_.empty())
            enroll(i, c, t, c_pure, /*zero_t=*/true);
        if (c_pure) {
            ++stats_.epoch_fast;
            return;
        }
        join_except_slow(i, c, t);
    }

    /** dst := dst |_| entry_i, maintaining dst's purity flag (dst is the
     *  clock of dst_thread). The engines' C_t |_|= W_x / R_x step. */
    void
    join_into(ClockRef dst, size_t i, ThreadId dst_thread, uint8_t& dst_pure)
    {
        uint64_t bits = entries_[i];
        if (!(bits & kInflatedTag)) {
            Epoch e = Epoch::from_bits(bits);
            if (e.is_bottom())
                return; // joining bottom: no work, no accounting
            if (e.value() > dst.get(e.thread())) {
                dst.set(e.thread(), e.value());
                if (e.thread() != dst_thread)
                    dst_pure = 0;
            }
            ++stats_.epoch_fast;
            return;
        }
        ConstClockRef row = arena_[bits & ~kInflatedTag];
        ++stats_.vector_ops;
        if (dst_pure && row.is_bottom())
            return;
        dst.join(row);
        dst_pure = 0;
    }

    /**
     * a sqsubseteq entry_i, where a is the clock of a_thread (pure iff
     * a_pure). The full-vector comparison form used by the basic engine;
     * O(1) when either side is epoch-shaped.
     */
    bool
    vector_leq_entry(ConstClockRef a, size_t i, ThreadId a_thread,
                     bool a_pure) const
    {
        uint64_t bits = entries_[i];
        if (bits & kInflatedTag)
            return a.leq(arena_[bits & ~kInflatedTag]);
        Epoch e = Epoch::from_bits(bits);
        if (a_pure) {
            // bot[a_t/a_thread] sqsubseteq bot[v/u]: one component test.
            return a.get(a_thread) <= e.get(a_thread);
        }
        if (a.get(e.thread()) > e.value())
            return false;
        for (size_t j = 0; j < a.dim(); ++j) {
            if (j != e.thread() && a.get(j) != 0)
                return false;
        }
        return true;
    }

    /** Materialise entry i as a scalar VectorClock (tests, reports). */
    VectorClock
    to_vector_clock(size_t i) const
    {
        if (is_inflated(i))
            return row_at(i).to_vector_clock();
        return epoch_at(i).to_vector_clock();
    }

    // --- Reclamation (gc) ---------------------------------------------------
    //
    // The frontier argument is the live-thread minimum of vc/gc.hpp. An
    // entry strictly below it at every non-bottom component can never
    // fire a gate again and every live clock already strictly dominates
    // it (its future joins are no-ops), so resetting it to bottom is
    // invisible to verdicts — see src/vc/README.md, "Reclamation". This
    // is the one sanctioned exception to one-way promotion: a reclaimed
    // inflated entry demotes to the bottom *epoch* word and its arena row
    // joins a free-list that inflate() drains before growing the arena.

    /** True iff entry i can never fire a gate again under frontier f.
     *  Bottom epoch entries report false (nothing to reclaim); bottom
     *  arena rows report true (the row itself is reclaimable). */
    bool
    gc_dead(size_t i, const GcFrontier& f) const
    {
        uint64_t bits = entries_[i];
        if (bits & kInflatedTag)
            return f.dead_row(arena_[bits & ~kInflatedTag]);
        Epoch e = Epoch::from_bits(bits);
        return !e.is_bottom() && f.dead_component(e.thread(), e.value());
    }

    /** Reset dead entry i to bottom in place, returning its arena row
     *  (if any) to the row free-list. The caller must have established
     *  deadness via gc_dead. */
    void
    gc_reclaim(size_t i)
    {
        uint64_t bits = entries_[i];
        if (bits & kInflatedTag) {
            size_t r = bits & ~kInflatedTag;
            arena_[r].clear();
            free_rows_.push_back(r);
            ++stats_.gc_rows_freed;
        }
        entries_[i] = 0;
        ++stats_.gc_reclaimed;
    }

    /** Return (already-bottom) entry i's index to the entry free-list
     *  for a future add_entry_reusable. The caller must drop every
     *  reference to i first — the index will be handed out again. */
    void
    gc_recycle_index(uint32_t i)
    {
        assert(is_bottom(i));
        free_entries_.push_back(i);
    }

    /** Sweep the whole table against f, reclaiming every dead entry in
     *  place. Returns the number of live (non-bottom) entries left. */
    size_t
    gc_sweep(const GcFrontier& f)
    {
        size_t live = 0;
        const size_t n = entries_.size();
        for (size_t i = 0; i < n; ++i) {
            if (entries_[i] == 0)
                continue; // already bottom
            if (gc_dead(i, f))
                gc_reclaim(i);
            else
                ++live;
        }
        return live;
    }

    /** Arena rows currently backing inflated entries (total rows ever
     *  allocated minus the free-list) — the gc pressure signal. */
    size_t arena_rows_live() const { return arena_rows_ - free_rows_.size(); }
    /** Entry indices waiting for reuse via add_entry_reusable. */
    size_t free_entry_count() const { return free_entries_.size(); }

    const AdaptiveClockStats& stats() const { return stats_; }

    /** The inflation arena (tests, benchmarks). */
    const ClockBank& arena() const { return arena_; }
    size_t arena_rows() const { return arena_rows_; }

    /** Bytes held by the entry words, the inflation arena and the
     *  update-window bookkeeping (per-shard memory accounting). */
    size_t
    memory_bytes() const
    {
        size_t n = entries_.capacity() * sizeof(uint64_t) +
                   arena_.memory_bytes() +
                   upd_gate_.capacity() * sizeof(ClockValue) +
                   open_windows_.capacity() * sizeof(uint32_t) +
                   free_rows_.capacity() * sizeof(size_t) +
                   free_entries_.capacity() * sizeof(uint32_t);
        for (const UpdWindow& w : upd_) {
            n += sizeof(UpdWindow) + w.list.capacity() * sizeof(uint32_t) +
                 w.member.capacity();
        }
        return n;
    }

private:
    static constexpr uint64_t kInflatedTag = uint64_t{1} << 63;

    /** One thread's update window: enrolled entries as a list plus
     *  membership bytes (lazily sized by entry id) for O(1) dedup. */
    struct UpdWindow {
        std::vector<uint32_t> list;
        std::vector<uint8_t> member;
        uint8_t tracked = 0;
    };

    /**
     * Enroll entry i into the window of every thread u whose gate the
     * mutation `entry_i op= c` could make fireable: c's component u is at
     * or above u's gate. A pure source (c == bot[v/t]) carries only
     * component t, so only t's window needs the test; zero_t sources
     * (join_except, c[0/t]) contribute nothing through component t.
     */
    void
    enroll(size_t i, ConstClockRef c, ThreadId t, bool c_pure, bool zero_t)
    {
        if (c_pure) {
            if (!zero_t && t < upd_gate_.size()) {
                ClockValue g = upd_gate_[t];
                if (g != 0 && c.get(t) >= g)
                    enroll_into(t, static_cast<uint32_t>(i));
            }
            return;
        }
        for (uint32_t u : open_windows_) {
            if (zero_t && u == t)
                continue;
            if (c.get(u) >= upd_gate_[u])
                enroll_into(u, static_cast<uint32_t>(i));
        }
    }

    void
    enroll_into(ThreadId u, uint32_t i)
    {
        UpdWindow& w = upd_[u];
        if (i >= w.member.size())
            w.member.resize(i + 1, 0);
        if (!w.member[i]) {
            w.member[i] = 1;
            w.list.push_back(i);
            ++stats_.upd_enrolled;
        }
    }

    ClockRef
    mut_row(uint64_t bits)
    {
        return arena_[bits & ~kInflatedTag];
    }

    /** Promote entry i into a fresh (bottom) arena row; copies the old
     *  epoch's contents iff copy_contents. */
    ClockRef inflate(size_t i, bool copy_contents);

    void assign_slow(size_t i, ConstClockRef c, ThreadId t, bool c_pure);
    void join_slow(size_t i, ConstClockRef c, ThreadId t, bool c_pure);
    void join_except_slow(size_t i, ConstClockRef c, ThreadId t);

    std::vector<uint64_t> entries_;
    ClockBank arena_;
    size_t arena_rows_ = 0;
    /** Arena rows freed by gc_reclaim, drained by inflate() before the
     *  arena grows; rows on the list are bottom. */
    std::vector<size_t> free_rows_;
    /** Entry indices freed by gc_recycle_index, drained by
     *  add_entry_reusable; entries on the list are bottom. */
    std::vector<uint32_t> free_entries_;
    bool epochs_;
    bool upd_sets_ = update_sets_enabled_default();
    /** Window per thread; upd_gate_[t] != 0 iff t's window is open (still
     *  enrolling); open_windows_ lists exactly those threads. */
    std::vector<UpdWindow> upd_;
    std::vector<ClockValue> upd_gate_;
    std::vector<uint32_t> open_windows_;
    AdaptiveClockStats stats_;
};

} // namespace aero
