#include "vc/adaptive_clock.hpp"

#include <cstdlib>
#include <cstring>

namespace aero {

bool
epochs_enabled_default()
{
    static const bool enabled = [] {
        const char* v = std::getenv("AERO_EPOCHS");
        if (v == nullptr)
            return true;
        return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
                 std::strcmp(v, "OFF") == 0);
    }();
    return enabled;
}

bool
update_sets_enabled_default()
{
    static const bool enabled = [] {
        const char* v = std::getenv("AERO_UPDATE_SETS");
        if (v == nullptr)
            return true;
        return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
                 std::strcmp(v, "OFF") == 0);
    }();
    return enabled;
}

bool
gc_enabled_default()
{
    static const bool enabled = [] {
        const char* v = std::getenv("AERO_GC");
        if (v == nullptr)
            return false; // reclamation is opt-in
        return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
               std::strcmp(v, "ON") == 0;
    }();
    return enabled;
}

ClockRef
AdaptiveClockTable::inflate(size_t i, bool copy_contents)
{
    Epoch e = Epoch::from_bits(entries_[i]);
    size_t r;
    if (!free_rows_.empty()) {
        // Reclaimed rows are bottom already (gc_reclaim clears them).
        r = free_rows_.back();
        free_rows_.pop_back();
    } else {
        r = arena_rows_++;
        arena_.ensure_rows(arena_rows_);
    }
    entries_[i] = kInflatedTag | static_cast<uint64_t>(r);
    ClockRef row = arena_[r];
    // Fresh arena rows are bottom (the bank zero-fills growth), so only
    // the epoch's one component needs writing.
    if (copy_contents && !e.is_bottom())
        row.set(e.thread(), e.value());
    ++stats_.inflations;
    return row;
}

void
AdaptiveClockTable::assign_slow(size_t i, ConstClockRef c, ThreadId t,
                                bool c_pure)
{
    ClockRef row = is_inflated(i) ? mut_row(entries_[i])
                                  : inflate(i, /*copy_contents=*/false);
    if (c_pure) {
        // Inflated entries never demote: write bot[c[t]/t] as a full row.
        row.clear();
        row.set(t, c.get(t));
    } else {
        row.assign(c);
    }
    ++stats_.vector_ops;
}

void
AdaptiveClockTable::join_slow(size_t i, ConstClockRef c, ThreadId t,
                              bool c_pure)
{
    if (c_pure) {
        // Reached only when the entry is a foreign-thread epoch (or the
        // table runs with epochs off): the result has two components, so
        // inflate and fold in the one new component.
        ClockRef row = is_inflated(i) ? mut_row(entries_[i])
                                      : inflate(i, /*copy_contents=*/true);
        ClockValue v = c.get(t);
        if (v > row.get(t))
            row.set(t, v);
        ++stats_.vector_ops;
        return;
    }
    ClockRef row = is_inflated(i) ? mut_row(entries_[i])
                                  : inflate(i, /*copy_contents=*/true);
    row.join(c);
    ++stats_.vector_ops;
}

void
AdaptiveClockTable::join_except_slow(size_t i, ConstClockRef c, ThreadId t)
{
    if (is_inflated(i)) {
        mut_row(entries_[i]).join_except(c, t);
        ++stats_.vector_ops;
        return;
    }
    // Epoch entry e, impure source: result = e |_| c[0/t]. If c has no
    // foreign components beyond t, the source contributes bottom and the
    // epoch survives.
    bool contributes = false;
    for (size_t j = 0; j < c.dim(); ++j) {
        if (j != t && c.get(j) != 0) {
            contributes = true;
            break;
        }
    }
    ++stats_.vector_ops;
    if (!contributes)
        return;
    Epoch e = Epoch::from_bits(entries_[i]);
    ClockRef row = inflate(i, /*copy_contents=*/false);
    row.assign(c);
    row.set(t, 0);
    if (!e.is_bottom()) {
        ClockValue v = e.value();
        if (v > row.get(e.thread()))
            row.set(e.thread(), v);
    }
}

} // namespace aero
