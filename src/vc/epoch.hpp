#pragma once

/**
 * @file
 * Epoch — a vector time of the form bot[v/t], packed into one word.
 *
 * FastTrack's observation (the source paper's Section 7 future work)
 * carries over to conflict serializability: the timestamp a checker
 * stores for "last write of x" or "last read of x by t" is, in the
 * uncontended common case, the clock of a thread that has never received
 * an ordering from anyone else — a vector that is zero everywhere except
 * the owner's component. Such a clock is exactly (value, thread), a
 * 64-bit *epoch*, written v@t in the FastTrack literature.
 *
 * Unlike FastTrack's epochs, the ones in this repository are not an
 * approximation: an Epoch *is* the vector bot[v/t], and every adaptive
 * operation (vc/adaptive_clock.hpp) computes exactly the value the
 * full-vector representation would. When an operation's result stops
 * being epoch-shaped the entry inflates into a ClockBank row and stays
 * there ("promote on first contention, never demote").
 *
 * Encoding: value in bits 0..31, thread in bits 32..62, bit 63 reserved
 * as the inflation tag by AdaptiveClockTable (an Epoch itself always has
 * it clear). The bottom vector time is value 0 (thread ignored), so a
 * zero word is bottom — fresh entries need no initialisation.
 *
 * Under reclamation (AERO_GC=1; src/vc/README.md, "Reclamation") the
 * thread field names a *slot* of the engine's ThreadSlotMap, not an
 * external thread id: slots of joined threads are reissued, and the
 * retiring engine continues each slot's clock one past every value the
 * dead thread minted, so a stale v@s can never alias a reissued slot's
 * fresh epochs. With gc off, slot == external tid and nothing changes.
 */

#include <cassert>
#include <cstdint>
#include <string>

#include "trace/event.hpp"
#include "vc/vector_clock.hpp"

namespace aero {

/** The vector time bot[v/t] in one word. */
class Epoch {
public:
    /** Bottom (all-zero) vector time. */
    constexpr Epoch() : bits_(0) {}

    constexpr Epoch(ClockValue value, ThreadId thread)
        : bits_((static_cast<uint64_t>(thread) << 32) | value)
    {}

    /** Reconstruct from a raw word previously obtained via bits(). */
    static constexpr Epoch
    from_bits(uint64_t bits)
    {
        Epoch e;
        e.bits_ = bits;
        return e;
    }

    ClockValue value() const { return static_cast<ClockValue>(bits_); }
    ThreadId thread() const { return static_cast<ThreadId>(bits_ >> 32); }
    uint64_t bits() const { return bits_; }

    /** True iff this is the bottom vector time. */
    bool is_bottom() const { return value() == 0; }

    /** Component t of bot[v/thread]: v at the owner, 0 elsewhere. */
    ClockValue
    get(size_t t) const
    {
        return t == thread() ? value() : 0;
    }

    /** this sqsubseteq clk for a full vector clk: one component test. */
    template <typename Clk>
    bool
    leq(const Clk& clk) const
    {
        return value() <= clk.get(thread());
    }

    /** Materialise as a scalar VectorClock (tests, reports). */
    VectorClock
    to_vector_clock() const
    {
        VectorClock out;
        if (!is_bottom())
            out.set(thread(), value());
        return out;
    }

    std::string
    to_string() const
    {
        return std::to_string(value()) + "@" + std::to_string(thread());
    }

    bool operator==(const Epoch& o) const { return bits_ == o.bits_; }
    bool operator!=(const Epoch& o) const { return bits_ != o.bits_; }

private:
    uint64_t bits_;
};

} // namespace aero
