#pragma once

/**
 * @file
 * Vector times and vector clocks (paper, Section 4).
 *
 * A vector time is a map from threads to non-negative integers. With |Thr|
 * threads it is stored as a flat array of |Thr| counters. The operations
 * match the paper's notation:
 *
 *   - V1 <= V2 ("V1 sqsubseteq V2"): pointwise less-or-equal   -> leq()
 *   - V1 |_| V2 (join):              pointwise max              -> join()
 *   - V[c/t]:                        V with component t set to c -> with()
 *   - bot:                           all zeros                   -> default
 *
 * Clocks auto-resize: threads may appear dynamically in a trace, so any
 * access beyond the current dimension behaves as if the missing components
 * were 0 (which is exactly the paper's bottom element for fresh threads).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace aero {

/** Component type of a vector time. 32 bits suffice: one increment per
 *  transaction begin per thread. */
using ClockValue = uint32_t;

/**
 * A vector time over thread indices 0..dim-1 with implicit zeros beyond
 * the stored dimension.
 */
class VectorClock {
public:
    /** The bottom vector time (all zeros, dimension 0). */
    VectorClock() = default;

    /** Bottom vector time of the given dimension. */
    explicit VectorClock(size_t dim) : c_(dim, 0) {}

    /** Construct from explicit components (useful in tests). */
    VectorClock(std::initializer_list<ClockValue> components)
        : c_(components)
    {}

    /** Component for thread `t` (0 if beyond the stored dimension). */
    ClockValue
    get(size_t t) const
    {
        return t < c_.size() ? c_[t] : 0;
    }

    /** Set component `t` to `v`, growing the clock as needed. */
    void set(size_t t, ClockValue v);

    /** Increment component `t` by one (the begin-event local tick). */
    void tick(size_t t);

    /** Stored dimension (threads seen so far). */
    size_t dim() const { return c_.size(); }

    /** True iff all components are zero. */
    bool is_bottom() const;

    /** Pointwise maximum: *this := *this |_| other. */
    void join(const VectorClock& other);

    /** this sqsubseteq other: pointwise <= over all components. */
    bool leq(const VectorClock& other) const;

    /**
     * this sqsubseteq other, ignoring component `skip`. Implements the
     * paper's C-with-zeroed-component comparisons (e.g. hasIncomingEdge's
     * "C_t^b[0/t] != C_t[0/t]" style checks) without materialising a copy.
     */
    bool leq_except(const VectorClock& other, size_t skip) const;

    /** Equality on the infinite-dimensional interpretation. */
    bool operator==(const VectorClock& other) const;
    bool operator!=(const VectorClock& other) const { return !(*this == other); }

    /** Reset to bottom without releasing storage. */
    void clear();

    /**
     * *this := *this |_| other with component `zeroed` of `other` treated
     * as 0. Implements "hR_x := hR_x |_| C_u[0/u]" updates in one pass.
     */
    void join_except(const VectorClock& other, size_t zeroed);

    /** Render as "<c0,c1,...,ck>" for logs and tests. */
    std::string to_string() const;

private:
    std::vector<ClockValue> c_;
};

} // namespace aero
