#pragma once

/**
 * @file
 * FlatTable — a contiguous 2D table with amortized growth in both
 * dimensions, the scalar-id sibling of ClockBank.
 *
 * The Velodrome engines keep a last-read node id per (variable, thread)
 * pair; as `std::vector<std::vector<uint32_t>>` every variable costs a
 * separate heap block and the per-write scan over readers chases a
 * pointer per variable. FlatTable stores the whole matrix as one array
 * with row index = variable and a column capacity that doubles (with one
 * re-layout copy) when the thread count outgrows it, so a row scan is a
 * single streaming read.
 */

#include <cassert>
#include <cstddef>
#include <vector>

namespace aero {

template <typename T>
class FlatTable {
public:
    FlatTable() = default;

    FlatTable(size_t rows, size_t cols, T fill) : fill_(fill)
    {
        ensure_cols(cols);
        ensure_rows(rows);
    }

    /** Set the value new cells are born with (default T{}). Must be
     *  called before any growth to take effect uniformly. */
    void set_fill(T fill) { fill_ = fill; }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Grow to at least n rows, new cells = fill. */
    void
    ensure_rows(size_t n)
    {
        if (n <= rows_)
            return;
        data_.resize(n * col_cap_, fill_);
        rows_ = n;
    }

    /** Grow to at least n columns, new cells = fill. Re-lays out the
     *  arena when n exceeds the current column capacity (amortized by
     *  capacity doubling). */
    void
    ensure_cols(size_t n)
    {
        if (n <= cols_)
            return;
        if (n > col_cap_) {
            size_t new_cap = col_cap_ < 4 ? 4 : col_cap_ * 2;
            if (new_cap < n)
                new_cap = n;
            std::vector<T> fresh(rows_ * new_cap, fill_);
            for (size_t r = 0; r < rows_; ++r) {
                for (size_t c = 0; c < cols_; ++c)
                    fresh[r * new_cap + c] = data_[r * col_cap_ + c];
            }
            data_ = std::move(fresh);
            col_cap_ = new_cap;
        }
        cols_ = n;
    }

    T*
    row(size_t r)
    {
        assert(r < rows_);
        return data_.data() + r * col_cap_;
    }

    const T*
    row(size_t r) const
    {
        assert(r < rows_);
        return data_.data() + r * col_cap_;
    }

    T&
    at(size_t r, size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * col_cap_ + c];
    }

    const T&
    at(size_t r, size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * col_cap_ + c];
    }

    size_t memory_bytes() const { return data_.capacity() * sizeof(T); }

private:
    std::vector<T> data_;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t col_cap_ = 0;
    T fill_{};
};

} // namespace aero
