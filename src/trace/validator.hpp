#pragma once

/**
 * @file
 * Well-formedness validation (paper, Section 2).
 *
 * A trace is well-formed when:
 *  - lock acquires and releases are well matched: a thread only releases a
 *    lock it holds, and a lock is held by at most one thread at a time;
 *  - begin/end atomic-block events are well matched per thread (nesting is
 *    allowed; only the outermost pair delimits a transaction);
 *  - a fork(u) occurs before the first event of thread u, each thread is
 *    forked at most once, and no thread forks itself;
 *  - a join(u) occurs after the last event of thread u;
 *  - a forked thread is not the forking thread and a joined thread is not
 *    the joining thread.
 *
 * The checkers in this repository assume well-formed input; generators are
 * fuzz-tested against this validator.
 */

#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace aero {

/** Options controlling which disciplines the validator enforces. */
struct ValidatorOptions {
    /** Allow a thread to re-acquire a lock it already holds (reentrant
     *  locking, Java-monitor style). Default: strict (non-reentrant). */
    bool allow_reentrant_locks = false;

    /** Require every begin to be closed by trace end. */
    bool require_closed_transactions = false;

    /** Require every held lock to be released by trace end. */
    bool require_released_locks = false;
};

/** Result of validating a trace. */
struct ValidationResult {
    bool ok = true;
    /** Index of the first offending event (or trace size for end-of-trace
     *  violations such as unclosed transactions). */
    size_t event_index = 0;
    std::string message;
};

/** Validate `trace` against the well-formedness rules. */
ValidationResult validate(const Trace& trace, const ValidatorOptions& opts = {});

} // namespace aero
