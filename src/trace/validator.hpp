#pragma once

/**
 * @file
 * Well-formedness validation (paper, Section 2).
 *
 * A trace is well-formed when:
 *  - lock acquires and releases are well matched: a thread only releases a
 *    lock it holds, and a lock is held by at most one thread at a time;
 *  - begin/end atomic-block events are well matched per thread (nesting is
 *    allowed; only the outermost pair delimits a transaction);
 *  - a fork(u) occurs before the first event of thread u, each thread is
 *    forked at most once, and no thread forks itself;
 *  - a join(u) occurs after the last event of thread u;
 *  - a forked thread is not the forking thread and a joined thread is not
 *    the joining thread.
 *
 * The checkers in this repository assume well-formed input; generators are
 * fuzz-tested against this validator.
 *
 * Malformations are classified by severity (src/trace/README.md has the
 * full table). *Recoverable* ones are local discipline slips — lock or
 * transaction structure momentarily off — after which the rest of the
 * trace still means what it says; a robust ingestion pipeline may note
 * them and continue in degraded mode. *Fatal* ones confuse thread
 * identity or lifecycle (self-fork, events after a join): every
 * subsequent event of the affected thread is suspect, so no sound
 * analysis can continue past them.
 */

#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace aero {

/** How badly a malformation poisons the remainder of the trace. */
enum class MalformationSeverity : uint8_t {
    /** Local discipline slip (lock/transaction structure); analysis may
     *  continue in degraded mode. */
    kRecoverable,
    /** Thread identity/lifecycle confusion; the trace is not analyzable
     *  past this point. */
    kFatal,
};

const char* malformation_severity_name(MalformationSeverity severity);

/** Options controlling which disciplines the validator enforces. */
struct ValidatorOptions {
    /** Allow a thread to re-acquire a lock it already holds (reentrant
     *  locking, Java-monitor style). Default: strict (non-reentrant). */
    bool allow_reentrant_locks = false;

    /** Require every begin to be closed by trace end. */
    bool require_closed_transactions = false;

    /** Require every held lock to be released by trace end. */
    bool require_released_locks = false;
};

/** One malformation found by validate_all(). */
struct ValidationIssue {
    /** Index of the offending event (trace size for end-of-trace issues). */
    size_t event_index = 0;
    MalformationSeverity severity = MalformationSeverity::kRecoverable;
    std::string message;
};

/** Result of validating a trace. */
struct ValidationResult {
    bool ok = true;
    /** Index of the first offending event (or trace size for end-of-trace
     *  violations such as unclosed transactions). */
    size_t event_index = 0;
    /** Severity class of the first offense (meaningful when !ok). */
    MalformationSeverity severity = MalformationSeverity::kRecoverable;
    std::string message;
};

/** Validate `trace`; stops at the first malformation. */
ValidationResult validate(const Trace& trace, const ValidatorOptions& opts = {});

/**
 * Exhaustive sweep: collect every malformation (capped at kMaxIssues),
 * repairing state best-effort after each so later independent issues
 * still surface. Classification — not repair — is the contract: the
 * checkers still require a clean trace.
 */
std::vector<ValidationIssue> validate_all(const Trace& trace,
                                          const ValidatorOptions& opts = {});

/** Cap on issues collected by validate_all (a corrupt trace can offend
 *  on nearly every event). */
inline constexpr size_t kMaxIssues = 1024;

} // namespace aero
