#include "trace/text_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"
#include "support/str.hpp"

namespace aero {

void
write_text(std::ostream& os, const Trace& trace)
{
    os << "# aerodrome text trace: " << trace.size() << " events, "
       << trace.num_threads() << " threads, " << trace.num_vars()
       << " vars, " << trace.num_locks() << " locks\n";
    for (const Event& e : trace.events())
        os << trace.format_event(e) << "\n";
}

void
write_text_file(const std::string& path, const Trace& trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open file for writing: " + path);
    write_text(os, trace);
    if (!os)
        fatal("error while writing: " + path);
}

namespace {

Op
parse_op(std::string_view tok, size_t line_no)
{
    if (tok == "r")
        return Op::kRead;
    if (tok == "w")
        return Op::kWrite;
    if (tok == "acq")
        return Op::kAcquire;
    if (tok == "rel")
        return Op::kRelease;
    if (tok == "fork")
        return Op::kFork;
    if (tok == "join")
        return Op::kJoin;
    if (tok == "begin")
        return Op::kBegin;
    if (tok == "end")
        return Op::kEnd;
    fatal("line " + std::to_string(line_no) + ": unknown operation '" +
          std::string(tok) + "'");
}

} // namespace

Trace
read_text(std::istream& is)
{
    Trace trace;
    std::string line;
    size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::string_view sv = trim(line);
        if (sv.empty() || sv[0] == '#')
            continue;

        // Tokenize on runs of whitespace.
        std::vector<std::string_view> toks;
        size_t pos = 0;
        while (pos < sv.size()) {
            while (pos < sv.size() &&
                   std::isspace(static_cast<unsigned char>(sv[pos])))
                ++pos;
            size_t start = pos;
            while (pos < sv.size() &&
                   !std::isspace(static_cast<unsigned char>(sv[pos])))
                ++pos;
            if (pos > start)
                toks.push_back(sv.substr(start, pos - start));
        }
        if (toks.size() < 2) {
            fatal("line " + std::to_string(line_no) +
                  ": expected '<thread> <op> [target]'");
        }

        ThreadId t = trace.threads().intern(toks[0]);
        Op op = parse_op(toks[1], line_no);
        uint32_t target = 0;
        bool needs_target = !(op == Op::kBegin || op == Op::kEnd);
        if (needs_target) {
            if (toks.size() < 3) {
                fatal("line " + std::to_string(line_no) +
                      ": operation requires a target");
            }
            if (op_targets_var(op)) {
                target = trace.vars().intern(toks[2]);
            } else if (op_targets_lock(op)) {
                target = trace.locks().intern(toks[2]);
            } else {
                target = trace.threads().intern(toks[2]);
            }
        } else if (toks.size() > 2) {
            fatal("line " + std::to_string(line_no) +
                  ": begin/end take no target");
        }
        trace.push({t, target, op});
    }
    return trace;
}

Trace
read_text_file(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open file for reading: " + path);
    return read_text(is);
}

} // namespace aero
