#pragma once

/**
 * @file
 * Text trace format, one event per line (RAPID ".std"-style):
 *
 *   # comment / blank lines ignored
 *   t0 fork t1
 *   t1 begin
 *   t1 acq l0
 *   t1 w x3
 *   t1 rel l0
 *   t1 end
 *   t0 join t1
 *
 * Tokens are whitespace-separated; thread/var/lock names are arbitrary
 * non-whitespace tokens, interned in order of first appearance.
 */

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace aero {

/** Write `trace` in the text format. */
void write_text(std::ostream& os, const Trace& trace);

/** Write `trace` to a file; throws FatalError on I/O failure. */
void write_text_file(const std::string& path, const Trace& trace);

/** Parse a trace from the text format; throws FatalError on syntax errors. */
Trace read_text(std::istream& is);

/** Read a trace from a file; throws FatalError on I/O or syntax errors. */
Trace read_text_file(const std::string& path);

} // namespace aero
