#include "trace/metainfo.hpp"

#include <ostream>
#include <vector>

#include "support/str.hpp"

namespace aero {

MetaInfo
compute_metainfo(const Trace& trace)
{
    MetaInfo info;
    info.events = trace.size();
    info.threads = trace.num_threads();
    info.locks = trace.num_locks();
    info.vars = trace.num_vars();

    std::vector<uint32_t> depth(trace.num_threads(), 0);
    std::vector<uint64_t> txn_len(trace.num_threads(), 0);

    for (const Event& e : trace.events()) {
        ++info.per_op[static_cast<size_t>(e.op)];
        uint32_t& d = depth[e.tid];
        switch (e.op) {
          case Op::kBegin:
            if (d == 0) {
                ++info.transactions;
                txn_len[e.tid] = 0;
            } else {
                ++txn_len[e.tid];
            }
            ++d;
            if (d > info.max_nesting)
                info.max_nesting = d;
            break;
          case Op::kEnd:
            if (d > 0) {
                --d;
                if (d == 0) {
                    info.txn_event_sum += txn_len[e.tid];
                    if (txn_len[e.tid] > info.max_txn_events)
                        info.max_txn_events = txn_len[e.tid];
                } else {
                    ++txn_len[e.tid];
                }
            }
            break;
          default:
            if (d == 0)
                ++info.unary_events;
            else
                ++txn_len[e.tid];
            break;
        }
    }
    return info;
}

void
print_metainfo(std::ostream& os, const MetaInfo& info)
{
    os << "events:        " << with_commas(info.events) << "\n"
       << "threads:       " << info.threads << "\n"
       << "locks:         " << info.locks << "\n"
       << "variables:     " << info.vars << "\n"
       << "transactions:  " << with_commas(info.transactions) << "\n"
       << "unary events:  " << with_commas(info.unary_events) << "\n"
       << "max nesting:   " << info.max_nesting << "\n"
       << "avg txn size:  " << info.avg_txn_events() << "\n"
       << "max txn size:  " << with_commas(info.max_txn_events) << "\n";
    static constexpr const char* names[kNumOps] = {
        "read", "write", "acquire", "release",
        "fork", "join", "begin", "end",
    };
    for (size_t i = 0; i < kNumOps; ++i) {
        os << "  " << names[i] << ": " << with_commas(info.per_op[i])
           << "\n";
    }
}

} // namespace aero
