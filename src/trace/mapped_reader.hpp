#pragma once

/**
 * @file
 * Zero-copy block-decoding reader for the binary trace format.
 *
 * BinaryEventSource pays per-event costs the paper's checkers no longer
 * do: a virtual call per event, an istream get() per byte, and a deque
 * lookahead. For file-backed runs decode dominates the budget, so this
 * reader turns ingestion into block work: the trace is mmap'd read-only
 * (MADV_SEQUENTIAL) and next_n() decodes a whole caller-sized block per
 * call straight out of the mapping with a branch-light batched kernel —
 * a SWAR (8-byte word) scan finds spans free of LEB128 continuation
 * bits, inside which every record is 2-3 fixed bytes and decodes in a
 * tight loop (an AVX2 span scanner rides the vc module's existing
 * runtime dispatch); anything else takes a per-record slow path that
 * reproduces BinaryEventSource's error contract byte-for-byte.
 *
 * Fallback rules (the reader never refuses input BinaryEventSource
 * accepts):
 *  - pipes/stdin, mmap failure, or AERO_MMAP=0 switch to a read()-into-
 *    buffer window over the same batched kernel (absolute offsets are
 *    preserved across refills);
 *  - an armed AERO_FAULTS ingest plan (FaultSite::kTraceByte) delegates
 *    wholesale to an inner BinaryEventSource, whose per-byte hooks the
 *    fault plans target — arming happens before a run starts (the
 *    documented injector contract), so the choice is made once at
 *    construction.
 *
 * Error contract: identical to BinaryEventSource (src/trace/README.md)
 * — same StreamError causes, messages, event indices, and absolute byte
 * offsets, in strict and resync modes. The batch twist: in strict mode a
 * corruption found after >= 1 events of a block were decoded returns the
 * prefix first and raises the identical error on the next call (see
 * EventSource::next_n).
 */

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "trace/stream.hpp"

namespace aero {

class MappedBinaryEventSource : public EventSource {
public:
    /** Open `path`: mmap when it is a regular file and AERO_MMAP != 0,
     *  else buffered reads. Parses and validates the header immediately;
     *  throws StreamCorruption (kBadHeader) when malformed. Fatal when
     *  the file cannot be opened. */
    explicit MappedBinaryEventSource(const std::string& path);

    /** Stream ctor (pipes, stdin, tests): always the buffered window.
     *  `is` must outlive the source. */
    explicit MappedBinaryEventSource(std::istream& is);

    ~MappedBinaryEventSource() override;

    MappedBinaryEventSource(const MappedBinaryEventSource&) = delete;
    MappedBinaryEventSource& operator=(const MappedBinaryEventSource&) =
        delete;

    bool next(Event& out) override;
    size_t next_n(Event* out, size_t n) override;

    /** "binary-mmap", "binary-buffered", or the inner per-item reader's
     *  kind when an ingest fault plan forced delegation. */
    const char* source_kind() const override;

    void set_resync(bool on) override;
    const std::vector<StreamError>& recovered_errors() const override;
    uint64_t recovered_error_count() const override;

    bool dimensions(uint32_t& threads, uint32_t& vars,
                    uint32_t& locks) const override;

    /** Event count promised by the header. */
    uint64_t expected_events() const;

    /** True when the trace is served from an mmap (diagnostics). */
    bool is_mapped() const { return mapped_; }

private:
    /** Longest record: 1 opcode + two 5-byte varints. */
    static constexpr size_t kMaxRecordBytes = 11;
    /** Buffered-mode read granularity. */
    static constexpr size_t kReadChunk = 256 * 1024;

    enum class Rec : uint8_t { kOk, kShort, kBad };

    void open_mapped_or_buffered(const std::string& path);
    void parse_header();
    void refill();
    size_t decode_block(Event* out, size_t n);
    Rec decode_one(Event& out, size_t& len, StreamError& err);
    void extend_clean_span();
    void record_gap(StreamError err);

    // Fault fallback: everything delegates to the per-item decoder whose
    // per-byte hooks the armed ingest plan targets.
    std::unique_ptr<std::ifstream> own_stream_;
    std::unique_ptr<BinaryEventSource> inner_;

    // Byte window. Mapped: data_ spans the whole file and never moves.
    // Buffered: data_ == buf_.data(); refill() compacts and reads.
    const uint8_t* data_ = nullptr;
    size_t avail_ = 0; ///< valid bytes in data_
    size_t pos_ = 0;   ///< next undecoded byte
    uint64_t base_ = 0; ///< absolute stream offset of data_[0]
    size_t clean_end_ = 0; ///< data_[pos_..clean_end_) has no high bits

    bool mapped_ = false;
    void* map_base_ = nullptr;
    size_t map_len_ = 0;

    std::istream* in_ = nullptr; ///< buffered-mode byte source
    std::vector<uint8_t> buf_;
    bool src_eof_ = false;

    uint64_t expected_ = 0;
    uint64_t produced_ = 0;
    uint32_t num_threads_ = 0;
    uint32_t num_vars_ = 0;
    uint32_t num_locks_ = 0;
    /** Per-opcode target-id space bound and presence, precomputed from
     *  the header so the block loop validates without branching on op
     *  kind. */
    uint32_t limit_by_op_[kNumOps] = {};
    bool has_target_[kNumOps] = {};

    bool resync_ = false;
    bool done_ = false;     ///< terminal truncation already delivered
    bool gap_open_ = false; ///< inside a contiguous corruption gap
    std::vector<StreamError> errors_;
    uint64_t errors_total_ = 0;
};

} // namespace aero
