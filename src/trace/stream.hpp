#pragma once

/**
 * @file
 * Streaming event sources.
 *
 * The paper's traces run to billions of events (Table 1: avrora 2.4B,
 * lusearch 2.0B); such logs do not fit in memory. Both checkers are
 * single-pass online algorithms, so this module provides pull-based
 * event sources that decode one event at a time from the text or binary
 * format, plus an adapter over an in-memory Trace. The analysis runner
 * has a streaming entry point (`run_checker_stream`) built on these.
 *
 * Sources also accumulate the id spaces seen so far, so a consumer can
 * size its state lazily (the checkers auto-grow anyway).
 */

#include <istream>
#include <memory>

#include "trace/trace.hpp"

namespace aero {

/** Pull-based event stream. */
class EventSource {
public:
    virtual ~EventSource() = default;

    /**
     * Decode the next event into `out`.
     * @return false at end of stream; throws FatalError on corrupt input.
     */
    virtual bool next(Event& out) = 0;

    /**
     * Metainfo dimensions of the whole stream, when the source knows them
     * up front (an in-memory trace, a binary header). Lets the streaming
     * runner pre-size engine arenas exactly like the materialized path.
     * @return false when the dimensions are only known at end of stream
     *         (e.g. the incrementally-interned text format).
     */
    virtual bool
    dimensions(uint32_t& /*threads*/, uint32_t& /*vars*/,
               uint32_t& /*locks*/) const
    {
        return false;
    }
};

/** Adapter: stream an in-memory trace. */
class TraceSource : public EventSource {
public:
    explicit TraceSource(const Trace& trace) : trace_(trace) {}

    bool
    next(Event& out) override
    {
        if (pos_ >= trace_.size())
            return false;
        out = trace_[pos_++];
        return true;
    }

    bool
    dimensions(uint32_t& threads, uint32_t& vars,
               uint32_t& locks) const override
    {
        threads = trace_.num_threads();
        vars = trace_.num_vars();
        locks = trace_.num_locks();
        return true;
    }

private:
    const Trace& trace_;
    size_t pos_ = 0;
};

/**
 * Streaming reader for the text format (see text_io.hpp). Thread, var,
 * and lock names are interned incrementally; the tables are exposed so
 * callers can render events or map names after (or during) the run.
 */
class TextEventSource : public EventSource {
public:
    explicit TextEventSource(std::istream& is) : is_(is) {}

    bool next(Event& out) override;

    const NameTable& threads() const { return threads_; }
    const NameTable& vars() const { return vars_; }
    const NameTable& locks() const { return locks_; }

private:
    std::istream& is_;
    NameTable threads_;
    NameTable vars_;
    NameTable locks_;
    size_t line_no_ = 0;
};

/** Streaming reader for the binary format (see binary_io.hpp). */
class BinaryEventSource : public EventSource {
public:
    /** Reads and validates the header immediately. */
    explicit BinaryEventSource(std::istream& is);

    bool next(Event& out) override;

    /** Event count promised by the header. */
    uint64_t expected_events() const { return expected_; }
    uint32_t num_threads() const { return num_threads_; }
    uint32_t num_vars() const { return num_vars_; }
    uint32_t num_locks() const { return num_locks_; }

    bool
    dimensions(uint32_t& threads, uint32_t& vars,
               uint32_t& locks) const override
    {
        threads = num_threads_;
        vars = num_vars_;
        locks = num_locks_;
        return true;
    }

private:
    std::istream& is_;
    uint64_t expected_ = 0;
    uint64_t produced_ = 0;
    uint32_t num_threads_ = 0;
    uint32_t num_vars_ = 0;
    uint32_t num_locks_ = 0;
};

/** Open a file as a streaming source (binary iff the path ends ".bin"). */
std::unique_ptr<EventSource> open_event_source(const std::string& path,
                                               std::unique_ptr<std::istream>& storage);

} // namespace aero
