#pragma once

/**
 * @file
 * Streaming event sources.
 *
 * The paper's traces run to billions of events (Table 1: avrora 2.4B,
 * lusearch 2.0B); such logs do not fit in memory. Both checkers are
 * single-pass online algorithms, so this module provides pull-based
 * event sources that decode one event at a time from the text or binary
 * format, plus an adapter over an in-memory Trace. The analysis runner
 * has a streaming entry point (`run_checker_stream`) built on these.
 *
 * Sources also accumulate the id spaces seen so far, so a consumer can
 * size its state lazily (the checkers auto-grow anyway).
 *
 * Corrupt input is a first-class outcome, not an abort (src/trace/
 * README.md): in strict mode (the default) a malformed byte raises
 * StreamCorruption with a structured StreamError; in resync mode
 * (set_resync) the reader records the error, scans forward to the next
 * plausible record boundary, and keeps going — the consumer sees a
 * degraded but sound stream.
 */

#include <algorithm>
#include <deque>
#include <exception>
#include <istream>
#include <memory>
#include <vector>

#include "trace/stream_error.hpp"
#include "trace/trace.hpp"

namespace aero {

/** Hard plausibility cap on header-declared id spaces: a count above
 *  this is treated as corruption (kBadHeader), never as an allocation
 *  request. Generous next to any real trace (paper workloads top out at
 *  millions of variables and dozens of threads). */
inline constexpr uint32_t kMaxHeaderIds = 1u << 26;

/** Default block size for batched ingestion (resolve_ingest_block). */
inline constexpr size_t kDefaultIngestBlock = 4096;

/** Resolve a block-ingestion size: `requested` when nonzero, else the
 *  AERO_INGEST_BLOCK environment variable, else kDefaultIngestBlock.
 *  Garbage or out-of-range env values fall back to the default. */
size_t resolve_ingest_block(size_t requested);

/** Pull-based event stream. */
class EventSource {
public:
    virtual ~EventSource() = default;

    /**
     * Decode the next event into `out`.
     * @return false at end of stream; throws StreamCorruption (an
     *         aero::FatalError) on corrupt input in strict mode.
     */
    virtual bool next(Event& out) = 0;

    /**
     * Decode up to `n` events into `out` — the block-ingestion entry
     * point consumers (runner, shard reader) drive so sources can
     * amortize per-event virtual-call and decode overhead.
     *
     * @return the number of events decoded; 0 only at end of stream.
     *
     * Contract (identical observable behavior to repeated next()):
     *  - strict mode: a corrupt record found after >= 1 events decoded
     *    ends the batch early — those events are returned, nothing of
     *    the corrupt record is consumed, and the *next* call raises the
     *    identical StreamCorruption (same cause/index/byte offset). A
     *    batch that decodes nothing before the corruption throws.
     *  - resync mode: errors are recorded and skipped inside the call,
     *    exactly as next() would; a short return still means the stream
     *    is over.
     */
    virtual size_t next_n(Event* out, size_t n);

    /** Short reader-kind tag for diagnostics and --stats lines. */
    virtual const char* source_kind() const { return "stream"; }

    /**
     * Metainfo dimensions of the whole stream, when the source knows them
     * up front (an in-memory trace, a binary header). Lets the streaming
     * runner pre-size engine arenas exactly like the materialized path.
     * @return false when the dimensions are only known at end of stream
     *         (e.g. the incrementally-interned text format).
     */
    virtual bool
    dimensions(uint32_t& /*threads*/, uint32_t& /*vars*/,
               uint32_t& /*locks*/) const
    {
        return false;
    }

    /** Opt in to resynchronization: corrupt records are recorded and
     *  skipped instead of raising StreamCorruption. Default: strict. */
    virtual void set_resync(bool /*on*/) {}

    /** Errors recovered by resync so far (first kMaxRecordedErrors
     *  kept; recovered_error_count() has the full tally). */
    virtual const std::vector<StreamError>& recovered_errors() const;

    /** Total corrupt records recovered by resync. */
    virtual uint64_t recovered_error_count() const { return 0; }

    /** Cap on individually recorded resync errors. */
    static constexpr size_t kMaxRecordedErrors = 64;

protected:
    /** Error raised by next() after >= 1 events of a default-next_n batch
     *  were already decoded: stashed here, rethrown at the next call so
     *  the partial batch is not lost (see next_n contract). */
    std::exception_ptr pending_error_;
    /** Latched once next() returns false inside a next()-looping next_n:
     *  later calls return 0 without re-entering next(). Post-EOF next()
     *  is not observably idempotent (the resync reader re-records its
     *  terminal short-count error each call), and batch drains always
     *  make one final call to see the 0. */
    bool exhausted_ = false;
};

/** Adapter: stream an in-memory trace. */
class TraceSource : public EventSource {
public:
    explicit TraceSource(const Trace& trace) : trace_(trace) {}

    bool
    next(Event& out) override
    {
        if (pos_ >= trace_.size())
            return false;
        out = trace_[pos_++];
        return true;
    }

    size_t
    next_n(Event* out, size_t n) override
    {
        const size_t got = std::min(n, trace_.size() - pos_);
        std::copy_n(trace_.events().begin() + static_cast<long>(pos_), got,
                    out);
        pos_ += got;
        return got;
    }

    const char* source_kind() const override { return "trace"; }

    bool
    dimensions(uint32_t& threads, uint32_t& vars,
               uint32_t& locks) const override
    {
        threads = trace_.num_threads();
        vars = trace_.num_vars();
        locks = trace_.num_locks();
        return true;
    }

private:
    const Trace& trace_;
    size_t pos_ = 0;
};

/**
 * Streaming reader for the text format (see text_io.hpp). Thread, var,
 * and lock names are interned incrementally; the tables are exposed so
 * callers can render events or map names after (or during) the run.
 * StreamError::byte_offset reports the 1-based line number.
 */
class TextEventSource : public EventSource {
public:
    explicit TextEventSource(std::istream& is) : is_(is) {}

    bool next(Event& out) override;
    size_t next_n(Event* out, size_t n) override;
    const char* source_kind() const override { return "text"; }

    void set_resync(bool on) override { resync_ = on; }
    const std::vector<StreamError>& recovered_errors() const override
    {
        return errors_;
    }
    uint64_t recovered_error_count() const override { return errors_total_; }

    const NameTable& threads() const { return threads_; }
    const NameTable& vars() const { return vars_; }
    const NameTable& locks() const { return locks_; }

private:
    /** @return 1 event parsed, 0 blank/comment line, -1 parse error
     *  (message in `err`). Interns names only on success. */
    int parse_line(const std::string& line, Event& out, std::string& err);

    std::istream& is_;
    NameTable threads_;
    NameTable vars_;
    NameTable locks_;
    size_t line_no_ = 0;
    uint64_t produced_ = 0;
    bool resync_ = false;
    bool truncated_ = false; // injected stream cut (AERO_FAULTS)
    std::vector<StreamError> errors_;
    uint64_t errors_total_ = 0;
};

/**
 * Streaming reader for the binary format (see binary_io.hpp). Decodes
 * through a small lookahead buffer so resync mode can re-attempt a
 * record at every byte offset after a corruption without seeking the
 * underlying stream (pipes included). Event ids are validated against
 * the header-declared id spaces — a tid or target at or beyond them is
 * corruption, never an instruction to allocate.
 */
class BinaryEventSource : public EventSource {
public:
    /** Reads and validates the header immediately; throws
     *  StreamCorruption (kBadHeader) when malformed or implausible. */
    explicit BinaryEventSource(std::istream& is);

    bool next(Event& out) override;
    size_t next_n(Event* out, size_t n) override;
    const char* source_kind() const override { return "binary"; }

    void set_resync(bool on) override { resync_ = on; }
    const std::vector<StreamError>& recovered_errors() const override
    {
        return errors_;
    }
    uint64_t recovered_error_count() const override { return errors_total_; }

    /** Event count promised by the header. */
    uint64_t expected_events() const { return expected_; }
    uint32_t num_threads() const { return num_threads_; }
    uint32_t num_vars() const { return num_vars_; }
    uint32_t num_locks() const { return num_locks_; }

    bool
    dimensions(uint32_t& threads, uint32_t& vars,
               uint32_t& locks) const override
    {
        threads = num_threads_;
        vars = num_vars_;
        locks = num_locks_;
        return true;
    }

private:
    enum class Decode : uint8_t { kOk, kEof, kBad };

    int peek_byte(size_t k);
    void consume(size_t n);
    Decode try_decode(Event& out, size_t& len, StreamError& err);
    void record_or_throw(StreamError err, bool& recorded_this_gap);

    std::istream& is_;
    uint64_t expected_ = 0;
    uint64_t produced_ = 0;
    uint32_t num_threads_ = 0;
    uint32_t num_vars_ = 0;
    uint32_t num_locks_ = 0;
    /** Lookahead bytes already pulled from is_ (fault filter applied);
     *  front is the next undecoded byte at stream offset offset_. */
    std::deque<int> buf_;
    uint64_t offset_ = 0; // absolute offset of buf_ front
    bool truncated_ = false;
    bool resync_ = false;
    std::vector<StreamError> errors_;
    uint64_t errors_total_ = 0;
};

/**
 * Decide text vs binary for `path` by sniffing the first 8 bytes for the
 * AEROTRC1 magic; the ".bin" extension is only a fallback for files too
 * short to sniff. A ".bin" file without the magic is a contradiction —
 * parsing it as text would only produce noise — and raises
 * StreamCorruption (kBadHeader) naming both signals.
 * @return true for binary. Fatal when the file cannot be opened.
 */
bool trace_is_binary(const std::string& path);

/**
 * Open a file as a streaming source. Format is sniffed by magic
 * (trace_is_binary); binary files get the block-decoding
 * MappedBinaryEventSource (mmap, buffered fallback — see
 * mapped_reader.hpp), which owns its input, so `storage` is only
 * populated for text sources.
 */
std::unique_ptr<EventSource> open_event_source(const std::string& path,
                                               std::unique_ptr<std::istream>& storage);

} // namespace aero
