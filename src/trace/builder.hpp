#pragma once

/**
 * @file
 * Fluent, name-based trace construction for tests and examples.
 *
 * Mirrors the paper's trace notation closely, e.g. trace rho_2 (Figure 2):
 *
 *   TraceBuilder b;
 *   b.begin("t1").begin("t2")
 *    .write("t1", "x").read("t2", "x")
 *    .write("t2", "y").read("t1", "y")
 *    .end("t2").end("t1");
 *   Trace t = b.take();
 */

#include <string_view>

#include "trace/trace.hpp"

namespace aero {

/** Builds a Trace from human-readable thread/var/lock names. */
class TraceBuilder {
public:
    TraceBuilder& read(std::string_view t, std::string_view x);
    TraceBuilder& write(std::string_view t, std::string_view x);
    TraceBuilder& acquire(std::string_view t, std::string_view l);
    TraceBuilder& release(std::string_view t, std::string_view l);
    TraceBuilder& fork(std::string_view t, std::string_view u);
    TraceBuilder& join(std::string_view t, std::string_view u);
    TraceBuilder& begin(std::string_view t);
    TraceBuilder& end(std::string_view t);

    /** Access the trace under construction. */
    const Trace& trace() const { return trace_; }

    /** Move the finished trace out of the builder. */
    Trace take() { return std::move(trace_); }

private:
    ThreadId tid(std::string_view t) { return trace_.threads().intern(t); }

    Trace trace_;
};

} // namespace aero
