#include "trace/validator.hpp"

#include <vector>

namespace aero {

namespace {

constexpr auto kRecoverable = MalformationSeverity::kRecoverable;
constexpr auto kFatal = MalformationSeverity::kFatal;

/**
 * Single walker behind both entry points. `emit` receives each issue and
 * returns whether to keep scanning; after a reported issue the walker
 * repairs its state best-effort (adopt the offending acquire, ignore the
 * foreign release, ...) so later independent issues still surface in
 * exhaustive mode.
 */
template <typename Emit>
void
walk(const Trace& trace, const ValidatorOptions& opts, Emit&& emit)
{
    const uint32_t nt = trace.num_threads();
    const uint32_t nl = trace.num_locks();

    // Per-lock state: holder thread and reentrancy depth.
    std::vector<ThreadId> holder(nl, kNoThread);
    std::vector<uint32_t> depth(nl, 0);

    // Per-thread state.
    std::vector<uint32_t> txn_depth(nt, 0);
    std::vector<bool> started(nt, false);  // performed any event
    std::vector<bool> forked(nt, false);   // appeared as fork target
    std::vector<bool> joined(nt, false);   // appeared as join target

    for (size_t i = 0; i < trace.size(); ++i) {
        const Event& e = trace[i];
        const ThreadId t = e.tid;

        if (joined[t]) {
            if (!emit(i, kFatal,
                      "thread " + trace.threads().name_of(t, "t") +
                          " performs an event after being joined"))
                return;
            joined[t] = false; // report the resurrection once, not per event
        }
        started[t] = true;

        switch (e.op) {
          case Op::kAcquire: {
            const LockId l = e.target;
            if (holder[l] == t) {
                if (!opts.allow_reentrant_locks &&
                    !emit(i, kRecoverable,
                          "reentrant acquire of lock " +
                              trace.locks().name_of(l, "l")))
                    return;
                ++depth[l];
            } else if (holder[l] != kNoThread) {
                if (!emit(i, kRecoverable,
                          "lock " + trace.locks().name_of(l, "l") +
                              " acquired while held by another thread"))
                    return;
                holder[l] = t; // best effort: the acquire wins
                depth[l] = 1;
            } else {
                holder[l] = t;
                depth[l] = 1;
            }
            break;
          }
          case Op::kRelease: {
            const LockId l = e.target;
            if (holder[l] != t) {
                if (!emit(i, kRecoverable,
                          "release of lock " +
                              trace.locks().name_of(l, "l") +
                              " not held by the releasing thread"))
                    return;
                break; // best effort: ignore the foreign release
            }
            if (--depth[l] == 0)
                holder[l] = kNoThread;
            break;
          }
          case Op::kFork: {
            const ThreadId u = e.target;
            if (u == t) {
                if (!emit(i, kFatal, "thread forks itself"))
                    return;
                break;
            }
            if (forked[u]) {
                if (!emit(i, kFatal,
                          "thread " + trace.threads().name_of(u, "t") +
                              " forked twice"))
                    return;
                break;
            }
            if (started[u]) {
                if (!emit(i, kFatal,
                          "fork of thread " +
                              trace.threads().name_of(u, "t") +
                              " after its first event"))
                    return;
                break;
            }
            forked[u] = true;
            break;
          }
          case Op::kJoin: {
            const ThreadId u = e.target;
            if (u == t) {
                if (!emit(i, kFatal, "thread joins itself"))
                    return;
                break;
            }
            if (joined[u]) {
                if (!emit(i, kFatal,
                          "thread " + trace.threads().name_of(u, "t") +
                              " joined twice"))
                    return;
                break;
            }
            joined[u] = true;
            break;
          }
          case Op::kBegin:
            ++txn_depth[t];
            break;
          case Op::kEnd:
            if (txn_depth[t] == 0) {
                if (!emit(i, kRecoverable,
                          "transaction end without matching begin"))
                    return;
                break;
            }
            --txn_depth[t];
            break;
          case Op::kRead:
          case Op::kWrite:
            break;
        }
    }

    if (opts.require_closed_transactions) {
        for (uint32_t t = 0; t < nt; ++t) {
            if (txn_depth[t] != 0 &&
                !emit(trace.size(), kRecoverable,
                      "thread " + trace.threads().name_of(t, "t") +
                          " ends the trace with an open transaction"))
                return;
        }
    }
    if (opts.require_released_locks) {
        for (uint32_t l = 0; l < nl; ++l) {
            if (holder[l] != kNoThread &&
                !emit(trace.size(), kRecoverable,
                      "lock " + trace.locks().name_of(l, "l") +
                          " still held at trace end"))
                return;
        }
    }
}

} // namespace

const char*
malformation_severity_name(MalformationSeverity severity)
{
    switch (severity) {
      case MalformationSeverity::kRecoverable:
        return "recoverable";
      case MalformationSeverity::kFatal:
        return "fatal";
    }
    return "?";
}

ValidationResult
validate(const Trace& trace, const ValidatorOptions& opts)
{
    ValidationResult result;
    walk(trace, opts,
         [&](size_t index, MalformationSeverity severity, std::string msg) {
             result.ok = false;
             result.event_index = index;
             result.severity = severity;
             result.message = std::move(msg);
             return false; // first offense ends the scan
         });
    return result;
}

std::vector<ValidationIssue>
validate_all(const Trace& trace, const ValidatorOptions& opts)
{
    std::vector<ValidationIssue> issues;
    walk(trace, opts,
         [&](size_t index, MalformationSeverity severity, std::string msg) {
             issues.push_back(
                 ValidationIssue{index, severity, std::move(msg)});
             return issues.size() < kMaxIssues;
         });
    return issues;
}

} // namespace aero
