#include "trace/validator.hpp"

#include <vector>

namespace aero {

namespace {

ValidationResult
fail(size_t index, std::string msg)
{
    return ValidationResult{false, index, std::move(msg)};
}

} // namespace

ValidationResult
validate(const Trace& trace, const ValidatorOptions& opts)
{
    const uint32_t nt = trace.num_threads();
    const uint32_t nl = trace.num_locks();

    // Per-lock state: holder thread and reentrancy depth.
    std::vector<ThreadId> holder(nl, kNoThread);
    std::vector<uint32_t> depth(nl, 0);

    // Per-thread state.
    std::vector<uint32_t> txn_depth(nt, 0);
    std::vector<bool> started(nt, false);  // performed any event
    std::vector<bool> forked(nt, false);   // appeared as fork target
    std::vector<bool> joined(nt, false);   // appeared as join target

    for (size_t i = 0; i < trace.size(); ++i) {
        const Event& e = trace[i];
        const ThreadId t = e.tid;

        if (joined[t]) {
            return fail(i, "thread " + trace.threads().name_of(t, "t") +
                               " performs an event after being joined");
        }
        started[t] = true;

        switch (e.op) {
          case Op::kAcquire: {
            const LockId l = e.target;
            if (holder[l] == t) {
                if (!opts.allow_reentrant_locks) {
                    return fail(i, "reentrant acquire of lock " +
                                       trace.locks().name_of(l, "l"));
                }
                ++depth[l];
            } else if (holder[l] != kNoThread) {
                return fail(i, "lock " + trace.locks().name_of(l, "l") +
                                   " acquired while held by another thread");
            } else {
                holder[l] = t;
                depth[l] = 1;
            }
            break;
          }
          case Op::kRelease: {
            const LockId l = e.target;
            if (holder[l] != t) {
                return fail(i, "release of lock " +
                                   trace.locks().name_of(l, "l") +
                                   " not held by the releasing thread");
            }
            if (--depth[l] == 0)
                holder[l] = kNoThread;
            break;
          }
          case Op::kFork: {
            const ThreadId u = e.target;
            if (u == t)
                return fail(i, "thread forks itself");
            if (forked[u])
                return fail(i, "thread " + trace.threads().name_of(u, "t") +
                                   " forked twice");
            if (started[u]) {
                return fail(i, "fork of thread " +
                                   trace.threads().name_of(u, "t") +
                                   " after its first event");
            }
            forked[u] = true;
            break;
          }
          case Op::kJoin: {
            const ThreadId u = e.target;
            if (u == t)
                return fail(i, "thread joins itself");
            if (joined[u])
                return fail(i, "thread " + trace.threads().name_of(u, "t") +
                                   " joined twice");
            joined[u] = true;
            break;
          }
          case Op::kBegin:
            ++txn_depth[t];
            break;
          case Op::kEnd:
            if (txn_depth[t] == 0)
                return fail(i, "transaction end without matching begin");
            --txn_depth[t];
            break;
          case Op::kRead:
          case Op::kWrite:
            break;
        }
    }

    if (opts.require_closed_transactions) {
        for (uint32_t t = 0; t < nt; ++t) {
            if (txn_depth[t] != 0) {
                return fail(trace.size(),
                            "thread " + trace.threads().name_of(t, "t") +
                                " ends the trace with an open transaction");
            }
        }
    }
    if (opts.require_released_locks) {
        for (uint32_t l = 0; l < nl; ++l) {
            if (holder[l] != kNoThread) {
                return fail(trace.size(), "lock " +
                                              trace.locks().name_of(l, "l") +
                                              " still held at trace end");
            }
        }
    }
    return ValidationResult{};
}

} // namespace aero
