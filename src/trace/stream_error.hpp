#pragma once

/**
 * @file
 * Structured stream-corruption reporting (see src/trace/README.md for
 * the full error-handling contract).
 *
 * A corrupt byte mid-stream must not unwind the whole process with a
 * bare message: StreamError pins the failure to an event index, a byte
 * offset (line number for the text format) and a machine-readable
 * cause, and StreamCorruption carries it as an exception. It derives
 * from FatalError so existing catch sites keep working; runners catch
 * it specifically and convert it into RunStatus::kStreamError.
 */

#include <cstdint>
#include <string>

#include "support/assert.hpp"

namespace aero {

/** Where and why a trace stream stopped decoding. */
struct StreamError {
    enum class Cause : uint8_t {
        kBadHeader,    ///< magic/header malformed or implausible
        kTruncated,    ///< stream ended inside a record or short of count
        kBadOpcode,    ///< opcode byte outside the event alphabet
        kBadVarint,    ///< varint overlong for a u32 id
        kIdOutOfRange, ///< id >= the header-declared id space
        kParse,        ///< text line does not parse
    };

    Cause cause = Cause::kParse;
    /** Index of the event being decoded when the error hit. */
    uint64_t event_index = 0;
    /** Byte offset into the stream (binary) or 1-based line number
     *  (text) of the offending input. */
    uint64_t byte_offset = 0;
    std::string message;
};

const char* stream_error_cause_name(StreamError::Cause cause);

/** Thrown by the trace readers on corrupt input (strict mode). */
class StreamCorruption : public FatalError {
public:
    explicit StreamCorruption(StreamError err)
        : FatalError(err.message), err_(std::move(err))
    {}

    const StreamError& error() const { return err_; }

private:
    StreamError err_;
};

} // namespace aero
