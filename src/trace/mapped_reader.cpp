#include "trace/mapped_reader.hpp"

#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "vc/clock_bank.hpp" // AERO_VC_X86_DISPATCH + kHaveAvx2

#ifdef AERO_VC_X86_DISPATCH
#include <immintrin.h>
#endif

namespace aero {

namespace {

/** @return the first index in [i, end) whose byte has the LEB128
 *  continuation bit set, or end. Generic SWAR: one 8-byte word test per
 *  iteration. */
size_t
clean_scan(const uint8_t* d, size_t i, size_t end)
{
    while (i + 8 <= end) {
        uint64_t w;
        std::memcpy(&w, d + i, 8);
        if (w & 0x8080808080808080ull)
            break;
        i += 8;
    }
    while (i < end && !(d[i] & 0x80))
        ++i;
    return i;
}

#ifdef AERO_VC_X86_DISPATCH
/** AVX2 variant: movemask folds 32 high bits into one register test.
 *  Out-of-line with target("avx2") and runtime-dispatched, same scheme
 *  as the vc kernels (clock_bank.cpp). */
__attribute__((target("avx2"))) size_t
clean_scan_avx2(const uint8_t* d, size_t i, size_t end)
{
    while (i + 32 <= end) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(d + i));
        const uint32_t m =
            static_cast<uint32_t>(_mm256_movemask_epi8(v));
        if (m != 0)
            return i + static_cast<size_t>(__builtin_ctz(m));
        i += 32;
    }
    while (i < end && !(d[i] & 0x80))
        ++i;
    return i;
}
#endif

bool
mmap_allowed()
{
    if (const char* env = std::getenv("AERO_MMAP"))
        return !(env[0] == '0' && env[1] == '\0');
    return true;
}

bool
ingest_fault_armed()
{
    return fault_points_compiled() &&
           FaultInjector::instance().armed_for(FaultSite::kTraceByte);
}

} // namespace

MappedBinaryEventSource::MappedBinaryEventSource(const std::string& path)
{
    if (ingest_fault_armed()) {
        own_stream_ =
            std::make_unique<std::ifstream>(path, std::ios::binary);
        if (!*own_stream_)
            fatal("cannot open file for reading: " + path);
        inner_ = std::make_unique<BinaryEventSource>(*own_stream_);
        return;
    }
    open_mapped_or_buffered(path);
    parse_header();
}

MappedBinaryEventSource::MappedBinaryEventSource(std::istream& is)
{
    if (ingest_fault_armed()) {
        inner_ = std::make_unique<BinaryEventSource>(is);
        return;
    }
    in_ = &is;
    buf_.resize(kReadChunk);
    data_ = buf_.data();
    parse_header();
}

MappedBinaryEventSource::~MappedBinaryEventSource()
{
    if (map_base_ != nullptr)
        ::munmap(map_base_, map_len_);
}

void
MappedBinaryEventSource::open_mapped_or_buffered(const std::string& path)
{
    if (mmap_allowed()) {
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd >= 0) {
            struct stat st;
            if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
                st.st_size > 0) {
                void* m =
                    ::mmap(nullptr, static_cast<size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
                if (m != MAP_FAILED) {
                    ::madvise(m, static_cast<size_t>(st.st_size),
                              MADV_SEQUENTIAL);
                    ::close(fd);
                    map_base_ = m;
                    map_len_ = static_cast<size_t>(st.st_size);
                    data_ = static_cast<const uint8_t*>(m);
                    avail_ = map_len_;
                    mapped_ = true;
                    return;
                }
            }
            ::close(fd);
        }
        // Not a regular file, or open/map failed: buffered fallback
        // below keeps pipes and special files working.
    }
    own_stream_ = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*own_stream_)
        fatal("cannot open file for reading: " + path);
    in_ = own_stream_.get();
    buf_.resize(kReadChunk);
    data_ = buf_.data();
}

void
MappedBinaryEventSource::refill()
{
    AERO_ASSERT(!mapped_ && in_ != nullptr, "refill on a mapped source");
    // Compact the undecoded tail to the front; base_ stays the absolute
    // offset of data_[0] so error byte offsets survive the move.
    const size_t tail = avail_ - pos_;
    if (pos_ > 0) {
        std::memmove(buf_.data(), buf_.data() + pos_, tail);
        base_ += pos_;
        pos_ = 0;
        avail_ = tail;
    }
    const size_t want = buf_.size() - avail_;
    in_->read(reinterpret_cast<char*>(buf_.data() + avail_),
              static_cast<std::streamsize>(want));
    const size_t got = static_cast<size_t>(in_->gcount());
    avail_ += got;
    if (got < want)
        src_eof_ = true;
    data_ = buf_.data();
    clean_end_ = pos_; // window moved: re-scan lazily
}

void
MappedBinaryEventSource::parse_header()
{
    auto bad_header = [](uint64_t off, std::string msg) {
        StreamError e;
        e.cause = StreamError::Cause::kBadHeader;
        e.event_index = 0;
        e.byte_offset = off;
        e.message = std::move(msg);
        throw StreamCorruption(std::move(e));
    };
    auto need = [&](size_t n) {
        while (!mapped_ && !src_eof_ && avail_ < n)
            refill();
        return avail_ >= n;
    };

    static constexpr char kMagic[8] = {'A', 'E', 'R', 'O',
                                       'T', 'R', 'C', '1'};
    if (!need(8) || std::memcmp(data_, kMagic, sizeof(kMagic)) != 0)
        bad_header(0, "not an aerodrome binary trace (bad magic)");
    if (!need(16))
        bad_header(8, "binary trace truncated in header");
    std::memcpy(&expected_, data_ + 8, sizeof(expected_));
    if (!need(28))
        bad_header(16, "binary trace truncated in header");
    std::memcpy(&num_threads_, data_ + 16, sizeof(num_threads_));
    std::memcpy(&num_vars_, data_ + 20, sizeof(num_vars_));
    std::memcpy(&num_locks_, data_ + 24, sizeof(num_locks_));
    if (num_threads_ > kMaxHeaderIds || num_vars_ > kMaxHeaderIds ||
        num_locks_ > kMaxHeaderIds)
        bad_header(16, "implausible id space in header (" +
                           std::to_string(num_threads_) + " threads, " +
                           std::to_string(num_vars_) + " vars, " +
                           std::to_string(num_locks_) + " locks)");
    pos_ = 28; // sizeof header; corruption offsets are absolute

    for (uint32_t o = 0; o < kNumOps; ++o) {
        const Op op = static_cast<Op>(o);
        if (op == Op::kBegin || op == Op::kEnd) {
            has_target_[o] = false;
            limit_by_op_[o] = 0;
        } else {
            has_target_[o] = true;
            limit_by_op_[o] = op_targets_var(op)    ? num_vars_
                              : op_targets_lock(op) ? num_locks_
                                                    : num_threads_;
        }
    }
}

void
MappedBinaryEventSource::extend_clean_span()
{
#ifdef AERO_VC_X86_DISPATCH
    if (vck::detail::kHaveAvx2) {
        clean_end_ = clean_scan_avx2(data_, pos_, avail_);
        return;
    }
#endif
    clean_end_ = clean_scan(data_, pos_, avail_);
}

/** Mirror of BinaryEventSource::try_decode over the byte window: same
 *  causes, messages, event index, and absolute byte offset. kShort means
 *  the window ended mid-record, which callers treat exactly like the
 *  legacy peek-EOF-inside-a-record case. */
MappedBinaryEventSource::Rec
MappedBinaryEventSource::decode_one(Event& out, size_t& len,
                                    StreamError& err)
{
    const uint8_t* p = data_ + pos_;
    const size_t have = avail_ - pos_;
    err.event_index = produced_;
    err.byte_offset = base_ + pos_;

    AERO_ASSERT(have > 0, "decode_one on an empty window");
    const int opb = p[0];
    if (opb >= static_cast<int>(kNumOps)) {
        err.cause = StreamError::Cause::kBadOpcode;
        err.message = "invalid opcode " + std::to_string(opb);
        return Rec::kBad;
    }
    const Op op = static_cast<Op>(opb);

    size_t k = 1;
    bool ended_short = false;
    // LEB128 varint bounded for u32 ids: at most 5 bytes, value must fit.
    auto read_id = [&](const char* what, uint64_t& v) {
        v = 0;
        for (int i = 0; i < 5; ++i) {
            if (k >= have) {
                err.cause = StreamError::Cause::kTruncated;
                err.message = std::string("stream ends inside the ") +
                              what + " of a record";
                ended_short = true;
                return false;
            }
            const uint8_t c = p[k];
            ++k;
            v |= static_cast<uint64_t>(c & 0x7f) << (7 * i);
            if (!(c & 0x80)) {
                if (v <= UINT32_MAX)
                    return true;
                err.cause = StreamError::Cause::kBadVarint;
                err.message = std::string(what) + " varint " +
                              std::to_string(v) + " exceeds u32";
                return false;
            }
        }
        err.cause = StreamError::Cause::kBadVarint;
        err.message = std::string(what) + " varint longer than 5 bytes";
        return false;
    };

    uint64_t tid = 0;
    if (!read_id("thread id", tid))
        return ended_short ? Rec::kShort : Rec::kBad;
    if (tid >= num_threads_) {
        err.cause = StreamError::Cause::kIdOutOfRange;
        err.message = "thread id " + std::to_string(tid) +
                      " >= header-declared " + std::to_string(num_threads_);
        return Rec::kBad;
    }

    uint64_t target = 0;
    if (has_target_[static_cast<uint32_t>(opb)]) {
        if (!read_id("target id", target))
            return ended_short ? Rec::kShort : Rec::kBad;
        const uint32_t limit = limit_by_op_[static_cast<uint32_t>(opb)];
        if (target >= limit) {
            const char* space = op_targets_var(op)    ? "vars"
                                : op_targets_lock(op) ? "locks"
                                                      : "threads";
            err.cause = StreamError::Cause::kIdOutOfRange;
            err.message = std::string(op_name(op)) + " target " +
                          std::to_string(target) +
                          " >= header-declared " + std::to_string(limit) +
                          " " + space;
            return Rec::kBad;
        }
    }

    out = Event{static_cast<ThreadId>(tid), static_cast<uint32_t>(target),
                op};
    len = k;
    return Rec::kOk;
}

void
MappedBinaryEventSource::record_gap(StreamError err)
{
    // One recorded error per contiguous corruption gap, however many
    // byte offsets the resync scan rejects while crossing it — the gap
    // closes on the next successfully decoded record.
    if (gap_open_)
        return;
    gap_open_ = true;
    ++errors_total_;
    if (errors_.size() < kMaxRecordedErrors)
        errors_.push_back(std::move(err));
}

size_t
MappedBinaryEventSource::decode_block(Event* out, size_t n)
{
    size_t k = 0;
    while (k < n) {
        if (produced_ >= expected_ || done_)
            break;
        if (!mapped_ && !src_eof_ && avail_ - pos_ < kMaxRecordBytes + 5)
            refill();
        if (avail_ == pos_) {
            // Bytes ran out before the header's promised event count.
            if (k > 0 && !resync_)
                break; // the next call re-derives and raises this
            StreamError e;
            e.cause = StreamError::Cause::kTruncated;
            e.event_index = produced_;
            e.byte_offset = base_ + pos_;
            e.message = "stream ended after " + std::to_string(produced_) +
                        " of " + std::to_string(expected_) +
                        " promised events";
            if (!resync_)
                throw StreamCorruption(std::move(e));
            ++errors_total_;
            if (errors_.size() < kMaxRecordedErrors)
                errors_.push_back(std::move(e));
            done_ = true;
            break;
        }

        if (pos_ >= clean_end_)
            extend_clean_span();

        // Tight loop inside the verified continuation-bit-free span:
        // every id is one byte, so a record is op,tid[,target] and the
        // only branches left are the header-bound validations. All state
        // lives in locals: the Event writes may alias *this under strict
        // aliasing, and member reloads per record would halve throughput.
        // The per-op tables fold the has-target branch away — mask 0
        // forces target 0 for begin/end (limit 1 accepts it), limit 0
        // rejects every target when the header declared an empty space,
        // and a record is 2 or 3 bytes by table lookup.
        const size_t before = k;
        uint32_t lim[kNumOps];
        uint32_t mask[kNumOps];
        uint8_t lenv[kNumOps];
        for (uint32_t o = 0; o < kNumOps; ++o) {
            lim[o] = has_target_[o] ? limit_by_op_[o] : 1;
            mask[o] = has_target_[o] ? 0xffu : 0u;
            lenv[o] = has_target_[o] ? 3 : 2;
        }
        const uint8_t* const d = data_;
        const size_t span_end = clean_end_;
        const size_t wend = avail_;
        const uint32_t nthreads = num_threads_;
        const uint64_t expect = expected_;
        size_t pos = pos_;
        uint64_t prod = produced_;
        // Bounded LEB128 for the general fast path below: advances q on
        // every byte read, false on overlong/oversized — the caller then
        // bails to decode_one, which re-derives the structured error
        // from the same position.
        auto fast_varint = [d](size_t& q, uint64_t& v) {
            v = 0;
            for (int i = 0; i < 5; ++i) {
                const uint8_t c = d[q];
                ++q;
                v |= static_cast<uint64_t>(c & 0x7f) << (7 * i);
                if (!(c & 0x80))
                    return v <= UINT32_MAX;
            }
            return false;
        };
        for (;;) {
            // Tight loop inside the continuation-bit-free span: every id
            // is one byte, so a record is 2 or 3 bytes by table lookup.
            while (k < n && prod < expect && pos + 3 <= span_end) {
                const uint8_t* p = d + pos;
                const uint8_t opb = p[0];
                if (opb >= kNumOps)
                    break;
                const uint8_t tid = p[1];
                const uint32_t tgt = p[2] & mask[opb];
                if (tid >= nthreads || tgt >= lim[opb])
                    break;
                out[k] = Event{tid, tgt, static_cast<Op>(opb)};
                pos += lenv[opb];
                ++k;
                ++prod;
            }
            // General fast path: one record with real varints, no error
            // machinery. Runs only when a full max-size record fits in
            // the window; position commits only on success, so any bail
            // leaves decode_one an untouched record to re-judge.
            if (k >= n || prod >= expect ||
                pos + kMaxRecordBytes > wend)
                break;
            const uint8_t opb = d[pos];
            if (opb >= kNumOps)
                break;
            size_t q = pos + 1;
            uint64_t tid = 0;
            if (!fast_varint(q, tid) || tid >= nthreads)
                break;
            uint32_t tgt = 0;
            if (lenv[opb] == 3) {
                uint64_t t = 0;
                if (!fast_varint(q, t) || t >= lim[opb])
                    break;
                tgt = static_cast<uint32_t>(t);
            }
            out[k] = Event{static_cast<ThreadId>(tid), tgt,
                           static_cast<Op>(opb)};
            pos = q;
            ++k;
            ++prod;
        }
        pos_ = pos;
        produced_ = prod;
        if (k != before) {
            gap_open_ = false;
            continue; // loop top re-checks window and block bounds
        }

        // Slow path: span boundary (multi-byte varint, corrupt byte) or
        // a validation failure needing the structured error.
        StreamError err;
        size_t len = 0;
        Event ev;
        switch (decode_one(ev, len, err)) {
          case Rec::kOk:
            pos_ += len;
            out[k++] = ev;
            ++produced_;
            gap_open_ = false;
            break;
          case Rec::kShort:
          case Rec::kBad:
            if (!resync_) {
                if (k > 0)
                    return k; // error re-derived by the next call
                throw StreamCorruption(std::move(err));
            }
            record_gap(std::move(err));
            ++pos_; // slide one byte and re-attempt (resync mode)
            break;
        }
    }
    return k;
}

bool
MappedBinaryEventSource::next(Event& out)
{
    if (inner_)
        return inner_->next(out);
    return decode_block(&out, 1) == 1;
}

size_t
MappedBinaryEventSource::next_n(Event* out, size_t n)
{
    if (inner_)
        return inner_->next_n(out, n);
    if (n == 0)
        return 0;
    return decode_block(out, n);
}

const char*
MappedBinaryEventSource::source_kind() const
{
    if (inner_)
        return inner_->source_kind();
    return mapped_ ? "binary-mmap" : "binary-buffered";
}

void
MappedBinaryEventSource::set_resync(bool on)
{
    if (inner_)
        inner_->set_resync(on);
    resync_ = on;
}

const std::vector<StreamError>&
MappedBinaryEventSource::recovered_errors() const
{
    return inner_ ? inner_->recovered_errors() : errors_;
}

uint64_t
MappedBinaryEventSource::recovered_error_count() const
{
    return inner_ ? inner_->recovered_error_count() : errors_total_;
}

bool
MappedBinaryEventSource::dimensions(uint32_t& threads, uint32_t& vars,
                                    uint32_t& locks) const
{
    if (inner_)
        return inner_->dimensions(threads, vars, locks);
    threads = num_threads_;
    vars = num_vars_;
    locks = num_locks_;
    return true;
}

uint64_t
MappedBinaryEventSource::expected_events() const
{
    return inner_ ? inner_->expected_events() : expected_;
}

} // namespace aero
