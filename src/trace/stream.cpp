#include "trace/stream.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/str.hpp"
#include "trace/mapped_reader.hpp"

namespace aero {

namespace {

bool
parse_op_token(std::string_view tok, Op& out)
{
    if (tok == "r")
        out = Op::kRead;
    else if (tok == "w")
        out = Op::kWrite;
    else if (tok == "acq")
        out = Op::kAcquire;
    else if (tok == "rel")
        out = Op::kRelease;
    else if (tok == "fork")
        out = Op::kFork;
    else if (tok == "join")
        out = Op::kJoin;
    else if (tok == "begin")
        out = Op::kBegin;
    else if (tok == "end")
        out = Op::kEnd;
    else
        return false;
    return true;
}

} // namespace

const char*
stream_error_cause_name(StreamError::Cause cause)
{
    switch (cause) {
      case StreamError::Cause::kBadHeader:
        return "bad-header";
      case StreamError::Cause::kTruncated:
        return "truncated";
      case StreamError::Cause::kBadOpcode:
        return "bad-opcode";
      case StreamError::Cause::kBadVarint:
        return "bad-varint";
      case StreamError::Cause::kIdOutOfRange:
        return "id-out-of-range";
      case StreamError::Cause::kParse:
        return "parse";
    }
    return "?";
}

size_t
resolve_ingest_block(size_t requested)
{
    if (requested != 0)
        return requested;
    if (const char* env = std::getenv("AERO_INGEST_BLOCK")) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && v >= 1 && v <= (1ull << 22))
            return static_cast<size_t>(v);
    }
    return kDefaultIngestBlock;
}

const std::vector<StreamError>&
EventSource::recovered_errors() const
{
    static const std::vector<StreamError> kEmpty;
    return kEmpty;
}

size_t
EventSource::next_n(Event* out, size_t n)
{
    // A stashed error means the previous batch ended early on a corrupt
    // record whose next() already consumed input (the text reader eats
    // the line before throwing): surface it now that the decoded prefix
    // has been delivered.
    if (pending_error_) {
        std::exception_ptr e = std::move(pending_error_);
        pending_error_ = nullptr;
        std::rethrow_exception(e);
    }
    if (exhausted_)
        return 0;
    size_t k = 0;
    try {
        while (k < n) {
            if (!next(out[k])) {
                exhausted_ = true;
                break;
            }
            ++k;
        }
    } catch (const StreamCorruption&) {
        if (k == 0)
            throw;
        pending_error_ = std::current_exception();
    }
    return k;
}

int
TextEventSource::parse_line(const std::string& line, Event& out,
                            std::string& err)
{
    std::string_view sv = trim(line);
    if (sv.empty() || sv[0] == '#')
        return 0;

    std::string_view toks[4];
    size_t ntoks = 0;
    size_t pos = 0;
    while (pos < sv.size() && ntoks < 4) {
        while (pos < sv.size() &&
               std::isspace(static_cast<unsigned char>(sv[pos])))
            ++pos;
        size_t start = pos;
        while (pos < sv.size() &&
               !std::isspace(static_cast<unsigned char>(sv[pos])))
            ++pos;
        if (pos > start)
            toks[ntoks++] = sv.substr(start, pos - start);
    }
    if (ntoks < 2) {
        err = "expected '<thread> <op> [target]'";
        return -1;
    }
    Op op;
    if (!parse_op_token(toks[1], op)) {
        err = "unknown operation '" + std::string(toks[1]) + "'";
        return -1;
    }
    bool needs_target = !(op == Op::kBegin || op == Op::kEnd);
    if (needs_target && ntoks < 3) {
        err = "operation requires a target";
        return -1;
    }
    if (!needs_target && ntoks > 2) {
        err = "begin/end take no target";
        return -1;
    }
    // Validated; only now touch the name tables, so a rejected (and in
    // resync mode, skipped) line interns nothing.
    ThreadId t = threads_.intern(toks[0]);
    uint32_t target = 0;
    if (needs_target) {
        if (op_targets_var(op))
            target = vars_.intern(toks[2]);
        else if (op_targets_lock(op))
            target = locks_.intern(toks[2]);
        else
            target = threads_.intern(toks[2]);
    }
    out = Event{t, target, op};
    return 1;
}

bool
TextEventSource::next(Event& out)
{
    std::string line;
    while (!truncated_ && std::getline(is_, line)) {
        ++line_no_;
#if defined(AERO_FAULTS)
        if (!FaultInjector::instance().filter_text_line(line_no_, line)) {
            truncated_ = true;
            break;
        }
#endif
        std::string msg;
        int r = parse_line(line, out, msg);
        if (r == 1) {
            ++produced_;
            return true;
        }
        if (r == 0)
            continue;
        StreamError e;
        e.cause = StreamError::Cause::kParse;
        e.event_index = produced_;
        e.byte_offset = line_no_; // 1-based line number for text input
        e.message = "line " + std::to_string(line_no_) + ": " + msg;
        if (!resync_)
            throw StreamCorruption(std::move(e));
        ++errors_total_;
        if (errors_.size() < kMaxRecordedErrors)
            errors_.push_back(std::move(e));
    }
    return false;
}

size_t
TextEventSource::next_n(Event* out, size_t n)
{
    // Same stash discipline as the base default, with the virtual next()
    // devirtualized for the hot loop.
    if (pending_error_) {
        std::exception_ptr e = std::move(pending_error_);
        pending_error_ = nullptr;
        std::rethrow_exception(e);
    }
    if (exhausted_)
        return 0;
    size_t k = 0;
    try {
        while (k < n) {
            if (!TextEventSource::next(out[k])) {
                exhausted_ = true;
                break;
            }
            ++k;
        }
    } catch (const StreamCorruption&) {
        if (k == 0)
            throw;
        pending_error_ = std::current_exception();
    }
    return k;
}

BinaryEventSource::BinaryEventSource(std::istream& is) : is_(is)
{
    auto bad_header = [](uint64_t off, std::string msg) -> void {
        StreamError e;
        e.cause = StreamError::Cause::kBadHeader;
        e.event_index = 0;
        e.byte_offset = off;
        e.message = std::move(msg);
        throw StreamCorruption(std::move(e));
    };
    auto read_raw = [&](void* dst, size_t n) {
        is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
        return static_cast<bool>(is_);
    };

    char magic[8];
    static constexpr char kMagic[8] = {'A', 'E', 'R', 'O',
                                       'T', 'R', 'C', '1'};
    if (!read_raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0)
        bad_header(0, "not an aerodrome binary trace (bad magic)");
    if (!read_raw(&expected_, sizeof(expected_)))
        bad_header(8, "binary trace truncated in header");
    if (!read_raw(&num_threads_, sizeof(num_threads_)) ||
        !read_raw(&num_vars_, sizeof(num_vars_)) ||
        !read_raw(&num_locks_, sizeof(num_locks_)))
        bad_header(16, "binary trace truncated in header");
    // A header-declared id space is a claim, not an allocation order: a
    // flipped high bit would otherwise turn into a multi-GB reserve.
    if (num_threads_ > kMaxHeaderIds || num_vars_ > kMaxHeaderIds ||
        num_locks_ > kMaxHeaderIds)
        bad_header(16, "implausible id space in header (" +
                           std::to_string(num_threads_) + " threads, " +
                           std::to_string(num_vars_) + " vars, " +
                           std::to_string(num_locks_) + " locks)");
    offset_ = 28; // sizeof header; corruption offsets are absolute
}

int
BinaryEventSource::peek_byte(size_t k)
{
    while (buf_.size() <= k) {
        if (truncated_)
            return -1;
        int c = is_.get();
#if defined(AERO_FAULTS)
        if (!FaultInjector::instance().filter_byte(offset_ + buf_.size(),
                                                   c)) {
            truncated_ = true; // injected stream cut
            return -1;
        }
#endif
        if (c == EOF) {
            truncated_ = true;
            return -1;
        }
        buf_.push_back(c);
    }
    return buf_[k];
}

void
BinaryEventSource::consume(size_t n)
{
    AERO_ASSERT(n <= buf_.size(), "consuming past the lookahead buffer");
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(n));
    offset_ += n;
}

BinaryEventSource::Decode
BinaryEventSource::try_decode(Event& out, size_t& len, StreamError& err)
{
    err.event_index = produced_;
    err.byte_offset = offset_;

    int opb = peek_byte(0);
    if (opb < 0)
        return Decode::kEof;
    if (opb >= static_cast<int>(kNumOps)) {
        err.cause = StreamError::Cause::kBadOpcode;
        err.message = "invalid opcode " + std::to_string(opb);
        return Decode::kBad;
    }
    Op op = static_cast<Op>(opb);

    size_t k = 1;
    // LEB128 varint bounded for u32 ids: at most 5 bytes, value must fit.
    auto read_id = [&](const char* what, uint64_t& v) {
        v = 0;
        for (int i = 0; i < 5; ++i) {
            int c = peek_byte(k);
            if (c < 0) {
                err.cause = StreamError::Cause::kTruncated;
                err.message = std::string("stream ends inside the ") +
                              what + " of a record";
                return false;
            }
            ++k;
            v |= static_cast<uint64_t>(c & 0x7f) << (7 * i);
            if (!(c & 0x80)) {
                if (v <= UINT32_MAX)
                    return true;
                err.cause = StreamError::Cause::kBadVarint;
                err.message = std::string(what) + " varint " +
                              std::to_string(v) + " exceeds u32";
                return false;
            }
        }
        err.cause = StreamError::Cause::kBadVarint;
        err.message = std::string(what) + " varint longer than 5 bytes";
        return false;
    };

    uint64_t tid = 0;
    if (!read_id("thread id", tid))
        return Decode::kBad;
    if (tid >= num_threads_) {
        err.cause = StreamError::Cause::kIdOutOfRange;
        err.message = "thread id " + std::to_string(tid) +
                      " >= header-declared " +
                      std::to_string(num_threads_);
        return Decode::kBad;
    }

    uint64_t target = 0;
    if (!(op == Op::kBegin || op == Op::kEnd)) {
        if (!read_id("target id", target))
            return Decode::kBad;
        uint32_t limit;
        const char* space;
        if (op_targets_var(op)) {
            limit = num_vars_;
            space = "vars";
        } else if (op_targets_lock(op)) {
            limit = num_locks_;
            space = "locks";
        } else {
            limit = num_threads_;
            space = "threads";
        }
        if (target >= limit) {
            err.cause = StreamError::Cause::kIdOutOfRange;
            err.message = std::string(op_name(op)) + " target " +
                          std::to_string(target) +
                          " >= header-declared " + std::to_string(limit) +
                          " " + space;
            return Decode::kBad;
        }
    }

    out = Event{static_cast<ThreadId>(tid), static_cast<uint32_t>(target),
                op};
    len = k;
    return Decode::kOk;
}

void
BinaryEventSource::record_or_throw(StreamError err, bool& recorded_this_gap)
{
    if (!resync_)
        throw StreamCorruption(std::move(err));
    // One recorded error per contiguous corruption gap, however many
    // byte offsets the resync scan rejects while crossing it.
    if (recorded_this_gap)
        return;
    recorded_this_gap = true;
    ++errors_total_;
    if (errors_.size() < kMaxRecordedErrors)
        errors_.push_back(std::move(err));
}

bool
BinaryEventSource::next(Event& out)
{
    bool recorded_this_gap = false;
    for (;;) {
        if (produced_ >= expected_)
            return false;
        StreamError err;
        size_t len = 0;
        switch (try_decode(out, len, err)) {
          case Decode::kOk:
            consume(len);
            ++produced_;
            return true;
          case Decode::kEof: {
            StreamError e;
            e.cause = StreamError::Cause::kTruncated;
            e.event_index = produced_;
            e.byte_offset = offset_;
            e.message = "stream ended after " + std::to_string(produced_) +
                        " of " + std::to_string(expected_) +
                        " promised events";
            if (!resync_)
                throw StreamCorruption(std::move(e));
            ++errors_total_;
            if (errors_.size() < kMaxRecordedErrors)
                errors_.push_back(std::move(e));
            return false;
          }
          case Decode::kBad:
            record_or_throw(std::move(err), recorded_this_gap);
            consume(1); // slide one byte and re-attempt (resync mode)
            break;
        }
    }
}

size_t
BinaryEventSource::next_n(Event* out, size_t n)
{
    if (exhausted_)
        return 0;
    size_t k = 0;
    try {
        while (k < n) {
            if (!next(out[k])) {
                exhausted_ = true;
                break;
            }
            ++k;
        }
    } catch (const StreamCorruption&) {
        // Strict-mode errors are raised before any byte of the corrupt
        // record is consumed, so the decoder is idempotent here: deliver
        // the decoded prefix and let the next call re-derive the
        // identical error (no stash needed).
        if (k == 0)
            throw;
    }
    return k;
}

bool
trace_is_binary(const std::string& path)
{
    const bool ext_bin = path.size() > 4 &&
                         path.compare(path.size() - 4, 4, ".bin") == 0;
    std::ifstream probe(path, std::ios::binary);
    if (!probe)
        fatal("cannot open file for reading: " + path);
    static constexpr char kMagic[8] = {'A', 'E', 'R', 'O',
                                       'T', 'R', 'C', '1'};
    char head[8];
    probe.read(head, sizeof(head));
    if (probe.gcount() < static_cast<std::streamsize>(sizeof(head)))
        return ext_bin; // too short to sniff: the extension decides
    if (std::memcmp(head, kMagic, sizeof(kMagic)) == 0)
        return true;
    if (ext_bin) {
        StreamError e;
        e.cause = StreamError::Cause::kBadHeader;
        e.event_index = 0;
        e.byte_offset = 0;
        e.message = "extension \".bin\" promises a binary trace but the "
                    "AEROTRC1 magic is missing: " +
                    path;
        throw StreamCorruption(std::move(e));
    }
    return false;
}

std::unique_ptr<EventSource>
open_event_source(const std::string& path,
                  std::unique_ptr<std::istream>& storage)
{
    if (trace_is_binary(path))
        // Owns its mapping (or fallback read buffer); no istream needed.
        return std::make_unique<MappedBinaryEventSource>(path);
    auto file = std::make_unique<std::ifstream>(path);
    if (!*file)
        fatal("cannot open file for reading: " + path);
    std::istream& ref = *file;
    storage = std::move(file);
    return std::make_unique<TextEventSource>(ref);
}

} // namespace aero
