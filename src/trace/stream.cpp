#include "trace/stream.hpp"

#include <cctype>
#include <cstring>
#include <fstream>

#include "support/assert.hpp"
#include "support/str.hpp"

namespace aero {

namespace {

Op
parse_op_token(std::string_view tok, size_t line_no)
{
    if (tok == "r")
        return Op::kRead;
    if (tok == "w")
        return Op::kWrite;
    if (tok == "acq")
        return Op::kAcquire;
    if (tok == "rel")
        return Op::kRelease;
    if (tok == "fork")
        return Op::kFork;
    if (tok == "join")
        return Op::kJoin;
    if (tok == "begin")
        return Op::kBegin;
    if (tok == "end")
        return Op::kEnd;
    fatal("line " + std::to_string(line_no) + ": unknown operation '" +
          std::string(tok) + "'");
}

uint64_t
get_varint(std::istream& is)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        int c = is.get();
        if (c == EOF)
            fatal("binary trace truncated inside a varint");
        v |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            fatal("binary trace varint too long");
    }
}

template <typename T>
T
get_raw(std::istream& is)
{
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is)
        fatal("binary trace truncated in header");
    return v;
}

} // namespace

bool
TextEventSource::next(Event& out)
{
    std::string line;
    while (std::getline(is_, line)) {
        ++line_no_;
        std::string_view sv = trim(line);
        if (sv.empty() || sv[0] == '#')
            continue;

        std::string_view toks[3];
        size_t ntoks = 0;
        size_t pos = 0;
        while (pos < sv.size() && ntoks < 3) {
            while (pos < sv.size() &&
                   std::isspace(static_cast<unsigned char>(sv[pos])))
                ++pos;
            size_t start = pos;
            while (pos < sv.size() &&
                   !std::isspace(static_cast<unsigned char>(sv[pos])))
                ++pos;
            if (pos > start)
                toks[ntoks++] = sv.substr(start, pos - start);
        }
        if (ntoks < 2) {
            fatal("line " + std::to_string(line_no_) +
                  ": expected '<thread> <op> [target]'");
        }
        ThreadId t = threads_.intern(toks[0]);
        Op op = parse_op_token(toks[1], line_no_);
        uint32_t target = 0;
        bool needs_target = !(op == Op::kBegin || op == Op::kEnd);
        if (needs_target) {
            if (ntoks < 3) {
                fatal("line " + std::to_string(line_no_) +
                      ": operation requires a target");
            }
            if (op_targets_var(op))
                target = vars_.intern(toks[2]);
            else if (op_targets_lock(op))
                target = locks_.intern(toks[2]);
            else
                target = threads_.intern(toks[2]);
        } else if (ntoks > 2) {
            fatal("line " + std::to_string(line_no_) +
                  ": begin/end take no target");
        }
        out = Event{t, target, op};
        return true;
    }
    return false;
}

BinaryEventSource::BinaryEventSource(std::istream& is) : is_(is)
{
    char magic[8];
    is_.read(magic, sizeof(magic));
    static constexpr char kMagic[8] = {'A', 'E', 'R', 'O',
                                       'T', 'R', 'C', '1'};
    if (!is_ || std::memcmp(magic, kMagic, sizeof(magic)) != 0)
        fatal("not an aerodrome binary trace (bad magic)");
    expected_ = get_raw<uint64_t>(is_);
    num_threads_ = get_raw<uint32_t>(is_);
    num_vars_ = get_raw<uint32_t>(is_);
    num_locks_ = get_raw<uint32_t>(is_);
}

bool
BinaryEventSource::next(Event& out)
{
    if (produced_ >= expected_)
        return false;
    int opb = is_.get();
    if (opb == EOF) {
        fatal("binary trace truncated at event " +
              std::to_string(produced_));
    }
    if (opb < 0 || opb >= static_cast<int>(kNumOps))
        fatal("binary trace has invalid opcode " + std::to_string(opb));
    Op op = static_cast<Op>(opb);
    uint64_t tid = get_varint(is_);
    uint64_t target =
        (op == Op::kBegin || op == Op::kEnd) ? 0 : get_varint(is_);
    if (tid > UINT32_MAX || target > UINT32_MAX)
        fatal("binary trace id out of range");
    out = Event{static_cast<ThreadId>(tid), static_cast<uint32_t>(target),
                op};
    ++produced_;
    return true;
}

std::unique_ptr<EventSource>
open_event_source(const std::string& path,
                  std::unique_ptr<std::istream>& storage)
{
    bool binary = path.size() > 4 &&
                  path.compare(path.size() - 4, 4, ".bin") == 0;
    auto file = std::make_unique<std::ifstream>(
        path, binary ? std::ios::binary : std::ios::in);
    if (!*file)
        fatal("cannot open file for reading: " + path);
    std::istream& ref = *file;
    storage = std::move(file);
    if (binary)
        return std::make_unique<BinaryEventSource>(ref);
    return std::make_unique<TextEventSource>(ref);
}

} // namespace aero
