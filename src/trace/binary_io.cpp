#include "trace/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/assert.hpp"

namespace aero {

namespace {

constexpr char kMagic[8] = {'A', 'E', 'R', 'O', 'T', 'R', 'C', '1'};

void
put_varint(std::ostream& os, uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

uint64_t
get_varint(std::istream& is)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        int c = is.get();
        if (c == EOF)
            fatal("binary trace truncated inside a varint");
        v |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            fatal("binary trace varint too long");
    }
}

template <typename T>
void
put_raw(std::ostream& os, T v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T
get_raw(std::istream& is)
{
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is)
        fatal("binary trace truncated in header");
    return v;
}

bool
op_has_target(Op op)
{
    return !(op == Op::kBegin || op == Op::kEnd);
}

} // namespace

void
write_binary(std::ostream& os, const Trace& trace)
{
    os.write(kMagic, sizeof(kMagic));
    put_raw<uint64_t>(os, trace.size());
    put_raw<uint32_t>(os, trace.num_threads());
    put_raw<uint32_t>(os, trace.num_vars());
    put_raw<uint32_t>(os, trace.num_locks());
    for (const Event& e : trace.events()) {
        os.put(static_cast<char>(e.op));
        put_varint(os, e.tid);
        if (op_has_target(e.op))
            put_varint(os, e.target);
    }
}

void
write_binary_file(const std::string& path, const Trace& trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open file for writing: " + path);
    write_binary(os, trace);
    if (!os)
        fatal("error while writing: " + path);
}

Trace
read_binary(std::istream& is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(magic)) != 0)
        fatal("not an aerodrome binary trace (bad magic)");

    uint64_t count = get_raw<uint64_t>(is);
    uint32_t nt = get_raw<uint32_t>(is);
    uint32_t nv = get_raw<uint32_t>(is);
    uint32_t nl = get_raw<uint32_t>(is);

    Trace trace;
    trace.reserve(count);
    trace.threads().ensure(nt);
    trace.vars().ensure(nv);
    trace.locks().ensure(nl);

    for (uint64_t i = 0; i < count; ++i) {
        int opb = is.get();
        if (opb == EOF)
            fatal("binary trace truncated at event " + std::to_string(i));
        if (opb < 0 || opb >= static_cast<int>(kNumOps))
            fatal("binary trace has invalid opcode " + std::to_string(opb));
        Op op = static_cast<Op>(opb);
        uint64_t tid = get_varint(is);
        uint64_t target = op_has_target(op) ? get_varint(is) : 0;
        if (tid > UINT32_MAX || target > UINT32_MAX)
            fatal("binary trace id out of range");
        trace.push({static_cast<ThreadId>(tid),
                    static_cast<uint32_t>(target), op});
    }
    return trace;
}

Trace
read_binary_file(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open file for reading: " + path);
    return read_binary(is);
}

} // namespace aero
