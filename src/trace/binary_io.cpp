#include "trace/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/assert.hpp"
#include "trace/stream.hpp"

namespace aero {

namespace {

constexpr char kMagic[8] = {'A', 'E', 'R', 'O', 'T', 'R', 'C', '1'};

void
put_varint(std::ostream& os, uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

template <typename T>
void
put_raw(std::ostream& os, T v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool
op_has_target(Op op)
{
    return !(op == Op::kBegin || op == Op::kEnd);
}

} // namespace

void
write_binary(std::ostream& os, const Trace& trace)
{
    os.write(kMagic, sizeof(kMagic));
    put_raw<uint64_t>(os, trace.size());
    put_raw<uint32_t>(os, trace.num_threads());
    put_raw<uint32_t>(os, trace.num_vars());
    put_raw<uint32_t>(os, trace.num_locks());
    for (const Event& e : trace.events()) {
        os.put(static_cast<char>(e.op));
        put_varint(os, e.tid);
        if (op_has_target(e.op))
            put_varint(os, e.target);
    }
}

void
write_binary_file(const std::string& path, const Trace& trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open file for writing: " + path);
    write_binary(os, trace);
    if (!os)
        fatal("error while writing: " + path);
}

Trace
read_binary(std::istream& is)
{
    // Decode through the hardened streaming reader: header plausibility
    // caps, id bounds against the header-declared spaces, and structured
    // StreamCorruption (an aero::FatalError) on any malformation.
    BinaryEventSource source(is);

    Trace trace;
    // The header count is untrusted input — reserve at most a modest
    // slab and let push() grow for genuinely huge traces.
    trace.reserve(static_cast<size_t>(
        std::min<uint64_t>(source.expected_events(), 1ull << 22)));
    trace.threads().ensure(source.num_threads());
    trace.vars().ensure(source.num_vars());
    trace.locks().ensure(source.num_locks());

    Event e;
    while (source.next(e))
        trace.push(e);
    return trace;
}

Trace
read_binary_file(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open file for reading: " + path);
    return read_binary(is);
}

} // namespace aero
