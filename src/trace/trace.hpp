#pragma once

/**
 * @file
 * In-memory trace container with string interning for thread/var/lock names.
 *
 * Two usage styles:
 *  - Generators append events with numeric ids directly (fast path).
 *  - TraceBuilder (builder.hpp) interns human-readable names and is the
 *    convenient front end for tests and examples.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace aero {

/**
 * Interns strings to dense ids; remembers names for reverse lookup.
 * One instance per object kind (threads, vars, locks).
 */
class NameTable {
public:
    /** Id for `name`, interning it if new. */
    uint32_t intern(std::string_view name);

    /** Id for `name` or kNoThread-style sentinel if absent. */
    bool lookup(std::string_view name, uint32_t& out) const;

    /** Name for id; auto-generates "<prefix><id>" if unnamed. */
    std::string name_of(uint32_t id, std::string_view prefix) const;

    /** Ensure ids [0, n) exist (auto-named on demand). */
    void ensure(uint32_t n);

    /** Number of interned ids. */
    uint32_t size() const { return next_; }

private:
    std::unordered_map<std::string, uint32_t> ids_;
    std::vector<std::string> names_;
    uint32_t next_ = 0;
};

/**
 * A complete execution trace: the event sequence plus id spaces for
 * threads, variables, and locks.
 */
class Trace {
public:
    /** Append an event with numeric ids, growing id spaces as needed. */
    void push(Event e);

    /** Convenience appenders used by generators. */
    void read(ThreadId t, VarId x) { push({t, x, Op::kRead}); }
    void write(ThreadId t, VarId x) { push({t, x, Op::kWrite}); }
    void acquire(ThreadId t, LockId l) { push({t, l, Op::kAcquire}); }
    void release(ThreadId t, LockId l) { push({t, l, Op::kRelease}); }
    void fork(ThreadId t, ThreadId u) { push({t, u, Op::kFork}); }
    void join(ThreadId t, ThreadId u) { push({t, u, Op::kJoin}); }
    void begin(ThreadId t) { push({t, 0, Op::kBegin}); }
    void end(ThreadId t) { push({t, 0, Op::kEnd}); }

    const std::vector<Event>& events() const { return events_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    const Event& operator[](size_t i) const { return events_[i]; }

    /** Number of threads/vars/locks (max id + 1 over all events). */
    uint32_t num_threads() const { return threads_.size(); }
    uint32_t num_vars() const { return vars_.size(); }
    uint32_t num_locks() const { return locks_.size(); }

    NameTable& threads() { return threads_; }
    NameTable& vars() { return vars_; }
    NameTable& locks() { return locks_; }
    const NameTable& threads() const { return threads_; }
    const NameTable& vars() const { return vars_; }
    const NameTable& locks() const { return locks_; }

    /** Human-readable rendering of one event, e.g. "t1 w x3". */
    std::string format_event(const Event& e) const;

    /** Reserve storage for `n` events (generators know their size). */
    void reserve(size_t n) { events_.reserve(n); }

private:
    std::vector<Event> events_;
    NameTable threads_;
    NameTable vars_;
    NameTable locks_;
};

} // namespace aero
