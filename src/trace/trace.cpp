#include "trace/trace.hpp"

#include "support/assert.hpp"

namespace aero {

uint32_t
NameTable::intern(std::string_view name)
{
    auto it = ids_.find(std::string(name));
    if (it != ids_.end())
        return it->second;
    uint32_t id = next_++;
    ids_.emplace(std::string(name), id);
    if (id >= names_.size())
        names_.resize(id + 1);
    names_[id] = std::string(name);
    return id;
}

bool
NameTable::lookup(std::string_view name, uint32_t& out) const
{
    auto it = ids_.find(std::string(name));
    if (it == ids_.end())
        return false;
    out = it->second;
    return true;
}

std::string
NameTable::name_of(uint32_t id, std::string_view prefix) const
{
    if (id < names_.size() && !names_[id].empty())
        return names_[id];
    return std::string(prefix) + std::to_string(id);
}

void
NameTable::ensure(uint32_t n)
{
    // Lazy: widen the id space without materializing names. name_of()
    // falls back to "<prefix><id>" for ids never interned, and intern()
    // grows names_ only as far as it actually assigns — so a (possibly
    // corrupt) header declaring millions of ids costs nothing here.
    if (n > next_)
        next_ = n;
}

void
Trace::push(Event e)
{
    threads_.ensure(e.tid + 1);
    switch (e.op) {
      case Op::kRead:
      case Op::kWrite:
        vars_.ensure(e.target + 1);
        break;
      case Op::kAcquire:
      case Op::kRelease:
        locks_.ensure(e.target + 1);
        break;
      case Op::kFork:
      case Op::kJoin:
        threads_.ensure(e.target + 1);
        break;
      case Op::kBegin:
      case Op::kEnd:
        break;
    }
    events_.push_back(e);
}

std::string
Trace::format_event(const Event& e) const
{
    std::string out = threads_.name_of(e.tid, "t");
    out += " ";
    out += op_name(e.op);
    if (op_targets_var(e.op)) {
        out += " " + vars_.name_of(e.target, "x");
    } else if (op_targets_lock(e.op)) {
        out += " " + locks_.name_of(e.target, "l");
    } else if (op_targets_thread(e.op)) {
        out += " " + threads_.name_of(e.target, "t");
    }
    return out;
}

} // namespace aero
