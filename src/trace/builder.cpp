#include "trace/builder.hpp"

namespace aero {

TraceBuilder&
TraceBuilder::read(std::string_view t, std::string_view x)
{
    trace_.read(tid(t), trace_.vars().intern(x));
    return *this;
}

TraceBuilder&
TraceBuilder::write(std::string_view t, std::string_view x)
{
    trace_.write(tid(t), trace_.vars().intern(x));
    return *this;
}

TraceBuilder&
TraceBuilder::acquire(std::string_view t, std::string_view l)
{
    trace_.acquire(tid(t), trace_.locks().intern(l));
    return *this;
}

TraceBuilder&
TraceBuilder::release(std::string_view t, std::string_view l)
{
    trace_.release(tid(t), trace_.locks().intern(l));
    return *this;
}

TraceBuilder&
TraceBuilder::fork(std::string_view t, std::string_view u)
{
    ThreadId parent = tid(t);
    trace_.fork(parent, tid(u));
    return *this;
}

TraceBuilder&
TraceBuilder::join(std::string_view t, std::string_view u)
{
    ThreadId parent = tid(t);
    trace_.join(parent, tid(u));
    return *this;
}

TraceBuilder&
TraceBuilder::begin(std::string_view t)
{
    trace_.begin(tid(t));
    return *this;
}

TraceBuilder&
TraceBuilder::end(std::string_view t)
{
    trace_.end(tid(t));
    return *this;
}

} // namespace aero
