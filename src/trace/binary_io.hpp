#pragma once

/**
 * @file
 * Compact binary trace format for large logged executions.
 *
 * Layout (little-endian):
 *   magic   "AEROTRC1"            (8 bytes)
 *   u64     event count
 *   u32     thread count, var count, lock count
 *   events: per event, one opcode byte followed by LEB128 varints for the
 *           thread id and (when the op has one) the target id.
 *
 * Names are not stored; ids round-trip exactly and names regenerate as
 * t<i>/x<i>/l<i> on load. A 10M-event trace is typically ~3 bytes/event.
 */

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace aero {

/** Serialize `trace` to the binary format. */
void write_binary(std::ostream& os, const Trace& trace);

/** Serialize to a file; throws FatalError on I/O failure. */
void write_binary_file(const std::string& path, const Trace& trace);

/** Deserialize a trace; throws FatalError on corrupt input. */
Trace read_binary(std::istream& is);

/** Deserialize from a file; throws FatalError on I/O or format errors. */
Trace read_binary_file(const std::string& path);

} // namespace aero
