#pragma once

/**
 * @file
 * Trace statistics — the paper's "MetaInfo" analysis (Appendix D.5.5).
 *
 * Computes the quantities reported in columns 2-6 of Tables 1 and 2:
 * events, threads, locks, variables, and (outermost) transactions, plus
 * per-op histograms useful when characterizing generated workloads.
 */

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace aero {

/** Aggregate statistics over one trace. */
struct MetaInfo {
    uint64_t events = 0;
    uint32_t threads = 0;
    uint32_t locks = 0;
    uint32_t vars = 0;
    /** Number of outermost transactions (depth-0 begin events). */
    uint64_t transactions = 0;
    /** Events not enclosed in any transaction (unary transactions),
     *  excluding begin/end markers themselves. */
    uint64_t unary_events = 0;
    /** Maximum begin/end nesting depth observed. */
    uint32_t max_nesting = 0;
    /** Events per operation kind, indexed by static_cast<size_t>(Op). */
    std::array<uint64_t, kNumOps> per_op{};
    /** Sum of outermost-transaction lengths (events strictly inside,
     *  including nested begin/end markers). */
    uint64_t txn_event_sum = 0;
    /** Length of the longest outermost transaction. */
    uint64_t max_txn_events = 0;

    /** Mean events per transaction (0 when there are none). */
    double
    avg_txn_events() const
    {
        return transactions ? static_cast<double>(txn_event_sum) /
                                  static_cast<double>(transactions)
                            : 0.0;
    }
};

/** Compute statistics for `trace`. */
MetaInfo compute_metainfo(const Trace& trace);

/** Pretty-print a MetaInfo block. */
void print_metainfo(std::ostream& os, const MetaInfo& info);

} // namespace aero
