#pragma once

/**
 * @file
 * The event model (paper, Section 2).
 *
 * An execution trace is a sequence of events e = <t, op> where op is one of
 * r(x), w(x), acq(l), rel(l), fork(u), join(u), begin, end. Threads,
 * variables and locks are identified by dense integer ids assigned by the
 * trace container; all analysis state is indexed by these ids so the hot
 * paths never hash strings.
 */

#include <cstdint>
#include <string_view>

namespace aero {

/** Dense identifiers for the three kinds of objects a trace mentions. */
using ThreadId = uint32_t;
using VarId = uint32_t;
using LockId = uint32_t;

/** Sentinel for "no thread" (e.g. lastRelThr/lastWThr initial value). */
inline constexpr ThreadId kNoThread = UINT32_MAX;

/** Operation kinds, mirroring the paper's event alphabet. */
enum class Op : uint8_t {
    kRead,    ///< r(x): read of variable x
    kWrite,   ///< w(x): write of variable x
    kAcquire, ///< acq(l): lock acquire
    kRelease, ///< rel(l): lock release
    kFork,    ///< fork(u): spawn thread u
    kJoin,    ///< join(u): join thread u
    kBegin,   ///< |> : begin of an atomic block (transaction)
    kEnd,     ///< <| : end of an atomic block
};

/** Number of distinct Op values. */
inline constexpr size_t kNumOps = 8;

/** Short mnemonic used in the text trace format and in logs. */
constexpr std::string_view
op_name(Op op)
{
    switch (op) {
      case Op::kRead:
        return "r";
      case Op::kWrite:
        return "w";
      case Op::kAcquire:
        return "acq";
      case Op::kRelease:
        return "rel";
      case Op::kFork:
        return "fork";
      case Op::kJoin:
        return "join";
      case Op::kBegin:
        return "begin";
      case Op::kEnd:
        return "end";
    }
    return "?";
}

/** True for ops whose target names a memory location. */
constexpr bool
op_targets_var(Op op)
{
    return op == Op::kRead || op == Op::kWrite;
}

/** True for ops whose target names a lock. */
constexpr bool
op_targets_lock(Op op)
{
    return op == Op::kAcquire || op == Op::kRelease;
}

/** True for ops whose target names another thread. */
constexpr bool
op_targets_thread(Op op)
{
    return op == Op::kFork || op == Op::kJoin;
}

/**
 * One trace event. `target` is a VarId, LockId or ThreadId depending on
 * `op`, and unused (0) for begin/end.
 */
struct Event {
    ThreadId tid;    ///< performing thread
    uint32_t target; ///< operand id, interpretation depends on op
    Op op;           ///< operation kind

    bool
    operator==(const Event& other) const
    {
        return tid == other.tid && target == other.target && op == other.op;
    }
};

} // namespace aero
