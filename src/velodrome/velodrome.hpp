#pragma once

/**
 * @file
 * Velodrome — the graph-based baseline (Flanagan, Freund, Yi, PLDI 2008),
 * re-implemented from its published description as in the paper's Section 5.
 *
 * The algorithm maintains a directed graph whose nodes are transactions
 * (including unary transactions for events outside atomic blocks) and whose
 * edges are the <Txn orderings discovered so far. Each event adds edges
 * from the transactions of prior conflicting events to the current event's
 * transaction; every *new* edge triggers a reachability check (is the
 * source reachable from the target?), declaring a violation when a cycle
 * closes. The per-edge cycle check over a graph whose size can grow
 * linearly in the trace is what gives the overall cubic worst case the
 * paper sets out to beat.
 *
 * The garbage-collection optimization suggested in [19] and implemented by
 * the paper's authors is included: a *completed* transaction with no
 * incoming edges can never lie on a cycle (its incoming-edge set can no
 * longer grow, because new edges always point at the transaction of the
 * *current* event), so it is deleted and its outgoing edges discarded,
 * cascading to its successors. Future edges whose source was deleted are
 * skipped entirely: a cycle through such an edge would need a path back
 * into the deleted (incoming-edge-free) source, which cannot exist.
 */

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/flat_table.hpp"

namespace aero {

/** Tuning knobs for Velodrome. */
struct VelodromeOptions {
    /** Enable the garbage-collection optimization. */
    bool garbage_collect = true;
};

/** Statistics exposed for the evaluation harness. */
struct VelodromeStats {
    /** Nodes currently alive in the graph. */
    uint64_t live_nodes = 0;
    /** High-water mark of live nodes (paper quotes e.g. ~9000 for
     *  sunflow at the violation point). */
    uint64_t max_live_nodes = 0;
    /** Total nodes ever created. */
    uint64_t total_nodes = 0;
    /** Distinct edges ever inserted. */
    uint64_t total_edges = 0;
    /** Nodes reclaimed by garbage collection. */
    uint64_t gc_deleted = 0;
    /** Nodes visited across all reachability checks (work measure). */
    uint64_t dfs_visits = 0;
};

/**
 * Online Velodrome checker.
 *
 * Construct with the trace's dimensions (threads/vars/locks); ids beyond
 * the declared dimensions grow the state automatically.
 */
class Velodrome : public CheckerBase {
public:
    Velodrome(uint32_t num_threads, uint32_t num_vars, uint32_t num_locks,
              const VelodromeOptions& opts = {});

    std::string_view name() const override { return "Velodrome"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    const VelodromeStats& stats() const { return stats_; }

    /** Map the engine-agnostic reclamation toggle onto Velodrome's own
     *  no-incoming-edge node GC; call before the first event. */
    void set_gc(bool on) override { opts_.garbage_collect = on; }

    StatList
    counters() const override
    {
        return {
            {"max_live_nodes", stats_.max_live_nodes},
            {"total_nodes", stats_.total_nodes},
            {"total_edges", stats_.total_edges},
            {"gc_deleted", stats_.gc_deleted},
            {"dfs_visits", stats_.dfs_visits},
        };
    }

    size_t memory_bytes() const override;

private:
    static constexpr uint32_t kNone = UINT32_MAX;

    struct Node {
        std::vector<uint32_t> succ;
        uint32_t indegree = 0;
        bool completed = false;
        bool deleted = false;
        /** DFS stamp for O(1)-amortized visited marking. */
        uint32_t stamp = 0;
    };

    /** Create a node for thread t; completed marks unary transactions. */
    uint32_t new_node(ThreadId t, bool completed);

    /** Node that owns the current event of thread t (materializing a unary
     *  transaction if no block is open). */
    uint32_t node_for_event(ThreadId t);

    /**
     * Insert edge a->b (deduplicated) and run the cycle check.
     * @return true iff the edge closes a cycle.
     */
    bool add_edge(uint32_t a, uint32_t b);

    /** Is `needle` reachable from `from` (over non-deleted nodes)? */
    bool reachable(uint32_t from, uint32_t needle);

    /** Run GC starting at a completed node. */
    void maybe_collect(uint32_t n);

    void on_complete(uint32_t n);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);

    VelodromeOptions opts_;
    TxnTracker txns_;

    std::vector<Node> nodes_;
    /** Deduplication of inserted edges, keyed by (source << 32 | target). */
    std::unordered_set<uint64_t> edge_set_;

    std::vector<uint32_t> cur_;  // active block node per thread
    std::vector<uint32_t> last_; // most recent node per thread (also holds
                                 // the forking node for not-yet-started
                                 // children)
    std::vector<uint32_t> last_write_; // per var
    std::vector<uint32_t> last_rel_;   // per lock
    /** Last-read node per (var, thread), flattened into one arena so the
     *  per-write reader scan streams one contiguous row. */
    FlatTable<uint32_t> last_read_;

    uint32_t dfs_stamp_ = 0;
    std::vector<uint32_t> dfs_stack_;

    VelodromeStats stats_;
};

} // namespace aero
