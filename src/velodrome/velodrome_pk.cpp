#include "velodrome/velodrome_pk.hpp"

#include <algorithm>

namespace aero {

VelodromePK::VelodromePK(uint32_t num_threads, uint32_t num_vars,
                         uint32_t num_locks, const VelodromeOptions& opts)
    : opts_(opts), txns_(num_threads)
{
    cur_.assign(num_threads, kNone);
    last_.assign(num_threads, kNone);
    last_write_.assign(num_vars, kNone);
    last_rel_.assign(num_locks, kNone);
    last_read_.set_fill(kNone);
    last_read_.ensure_cols(num_threads);
    last_read_.ensure_rows(num_vars);
}

void
VelodromePK::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    if (threads > 0)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
VelodromePK::ensure_thread(ThreadId t)
{
    if (t >= cur_.size()) {
        cur_.resize(t + 1, kNone);
        last_.resize(t + 1, kNone);
        txns_.ensure(t + 1);
        last_read_.ensure_cols(cur_.size());
    }
}

void
VelodromePK::ensure_var(VarId x)
{
    if (x >= last_write_.size()) {
        last_write_.resize(x + 1, kNone);
        last_read_.ensure_cols(cur_.size());
        last_read_.ensure_rows(x + 1);
    }
}

void
VelodromePK::ensure_lock(LockId l)
{
    if (l >= last_rel_.size())
        last_rel_.resize(l + 1, kNone);
}

uint32_t
VelodromePK::new_node(ThreadId t, bool completed)
{
    uint32_t n = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[n].completed = completed;
    nodes_[n].ord = next_ord_++; // newest node goes last: consistent
    ++stats_.total_nodes;
    ++stats_.live_nodes;
    stats_.max_live_nodes =
        std::max(stats_.max_live_nodes, stats_.live_nodes);
    add_edge(last_[t], n);
    last_[t] = n;
    return n;
}

uint32_t
VelodromePK::node_for_event(ThreadId t)
{
    uint32_t n = cur_[t];
    if (n == kNone)
        n = new_node(t, /*completed=*/true);
    return n;
}

bool
VelodromePK::reorder(uint32_t a, uint32_t b)
{
    // Pearce-Kelly: the affected region is ord(b) .. ord(a). Forward
    // search from b (bounded above by ord(a)); meeting a closes a cycle.
    ++reordered_edges_;
    const uint32_t lower = nodes_[b].ord;
    const uint32_t upper = nodes_[a].ord;
    ++dfs_stamp_;
    fwd_.clear();
    work_.clear();
    work_.push_back(b);
    nodes_[b].stamp = dfs_stamp_;
    while (!work_.empty()) {
        uint32_t v = work_.back();
        work_.pop_back();
        ++stats_.dfs_visits;
        fwd_.push_back(v);
        if (v == a)
            return true; // cycle
        for (uint32_t w : nodes_[v].succ) {
            Node& nw = nodes_[w];
            if (!nw.deleted && nw.stamp != dfs_stamp_ && nw.ord <= upper) {
                nw.stamp = dfs_stamp_;
                work_.push_back(w);
            }
        }
    }
    // Backward search from a (bounded below by ord(b)). Uses a second
    // stamp space offset so the two searches don't collide.
    ++dfs_stamp_;
    bwd_.clear();
    work_.push_back(a);
    nodes_[a].stamp = dfs_stamp_;
    while (!work_.empty()) {
        uint32_t v = work_.back();
        work_.pop_back();
        ++stats_.dfs_visits;
        bwd_.push_back(v);
        for (uint32_t w : nodes_[v].pred) {
            Node& nw = nodes_[w];
            if (!nw.deleted && nw.stamp != dfs_stamp_ && nw.ord >= lower) {
                nw.stamp = dfs_stamp_;
                work_.push_back(w);
            }
        }
    }
    // Reassign the union of their order slots: everything that reaches a
    // (bwd) must precede everything reachable from b (fwd).
    auto by_ord = [this](uint32_t x, uint32_t y) {
        return nodes_[x].ord < nodes_[y].ord;
    };
    std::sort(bwd_.begin(), bwd_.end(), by_ord);
    std::sort(fwd_.begin(), fwd_.end(), by_ord);
    std::vector<uint32_t> slots;
    slots.reserve(bwd_.size() + fwd_.size());
    for (uint32_t v : bwd_)
        slots.push_back(nodes_[v].ord);
    for (uint32_t v : fwd_)
        slots.push_back(nodes_[v].ord);
    std::sort(slots.begin(), slots.end());
    size_t i = 0;
    for (uint32_t v : bwd_)
        nodes_[v].ord = slots[i++];
    for (uint32_t v : fwd_)
        nodes_[v].ord = slots[i++];
    return false;
}

bool
VelodromePK::add_edge(uint32_t a, uint32_t b)
{
    if (a == kNone || b == kNone || a == b)
        return false;
    if (nodes_[a].deleted)
        return false; // see velodrome.cpp: no cycle can pass through
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (!edge_set_.insert(key).second)
        return false;
    ++stats_.total_edges;
    nodes_[a].succ.push_back(b);
    nodes_[b].pred.push_back(a);
    ++nodes_[b].indegree;
    if (nodes_[a].ord < nodes_[b].ord) {
        ++fast_edges_; // order already consistent: O(1)
        return false;
    }
    return reorder(a, b);
}

void
VelodromePK::maybe_collect(uint32_t n)
{
    if (!opts_.garbage_collect)
        return;
    std::vector<uint32_t> work{n};
    while (!work.empty()) {
        uint32_t v = work.back();
        work.pop_back();
        if (nodes_[v].deleted || !nodes_[v].completed ||
            nodes_[v].indegree != 0) {
            continue;
        }
        nodes_[v].deleted = true;
        ++stats_.gc_deleted;
        --stats_.live_nodes;
        for (uint32_t w : nodes_[v].succ) {
            if (nodes_[w].deleted)
                continue;
            uint64_t key = (static_cast<uint64_t>(v) << 32) | w;
            edge_set_.erase(key);
            if (--nodes_[w].indegree == 0 && nodes_[w].completed)
                work.push_back(w);
        }
        nodes_[v].succ.clear();
        nodes_[v].succ.shrink_to_fit();
        nodes_[v].pred.clear();
        nodes_[v].pred.shrink_to_fit();
    }
}

void
VelodromePK::on_complete(uint32_t n)
{
    nodes_[n].completed = true;
    maybe_collect(n);
}

bool
VelodromePK::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t))
            cur_[t] = new_node(t, /*completed=*/false);
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            uint32_t n = cur_[t];
            cur_[t] = kNone;
            if (n != kNone)
                on_complete(n);
        }
        return false;

      case Op::kRead: {
        ensure_var(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_write_[e.target], n);
        last_read_.at(e.target, t) = n;
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by read edge");
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_write_[e.target], n);
        const uint32_t* readers = last_read_.row(e.target);
        for (size_t u = 0; u < last_read_.cols(); ++u) {
            if (cycle)
                break;
            cycle = add_edge(readers[u], n);
        }
        last_write_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by write edge");
        return false;
      }

      case Op::kAcquire: {
        ensure_lock(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_rel_[e.target], n);
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by lock edge");
        return false;
      }

      case Op::kRelease: {
        ensure_lock(e.target);
        uint32_t n = node_for_event(t);
        last_rel_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        return false;
      }

      case Op::kFork: {
        ensure_thread(e.target);
        uint32_t n = node_for_event(t);
        if (last_[e.target] == kNone)
            last_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        return false;
      }

      case Op::kJoin: {
        ensure_thread(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_[e.target], n);
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by join edge");
        return false;
      }
    }
    return false;
}

size_t
VelodromePK::memory_bytes() const
{
    size_t n = nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_) {
        n += (node.succ.capacity() + node.pred.capacity()) *
             sizeof(uint32_t);
    }
    n += edge_set_.bucket_count() * sizeof(void*);
    n += edge_set_.size() * (sizeof(uint64_t) + 2 * sizeof(void*));
    n += (cur_.capacity() + last_.capacity() + last_write_.capacity() +
          last_rel_.capacity() + fwd_.capacity() + bwd_.capacity() +
          work_.capacity()) *
         sizeof(uint32_t);
    n += last_read_.memory_bytes();
    n += txns_.memory_bytes();
    return n;
}

} // namespace aero
