#include "velodrome/velodrome.hpp"

#include <algorithm>

namespace aero {

Velodrome::Velodrome(uint32_t num_threads, uint32_t num_vars,
                     uint32_t num_locks, const VelodromeOptions& opts)
    : opts_(opts), txns_(num_threads)
{
    cur_.assign(num_threads, kNone);
    last_.assign(num_threads, kNone);
    last_write_.assign(num_vars, kNone);
    last_rel_.assign(num_locks, kNone);
    last_read_.set_fill(kNone);
    last_read_.ensure_cols(num_threads);
    last_read_.ensure_rows(num_vars);
}

void
Velodrome::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    if (threads > 0)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
Velodrome::ensure_thread(ThreadId t)
{
    if (t >= cur_.size()) {
        cur_.resize(t + 1, kNone);
        last_.resize(t + 1, kNone);
        txns_.ensure(t + 1);
        last_read_.ensure_cols(cur_.size());
    }
}

void
Velodrome::ensure_var(VarId x)
{
    if (x >= last_write_.size()) {
        last_write_.resize(x + 1, kNone);
        last_read_.ensure_cols(cur_.size());
        last_read_.ensure_rows(x + 1);
    }
}

void
Velodrome::ensure_lock(LockId l)
{
    if (l >= last_rel_.size())
        last_rel_.resize(l + 1, kNone);
}

uint32_t
Velodrome::new_node(ThreadId t, bool completed)
{
    uint32_t n = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[n].completed = completed;
    ++stats_.total_nodes;
    ++stats_.live_nodes;
    stats_.max_live_nodes = std::max(stats_.max_live_nodes,
                                     stats_.live_nodes);
    // Program-order chaining: every prior event of this thread (and the
    // forking event, for the first node of a forked thread) conflicts with
    // this node's events.
    add_edge(last_[t], n);
    last_[t] = n;
    return n;
}

uint32_t
Velodrome::node_for_event(ThreadId t)
{
    uint32_t n = cur_[t];
    if (n == kNone)
        n = new_node(t, /*completed=*/true); // unary transaction
    return n;
}

bool
Velodrome::reachable(uint32_t from, uint32_t needle)
{
    ++dfs_stamp_;
    dfs_stack_.clear();
    dfs_stack_.push_back(from);
    nodes_[from].stamp = dfs_stamp_;
    while (!dfs_stack_.empty()) {
        uint32_t v = dfs_stack_.back();
        dfs_stack_.pop_back();
        ++stats_.dfs_visits;
        if (v == needle)
            return true;
        for (uint32_t w : nodes_[v].succ) {
            if (!nodes_[w].deleted && nodes_[w].stamp != dfs_stamp_) {
                nodes_[w].stamp = dfs_stamp_;
                dfs_stack_.push_back(w);
            }
        }
    }
    return false;
}

bool
Velodrome::add_edge(uint32_t a, uint32_t b)
{
    if (a == kNone || b == kNone || a == b)
        return false;
    if (nodes_[a].deleted) {
        // A deleted source has, and will never gain, incoming edges, so no
        // cycle can pass through this edge; skip it (GC optimization).
        return false;
    }
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (!edge_set_.insert(key).second)
        return false; // duplicate: cycle check already done on first insert
    ++stats_.total_edges;
    nodes_[a].succ.push_back(b);
    ++nodes_[b].indegree;
    // The new edge a->b closes a cycle iff a was already reachable from b.
    return reachable(b, a);
}

void
Velodrome::maybe_collect(uint32_t n)
{
    if (!opts_.garbage_collect)
        return;
    // Iteratively delete completed, incoming-edge-free nodes.
    std::vector<uint32_t> work{n};
    while (!work.empty()) {
        uint32_t v = work.back();
        work.pop_back();
        if (nodes_[v].deleted || !nodes_[v].completed ||
            nodes_[v].indegree != 0) {
            continue;
        }
        nodes_[v].deleted = true;
        ++stats_.gc_deleted;
        --stats_.live_nodes;
        for (uint32_t w : nodes_[v].succ) {
            if (nodes_[w].deleted)
                continue;
            uint64_t key = (static_cast<uint64_t>(v) << 32) | w;
            edge_set_.erase(key);
            if (--nodes_[w].indegree == 0 && nodes_[w].completed)
                work.push_back(w);
        }
        nodes_[v].succ.clear();
        nodes_[v].succ.shrink_to_fit();
    }
}

void
Velodrome::on_complete(uint32_t n)
{
    nodes_[n].completed = true;
    maybe_collect(n);
}

bool
Velodrome::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t))
            cur_[t] = new_node(t, /*completed=*/false);
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            uint32_t n = cur_[t];
            cur_[t] = kNone;
            if (n != kNone)
                on_complete(n);
        }
        return false;

      case Op::kRead: {
        ensure_var(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_write_[e.target], n);
        last_read_.at(e.target, t) = n;
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by read edge");
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_write_[e.target], n);
        const uint32_t* readers = last_read_.row(e.target);
        for (size_t u = 0; u < last_read_.cols(); ++u) {
            if (cycle)
                break;
            cycle = add_edge(readers[u], n);
        }
        last_write_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by write edge");
        return false;
      }

      case Op::kAcquire: {
        ensure_lock(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_rel_[e.target], n);
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by lock edge");
        return false;
      }

      case Op::kRelease: {
        ensure_lock(e.target);
        uint32_t n = node_for_event(t);
        last_rel_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        return false;
      }

      case Op::kFork: {
        ensure_thread(e.target);
        uint32_t n = node_for_event(t);
        // The child's first node will chain from the forking node.
        if (last_[e.target] == kNone)
            last_[e.target] = n;
        if (cur_[t] == kNone)
            on_complete(n);
        return false;
      }

      case Op::kJoin: {
        ensure_thread(e.target);
        uint32_t n = node_for_event(t);
        bool cycle = add_edge(last_[e.target], n);
        if (cur_[t] == kNone)
            on_complete(n);
        if (cycle)
            return report(index, t, "cycle closed by join edge");
        return false;
      }
    }
    return false;
}

size_t
Velodrome::memory_bytes() const
{
    size_t n = nodes_.capacity() * sizeof(Node);
    for (const Node& node : nodes_)
        n += node.succ.capacity() * sizeof(uint32_t);
    // unordered_set: bucket array plus one node (value + next pointer +
    // hash) per element, the same convention as ThreadSlotMap's map.
    n += edge_set_.bucket_count() * sizeof(void*);
    n += edge_set_.size() * (sizeof(uint64_t) + 2 * sizeof(void*));
    n += (cur_.capacity() + last_.capacity() + last_write_.capacity() +
          last_rel_.capacity() + dfs_stack_.capacity()) *
         sizeof(uint32_t);
    n += last_read_.memory_bytes();
    n += txns_.memory_bytes();
    return n;
}

} // namespace aero
