#pragma once

/**
 * @file
 * Velodrome-PK — the graph baseline with a *smarter* incremental cycle
 * detector (Pearce-Kelly dynamic topological ordering, JEA 2006).
 *
 * The paper attributes Velodrome's cubic worst case to running a full
 * reachability check on every new edge. A natural counter-hypothesis is
 * that a better incremental algorithm could close the gap without vector
 * clocks. This engine tests that hypothesis: it maintains a topological
 * order of the live transaction graph and only does work when an
 * inserted edge (a, b) is *order-violating* (ord(b) < ord(a)); a cycle
 * exists exactly when the forward frontier from b meets a. Edge
 * insertions that respect the current order are O(1).
 *
 * Outcome (see bench_baselines): on GC-friendly workloads PK is at least
 * as good as plain Velodrome, but on the star workload the hub keeps
 * receiving order-violating edges whose affected region contains the
 * ever-growing consumer set, so the analysis remains super-linear —
 * supporting the paper's position that the graph representation itself,
 * not the cycle-check implementation, is the bottleneck.
 *
 * Garbage collection mirrors velodrome.hpp: completed transactions with
 * no incoming edges can never join a cycle and are deleted, cascading.
 */

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/flat_table.hpp"
#include "velodrome/velodrome.hpp" // VelodromeOptions, VelodromeStats

namespace aero {

/** Velodrome with Pearce-Kelly incremental cycle detection. */
class VelodromePK : public CheckerBase {
public:
    VelodromePK(uint32_t num_threads, uint32_t num_vars,
                uint32_t num_locks, const VelodromeOptions& opts = {});

    std::string_view name() const override { return "Velodrome-PK"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    const VelodromeStats& stats() const { return stats_; }

    /** Map the engine-agnostic reclamation toggle onto the node GC;
     *  call before the first event. */
    void set_gc(bool on) override { opts_.garbage_collect = on; }

    /** Edge insertions that respected the order (O(1) fast path). */
    uint64_t fast_edges() const { return fast_edges_; }
    /** Edge insertions that required reordering. */
    uint64_t reordered_edges() const { return reordered_edges_; }

    StatList
    counters() const override
    {
        return {
            {"max_live_nodes", stats_.max_live_nodes},
            {"total_nodes", stats_.total_nodes},
            {"total_edges", stats_.total_edges},
            {"gc_deleted", stats_.gc_deleted},
            {"dfs_visits", stats_.dfs_visits},
            {"fast_edges", fast_edges_},
            {"reordered_edges", reordered_edges_},
        };
    }

    size_t memory_bytes() const override;

private:
    static constexpr uint32_t kNone = UINT32_MAX;

    struct Node {
        std::vector<uint32_t> succ;
        std::vector<uint32_t> pred; // needed for the backward pass
        uint32_t ord = 0;           // topological index
        uint32_t indegree = 0;
        bool completed = false;
        bool deleted = false;
        uint32_t stamp = 0;
    };

    uint32_t new_node(ThreadId t, bool completed);
    uint32_t node_for_event(ThreadId t);

    /** Insert edge a->b; returns true iff it closes a cycle. */
    bool add_edge(uint32_t a, uint32_t b);

    /** Pearce-Kelly reorder after inserting order-violating a->b.
     *  Returns true iff a cycle was found. */
    bool reorder(uint32_t a, uint32_t b);

    void maybe_collect(uint32_t n);
    void on_complete(uint32_t n);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);

    VelodromeOptions opts_;
    TxnTracker txns_;

    std::vector<Node> nodes_;
    std::unordered_set<uint64_t> edge_set_;
    uint32_t next_ord_ = 0;

    std::vector<uint32_t> cur_;
    std::vector<uint32_t> last_;
    std::vector<uint32_t> last_write_;
    std::vector<uint32_t> last_rel_;
    /** Last-read node per (var, thread), flattened into one arena so the
     *  per-write reader scan streams one contiguous row. */
    FlatTable<uint32_t> last_read_;

    uint32_t dfs_stamp_ = 0;
    std::vector<uint32_t> fwd_, bwd_, work_;

    VelodromeStats stats_;
    uint64_t fast_edges_ = 0;
    uint64_t reordered_edges_ = 0;
};

} // namespace aero
