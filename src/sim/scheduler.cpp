#include "sim/scheduler.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace aero::sim {

namespace {

/** Mutable execution state of one simulated thread. */
struct ThreadState {
    size_t pc = 0;
    bool started = false;  // runnable (main-like or already forked)
    bool finished = false; // ran out of statements
};

} // namespace

SimResult
run_program(const Program& program, const SchedulerOptions& opts)
{
    program.validate();
    SimResult result;
    Rng rng(opts.seed);

    const uint32_t nt = static_cast<uint32_t>(program.threads.size());
    std::vector<ThreadState> ts(nt);
    std::vector<uint32_t> lock_holder; // per lock, kNoThread when free

    // Threads never forked are runnable from the start.
    std::vector<bool> forked = program.fork_targets();
    for (uint32_t t = 0; t < nt; ++t) {
        ts[t].started = !forked[t];
        ts[t].finished = program.threads[t].stmts.empty();
    }

    auto lock_free_or_mine = [&](uint32_t l, uint32_t t) {
        if (l >= lock_holder.size())
            lock_holder.resize(l + 1, kNoThread);
        return lock_holder[l] == kNoThread || lock_holder[l] == t;
    };

    // A thread is runnable when it has started, has statements left, and
    // its *next* statement would not block (lock held elsewhere, join of
    // an unfinished thread).
    auto runnable = [&](uint32_t t) {
        const ThreadState& s = ts[t];
        if (!s.started || s.finished)
            return false;
        const Stmt& next = program.threads[t].stmts[s.pc];
        if (next.kind == StmtKind::kAcquire &&
            !lock_free_or_mine(next.arg, t)) {
            return false;
        }
        if (next.kind == StmtKind::kJoin && !ts[next.arg].finished)
            return false;
        return true;
    };

    // Execute one (non-blocking) statement of thread t.
    auto step = [&](uint32_t t) {
        ThreadState& s = ts[t];
        const Stmt& stmt = program.threads[t].stmts[s.pc];
        switch (stmt.kind) {
          case StmtKind::kAcquire:
            AERO_ASSERT(lock_free_or_mine(stmt.arg, t),
                        "scheduler picked a blocked thread");
            lock_holder[stmt.arg] = t;
            result.trace.acquire(t, stmt.arg);
            break;
          case StmtKind::kRelease:
            AERO_ASSERT(stmt.arg < lock_holder.size() &&
                            lock_holder[stmt.arg] == t,
                        "program releases a lock it does not hold");
            lock_holder[stmt.arg] = kNoThread;
            result.trace.release(t, stmt.arg);
            break;
          case StmtKind::kJoin:
            AERO_ASSERT(ts[stmt.arg].finished,
                        "scheduler picked a blocked thread");
            result.trace.join(t, stmt.arg);
            break;
          case StmtKind::kFork:
            ts[stmt.arg].started = true;
            result.trace.fork(t, stmt.arg);
            break;
          case StmtKind::kRead:
            result.trace.read(t, stmt.arg);
            break;
          case StmtKind::kWrite:
            result.trace.write(t, stmt.arg);
            break;
          case StmtKind::kBegin:
            result.trace.begin(t);
            break;
          case StmtKind::kEnd:
            result.trace.end(t);
            break;
          case StmtKind::kCompute:
            break;
        }
        ++result.steps;
        if (++s.pc >= program.threads[t].stmts.size())
            s.finished = true;
    };

    uint32_t current = 0;
    uint32_t budget = 0; // remaining quantum for round robin
    std::vector<uint32_t> candidates;
    for (;;) {
        candidates.clear();
        for (uint32_t t = 0; t < nt; ++t) {
            if (runnable(t))
                candidates.push_back(t);
        }
        if (candidates.empty()) {
            bool all_done = true;
            for (uint32_t t = 0; t < nt; ++t)
                all_done = all_done && ts[t].finished;
            result.deadlocked = !all_done;
            return result;
        }

        uint32_t pick;
        switch (opts.policy) {
          case Policy::kRoundRobin:
            if (budget > 0 && runnable(current)) {
                pick = current;
            } else {
                // Next runnable thread after `current` in cyclic order.
                pick = candidates[0];
                for (uint32_t c : candidates) {
                    if (c > current) {
                        pick = c;
                        break;
                    }
                }
                budget = opts.quantum;
            }
            break;
          case Policy::kRandom:
            pick = candidates[rng.next_below(candidates.size())];
            break;
          case Policy::kSticky:
          default:
            if (runnable(current) && rng.next_bool(opts.stickiness)) {
                pick = current;
            } else {
                pick = candidates[rng.next_below(candidates.size())];
            }
            break;
        }
        current = pick;
        if (budget > 0)
            --budget;
        step(pick);
    }
}

} // namespace aero::sim
