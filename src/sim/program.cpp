#include "sim/program.hpp"

#include "support/assert.hpp"

namespace aero::sim {

ThreadProgram&
Program::thread(uint32_t t)
{
    if (t >= threads.size())
        threads.resize(t + 1);
    return threads[t];
}

size_t
Program::total_statements() const
{
    size_t n = 0;
    for (const auto& th : threads)
        n += th.stmts.size();
    return n;
}

std::vector<bool>
Program::fork_targets() const
{
    std::vector<bool> targets(threads.size(), false);
    for (const auto& th : threads) {
        for (const Stmt& s : th.stmts) {
            if (s.kind == StmtKind::kFork && s.arg < threads.size())
                targets[s.arg] = true;
        }
    }
    return targets;
}

void
Program::validate() const
{
    std::vector<uint32_t> fork_count(threads.size(), 0);
    for (uint32_t t = 0; t < threads.size(); ++t) {
        for (const Stmt& s : threads[t].stmts) {
            if (s.kind == StmtKind::kFork) {
                if (s.arg >= threads.size())
                    fatal("fork target out of range");
                if (s.arg == t)
                    fatal("thread forks itself");
                if (++fork_count[s.arg] > 1)
                    fatal("thread forked more than once");
            } else if (s.kind == StmtKind::kJoin) {
                if (s.arg >= threads.size())
                    fatal("join target out of range");
                if (s.arg == t)
                    fatal("thread joins itself");
            }
        }
    }
}

} // namespace aero::sim
