#pragma once

/**
 * @file
 * Seeded interleaving scheduler for the program model.
 *
 * Executes a Program step by step, respecting lock blocking, fork/join
 * ordering, and begin/end nesting, and emits the observed events as a
 * well-formed Trace. Deterministic for a given (program, options) pair.
 *
 * Policies:
 *  - kRoundRobin: cycle through runnable threads, `quantum` statements at
 *    a time — a deterministic, fairness-heavy schedule.
 *  - kRandom: pick a uniformly random runnable thread each step.
 *  - kSticky: like kRandom, but keep running the current thread with
 *    probability `stickiness` — models coarse OS scheduling quanta and
 *    produces longer uninterrupted runs (fewer context switches).
 */

#include <cstdint>

#include "sim/program.hpp"
#include "trace/trace.hpp"

namespace aero::sim {

/** Scheduling policy. */
enum class Policy : uint8_t {
    kRoundRobin,
    kRandom,
    kSticky,
};

/** Scheduler configuration. */
struct SchedulerOptions {
    Policy policy = Policy::kRandom;
    uint64_t seed = 1;
    /** Statements per turn for round-robin. */
    uint32_t quantum = 4;
    /** Probability of staying on the current thread for kSticky. */
    double stickiness = 0.9;
};

/** Outcome of a simulation. */
struct SimResult {
    Trace trace;
    /** True if execution stopped with unrunnable, unfinished threads
     *  (lock or join deadlock in the program). */
    bool deadlocked = false;
    /** Statements executed (including kCompute, which emits no event). */
    uint64_t steps = 0;
};

/** Run `program` to completion (or deadlock) under `opts`. */
SimResult run_program(const Program& program,
                      const SchedulerOptions& opts = {});

} // namespace aero::sim
