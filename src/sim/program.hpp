#pragma once

/**
 * @file
 * A miniature concurrent-program model.
 *
 * The paper generates traces by instrumenting Java programs with
 * RoadRunner. We replace that substrate with a simulator: a *program* is a
 * set of per-thread statement lists over shared variables and locks, plus
 * fork/join structure and atomic-block markers; a *scheduler*
 * (scheduler.hpp) interleaves the threads and emits the resulting
 * well-formed trace. Different seeds/policies give different interleavings
 * of the same program, which is how the examples explore atomicity
 * violations that only manifest under particular schedules.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace aero::sim {

/** Statement kinds executed by simulated threads. */
enum class StmtKind : uint8_t {
    kRead,    ///< read shared variable `arg`
    kWrite,   ///< write shared variable `arg`
    kAcquire, ///< acquire lock `arg` (blocks while held elsewhere)
    kRelease, ///< release lock `arg`
    kBegin,   ///< begin an atomic block
    kEnd,     ///< end an atomic block
    kFork,    ///< start thread `arg`
    kJoin,    ///< wait for thread `arg` to finish (blocks)
    kCompute, ///< local work: consumes a step, emits no event
};

/** One statement. `arg` is a var, lock, or thread index per kind. */
struct Stmt {
    StmtKind kind;
    uint32_t arg = 0;
};

/** The statement list of one simulated thread. */
struct ThreadProgram {
    std::vector<Stmt> stmts;

    void read(uint32_t x) { stmts.push_back({StmtKind::kRead, x}); }
    void write(uint32_t x) { stmts.push_back({StmtKind::kWrite, x}); }
    void acquire(uint32_t l) { stmts.push_back({StmtKind::kAcquire, l}); }
    void release(uint32_t l) { stmts.push_back({StmtKind::kRelease, l}); }
    void begin() { stmts.push_back({StmtKind::kBegin, 0}); }
    void end() { stmts.push_back({StmtKind::kEnd, 0}); }
    void fork(uint32_t u) { stmts.push_back({StmtKind::kFork, u}); }
    void join(uint32_t u) { stmts.push_back({StmtKind::kJoin, u}); }
    void compute() { stmts.push_back({StmtKind::kCompute, 0}); }
};

/**
 * A complete program. Threads that are the target of some fork statement
 * start blocked until forked; all others are runnable from the start.
 */
struct Program {
    std::vector<ThreadProgram> threads;

    /** Thread program for index t, growing the program as needed. */
    ThreadProgram& thread(uint32_t t);

    /** Total statement count across threads. */
    size_t total_statements() const;

    /** Set of thread indices that appear as fork targets. */
    std::vector<bool> fork_targets() const;

    /**
     * Static sanity check: fork targets exist, a thread is forked at most
     * once, no thread forks itself. Throws FatalError on violation.
     */
    void validate() const;
};

} // namespace aero::sim
