#include "analysis/checker.hpp"

namespace aero {

bool
CheckerBase::report(size_t index, ThreadId thread, std::string reason)
{
    if (!violation_)
        violation_ = Violation{index, thread, std::move(reason)};
    return true;
}

} // namespace aero
