#pragma once

/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. The Table 1 /
 * Table 2 binaries print rows in the same shape as the paper: program,
 * events, threads, locks, variables, transactions, verdict, per-checker
 * time, and speed-up.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace aero {

/** A simple right-padded text table. */
class TextTable {
public:
    /** Set the header row (fixes the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Format a speed-up figure like the paper's column 10: "97", "1.16",
 * "> 24000" (when the baseline timed out and the ratio is a lower bound),
 * "0.86".
 */
std::string format_speedup(double ratio, bool lower_bound);

} // namespace aero
