#pragma once

/**
 * @file
 * ThreadSlotMap — external-tid -> clock-dimension ("slot") binding with
 * recycling, the thread half of dead-state reclamation (src/vc/README.md,
 * "Reclamation").
 *
 * Without recycling every distinct thread id in the trace widens every
 * vector clock forever; a service fed by millions of short-lived threads
 * OOMs on dimensions alone. With recycling a joined thread's slot is
 * retired and reissued to the next created thread, so the clock dimension
 * tracks the *live* thread count.
 *
 * Determinism: slots are allocated at first mention and retired at
 * processed join events. Both are sync events the sharded runner
 * replicates to every shard (src/shard/README.md), so all shards build
 * the identical map and per-thread frontier rows line up across shards
 * without translation.
 *
 * The engines own the clock-side safety work (continuation values, eager
 * scrubbing of cached per-slot facts) — this class is pure bookkeeping.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace aero {

/** Maps external thread ids to recycled slot indices. */
class ThreadSlotMap {
public:
    /**
     * Slot for external tid `ext`, allocating one (reuse-first, LIFO) on
     * first sight. `fresh` is set iff this call bound the tid — the
     * caller must then initialize / continue the slot's clock state.
     */
    uint32_t
    resolve(ThreadId ext, bool& fresh)
    {
        Cached& hit = cache_[ext & (kCacheSize - 1)];
        if (hit.ext == ext) {
            fresh = false;
            return hit.slot;
        }
        auto it = slot_of_.find(ext);
        if (it != slot_of_.end()) {
            fresh = false;
            hit = {ext, it->second};
            return it->second;
        }
        fresh = true;
        uint32_t s;
        if (!free_.empty()) {
            s = free_.back();
            free_.pop_back();
            ++recycled_;
        } else {
            s = static_cast<uint32_t>(ext_of_.size());
            ext_of_.push_back(kNoThread);
        }
        ext_of_[s] = ext;
        slot_of_.emplace(ext, s);
        hit = {ext, s};
        return s;
    }

    /** Slot currently bound to `ext`, or kNoThread. Does not allocate. */
    uint32_t
    lookup(ThreadId ext) const
    {
        const Cached& hit = cache_[ext & (kCacheSize - 1)];
        if (hit.ext == ext)
            return hit.slot;
        auto it = slot_of_.find(ext);
        return it == slot_of_.end() ? kNoThread : it->second;
    }

    /** Retire `slot`: unbind its external tid and make it reissuable.
     *  The caller has already fixed up the slot's clock state. */
    void
    retire(uint32_t slot)
    {
        ThreadId ext = ext_of_[slot];
        ext_of_[slot] = kNoThread;
        slot_of_.erase(ext);
        Cached& hit = cache_[ext & (kCacheSize - 1)];
        if (hit.ext == ext)
            hit = {kNoThread, kNoThread};
        free_.push_back(slot);
        ++retired_;
    }

    /** External tid bound to `slot` (kNoThread when free/never issued).
     *  Violation reports use this to name the real thread. */
    ThreadId
    ext_of(uint32_t slot) const
    {
        return slot < ext_of_.size() ? ext_of_[slot] : kNoThread;
    }

    /** Total slots ever laid out (live + free) — the clock dimension. */
    uint32_t slots() const { return static_cast<uint32_t>(ext_of_.size()); }

    uint64_t retired() const { return retired_; }
    uint64_t recycled() const { return recycled_; }

    /** Seed export: the slot->ext binding table. */
    const std::vector<ThreadId>& bindings() const { return ext_of_; }

    /** Seed export: free slots, oldest first (allocation order). */
    const std::vector<uint32_t>& free_slots() const { return free_; }

    /** Seed restore: replace the whole map (fresh engine reseed). */
    void
    restore(const std::vector<ThreadId>& bindings,
            const std::vector<ThreadId>& free_slots)
    {
        ext_of_ = bindings;
        free_.assign(free_slots.begin(), free_slots.end());
        slot_of_.clear();
        for (uint32_t s = 0; s < ext_of_.size(); ++s)
            if (ext_of_[s] != kNoThread)
                slot_of_.emplace(ext_of_[s], s);
        for (Cached& c : cache_)
            c = {kNoThread, kNoThread};
    }

    size_t
    memory_bytes() const
    {
        // unordered_map nodes: bucket array + one heap node per entry
        // (libstdc++ layout: next pointer + hash + pair).
        return ext_of_.capacity() * sizeof(ThreadId) +
               free_.capacity() * sizeof(uint32_t) + sizeof(cache_) +
               slot_of_.bucket_count() * sizeof(void*) +
               slot_of_.size() *
                   (sizeof(void*) + sizeof(size_t) +
                    sizeof(std::pair<ThreadId, uint32_t>));
    }

private:
    static constexpr size_t kCacheSize = 256;

    struct Cached {
        ThreadId ext = kNoThread;
        uint32_t slot = kNoThread;
    };

    std::vector<ThreadId> ext_of_; ///< slot -> external tid, kNoThread=free
    std::vector<uint32_t> free_;   ///< retired slots, reissued LIFO
    /** Live external tids only — bounded by the live thread count. */
    std::unordered_map<ThreadId, uint32_t> slot_of_;
    Cached cache_[kCacheSize]; ///< direct-mapped hot-path bypass
    uint64_t retired_ = 0;
    uint64_t recycled_ = 0;
};

} // namespace aero
