#pragma once

/**
 * @file
 * Per-thread transaction nesting state shared by all checkers.
 *
 * Implements the paper's Section 4.1.4 treatment of nested transactions:
 * only the outermost begin/end pair delimits a transaction; inner pairs are
 * ignored. Also assigns each outermost transaction a per-thread sequence
 * number so forked children can later ask whether the forking transaction
 * instance is still active (Algorithm 3's "parentTr is alive").
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace aero {

/** Tracks begin/end nesting depth and transaction instances per thread. */
class TxnTracker {
public:
    explicit TxnTracker(uint32_t num_threads = 0)
        : depth_(num_threads, 0), seq_(num_threads, 0)
    {}

    /** Grow to cover thread ids < n. */
    void
    ensure(uint32_t n)
    {
        if (n > depth_.size()) {
            depth_.resize(n, 0);
            seq_.resize(n, 0);
        }
    }

    /**
     * Record a begin event of `t`.
     * @return true iff this begin is outermost (starts a transaction).
     */
    bool
    on_begin(ThreadId t)
    {
        ensure(t + 1);
        if (depth_[t]++ == 0) {
            ++seq_[t];
            return true;
        }
        return false;
    }

    /**
     * Record an end event of `t`.
     * @return true iff this end is outermost (completes the transaction).
     *
     * Unmatched ends (possible only on ill-formed traces) are ignored.
     */
    bool
    on_end(ThreadId t)
    {
        ensure(t + 1);
        if (depth_[t] == 0)
            return false;
        return --depth_[t] == 0;
    }

    /** True iff thread t currently has an active (open) transaction. */
    bool
    active(ThreadId t) const
    {
        return t < depth_.size() && depth_[t] > 0;
    }

    /**
     * Instance counter of t's current (or most recent) transaction;
     * 0 before the first begin.
     */
    uint64_t
    seq(ThreadId t) const
    {
        return t < seq_.size() ? seq_[t] : 0;
    }

    /** Copy the nesting/instance state out (engine seed export). */
    void
    snapshot(std::vector<uint32_t>& depth, std::vector<uint64_t>& seq) const
    {
        depth = depth_;
        seq = seq_;
    }

    /**
     * Replace the nesting/instance state (engine reseed). Transaction
     * depths and sequence numbers are derived solely from replicated
     * begin/end events, so every shard agrees on them and restoring them
     * into a fresh engine re-opens exactly the transactions that were
     * open at the checkpoint.
     */
    void
    restore(const std::vector<uint32_t>& depth,
            const std::vector<uint64_t>& seq)
    {
        ensure(static_cast<uint32_t>(std::max(depth.size(), seq.size())));
        for (size_t t = 0; t < depth.size(); ++t)
            depth_[t] = depth[t];
        for (size_t t = 0; t < seq.size(); ++t)
            seq_[t] = seq[t];
    }

    /** Bytes held (engine memory_bytes() accounting). */
    size_t
    memory_bytes() const
    {
        return depth_.capacity() * sizeof(uint32_t) +
               seq_.capacity() * sizeof(uint64_t);
    }

private:
    std::vector<uint32_t> depth_;
    std::vector<uint64_t> seq_;
};

} // namespace aero
