#include "analysis/report.hpp"

#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace aero {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    AERO_ASSERT(header_.empty() || cells.size() == header_.size(),
                "row width must match header width");
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    size_t cols = header_.size();
    for (const auto& r : rows_)
        cols = std::max(cols, r.size());
    std::vector<size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    measure(header_);
    for (const auto& r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i) {
            os << r[i];
            if (i + 1 < r.size())
                os << std::string(width[i] - r[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < cols; ++i)
            total += width[i] + (i + 1 < cols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
}

std::string
format_speedup(double ratio, bool lower_bound)
{
    char buf[64];
    if (ratio >= 100) {
        std::snprintf(buf, sizeof(buf), "%s%.0f", lower_bound ? "> " : "",
                      ratio);
    } else {
        std::snprintf(buf, sizeof(buf), "%s%.2f", lower_bound ? "> " : "",
                      ratio);
    }
    return buf;
}

} // namespace aero
