#pragma once

/**
 * @file
 * The common streaming interface implemented by every atomicity checker in
 * this repository (AeroDrome variants, Velodrome, and adapters around the
 * offline oracle).
 *
 * Checkers are online: they see one event at a time, never the whole trace,
 * and halt at the first violation — matching the paper's setting where the
 * algorithm "exits" when a conflict-serializability violation is declared.
 */

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/event.hpp"
#include "vc/vector_clock.hpp"

namespace aero {

/** Named statistic counters a checker exposes for reports. */
using StatList = std::vector<std::pair<std::string, uint64_t>>;

/** Evidence attached to a detected conflict-serializability violation. */
struct Violation {
    /** Index in the trace of the event at which the violation fired. */
    size_t event_index = 0;
    /** Thread whose active transaction the violation was charged to. */
    ThreadId thread = kNoThread;
    /** Which check fired (human-readable, e.g. "read saw write clock"). */
    std::string reason;
    /** Shard whose engine fired (0 for single-engine runs; see
     *  src/shard/). Assigned by the sharded runner's verdict join. */
    uint32_t shard = 0;
};

/**
 * A snapshot of the per-thread clocks C_t of one engine — the currency of
 * the sharded runner's frontier merge (src/shard/). Stored flat
 * (row-major, `threads` rows of `dim` components) so export/merge/adopt
 * are allocation-free streaming loops once the buffers are warm.
 */
struct ClockFrontier {
    uint32_t threads = 0;
    uint32_t dim = 0;
    std::vector<ClockValue> values; ///< threads * dim, row t at t * dim

    void
    reset(uint32_t t, uint32_t d)
    {
        threads = t;
        dim = d;
        values.assign(static_cast<size_t>(t) * d, 0);
    }

    ClockValue
    get(uint32_t t, uint32_t j) const
    {
        return (t < threads && j < dim)
                   ? values[static_cast<size_t>(t) * dim + j]
                   : 0;
    }

    void
    set(uint32_t t, uint32_t j, ClockValue v)
    {
        values[static_cast<size_t>(t) * dim + j] = v;
    }

    /** *this := *this |_| o, pointwise max, growing to cover both. */
    void
    join(const ClockFrontier& o)
    {
        if (o.threads > threads || o.dim > dim) {
            ClockFrontier grown;
            grown.reset(std::max(threads, o.threads), std::max(dim, o.dim));
            for (uint32_t t = 0; t < threads; ++t)
                for (uint32_t j = 0; j < dim; ++j)
                    grown.set(t, j, get(t, j));
            *this = std::move(grown);
        }
        for (uint32_t t = 0; t < o.threads; ++t) {
            for (uint32_t j = 0; j < o.dim; ++j) {
                ClockValue v = o.get(t, j);
                size_t at = static_cast<size_t>(t) * dim + j;
                if (v > values[at])
                    values[at] = v;
            }
        }
    }
};

/** Streaming conflict-serializability checker. */
class AtomicityChecker {
public:
    virtual ~AtomicityChecker() = default;

    /** Checker name for reports ("AeroDrome", "Velodrome", ...). */
    virtual std::string_view name() const = 0;

    /**
     * Process the next event of the trace.
     *
     * @param e the event
     * @param index its position in the trace (for violation reporting)
     * @return true if this event triggered a violation; the checker must
     *         not be fed further events afterwards.
     */
    virtual bool process(const Event& e, size_t index) = 0;

    /**
     * Optional capacity hint: the trace will mention at most this many
     * threads/variables/locks. Engines backed by contiguous arenas
     * (ClockBank) use it to size their storage once, up front, instead of
     * re-laying arenas out as ids appear mid-run. Ids beyond the hint
     * still work; this is purely a performance hint.
     */
    virtual void reserve(uint32_t /*threads*/, uint32_t /*vars*/,
                         uint32_t /*locks*/)
    {}

    /**
     * Named throughput counters (joins, comparisons, epoch hits,
     * inflations, ...) for the runner's report output. Engines override
     * this to surface their internal statistics; the default is empty.
     *
     * Engines back these with single-writer relaxed atomics
     * (support/counter.hpp), so counters() may be called from another
     * thread while the engine is still processing events.
     */
    virtual StatList counters() const { return {}; }

    /**
     * Sharded-checking support (src/shard/README.md). An engine that
     * maintains per-thread clocks C_t can run as one shard of a
     * ShardedRunner: it must export its clock frontier and adopt a merged
     * frontier (a pointwise upper bound of every shard's C_t) between
     * events. Adoption must only *grow* clocks — it joins the merged
     * frontier in — and must invalidate any cached facts that assumed
     * C_t was unchanged (purity bits, same-epoch versions).
     *
     * Engines without per-thread clocks (the graph-based Velodrome
     * baseline) leave these unimplemented and cannot be sharded.
     */
    virtual bool supports_frontier() const { return false; }

    /** Snapshot the per-thread clocks into `out` (resets it first). */
    virtual void
    export_frontier(ClockFrontier& out) const
    {
        out.reset(0, 0);
    }

    /** C_t := C_t |_| in[t] for every thread, creating threads the
     *  engine has not seen yet. */
    virtual void adopt_frontier(const ClockFrontier& in) { (void)in; }

    /** True once a violation has been detected. */
    virtual bool has_violation() const = 0;

    /** Violation details, present iff has_violation(). */
    virtual const std::optional<Violation>& violation() const = 0;
};

/**
 * Shared base handling violation storage; subclasses call report() and
 * return its value from process().
 */
class CheckerBase : public AtomicityChecker {
public:
    bool has_violation() const override { return violation_.has_value(); }

    const std::optional<Violation>&
    violation() const override
    {
        return violation_;
    }

protected:
    /** Record a violation; returns true for convenient tail-return. */
    bool report(size_t index, ThreadId thread, std::string reason);

    std::optional<Violation> violation_;
};

} // namespace aero
