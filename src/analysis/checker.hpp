#pragma once

/**
 * @file
 * The common streaming interface implemented by every atomicity checker in
 * this repository (AeroDrome variants, Velodrome, and adapters around the
 * offline oracle).
 *
 * Checkers are online: they see one event at a time, never the whole trace,
 * and halt at the first violation — matching the paper's setting where the
 * algorithm "exits" when a conflict-serializability violation is declared.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace aero {

/** Named statistic counters a checker exposes for reports. */
using StatList = std::vector<std::pair<std::string, uint64_t>>;

/** Evidence attached to a detected conflict-serializability violation. */
struct Violation {
    /** Index in the trace of the event at which the violation fired. */
    size_t event_index = 0;
    /** Thread whose active transaction the violation was charged to. */
    ThreadId thread = kNoThread;
    /** Which check fired (human-readable, e.g. "read saw write clock"). */
    std::string reason;
};

/** Streaming conflict-serializability checker. */
class AtomicityChecker {
public:
    virtual ~AtomicityChecker() = default;

    /** Checker name for reports ("AeroDrome", "Velodrome", ...). */
    virtual std::string_view name() const = 0;

    /**
     * Process the next event of the trace.
     *
     * @param e the event
     * @param index its position in the trace (for violation reporting)
     * @return true if this event triggered a violation; the checker must
     *         not be fed further events afterwards.
     */
    virtual bool process(const Event& e, size_t index) = 0;

    /**
     * Optional capacity hint: the trace will mention at most this many
     * threads/variables/locks. Engines backed by contiguous arenas
     * (ClockBank) use it to size their storage once, up front, instead of
     * re-laying arenas out as ids appear mid-run. Ids beyond the hint
     * still work; this is purely a performance hint.
     */
    virtual void reserve(uint32_t /*threads*/, uint32_t /*vars*/,
                         uint32_t /*locks*/)
    {}

    /**
     * Named throughput counters (joins, comparisons, epoch hits,
     * inflations, ...) for the runner's report output. Engines override
     * this to surface their internal statistics; the default is empty.
     */
    virtual StatList counters() const { return {}; }

    /** True once a violation has been detected. */
    virtual bool has_violation() const = 0;

    /** Violation details, present iff has_violation(). */
    virtual const std::optional<Violation>& violation() const = 0;
};

/**
 * Shared base handling violation storage; subclasses call report() and
 * return its value from process().
 */
class CheckerBase : public AtomicityChecker {
public:
    bool has_violation() const override { return violation_.has_value(); }

    const std::optional<Violation>&
    violation() const override
    {
        return violation_;
    }

protected:
    /** Record a violation; returns true for convenient tail-return. */
    bool report(size_t index, ThreadId thread, std::string reason);

    std::optional<Violation> violation_;
};

} // namespace aero
