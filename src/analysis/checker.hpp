#pragma once

/**
 * @file
 * The common streaming interface implemented by every atomicity checker in
 * this repository (AeroDrome variants, Velodrome, and adapters around the
 * offline oracle).
 *
 * Checkers are online: they see one event at a time, never the whole trace,
 * and halt at the first violation — matching the paper's setting where the
 * algorithm "exits" when a conflict-serializability violation is declared.
 */

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/event.hpp"
#include "vc/clock_bank.hpp"
#include "vc/vector_clock.hpp"

namespace aero {

/** Named statistic counters a checker exposes for reports. */
using StatList = std::vector<std::pair<std::string, uint64_t>>;

/** Evidence attached to a detected conflict-serializability violation. */
struct Violation {
    /** Index in the trace of the event at which the violation fired. */
    size_t event_index = 0;
    /** Thread whose active transaction the violation was charged to. */
    ThreadId thread = kNoThread;
    /** Which check fired (human-readable, e.g. "read saw write clock"). */
    std::string reason;
    /** Shard whose engine fired (0 for single-engine runs; see
     *  src/shard/). Assigned by the sharded runner's verdict join. */
    uint32_t shard = 0;
};

/**
 * A snapshot of the per-thread clocks C_t of one engine — the currency of
 * the sharded runner's frontier merge (src/shard/). Stored flat
 * (row-major, `threads` rows of `dim` components) so export/merge/adopt
 * are allocation-free streaming loops once the buffers are warm.
 */
struct ClockFrontier {
    uint32_t threads = 0;
    uint32_t dim = 0;
    std::vector<ClockValue> values; ///< threads * dim, row t at t * dim

    void
    reset(uint32_t t, uint32_t d)
    {
        threads = t;
        dim = d;
        values.assign(static_cast<size_t>(t) * d, 0);
    }

    ClockValue
    get(uint32_t t, uint32_t j) const
    {
        return (t < threads && j < dim)
                   ? values[static_cast<size_t>(t) * dim + j]
                   : 0;
    }

    void
    set(uint32_t t, uint32_t j, ClockValue v)
    {
        values[static_cast<size_t>(t) * dim + j] = v;
    }

    /** *this := *this |_| o, pointwise max, growing to cover both. */
    void
    join(const ClockFrontier& o)
    {
        if (o.threads > threads || o.dim > dim) {
            ClockFrontier grown;
            grown.reset(std::max(threads, o.threads), std::max(dim, o.dim));
            for (uint32_t t = 0; t < threads; ++t)
                for (uint32_t j = 0; j < dim; ++j)
                    grown.set(t, j, get(t, j));
            *this = std::move(grown);
        }
        if (o.threads == threads && o.dim == dim) {
            // Steady state of the sharded runner's merge: identical
            // layouts, so the join is one flat pointwise-max sweep over
            // the whole buffer (SIMD kernel, no per-row bounds checks).
            vck::join(values.data(), o.values.data(), o.values.size());
            return;
        }
        for (uint32_t t = 0; t < o.threads; ++t) {
            for (uint32_t j = 0; j < o.dim; ++j) {
                ClockValue v = o.get(t, j);
                size_t at = static_cast<size_t>(t) * dim + j;
                if (v > values[at])
                    values[at] = v;
            }
        }
    }
};

/**
 * A checkpoint of one engine's *per-thread* analysis context: the clocks
 * C_t, the begin clocks C_t^b, and the transaction nesting state — the
 * currency of the sharded runner's suspect-window confirmation replay
 * (src/shard/). Joining the seeds of every shard yields a sound
 * under-approximation of the single-engine per-thread context at a merge
 * barrier; reseeding a fresh engine from it lets the runner sequentially
 * re-check the event window since that barrier with the transaction
 * structure (depths, begin counters) intact. Per-variable and per-lock
 * clocks are deliberately absent: they are partitioned state, and a
 * missing (bottom) clock only ever makes the replay engine fire *less*,
 * never more — so a replay verdict is always real.
 */
struct EngineSeed {
    ClockFrontier clocks;       ///< C_t, one row per thread
    ClockFrontier begin_clocks; ///< C_t^b, one row per thread
    std::vector<uint32_t> txn_depth; ///< begin/end nesting per thread
    std::vector<uint64_t> txn_seq;   ///< transaction instance counters
    /** Slot-recycling state (engines running with gc on; see
     *  src/vc/README.md "Reclamation"). Rows of the clock frontiers are
     *  *slots* then, not external thread ids: slot_ext[s] is the external
     *  tid bound to slot s (kNoThread when free) and slot_free lists the
     *  free slots in allocation order. Slot maps are derived solely from
     *  replicated fork/join events, so every shard agrees on them. Empty
     *  when gc is off (rows are external tids, the pre-gc layout). */
    std::vector<ThreadId> slot_ext;
    std::vector<ThreadId> slot_free;

    /** *this := *this |_| o. Clock frontiers join pointwise; the
     *  transaction and slot state is derived from replicated events and
     *  therefore identical in every shard, so max / copy-the-larger is a
     *  checked copy. */
    void
    join(const EngineSeed& o)
    {
        clocks.join(o.clocks);
        begin_clocks.join(o.begin_clocks);
        if (o.txn_depth.size() > txn_depth.size())
            txn_depth.resize(o.txn_depth.size(), 0);
        for (size_t t = 0; t < o.txn_depth.size(); ++t)
            txn_depth[t] = std::max(txn_depth[t], o.txn_depth[t]);
        if (o.txn_seq.size() > txn_seq.size())
            txn_seq.resize(o.txn_seq.size(), 0);
        for (size_t t = 0; t < o.txn_seq.size(); ++t)
            txn_seq[t] = std::max(txn_seq[t], o.txn_seq[t]);
        if (o.slot_ext.size() > slot_ext.size())
            slot_ext = o.slot_ext;
        if (o.slot_free.size() > slot_free.size())
            slot_free = o.slot_free;
    }
};

/** Streaming conflict-serializability checker. */
class AtomicityChecker {
public:
    virtual ~AtomicityChecker() = default;

    /** Checker name for reports ("AeroDrome", "Velodrome", ...). */
    virtual std::string_view name() const = 0;

    /**
     * Process the next event of the trace.
     *
     * @param e the event
     * @param index its position in the trace (for violation reporting)
     * @return true if this event triggered a violation; the checker must
     *         not be fed further events afterwards.
     */
    virtual bool process(const Event& e, size_t index) = 0;

    /**
     * Optional capacity hint: the trace will mention at most this many
     * threads/variables/locks. Engines backed by contiguous arenas
     * (ClockBank) use it to size their storage once, up front, instead of
     * re-laying arenas out as ids appear mid-run. Ids beyond the hint
     * still work; this is purely a performance hint.
     */
    virtual void reserve(uint32_t /*threads*/, uint32_t /*vars*/,
                         uint32_t /*locks*/)
    {}

    /**
     * Named throughput counters (joins, comparisons, epoch hits,
     * inflations, ...) for the runner's report output. Engines override
     * this to surface their internal statistics; the default is empty.
     *
     * Engines back these with single-writer relaxed atomics
     * (support/counter.hpp), so counters() may be called from another
     * thread while the engine is still processing events.
     */
    virtual StatList counters() const { return {}; }

    /**
     * Approximate bytes of analysis state this engine holds (clock banks,
     * adaptive tables, bookkeeping vectors). Surfaced per shard through
     * ShardRunResult::shard_memory_bytes; 0 when the engine does not
     * account for itself.
     */
    virtual size_t memory_bytes() const { return 0; }

    /**
     * Toggle dead-state reclamation (clock-entry GC + thread-slot
     * recycling; src/vc/README.md "Reclamation") before the first event.
     * The process-wide default is gc_enabled_default() (AERO_GC, off
     * unless set); verdicts are bit-identical either way. Engines
     * without a reclamation path ignore the call.
     */
    virtual void set_gc(bool /*on*/) {}

    /**
     * Sharded-checking support (src/shard/README.md). An engine that
     * maintains per-thread clocks C_t can run as one shard of a
     * ShardedRunner: it must export its clock frontier and adopt a merged
     * frontier (a pointwise upper bound of every shard's C_t) between
     * events. Adoption must only *grow* clocks — it joins the merged
     * frontier in — and must invalidate any cached facts that assumed
     * C_t was unchanged (purity bits, same-epoch versions).
     *
     * Engines without per-thread clocks (the graph-based Velodrome
     * baseline) leave these unimplemented and cannot be sharded.
     */
    virtual bool supports_frontier() const { return false; }

    /**
     * True when the engine's conflict checks may consult another
     * thread's *live* clock instead of a published snapshot (the lazy
     * stale-write/stale-reader proxies of Algorithm 3). The sharded
     * runner's merge planner must then merge out every owned-access
     * clock growth of a transaction that spans shards (rule E5); eager
     * engines skip those barriers.
     */
    virtual bool uses_live_clock_proxies() const { return false; }

    /** Snapshot the per-thread clocks into `out` (resets it first). */
    virtual void
    export_frontier(ClockFrontier& out) const
    {
        out.reset(0, 0);
    }

    /** C_t := C_t |_| in[t] for every thread, creating threads the
     *  engine has not seen yet. */
    virtual void adopt_frontier(const ClockFrontier& in) { (void)in; }

    /**
     * Snapshot the per-thread analysis context (C_t, C_t^b, transaction
     * nesting) into `seed` — the replay-confirmation counterpart of
     * export_frontier. Engines that support_frontier() implement both.
     */
    virtual void
    export_seed(EngineSeed& seed) const
    {
        seed.clocks.reset(0, 0);
        seed.begin_clocks.reset(0, 0);
        seed.txn_depth.clear();
        seed.txn_seq.clear();
    }

    /**
     * Restore a (typically joined) per-thread context into a *fresh*
     * engine: grows thread state, joins the clock and begin-clock
     * frontiers in, and re-opens transactions at the recorded depths.
     * Like adopt_frontier, reseeding must invalidate any cached facts
     * that assumed the clocks were unchanged. Per-variable/per-lock
     * clocks start at bottom — sound for confirmation replay.
     */
    virtual void reseed(const EngineSeed& seed) { (void)seed; }

    /** True once a violation has been detected. */
    virtual bool has_violation() const = 0;

    /** Violation details, present iff has_violation(). */
    virtual const std::optional<Violation>& violation() const = 0;
};

/**
 * Shared base handling violation storage; subclasses call report() and
 * return its value from process().
 */
class CheckerBase : public AtomicityChecker {
public:
    bool has_violation() const override { return violation_.has_value(); }

    const std::optional<Violation>&
    violation() const override
    {
        return violation_;
    }

protected:
    /** Record a violation; returns true for convenient tail-return. */
    bool report(size_t index, ThreadId thread, std::string reason);

    std::optional<Violation> violation_;
};

} // namespace aero
