#pragma once

/**
 * @file
 * Timed checker execution with budget enforcement.
 *
 * The paper ran each analysis with a 10-hour timeout and reports "TO" where
 * Velodrome exceeded it (Table 1). The runner reproduces those semantics at
 * laptop scale: a wall-clock budget checked every `check_interval` events.
 */

#include <cstdint>

#include "analysis/checker.hpp"
#include "trace/trace.hpp"

namespace aero {

/** Budget for one checker run. */
struct RunBudget {
    /** Wall-clock limit in seconds; <= 0 means unlimited. */
    double max_seconds = 0;
    /** How often (in events) to poll the clock. */
    uint64_t check_interval = 65536;
};

/** Outcome of streaming one trace through one checker. */
struct RunResult {
    /** True if the checker declared a conflict-serializability violation. */
    bool violation = false;
    /** True if the budget expired before the trace was exhausted. */
    bool timed_out = false;
    /** Events consumed (including the violating event, if any). */
    uint64_t events_processed = 0;
    /** Wall-clock seconds spent inside the checker loop. */
    double seconds = 0;
    /** Violation evidence when violation is true. */
    std::optional<Violation> details;
    /** The checker's named statistic counters, captured after the run
     *  (epoch hits, inflations, joins, ... — see counters()). */
    StatList counters;

    /** Paper-style verdict cell: "x" (violation) / "ok" / "TO". */
    const char*
    verdict() const
    {
        if (timed_out)
            return "TO";
        return violation ? "x" : "ok";
    }
};

/** Stream `trace` through `checker` under `budget`. */
RunResult run_checker(AtomicityChecker& checker, const Trace& trace,
                      const RunBudget& budget = {});

class EventSource;

/**
 * Pull events from `source` through `checker` under `budget` — the
 * constant-memory path for logs too large to materialize.
 */
RunResult run_checker_stream(AtomicityChecker& checker, EventSource& source,
                             const RunBudget& budget = {});

} // namespace aero
