#pragma once

/**
 * @file
 * Timed checker execution with budget enforcement.
 *
 * The paper ran each analysis with a 10-hour timeout and reports "TO" where
 * Velodrome exceeded it (Table 1). The runner reproduces those semantics at
 * laptop scale: a wall-clock budget checked every `check_interval` events.
 *
 * Every run ends in a structured RunStatus — ok, violation, timeout,
 * degraded (a recovery path lost exactness), stream_error (corrupt
 * input), or internal_error (a contained panic / resource-cap breach) —
 * never a hang or a torn result. aerocheck maps these to distinct exit
 * codes.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/checker.hpp"
#include "trace/stream_error.hpp"
#include "trace/trace.hpp"

namespace aero {

/** Budget for one checker run. */
struct RunBudget {
    /** Wall-clock limit in seconds; <= 0 means unlimited. */
    double max_seconds = 0;
    /** Cap on the checker's reported memory_bytes(), polled at
     *  check_interval; 0 means uncapped. A breach ends the run with
     *  RunStatus::kInternalError rather than an OOM kill. */
    uint64_t max_memory_bytes = 0;
    /** How often (in events) to poll the clock / memory. */
    uint64_t check_interval = 65536;
};

/** How a run ended. Ordered by reporting priority (status() below). */
enum class RunStatus : uint8_t {
    kOk = 0,
    kViolation,     ///< definitive: a real violation was found
    kTimeout,       ///< budget expired mid-trace
    kDegraded,      ///< finished, but a recovery path lost exactness
    kStreamError,   ///< corrupt input ended the run (strict mode)
    kInternalError, ///< contained panic / resource cap; result unusable
};

const char* run_status_name(RunStatus status);

/** Outcome of streaming one trace through one checker. */
struct RunResult {
    /** True if the checker declared a conflict-serializability violation. */
    bool violation = false;
    /** True if the budget expired before the trace was exhausted. */
    bool timed_out = false;
    /** True when a robustness path (worker recovery, resync, window
     *  loss) completed the run without an exactness guarantee: a
     *  reported violation is still real, but "no violation" is no longer
     *  a proof. degraded_reason says why. */
    bool degraded = false;
    std::string degraded_reason;
    /** Structured cause when corrupt input ended the run (strict mode). */
    std::optional<StreamError> stream_error;
    /** Corrupt records skipped by a resync-mode source (degrades the
     *  verdict without ending the run). */
    uint64_t stream_errors_recovered = 0;
    /** Contained internal failure (panic routed through
     *  throwing_panic_handler, memory-cap breach). */
    std::string internal_error;
    /** Events consumed (including the violating event, if any). */
    uint64_t events_processed = 0;
    /** Wall-clock seconds spent inside the checker loop. */
    double seconds = 0;
    /** Violation evidence when violation is true. */
    std::optional<Violation> details;
    /** The checker's named statistic counters, captured after the run
     *  (epoch hits, inflations, joins, ... — see counters()). */
    StatList counters;

    /**
     * Collapse the flags into one status. A found violation dominates
     * everything (it is definitive evidence no failure can retract);
     * then the reasons the run is *not* a proof of serializability, most
     * specific first.
     */
    RunStatus
    status() const
    {
        if (violation)
            return RunStatus::kViolation;
        if (!internal_error.empty())
            return RunStatus::kInternalError;
        if (stream_error)
            return RunStatus::kStreamError;
        if (timed_out)
            return RunStatus::kTimeout;
        if (degraded || stream_errors_recovered > 0)
            return RunStatus::kDegraded;
        return RunStatus::kOk;
    }

    /** Paper-style verdict cell: "x" (violation) / "ok" / "TO". */
    const char*
    verdict() const
    {
        if (timed_out)
            return "TO";
        return violation ? "x" : "ok";
    }
};

/** True when pre-sizing engine state for these dimensions is sane: the
 *  products an arena-backed engine allocates for stay modest. Corrupt
 *  headers can otherwise turn reserve() into a multi-GB allocation; an
 *  engine that is never pre-sized simply grows on demand. */
bool reserve_hint_sane(uint32_t threads, uint32_t vars, uint32_t locks);

/** Stream `trace` through `checker` under `budget`. */
RunResult run_checker(AtomicityChecker& checker, const Trace& trace,
                      const RunBudget& budget = {});

class EventSource;

/**
 * Pull events from `source` through `checker` under `budget` — the
 * constant-memory path for logs too large to materialize. Strict-mode
 * stream corruption and contained panics end the run with the matching
 * RunStatus instead of propagating.
 *
 * Events are pulled in blocks of `block` via EventSource::next_n so
 * block-decoding sources (MappedBinaryEventSource) amortize per-event
 * overhead; 0 resolves through AERO_INGEST_BLOCK to the default
 * (resolve_ingest_block). Budget polls fire on the first event boundary
 * at-or-after each check_interval regardless of the block size, so a
 * huge block cannot blow past max_seconds.
 */
RunResult run_checker_stream(AtomicityChecker& checker, EventSource& source,
                             const RunBudget& budget = {},
                             size_t block = 0);

} // namespace aero
