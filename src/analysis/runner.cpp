#include "analysis/runner.hpp"

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "trace/stream.hpp"

namespace aero {

namespace {

/** Memory-cap poll shared by both runner loops. @return true when the
 *  run must stop (internal_error set). */
bool
memory_breached(AtomicityChecker& checker, const RunBudget& budget,
                RunResult& result)
{
    const bool fault_armed =
        FaultInjector::instance().armed_for(FaultSite::kAlloc);
    if (budget.max_memory_bytes == 0 && !fault_armed)
        return false;
    const uint64_t bytes = checker.memory_bytes();
    if (fault_armed && FaultInjector::instance().alloc_breach(bytes)) {
        result.internal_error =
            "memory cap breached (injected) at " + std::to_string(bytes) +
            " bytes";
        return true;
    }
    if (budget.max_memory_bytes != 0 && bytes > budget.max_memory_bytes) {
        result.internal_error =
            "memory cap breached: " + std::to_string(bytes) + " > " +
            std::to_string(budget.max_memory_bytes) + " bytes";
        return true;
    }
    return false;
}

} // namespace

const char*
run_status_name(RunStatus status)
{
    switch (status) {
      case RunStatus::kOk:
        return "ok";
      case RunStatus::kViolation:
        return "violation";
      case RunStatus::kTimeout:
        return "timeout";
      case RunStatus::kDegraded:
        return "degraded";
      case RunStatus::kStreamError:
        return "stream-error";
      case RunStatus::kInternalError:
        return "internal-error";
    }
    return "?";
}

bool
reserve_hint_sane(uint32_t threads, uint32_t vars, uint32_t locks)
{
    // Engines allocate per-thread clock banks over each id space; gate on
    // the products (and a generous thread cap — thread count multiplies
    // everything, including the frontier itself).
    constexpr uint64_t kMaxProduct = 1ull << 28;
    constexpr uint64_t kMaxThreads = 1u << 12;
    const uint64_t t = threads;
    return t <= kMaxThreads && t * vars <= kMaxProduct &&
           t * locks <= kMaxProduct && t * t <= kMaxProduct;
}

RunResult
run_checker(AtomicityChecker& checker, const Trace& trace,
            const RunBudget& budget)
{
    RunResult result;
    Stopwatch watch;
    const auto& events = trace.events();
    const bool limited = budget.max_seconds > 0;

    // The trace knows its dimensions up front; let arena-backed engines
    // size their clock banks once instead of re-laying them out as new
    // thread/var/lock ids appear inside the timed loop.
    if (reserve_hint_sane(trace.num_threads(), trace.num_vars(),
                          trace.num_locks()))
        checker.reserve(trace.num_threads(), trace.num_vars(),
                        trace.num_locks());

    PanicContextScope panic_scope;
    try {
        for (size_t i = 0; i < events.size(); ++i) {
            if ((i % budget.check_interval) == 0) {
                if (limited &&
                    watch.elapsed_seconds() > budget.max_seconds) {
                    result.timed_out = true;
                    break;
                }
                if (memory_breached(checker, budget, result))
                    break;
            }
            panic_scope.set_index(i);
            ++result.events_processed;
            if (checker.process(events[i], i)) {
                result.violation = true;
                break;
            }
        }
    } catch (const InternalError& e) {
        result.internal_error = e.what(); // contained panic
    }
    result.seconds = watch.elapsed_seconds();
    result.details = checker.violation();
    result.counters = checker.counters();
    return result;
}

RunResult
run_checker_stream(AtomicityChecker& checker, EventSource& source,
                   const RunBudget& budget, size_t block)
{
    RunResult result;
    Stopwatch watch;
    const bool limited = budget.max_seconds > 0;
    block = resolve_ingest_block(block);

    // Sources that know the stream's metainfo dimensions up front (binary
    // headers, in-memory traces) get the same arena pre-sizing as the
    // materialized path; text sources intern incrementally and grow.
    // Header dimensions are untrusted input: implausible ones skip the
    // hint rather than turn into a giant allocation.
    uint32_t threads = 0, vars = 0, locks = 0;
    if (source.dimensions(threads, vars, locks) &&
        reserve_hint_sane(threads, vars, locks))
        checker.reserve(threads, vars, locks);

    PanicContextScope panic_scope;
    try {
        std::vector<Event> buf(block);
        // Budget polls can no longer ride `i % interval == 0` (the loop
        // steps by blocks): poll on the first boundary at-or-after each
        // interval, including inside a block, so a block larger than the
        // interval cannot blow past max_seconds.
        uint64_t next_poll = 0;
        bool stop = false;
        size_t i = 0;
        while (!stop) {
            const size_t got = source.next_n(buf.data(), block);
            if (got == 0)
                break;
            for (size_t j = 0; j < got; ++j, ++i) {
                if (i >= next_poll) {
                    next_poll = i + budget.check_interval;
                    if (limited &&
                        watch.elapsed_seconds() > budget.max_seconds) {
                        result.timed_out = true;
                        stop = true;
                        break;
                    }
                    if (memory_breached(checker, budget, result)) {
                        stop = true;
                        break;
                    }
                }
                panic_scope.set_index(i);
                ++result.events_processed;
                if (checker.process(buf[j], i)) {
                    result.violation = true;
                    stop = true;
                    break;
                }
            }
        }
    } catch (const StreamCorruption& e) {
        result.stream_error = e.error(); // structured; run ends here
    } catch (const InternalError& e) {
        result.internal_error = e.what(); // contained panic
    }
    result.stream_errors_recovered = source.recovered_error_count();
    result.seconds = watch.elapsed_seconds();
    result.details = checker.violation();
    result.counters = checker.counters();
    return result;
}

} // namespace aero
