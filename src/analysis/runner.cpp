#include "analysis/runner.hpp"

#include "support/stopwatch.hpp"
#include "trace/stream.hpp"

namespace aero {

RunResult
run_checker(AtomicityChecker& checker, const Trace& trace,
            const RunBudget& budget)
{
    RunResult result;
    Stopwatch watch;
    const auto& events = trace.events();
    const bool limited = budget.max_seconds > 0;

    // The trace knows its dimensions up front; let arena-backed engines
    // size their clock banks once instead of re-laying them out as new
    // thread/var/lock ids appear inside the timed loop.
    checker.reserve(trace.num_threads(), trace.num_vars(),
                    trace.num_locks());

    for (size_t i = 0; i < events.size(); ++i) {
        if (limited && (i % budget.check_interval) == 0 &&
            watch.elapsed_seconds() > budget.max_seconds) {
            result.timed_out = true;
            break;
        }
        ++result.events_processed;
        if (checker.process(events[i], i)) {
            result.violation = true;
            break;
        }
    }
    result.seconds = watch.elapsed_seconds();
    result.details = checker.violation();
    result.counters = checker.counters();
    return result;
}

RunResult
run_checker_stream(AtomicityChecker& checker, EventSource& source,
                   const RunBudget& budget)
{
    RunResult result;
    Stopwatch watch;
    const bool limited = budget.max_seconds > 0;

    // Sources that know the stream's metainfo dimensions up front (binary
    // headers, in-memory traces) get the same arena pre-sizing as the
    // materialized path; text sources intern incrementally and grow.
    uint32_t threads = 0, vars = 0, locks = 0;
    if (source.dimensions(threads, vars, locks))
        checker.reserve(threads, vars, locks);

    Event e;
    for (size_t i = 0; source.next(e); ++i) {
        if (limited && (i % budget.check_interval) == 0 &&
            watch.elapsed_seconds() > budget.max_seconds) {
            result.timed_out = true;
            break;
        }
        ++result.events_processed;
        if (checker.process(e, i)) {
            result.violation = true;
            break;
        }
    }
    result.seconds = watch.elapsed_seconds();
    result.details = checker.violation();
    result.counters = checker.counters();
    return result;
}

} // namespace aero
