#include "gen/bench_models.hpp"

#include <algorithm>

#include "gen/patterns.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace aero::gen {

namespace {

/**
 * Star model (see patterns.hpp) with producer lock traffic enabled so the
 * generated traces also exercise the lock clocks.
 */
Trace
build_star(const BenchModel& m)
{
    StarOptions opts;
    uint32_t workers = m.threads > 2 ? m.threads - 2 : 2;
    opts.producers = std::max<uint32_t>(1, workers / 2);
    opts.consumers = std::max<uint32_t>(1, workers - opts.producers);
    opts.producer_lock = true;
    opts.violation_at_end = m.violation;

    // Events per round: producers (begin + acq + r + w + rel + end) +
    // hub reads + consumers (begin + read + end).
    uint64_t per_round = static_cast<uint64_t>(opts.producers) * 6 +
                         opts.producers +
                         static_cast<uint64_t>(opts.consumers) * 3;
    opts.rounds =
        static_cast<uint32_t>(std::max<uint64_t>(4, m.events / per_round));
    return make_star(opts);
}

/**
 * Mostly-independent transactions (per-thread variables and a per-thread
 * lock), so Velodrome's GC keeps its graph at ~#threads nodes, with an
 * optional 2-transaction ring at the very end of the trace (the paper's
 * "violation discovered late" regime with a *small* graph).
 */
Trace
build_gc_friendly(const BenchModel& m)
{
    const uint32_t accesses = 8;
    const uint64_t per_txn = accesses + 4; // begin,acq,...,rel,end
    uint64_t txns_total = std::max<uint64_t>(m.threads, m.events / per_txn);
    uint32_t txns_per_thread =
        static_cast<uint32_t>(txns_total / m.threads);

    Rng rng(m.seed);
    Trace trace;
    trace.reserve(m.events + 64);
    for (uint32_t j = 0; j < txns_per_thread; ++j) {
        for (uint32_t t = 0; t < m.threads; ++t) {
            trace.begin(t);
            trace.acquire(t, t);
            for (uint32_t a = 0; a < accesses; ++a) {
                // Thread-private variable pool.
                uint32_t x = m.threads * 2 + t * 64 +
                             static_cast<uint32_t>(rng.next_below(64));
                if (rng.next_bool(0.4))
                    trace.write(t, x);
                else
                    trace.read(t, x);
            }
            trace.release(t, t);
            trace.end(t);
        }
    }
    if (m.violation)
        append_ring(trace, 2, 0, /*first_var=*/0);
    return trace;
}

Trace
build_naive(const BenchModel& m)
{
    NaiveSpecOptions opts;
    opts.threads = m.threads;
    opts.events_per_thread =
        static_cast<uint32_t>(m.events / std::max<uint32_t>(1, m.threads));
    opts.shared_vars = 64;
    opts.private_vars_per_thread = 256;
    // A single thread (fop) has no conflicts; multiple threads close a
    // cycle between the mega-transactions within the first few chunks.
    opts.shared_fraction = 0.05;
    opts.write_fraction = 0.3;
    // Conflicts appear only in the trace's tail: the verdict still closes
    // "early" in graph terms (the graph holds just the #threads
    // whole-thread transactions), but the measured time covers the whole
    // prefix, as in the paper's Table 2 runs.
    opts.conflict_position = 0.9;
    opts.seed = m.seed;
    return make_naive_spec(opts);
}

Trace
build_philo(const BenchModel& m)
{
    const uint64_t per_meal = 9;
    uint32_t meals = static_cast<uint32_t>(
        std::max<uint64_t>(1, m.events / (per_meal * m.threads)));
    return make_philosophers(m.threads, meals);
}

BenchModel
row(std::string name, ModelKind kind, bool violation, uint32_t threads,
    uint64_t events, std::string paper_events, std::string paper_atomic,
    std::string paper_velo, std::string paper_aero,
    std::string paper_speedup, uint64_t seed)
{
    BenchModel m;
    m.name = std::move(name);
    m.kind = kind;
    m.violation = violation;
    m.threads = threads;
    m.events = events;
    m.paper_events = std::move(paper_events);
    m.paper_atomic = std::move(paper_atomic);
    m.paper_velodrome = std::move(paper_velo);
    m.paper_aerodrome = std::move(paper_aero);
    m.paper_speedup = std::move(paper_speedup);
    m.seed = seed;
    return m;
}

} // namespace

Trace
build_model_trace(const BenchModel& model)
{
    switch (model.kind) {
      case ModelKind::kStar:
        return build_star(model);
      case ModelKind::kGcFriendly:
        return build_gc_friendly(model);
      case ModelKind::kNaive:
        return build_naive(model);
      case ModelKind::kPhilo:
        return build_philo(model);
    }
    fatal("unknown model kind");
}

Trace
build_model_trace_scaled(const BenchModel& model, double scale)
{
    BenchModel scaled = model;
    scaled.events = static_cast<uint64_t>(
        std::max(1.0, static_cast<double>(model.events) * scale));
    return build_model_trace(scaled);
}

const std::vector<BenchModel>&
table1_models()
{
    static const std::vector<BenchModel> kModels = {
        row("avrora", ModelKind::kStar, true, 7, 2'000'000,
            "2.4B", "x", "TO", "1.5", "> 24000", 101),
        row("elevator", ModelKind::kStar, false, 5, 280'000,
            "280K", "ok", "162", "1.7", "97", 102),
        row("hedc", ModelKind::kNaive, true, 7, 10'000,
            "9.8K", "x", "0.07", "0.06", "1.16", 103),
        row("luindex", ModelKind::kGcFriendly, true, 3, 1'000'000,
            "570M", "x", "581", "674", "0.86", 104),
        row("lusearch", ModelKind::kStar, true, 14, 2'000'000,
            "2.0B", "x", "TO", "5.5", "> 6545", 105),
        row("moldyn", ModelKind::kStar, true, 4, 1'500'000,
            "1.7B", "x", "TO", "54.9", "> 650", 106),
        row("montecarlo", ModelKind::kStar, true, 4, 1'000'000,
            "494M", "x", "TO", "0.75", "> 48000", 107),
        row("philo", ModelKind::kPhilo, false, 6, 613,
            "613", "ok", "0.02", "0.02", "1", 108),
        row("pmd", ModelKind::kGcFriendly, true, 13, 800'000,
            "367M", "x", "3.1", "3.8", "0.82", 109),
        row("raytracer", ModelKind::kStar, false, 4, 2'000'000,
            "2.8B", "ok", "TO", "55m40s", "> 10.7", 110),
        row("sor", ModelKind::kGcFriendly, true, 4, 1'000'000,
            "608M", "x", "6.9", "9.6", "0.72", 111),
        row("sunflow", ModelKind::kStar, true, 16, 500'000,
            "16.8M", "x", "67.9", "0.65", "104.5", 112),
        row("tsp", ModelKind::kGcFriendly, true, 9, 800'000,
            "312M", "x", "4.2", "5.7", "0.73", 113),
        row("xalan", ModelKind::kGcFriendly, true, 13, 1'000'000,
            "1.0B", "x", "1.6", "2.0", "0.8", 114),
    };
    return kModels;
}

const std::vector<BenchModel>&
table2_models()
{
    static const std::vector<BenchModel> kModels = {
        row("batik", ModelKind::kNaive, true, 7, 500'000,
            "186M", "x", "52.7", "65.5", "0.81", 201),
        row("crypt", ModelKind::kNaive, true, 7, 500'000,
            "126M", "x", "92.1", "104", "0.88", 202),
        row("fop", ModelKind::kNaive, false, 1, 500'000,
            "96M", "ok", "88.3", "92.5", "0.95", 203),
        row("lufact", ModelKind::kNaive, true, 4, 500'000,
            "135M", "x", "2.4", "2.9", "0.82", 204),
        row("series", ModelKind::kNaive, true, 4, 300'000,
            "40M", "x", "61.0", "15.3", "3.98", 205),
        row("sparsematmult", ModelKind::kNaive, true, 4, 700'000,
            "726M", "x", "1210", "1197", "1.01", 206),
        row("tomcat", ModelKind::kNaive, true, 4, 700'000,
            "726M", "x", "3.4", "4.5", "0.75", 207),
    };
    return kModels;
}

} // namespace aero::gen
