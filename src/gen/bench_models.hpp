#pragma once

/**
 * @file
 * Synthetic stand-ins for the paper's benchmark programs (Tables 1 and 2).
 *
 * The paper logs traces from Java programs (DaCapo, Java Grande, and
 * microbenchmarks) with RoadRunner; those traces are not reproducible
 * offline, so each row is modelled by a generated trace that preserves the
 * characteristics the two algorithms are sensitive to:
 *
 *  - whether the transaction graph stays small (Velodrome's GC collects
 *    almost everything -> Velodrome competitive) or grows without bound
 *    with ever-growing successor sets (Velodrome superlinear -> "TO");
 *  - whether and *where* a conflict-serializability violation appears
 *    (early for Table 2's naive whole-thread transactions; late or never
 *    for Table 1's realistic specifications);
 *  - thread count and transaction granularity.
 *
 * Event counts are scaled from the paper's billions to laptop-scale
 * millions; the harness reports the paper's reference numbers next to the
 * measured ones so the *shape* (who wins, roughly by how much) can be
 * compared directly.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace aero::gen {

/** Workload family used to model a benchmark row. */
enum class ModelKind {
    /** Hub/producer/consumer star: Velodrome's reachability checks grow
     *  with the trace (Table 1's TO rows and big-speedup rows). */
    kStar,
    /** Mostly-independent transactions (GC keeps Velodrome's graph tiny)
     *  with an optional violation near the end of the trace. */
    kGcFriendly,
    /** Whole-thread mega-transactions with shared traffic: the naive
     *  specification regime of Table 2 (violations close early). */
    kNaive,
    /** Dining philosophers (tiny, lock-heavy, serializable). */
    kPhilo,
};

/** One benchmark-model row. */
struct BenchModel {
    std::string name;  ///< paper benchmark name (e.g. "avrora")
    ModelKind kind;
    bool violation;    ///< expected verdict of the generated trace
    uint32_t threads;  ///< worker threads in the generated workload
    uint64_t events;   ///< approximate generated event count

    // Paper reference values (Tables 1-2) for side-by-side reporting.
    std::string paper_events;
    std::string paper_atomic;    ///< "x" (violation) or "ok"
    std::string paper_velodrome; ///< seconds or "TO"
    std::string paper_aerodrome;
    std::string paper_speedup;

    uint64_t seed = 1;
};

/** Build the generated trace for one model row. */
Trace build_model_trace(const BenchModel& model);

/** Rows of Table 1 (realistic specifications from DoubleChecker). */
const std::vector<BenchModel>& table1_models();

/** Rows of Table 2 (naive whole-thread specifications). */
const std::vector<BenchModel>& table2_models();

/**
 * Scale factor applied to every model's event count; lets the bench
 * binaries offer --scale for quick smoke runs vs. full runs.
 */
Trace build_model_trace_scaled(const BenchModel& model, double scale);

} // namespace aero::gen
