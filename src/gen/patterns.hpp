#pragma once

/**
 * @file
 * Deterministic structured workload generators.
 *
 * Each generator builds a well-formed trace with a known serializability
 * verdict and a known *shape* of the transaction graph, so benchmarks can
 * dial in exactly the regime they want:
 *
 *  - ring:        guaranteed violation (cycle of k transactions);
 *  - pipeline:    serializable wavefront; every transaction has incoming
 *                 edges (defeats Velodrome's GC) but reachability checks
 *                 stay cheap;
 *  - star:        serializable producer/hub/consumer pattern in which the
 *                 hub transaction accumulates an ever-growing set of
 *                 successors; each new incoming edge makes Velodrome
 *                 re-traverse them all — the super-linear regime of
 *                 Table 1;
 *  - independent: threads touch disjoint variables; trivially serializable
 *                 (pure checker-throughput measurement);
 *  - reader mesh: one writer, many repeated readers; stresses the read
 *                 clocks that Algorithms 2/3 optimize;
 *  - naive spec:  each thread is one whole-lifetime transaction (the
 *                 paper's "all methods atomic" baseline of Table 2) with
 *                 shared-variable traffic that closes a cycle early.
 */

#include <cstdint>

#include "trace/trace.hpp"

namespace aero::gen {

/** Ring of `k` >= 2 transactions, each ordered before the next, closing a
 *  cycle: T_i writes x_i, then reads x_{(i+1) mod k}. Appends to `trace`
 *  using threads [first_thread, first_thread + k) and fresh variables
 *  starting at `first_var`. */
void append_ring(Trace& trace, uint32_t k, uint32_t first_thread,
                 uint32_t first_var);

/** Standalone ring trace (guaranteed violation). */
Trace make_ring(uint32_t k);

/** Serializable wavefront: `threads` x `rounds` transactions; round j of
 *  thread i reads thread i-1's round-j output and writes its own. */
Trace make_pipeline(uint32_t threads, uint32_t rounds);

/** Parameters for the star (hub) workload. */
struct StarOptions {
    uint32_t producers = 4;
    uint32_t consumers = 4;
    uint32_t rounds = 1000;
    /** Inject a ring violation after the star phase completes. */
    bool violation_at_end = false;
    /** Reads per consumer transaction. */
    uint32_t consumer_batch = 1;
    /** Serialize producer publishes through lock 0 (adds rel->acq edges
     *  between successive producer transactions; still acyclic). */
    bool producer_lock = false;
};

/**
 * Star workload: the regime in which Velodrome's per-edge reachability
 * checks grow with the trace while its garbage collector cannot reclaim
 * anything.
 *
 * Thread 0 ("hub") holds one long transaction that writes y once and then
 * keeps reading fresh producer outputs; every such read adds a *new*
 * incoming edge to the hub node, triggering a reachability sweep over the
 * hub's successors. Consumer transactions read y, so the successor set
 * grows every round — and because their incoming edge comes from the
 * still-active hub, GC can never delete them. Thread 1 ("feeder") holds a
 * second long transaction whose output z every producer reads first; that
 * live incoming edge keeps producer transactions uncollectible too, so
 * their edges into the hub are real. Producers write a fresh variable
 * each round (re-writing one the hub already read would order the hub
 * before the producer and close a genuine cycle).
 *
 * The result is serializable (edges flow feeder -> producers -> hub ->
 * consumers) unless violation_at_end appends a 2-transaction ring.
 *
 * Thread layout: 0 = hub, 1 = feeder, 2..1+producers = producers, then
 * consumers.
 */
Trace make_star(const StarOptions& opts);

/** Disjoint-variable workload: `threads` threads, `txns` transactions
 *  each, `accesses` read/write events per transaction, all thread-local. */
Trace make_independent(uint32_t threads, uint32_t txns, uint32_t accesses);

/** One writer publishes x; `threads`-1 readers read it `rounds` times in
 *  small transactions. Serializable. */
Trace make_reader_mesh(uint32_t threads, uint32_t rounds);

/** Parameters for the naive-specification workload (Table 2 regime). */
struct NaiveSpecOptions {
    uint32_t threads = 4;
    uint32_t events_per_thread = 10000;
    uint32_t shared_vars = 64;
    uint32_t private_vars_per_thread = 64;
    /** Fraction of accesses that touch shared variables. */
    double shared_fraction = 0.05;
    /** Fraction of accesses that are writes. */
    double write_fraction = 0.3;
    uint64_t seed = 1;
    /** Interleaving chunk: events run per thread before switching. */
    uint32_t chunk = 16;
    /**
     * Fraction of the trace after which shared accesses start. Until that
     * point every thread works on private variables, so the cycle between
     * the whole-thread transactions closes in the trace's tail — the
     * measured runtimes then reflect per-event throughput over the whole
     * prefix while Velodrome's graph still never exceeds #threads nodes
     * (the paper's Table 2 regime).
     */
    double conflict_position = 0.0;
};

/**
 * Whole-thread transactions with light shared traffic: with >= 2 threads
 * writing shared variables, a cycle between the mega-transactions closes
 * within the first few chunks — the paper's "violation detected early in
 * the trace" regime where Velodrome's graph stays tiny.
 */
Trace make_naive_spec(const NaiveSpecOptions& opts);

/** Dining philosophers with global lock order (deadlock-free variant),
 *  matching the paper's `philo` benchmark scale: tiny and serializable. */
Trace make_philosophers(uint32_t philosophers, uint32_t meals);

/** Parameters for the fork/join divide-and-conquer workload. */
struct ForkJoinTreeOptions {
    /** Tree depth; the workload uses 2^depth - 1 threads. */
    uint32_t depth = 3;
    /** Transactions each leaf runs on its private variable. */
    uint32_t leaf_txns = 8;
    /** Parent reads children's results inside a transaction after
     *  joining them (serializable), or *before* joining while they may
     *  still be writing — racing the combine step and closing a cycle
     *  under this generator's schedule. */
    bool combine_before_join = false;
};

/**
 * Divide-and-conquer fork/join tree: every internal node forks two
 * children, the children compute into private accumulators, and the
 * parent combines their results. Exercises the fork/join clock paths and
 * Algorithm 3's "parent transaction alive" GC test at depth. The
 * combine_before_join variant makes the parent's combining transaction
 * read a child's accumulator between the child's writes, which orders
 * the two transactions both ways — a violation.
 */
Trace make_fork_join_tree(const ForkJoinTreeOptions& opts);

} // namespace aero::gen
