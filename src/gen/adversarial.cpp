#include "gen/adversarial.hpp"

namespace aero::gen {

namespace {

/** Chain variable i's id: consecutive (alternating shards under modulo
 *  placement) or strided by 8 (one shard for any shard count in
 *  {2, 4, 8} — the same-shard control). */
VarId
chain_var(const CrossShardAdversaryOptions& opts, uint32_t i)
{
    return opts.same_shard ? i * 8 : i;
}

} // namespace

Trace
make_cross_shard_adversary(const CrossShardAdversaryOptions& opts)
{
    const uint32_t hops = opts.hops ? opts.hops : 1;
    const ThreadId victim = 0;
    const ThreadId pad = hops + 1; // carriers are threads 1..hops
    const LockId l0 = 0;

    Trace t;
    // Pin the variable id space up front so placement is independent of
    // which family variant touches which variable first.
    t.vars().ensure(chain_var(opts, hops) + 1);

    // Padding: replicated-only events shifting the chain relative to
    // periodic merge boundaries. Alternating begin/begin/... then
    // end/end/... keeps the nesting well-formed at any offset; the pad
    // thread owns no variables or locks, so it adds no orderings.
    uint32_t pad_depth = 0;
    for (uint32_t i = 0; i < opts.offset; ++i) {
        if (pad_depth == 0 || (i % 2) == 0) {
            t.begin(pad);
            ++pad_depth;
        } else {
            t.end(pad);
            --pad_depth;
        }
    }

    // Victim opens its transaction and publishes into v0 (or a lock).
    t.begin(victim);
    t.write(victim, chain_var(opts, 0));
    if (opts.lock_carrier) {
        // The first hop rides a lock handoff: the release (replicated)
        // publishes the victim's in-transaction clock to every shard.
        t.acquire(victim, l0);
        t.release(victim, l0);
    }
    if (opts.serializable)
        t.end(victim); // control: the cycle never closes

    // Carrier chain: thread i picks the ordering up from v_{i-1} (or the
    // lock) and republishes it into v_i — each hop on a different shard.
    for (uint32_t i = 1; i <= hops; ++i) {
        const ThreadId c = i;
        t.begin(c);
        if (opts.lock_carrier && i == 1)
            t.acquire(c, l0);
        else
            t.read(c, chain_var(opts, i - 1));
        t.write(c, chain_var(opts, i));
        if (!opts.open_carriers)
            t.end(c);
    }

    // The closing access: the single engine fires here (victim's open
    // transaction is ordered before the last write it now observes).
    if (opts.serializable)
        t.begin(victim);
    if (opts.close_by_write)
        t.write(victim, chain_var(opts, hops));
    else
        t.read(victim, chain_var(opts, hops));

    // Unwind: carriers close, the victim optionally re-touches (a late
    // detection point for lagging modes), everyone ends.
    if (opts.open_carriers) {
        for (uint32_t i = 1; i <= hops; ++i)
            t.end(i);
    }
    if (opts.retouch && !opts.serializable)
        t.read(victim, chain_var(opts, hops));
    t.end(victim);
    while (pad_depth-- > 0)
        t.end(pad);
    return t;
}

} // namespace aero::gen
