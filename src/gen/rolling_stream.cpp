#include "gen/rolling_stream.hpp"

namespace aero::gen {

namespace {

/** Main (forking/joining) thread of the stream. */
constexpr ThreadId kMain = 0;

} // namespace

RollingStreamSource::RollingStreamSource(const RollingStreamOptions& opts)
    : opts_(opts), rng_(opts.seed)
{
    if (opts_.workers == 0)
        opts_.workers = 1;
    if (opts_.locks == 0)
        opts_.locks = 1;
    // The hot window maps each draw onto its stripe by rounding within
    // the ring, so the ring size must be a whole number of stripes and
    // at least one window wide.
    if (opts_.vars < opts_.hot_window)
        opts_.vars = opts_.hot_window;
    if (opts_.vars % opts_.locks != 0)
        opts_.vars += opts_.locks - opts_.vars % opts_.locks;
    if (opts_.hot_window == 0)
        opts_.hot_window = opts_.locks;

    next_tid_ = kMain + 1;
    for (uint32_t i = 0; i < opts_.workers; ++i) {
        ThreadId w = next_tid_++;
        pending_.push_back({kMain, w, Op::kFork});
        live_.push_back(w);
    }
    next_churn_ = opts_.churn_every;
    next_drift_ = opts_.drift_every;
}

void
RollingStreamSource::emit_txn()
{
    ThreadId w = live_[rr_ % live_.size()];
    rr_ = (rr_ + 1) % static_cast<uint32_t>(live_.size());

    // One strict-2PL transaction: every access falls in the hot window
    // AND on the chosen stripe, so the single stripe lock guards every
    // conflict this transaction can have.
    const LockId l = static_cast<LockId>(rng_.next_below(opts_.locks));
    pending_.push_back({w, l, Op::kAcquire});
    pending_.push_back({w, 0, Op::kBegin});
    for (uint32_t i = 0; i < opts_.txn_accesses; ++i) {
        uint32_t off = static_cast<uint32_t>(
            rng_.next_below(opts_.hot_window));
        uint32_t v = (hot_base_ + off) % opts_.vars;
        v = v - v % opts_.locks + l; // snap onto the stripe
        bool write = rng_.next_below(100) < opts_.write_pct;
        pending_.push_back({w, v, write ? Op::kWrite : Op::kRead});
    }
    pending_.push_back({w, 0, Op::kEnd});
    pending_.push_back({w, l, Op::kRelease});
}

void
RollingStreamSource::emit_churn()
{
    // Retire the oldest worker (it is between transactions — emit_txn
    // produces whole transactions) and fork a replacement with a fresh
    // external id. Live thread count is constant; the id space is not.
    ThreadId oldest = live_.front();
    live_.pop_front();
    ThreadId fresh = next_tid_++;
    pending_.push_back({kMain, oldest, Op::kJoin});
    pending_.push_back({kMain, fresh, Op::kFork});
    live_.push_back(fresh);
    if (rr_ >= live_.size())
        rr_ = 0;
}

bool
RollingStreamSource::next(Event& out)
{
    if (opts_.max_events != 0 && produced_ >= opts_.max_events)
        return false;
    while (pending_.empty()) {
        if (opts_.churn_every != 0 && produced_ >= next_churn_) {
            next_churn_ += opts_.churn_every;
            emit_churn();
            continue;
        }
        if (opts_.drift_every != 0 && produced_ >= next_drift_) {
            next_drift_ += opts_.drift_every;
            hot_base_ = (hot_base_ + opts_.hot_window / 2 + 1) % opts_.vars;
            // The slide changes no state by itself; the next transactions
            // simply draw from the moved window.
        }
        emit_txn();
    }
    out = pending_.front();
    pending_.pop_front();
    ++produced_;
    return true;
}

} // namespace aero::gen
