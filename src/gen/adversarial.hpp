#pragma once

/**
 * @file
 * Adversarial cross-shard trace families — directed inputs constructed to
 * defeat naive epoch merging in the sharded runner (src/shard/).
 *
 * Every family builds a violating (or, for controls, serializable) trace
 * whose ordering chain hops between shard-owned variables while the
 * carrier transactions are still open, so under periodic-only frontier
 * merges the closing check consults a stale clock: the violation fires
 * late or — when nothing re-touches the affected state — not at all.
 * The exact epoch mode (divergence barriers + suspect replay) must
 * reproduce the single-engine verdict on all of them, index for index;
 * the parity suite sweeps these families for all four AeroDrome engines.
 *
 * Shape knobs (the ISSUE's parameter axes):
 *   - hop count: length of the carrier chain between the victim's write
 *     and the closing access;
 *   - shard placement: variables are used in creation order, so under
 *     modulo placement the chain's hops alternate shards (or, for the
 *     same-shard control, collapse onto one);
 *   - offset: replicated padding events shifting the chain relative to
 *     periodic merge boundaries;
 *   - open-transaction carriers: whether intermediaries hold their
 *     transactions open across the chain (the case end-event repair
 *     cannot fix).
 */

#include <cstdint>

#include "trace/trace.hpp"

namespace aero::gen {

/** Parameters of one adversarial cross-shard trace. */
struct CrossShardAdversaryOptions {
    /** Carrier threads between the victim's write and the closing
     *  access; the chain uses hops + 1 variables v0..v_hops. */
    uint32_t hops = 2;
    /** Replicated (begin/end pair) padding events inserted before the
     *  chain, shifting it relative to periodic merge boundaries. */
    uint32_t offset = 0;
    /** Carriers keep their transactions open until after the closing
     *  access (defeats end-event repair); otherwise each carrier ends
     *  immediately after its hop. */
    bool open_carriers = true;
    /** Close the cycle with a write (write-vs-read/write checks) instead
     *  of a read (read-vs-write check). */
    bool close_by_write = false;
    /** Carry the middle hop through a lock handoff (replicated events —
     *  every shard sees it without any merge). */
    bool lock_carrier = false;
    /** After the carriers close, the victim re-touches the closing
     *  variable while its transaction is still open: a late detection
     *  point for lagging modes (without it, a lagging mode misses the
     *  violation entirely). */
    bool retouch = false;
    /** Use one variable id parity so every chain variable lands on one
     *  shard under modulo placement (control: exact in every mode). */
    bool same_shard = false;
    /** Break the cycle (victim's transaction ends before the chain):
     *  control family, serializable in every mode. */
    bool serializable = false;
};

/**
 * Build the trace. Variables are interned in chain order (v0 first), so
 * under `modulo_shard_policy` with S shards variable v_i lives on shard
 * i % S (or all on shard 0 with same_shard). The padding thread touches
 * no variables and holds no locks; it only shifts global indices.
 */
Trace make_cross_shard_adversary(const CrossShardAdversaryOptions& opts);

} // namespace aero::gen
