#include "gen/random_program.hpp"

#include "support/rng.hpp"

namespace aero::gen {

sim::Program
make_random_program(const RandomProgramOptions& opts)
{
    Rng rng(opts.seed);
    sim::Program prog;
    prog.threads.resize(opts.threads);

    auto emit_accesses = [&](sim::ThreadProgram& th, uint32_t count) {
        for (uint32_t i = 0; i < count; ++i) {
            uint32_t x =
                static_cast<uint32_t>(rng.next_below(opts.shared_vars));
            if (rng.next_bool(opts.write_fraction))
                th.write(x);
            else
                th.read(x);
        }
    };

    for (uint32_t t = 0; t < opts.threads; ++t) {
        sim::ThreadProgram& th = prog.threads[t];
        uint32_t budget = opts.steps_per_thread;
        while (budget > 0) {
            uint32_t block =
                1 + static_cast<uint32_t>(rng.next_geometric(0.6, 6));
            block = std::min(block, budget);
            budget -= block;

            bool in_txn = rng.next_bool(opts.txn_probability);
            bool locked = rng.next_bool(opts.lock_probability);
            bool nested = in_txn && rng.next_bool(opts.nest_probability);
            uint32_t l =
                static_cast<uint32_t>(rng.next_below(opts.locks));

            if (in_txn)
                th.begin();
            if (locked)
                th.acquire(l);
            if (nested)
                th.begin();
            emit_accesses(th, block);
            if (nested)
                th.end();
            if (rng.next_bool(0.3))
                th.compute();
            if (locked)
                th.release(l);
            if (in_txn)
                th.end();
        }
    }

    if (opts.fork_join && opts.threads > 1) {
        // Thread 0 forks every other thread up front and joins a random
        // subset at its end, in a fresh statement list prepended/appended.
        sim::ThreadProgram main;
        for (uint32_t t = 1; t < opts.threads; ++t)
            main.fork(t);
        for (const sim::Stmt& s : prog.threads[0].stmts)
            main.stmts.push_back(s);
        for (uint32_t t = 1; t < opts.threads; ++t) {
            if (rng.next_bool(0.7))
                main.join(t);
        }
        prog.threads[0] = std::move(main);
    }
    return prog;
}

} // namespace aero::gen
