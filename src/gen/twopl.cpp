#include "gen/twopl.hpp"

#include <algorithm>
#include <vector>

#include "support/rng.hpp"

namespace aero::gen {

sim::Program
make_twopl_program(const TwoPlOptions& opts)
{
    Rng rng(opts.seed);
    sim::Program prog;
    prog.threads.resize(opts.threads);

    // Private variables live above the shared range.
    auto private_var = [&](uint32_t t, uint32_t i) {
        return opts.shared_vars + t * 8 + (i % 8);
    };

    for (uint32_t t = 0; t < opts.threads; ++t) {
        sim::ThreadProgram& th = prog.threads[t];
        for (uint32_t j = 0; j < opts.txns_per_thread; ++j) {
            // Choose distinct variables for this transaction.
            uint32_t k = std::min(opts.vars_per_txn, opts.shared_vars);
            std::vector<uint32_t> vars;
            while (vars.size() < k) {
                uint32_t x = static_cast<uint32_t>(
                    rng.next_below(opts.shared_vars));
                if (std::find(vars.begin(), vars.end(), x) == vars.end())
                    vars.push_back(x);
            }
            // Locks guarding them, deduplicated, ascending order.
            std::vector<uint32_t> locks;
            for (uint32_t x : vars) {
                uint32_t l = x % opts.locks;
                if (std::find(locks.begin(), locks.end(), l) ==
                    locks.end()) {
                    locks.push_back(l);
                }
            }
            std::sort(locks.begin(), locks.end());

            th.begin();
            for (uint32_t l : locks)
                th.acquire(l);
            for (uint32_t a = 0; a < opts.accesses_per_var; ++a) {
                for (uint32_t x : vars) {
                    if (rng.next_bool(opts.write_fraction))
                        th.write(x);
                    else
                        th.read(x);
                }
            }
            // Strict 2PL: release only after all accesses, just before
            // the transaction end.
            for (auto it = locks.rbegin(); it != locks.rend(); ++it)
                th.release(*it);
            th.end();

            // Thread-local unary accesses between transactions: they form
            // unary transactions but conflict with nothing foreign.
            for (uint32_t i = 0; i < opts.private_accesses_between_txns;
                 ++i) {
                if (rng.next_bool(0.5))
                    th.write(private_var(t, i));
                else
                    th.read(private_var(t, i));
            }
        }
    }
    return prog;
}

} // namespace aero::gen
