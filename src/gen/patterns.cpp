#include "gen/patterns.hpp"

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace aero::gen {

void
append_ring(Trace& trace, uint32_t k, uint32_t first_thread,
            uint32_t first_var)
{
    AERO_ASSERT(k >= 2, "a ring needs at least two transactions");
    for (uint32_t i = 0; i < k; ++i)
        trace.begin(first_thread + i);
    for (uint32_t i = 0; i < k; ++i)
        trace.write(first_thread + i, first_var + i);
    for (uint32_t i = 0; i < k; ++i)
        trace.read(first_thread + i, first_var + (i + 1) % k);
    for (uint32_t i = 0; i < k; ++i)
        trace.end(first_thread + i);
}

Trace
make_ring(uint32_t k)
{
    Trace trace;
    append_ring(trace, k, 0, 0);
    return trace;
}

Trace
make_pipeline(uint32_t threads, uint32_t rounds)
{
    AERO_ASSERT(threads >= 1, "pipeline needs threads");
    Trace trace;
    trace.reserve(static_cast<size_t>(threads) * rounds * 4);
    // var(i, j) = output of thread i in round j.
    auto var = [&](uint32_t i, uint32_t j) { return j * threads + i; };
    for (uint32_t j = 0; j < rounds; ++j) {
        for (uint32_t i = 0; i < threads; ++i) {
            trace.begin(i);
            if (i > 0)
                trace.read(i, var(i - 1, j));
            trace.write(i, var(i, j));
            trace.end(i);
        }
    }
    return trace;
}

Trace
make_star(const StarOptions& opts)
{
    Trace trace;
    const uint32_t hub = 0;
    const uint32_t feeder = 1;
    const uint32_t first_producer = 2;
    const uint32_t first_consumer = 2 + opts.producers;

    // Variables: y (hub output) = 0, z (feeder output) = 1, then a fresh
    // producer output per (producer, round).
    const uint32_t y = 0;
    const uint32_t z = 1;
    auto pvar = [&](uint32_t p, uint32_t j) {
        return 2 + j * opts.producers + p;
    };

    size_t approx =
        static_cast<size_t>(opts.rounds) *
        (opts.producers * 5 +
         opts.consumers * (2 + opts.consumer_batch));
    trace.reserve(approx + 64);

    trace.begin(hub);
    trace.write(hub, y); // consumers will read this forever after
    trace.begin(feeder);
    trace.write(feeder, z); // producers will read this forever after
    for (uint32_t j = 0; j < opts.rounds; ++j) {
        // Producers publish into a fresh variable; reading z first hangs
        // a live incoming edge (feeder -> producer txn) on each of them,
        // which keeps them out of Velodrome's garbage collector.
        for (uint32_t p = 0; p < opts.producers; ++p) {
            uint32_t t = first_producer + p;
            trace.begin(t);
            if (opts.producer_lock)
                trace.acquire(t, 0);
            trace.read(t, z);
            trace.write(t, pvar(p, j));
            if (opts.producer_lock)
                trace.release(t, 0);
            trace.end(t);
        }
        // Hub consumes them: each read adds a fresh edge producer -> hub.
        for (uint32_t p = 0; p < opts.producers; ++p)
            trace.read(hub, pvar(p, j));
        // Consumers read the hub's output: edge hub -> consumer txn, so
        // the hub's successor set keeps growing.
        for (uint32_t cidx = 0; cidx < opts.consumers; ++cidx) {
            uint32_t t = first_consumer + cidx;
            trace.begin(t);
            for (uint32_t b = 0; b < opts.consumer_batch; ++b)
                trace.read(t, y);
            trace.end(t);
        }
    }
    trace.end(feeder);
    trace.end(hub);

    if (opts.violation_at_end) {
        // Close with a 2-transaction ring on fresh variables using the
        // hub and feeder threads.
        append_ring(trace, 2, 0, pvar(0, opts.rounds));
    }
    return trace;
}

Trace
make_independent(uint32_t threads, uint32_t txns, uint32_t accesses)
{
    Trace trace;
    trace.reserve(static_cast<size_t>(threads) * txns * (accesses + 2));
    for (uint32_t j = 0; j < txns; ++j) {
        for (uint32_t t = 0; t < threads; ++t) {
            trace.begin(t);
            for (uint32_t a = 0; a < accesses; ++a) {
                uint32_t x = t * accesses + a; // thread-private variable
                if (a % 2 == 0)
                    trace.write(t, x);
                else
                    trace.read(t, x);
            }
            trace.end(t);
        }
    }
    return trace;
}

Trace
make_reader_mesh(uint32_t threads, uint32_t rounds)
{
    AERO_ASSERT(threads >= 2, "reader mesh needs a writer and readers");
    Trace trace;
    trace.reserve(static_cast<size_t>(threads) * rounds * 3 + 4);
    const uint32_t x = 0;
    // Writer publishes once, in its own transaction.
    trace.begin(0);
    trace.write(0, x);
    trace.end(0);
    for (uint32_t j = 0; j < rounds; ++j) {
        for (uint32_t t = 1; t < threads; ++t) {
            trace.begin(t);
            trace.read(t, x);
            trace.end(t);
        }
    }
    return trace;
}

Trace
make_naive_spec(const NaiveSpecOptions& opts)
{
    Rng rng(opts.seed);
    Trace trace;
    trace.reserve(static_cast<size_t>(opts.threads) *
                      (opts.events_per_thread + 2));

    // Whole-thread transactions: the naive "every method atomic"
    // specification where each thread's main method is one transaction.
    for (uint32_t t = 0; t < opts.threads; ++t)
        trace.begin(t);

    std::vector<uint32_t> remaining(opts.threads, opts.events_per_thread);
    const uint64_t total =
        static_cast<uint64_t>(opts.threads) * opts.events_per_thread;
    const uint64_t conflict_start = static_cast<uint64_t>(
        static_cast<double>(total) * opts.conflict_position);
    uint64_t emitted = 0;
    auto emit = [&](uint32_t t) {
        bool shared = emitted >= conflict_start &&
                      rng.next_bool(opts.shared_fraction);
        ++emitted;
        bool write = rng.next_bool(opts.write_fraction);
        uint32_t x;
        if (shared) {
            x = static_cast<uint32_t>(rng.next_below(opts.shared_vars));
        } else {
            x = opts.shared_vars + t * opts.private_vars_per_thread +
                static_cast<uint32_t>(
                    rng.next_below(opts.private_vars_per_thread));
        }
        if (write)
            trace.write(t, x);
        else
            trace.read(t, x);
        --remaining[t];
    };

    // Chunked interleaving: each turn runs `chunk` events of one thread.
    bool any = true;
    while (any) {
        any = false;
        for (uint32_t t = 0; t < opts.threads; ++t) {
            uint32_t n = std::min<uint32_t>(opts.chunk, remaining[t]);
            for (uint32_t i = 0; i < n; ++i)
                emit(t);
            any = any || remaining[t] > 0;
        }
    }
    for (uint32_t t = 0; t < opts.threads; ++t)
        trace.end(t);
    return trace;
}

namespace {

/** Recursive emitter for make_fork_join_tree. Node ids are heap-style:
 *  children of i are 2i+1 and 2i+2; acc variable of node i is i. */
void
emit_tree_node(Trace& trace, const ForkJoinTreeOptions& opts,
               uint32_t node, uint32_t num_nodes)
{
    uint32_t left = 2 * node + 1;
    uint32_t right = 2 * node + 2;
    if (left >= num_nodes) {
        // Leaf: private transactions on its own accumulator.
        for (uint32_t j = 0; j < opts.leaf_txns; ++j) {
            trace.begin(node);
            trace.write(node, node);
            trace.read(node, node);
            trace.end(node);
        }
        return;
    }
    trace.fork(node, left);
    trace.fork(node, right);
    if (opts.combine_before_join && node == 0) {
        // Race the combine step at the root: the left child's combining
        // transaction is split around the parent's read, ordering the
        // two transactions both ways.
        uint32_t ll = 2 * left + 1;
        if (ll < num_nodes) {
            // Left child is internal: run its subtree except its final
            // combine, then interleave.
            trace.fork(left, ll);
            trace.fork(left, ll + 1);
            emit_tree_node(trace, opts, ll, num_nodes);
            emit_tree_node(trace, opts, ll + 1, num_nodes);
            trace.join(left, ll);
            trace.join(left, ll + 1);
            trace.begin(left);
            trace.write(left, left);   // first half of the combine
            trace.begin(0);
            trace.read(0, left);       // parent peeks too early ...
            trace.write(left, left);   // ... child is still combining
            trace.end(left);
            emit_tree_node(trace, opts, right, num_nodes);
            trace.read(0, right);
            trace.write(0, 0);
            trace.end(0);
        } else {
            // Left child is a leaf: split one of its transactions.
            trace.begin(left);
            trace.write(left, left);
            trace.begin(0);
            trace.read(0, left);
            trace.write(left, left);
            trace.end(left);
            emit_tree_node(trace, opts, right, num_nodes);
            trace.read(0, right);
            trace.write(0, 0);
            trace.end(0);
        }
        trace.join(node, left);
        trace.join(node, right);
        return;
    }
    emit_tree_node(trace, opts, left, num_nodes);
    emit_tree_node(trace, opts, right, num_nodes);
    trace.join(node, left);
    trace.join(node, right);
    trace.begin(node);
    trace.read(node, left);
    trace.read(node, right);
    trace.write(node, node);
    trace.end(node);
}

} // namespace

Trace
make_fork_join_tree(const ForkJoinTreeOptions& opts)
{
    AERO_ASSERT(opts.depth >= 1 && opts.depth <= 16,
                "tree depth must be in [1, 16]");
    uint32_t num_nodes = (1u << opts.depth) - 1;
    Trace trace;
    emit_tree_node(trace, opts, 0, num_nodes);
    return trace;
}

Trace
make_philosophers(uint32_t philosophers, uint32_t meals)
{
    AERO_ASSERT(philosophers >= 2, "need at least two philosophers");
    Trace trace;
    // Fork i = lock i; plate i = variable i. Locks are always taken in
    // ascending id order (the classic deadlock-free discipline), making
    // the trace serializable: strict two-phase locking per meal.
    for (uint32_t m = 0; m < meals; ++m) {
        for (uint32_t p = 0; p < philosophers; ++p) {
            uint32_t left = p;
            uint32_t right = (p + 1) % philosophers;
            uint32_t lo = std::min(left, right);
            uint32_t hi = std::max(left, right);
            trace.begin(p);
            trace.acquire(p, lo);
            trace.acquire(p, hi);
            trace.read(p, left);
            trace.write(p, left);
            trace.write(p, right);
            trace.release(p, hi);
            trace.release(p, lo);
            trace.end(p);
        }
    }
    return trace;
}

} // namespace aero::gen
