#pragma once

/**
 * @file
 * Seeded random concurrent programs for differential testing.
 *
 * Generates well-formed-by-construction programs (matched begin/end,
 * matched acquire/release with at most one lock held per thread — so no
 * lock deadlock — and tree-shaped fork/join) whose scheduled traces are
 * then fed to every checker and to the oracle; any disagreement is a bug
 * in one of the engines. Programs mix transactional and unary accesses,
 * nested blocks, and lock-protected regions so all checker code paths are
 * exercised.
 */

#include <cstdint>

#include "sim/program.hpp"

namespace aero::gen {

/** Shape parameters for random program generation. */
struct RandomProgramOptions {
    uint32_t threads = 4;
    /** Statements per thread (approximate; blocks are kept matched). */
    uint32_t steps_per_thread = 60;
    uint32_t shared_vars = 6;
    uint32_t locks = 2;
    /** Probability an access block is wrapped in an atomic transaction. */
    double txn_probability = 0.7;
    /** Probability an access block is lock-protected. */
    double lock_probability = 0.4;
    /** Probability a block nests an inner begin/end pair. */
    double nest_probability = 0.1;
    /** Probability of a write (vs read) per access. */
    double write_fraction = 0.4;
    /** Use fork/join structure (thread 0 forks the rest, then joins). */
    bool fork_join = true;
    uint64_t seed = 1;
};

/** Build a random well-formed program. */
sim::Program make_random_program(const RandomProgramOptions& opts);

} // namespace aero::gen
