#pragma once

/**
 * @file
 * Rolling-stream generator — an unbounded, violation-free synthetic
 * workload for the reclamation soak tests (tests/soak_memory_test.cpp)
 * and bench_scaling --memory.
 *
 * The stream models a long-running server: a fixed-size pool of worker
 * threads runs strict-2PL transactions (stripe lock acquired before the
 * begin, released after the end, every accessed variable guarded by that
 * stripe — conflict serializable by construction, so every checker must
 * answer "no violation" on any prefix), while
 *
 *  - thread churn: every churn_every events the main thread joins the
 *    oldest worker and forks a replacement with a fresh external thread
 *    id, so the set of *live* threads stays at `workers` but the id
 *    space grows without bound — exactly the load thread-slot recycling
 *    exists for; and
 *  - working-set drift: every drift_every events the hot window slides
 *    by half its width around a fixed ring of `vars` variables, so old
 *    clock entries go cold and become reclaimable while the live
 *    footprint stays put.
 *
 * Without reclamation (AERO_GC=0) engine memory grows with the trace;
 * with it the soak test asserts memory_bytes() plateaus.
 *
 * Events are produced one transaction at a time (workers round-robin),
 * deterministically from the seed: the same options always yield the
 * same stream, and two sources with the same options can be drawn
 * independently (e.g. one for a sharded run, one for a reference run).
 */

#include <cstdint>
#include <deque>

#include "support/rng.hpp"
#include "trace/stream.hpp"

namespace aero::gen {

/** Shape parameters for the rolling stream. */
struct RollingStreamOptions {
    /** Live worker threads (besides the forking main thread). */
    uint32_t workers = 8;
    /** Events between join-oldest/fork-fresh churn steps (0 = never). */
    uint32_t churn_every = 4096;
    /** Size of the variable ring (rounded up to a multiple of locks). */
    uint32_t vars = 4096;
    /** Width of the hot window the accesses draw from. */
    uint32_t hot_window = 256;
    /** Events between hot-window slides (0 = never). */
    uint32_t drift_every = 8192;
    /** Stripe locks; variable v is guarded by lock v % locks. */
    uint32_t locks = 8;
    /** Reads/writes per transaction. */
    uint32_t txn_accesses = 8;
    /** Percentage of accesses that are writes. */
    uint32_t write_pct = 40;
    /** Stop after this many events (0 = unbounded). */
    uint64_t max_events = 0;
    uint64_t seed = 1;
};

/** Pull-based unbounded violation-free workload (see file comment). */
class RollingStreamSource : public EventSource {
public:
    explicit RollingStreamSource(const RollingStreamOptions& opts);

    bool next(Event& out) override;

    /** External thread ids ever issued (grows with churn). */
    uint32_t threads_issued() const { return next_tid_; }
    /** Events produced so far. */
    uint64_t produced() const { return produced_; }

private:
    void emit_txn();
    void emit_churn();

    RollingStreamOptions opts_;
    Rng rng_;
    std::deque<Event> pending_;
    /** Live worker tids, oldest first. */
    std::deque<ThreadId> live_;
    uint32_t next_tid_ = 0;
    uint32_t rr_ = 0; // round-robin cursor into live_
    uint32_t hot_base_ = 0;
    uint64_t produced_ = 0;
    uint64_t next_churn_ = 0;
    uint64_t next_drift_ = 0;
};

} // namespace aero::gen
