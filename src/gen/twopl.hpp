#pragma once

/**
 * @file
 * Strict two-phase-locking workload generator.
 *
 * Every transaction chooses a set of shared variables, acquires the locks
 * guarding them in ascending lock order (deadlock freedom), performs its
 * reads/writes, and releases everything at the end (strictness). Every
 * cross-transaction conflict — data, lock, or program order — then points
 * from an earlier-committing to a later-committing transaction, so the
 * transaction graph is acyclic and the generated trace is *conflict
 * serializable by construction*. This is the soundness stressor: every
 * checker must report "no violation" on any schedule of these programs.
 */

#include <cstdint>

#include "sim/program.hpp"

namespace aero::gen {

/** Shape parameters for the 2PL generator. */
struct TwoPlOptions {
    uint32_t threads = 4;
    uint32_t txns_per_thread = 50;
    uint32_t shared_vars = 16;
    /** Number of locks; variable x is guarded by lock x % locks. */
    uint32_t locks = 4;
    /** Variables accessed per transaction (capped by shared_vars). */
    uint32_t vars_per_txn = 3;
    /** Reads+writes per chosen variable. */
    uint32_t accesses_per_var = 2;
    double write_fraction = 0.5;
    /** Thread-local unary accesses between transactions. */
    uint32_t private_accesses_between_txns = 2;
    uint64_t seed = 1;
};

/** Build a strict-2PL program (serializable under every schedule). */
sim::Program make_twopl_program(const TwoPlOptions& opts);

} // namespace aero::gen
