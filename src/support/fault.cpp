#include "support/fault.hpp"

#include <cstdlib>
#include <vector>

namespace aero {

namespace {

/** splitmix64: cheap, well-mixed; good enough to pick bits and bytes. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
kind_matches_site(FaultSite site, FaultKind kind)
{
    switch (site) {
      case FaultSite::kTraceByte:
        return kind == FaultKind::kBitFlip || kind == FaultKind::kTruncate ||
               kind == FaultKind::kGarbage;
      case FaultSite::kWorker:
        return kind == FaultKind::kWorkerDelay ||
               kind == FaultKind::kWorkerStall ||
               kind == FaultKind::kWorkerKill;
      case FaultSite::kRingPush:
        return kind == FaultKind::kRingFull;
      case FaultSite::kAlloc:
        return kind == FaultKind::kAllocCap;
    }
    return false;
}

bool
parse_u64(const std::string& tok, uint64_t& out)
{
    if (tok.empty())
        return false;
    char* end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (tok[0] == '-' || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

const char*
fault_site_name(FaultSite site)
{
    switch (site) {
      case FaultSite::kTraceByte:
        return "trace-byte";
      case FaultSite::kWorker:
        return "worker";
      case FaultSite::kRingPush:
        return "ring";
      case FaultSite::kAlloc:
        return "alloc";
    }
    return "?";
}

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kNone:
        return "none";
      case FaultKind::kBitFlip:
        return "bit-flip";
      case FaultKind::kTruncate:
        return "truncate";
      case FaultKind::kGarbage:
        return "garbage";
      case FaultKind::kWorkerDelay:
        return "delay";
      case FaultKind::kWorkerStall:
        return "stall";
      case FaultKind::kWorkerKill:
        return "kill";
      case FaultKind::kRingFull:
        return "ring-full";
      case FaultKind::kAllocCap:
        return "alloc-cap";
    }
    return "?";
}

std::optional<FaultPlan>
parse_fault_plan(const std::string& spec)
{
    std::vector<std::string> toks;
    size_t start = 0;
    for (;;) {
        size_t colon = spec.find(':', start);
        toks.push_back(spec.substr(start, colon == std::string::npos
                                              ? std::string::npos
                                              : colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    if (toks.size() < 3 || toks.size() > 6)
        return std::nullopt;

    FaultPlan plan;
    if (toks[0] == "trace-byte")
        plan.site = FaultSite::kTraceByte;
    else if (toks[0] == "worker")
        plan.site = FaultSite::kWorker;
    else if (toks[0] == "ring")
        plan.site = FaultSite::kRingPush;
    else if (toks[0] == "alloc")
        plan.site = FaultSite::kAlloc;
    else
        return std::nullopt;

    static constexpr std::pair<const char*, FaultKind> kKinds[] = {
        {"bit-flip", FaultKind::kBitFlip},
        {"truncate", FaultKind::kTruncate},
        {"garbage", FaultKind::kGarbage},
        {"delay", FaultKind::kWorkerDelay},
        {"stall", FaultKind::kWorkerStall},
        {"kill", FaultKind::kWorkerKill},
        {"ring-full", FaultKind::kRingFull},
        {"alloc-cap", FaultKind::kAllocCap},
    };
    plan.kind = FaultKind::kNone;
    for (const auto& [name, kind] : kKinds) {
        if (toks[1] == name) {
            plan.kind = kind;
            break;
        }
    }
    if (plan.kind == FaultKind::kNone ||
        !kind_matches_site(plan.site, plan.kind))
        return std::nullopt;

    if (!parse_u64(toks[2], plan.trigger))
        return std::nullopt;
    if (toks.size() > 3) {
        uint64_t v = 0;
        if (toks[3] == "any")
            plan.shard = FaultPlan::kAnyShard;
        else if (parse_u64(toks[3], v) && v < FaultPlan::kAnyShard)
            plan.shard = static_cast<uint32_t>(v);
        else
            return std::nullopt;
    }
    if (toks.size() > 4 && !parse_u64(toks[4], plan.seed))
        return std::nullopt;
    if (toks.size() > 5 && !parse_u64(toks[5], plan.duration))
        return std::nullopt;
    return plan;
}

bool
fault_points_compiled()
{
#if defined(AERO_FAULTS)
    return true;
#else
    return false;
#endif
}

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan& plan)
{
    std::lock_guard<std::mutex> lk(mu_);
    armed_site_.store(kNoSite, std::memory_order_release);
    plan_ = plan;
    hits_.store(0, std::memory_order_relaxed);
    fires_.store(0, std::memory_order_relaxed);
    burst_left_.store(0, std::memory_order_relaxed);
    truncated_.store(false, std::memory_order_relaxed);
    if (plan.kind != FaultKind::kNone)
        armed_site_.store(static_cast<uint8_t>(plan.site),
                          std::memory_order_release);
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lk(mu_);
    armed_site_.store(kNoSite, std::memory_order_release);
}

bool
FaultInjector::armed() const
{
    return armed_site_.load(std::memory_order_relaxed) != kNoSite;
}

bool
FaultInjector::arm_from_env()
{
    const char* spec = std::getenv("AERO_FAULT_PLAN");
    if (!spec)
        return false;
    auto plan = parse_fault_plan(spec);
    if (!plan)
        return false;
    arm(*plan);
    return true;
}

bool
FaultInjector::filter_byte(uint64_t offset, int& byte)
{
    (void)offset;
    if (!armed_for(FaultSite::kTraceByte))
        return true;
    if (truncated_.load(std::memory_order_relaxed))
        return false;
    if (byte < 0)
        return true; // real EOF passes through
    const uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
    if (h != plan_.trigger)
        return true;
    fires_.fetch_add(1, std::memory_order_relaxed);
    switch (plan_.kind) {
      case FaultKind::kBitFlip:
        byte ^= 1 << (mix64(plan_.seed) % 8);
        return true;
      case FaultKind::kGarbage:
        byte = static_cast<int>(mix64(plan_.seed ^ offset) & 0xff);
        return true;
      case FaultKind::kTruncate:
        truncated_.store(true, std::memory_order_relaxed);
        return false;
      default:
        return true;
    }
}

bool
FaultInjector::filter_text_line(uint64_t line_no, std::string& line)
{
    (void)line_no;
    if (!armed_for(FaultSite::kTraceByte))
        return true;
    if (truncated_.load(std::memory_order_relaxed))
        return false;
    const uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
    if (h != plan_.trigger)
        return true;
    fires_.fetch_add(1, std::memory_order_relaxed);
    switch (plan_.kind) {
      case FaultKind::kBitFlip:
        if (!line.empty()) {
            const uint64_t r = mix64(plan_.seed);
            line[r % line.size()] ^=
                static_cast<char>(1 << (mix64(r) % 8));
        }
        return true;
      case FaultKind::kGarbage:
        line = "\x01garbage\x02line\x03";
        return true;
      case FaultKind::kTruncate:
        truncated_.store(true, std::memory_order_relaxed);
        return false;
      default:
        return true;
    }
}

FaultKind
FaultInjector::worker_action(uint32_t shard)
{
    if (!armed_for(FaultSite::kWorker))
        return FaultKind::kNone;
    if (plan_.shard != FaultPlan::kAnyShard && shard != plan_.shard)
        return FaultKind::kNone;
    const uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
    if (h != plan_.trigger)
        return FaultKind::kNone;
    fires_.fetch_add(1, std::memory_order_relaxed);
    return plan_.kind;
}

bool
FaultInjector::ring_full(uint32_t shard)
{
    if (!armed_for(FaultSite::kRingPush))
        return false;
    if (plan_.shard != FaultPlan::kAnyShard && shard != plan_.shard)
        return false;
    if (burst_left_.load(std::memory_order_relaxed) > 0) {
        burst_left_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    const uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
    if (h != plan_.trigger)
        return false;
    fires_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t burst = plan_.duration ? plan_.duration : 256;
    burst_left_.store(burst - 1, std::memory_order_relaxed);
    return true;
}

bool
FaultInjector::alloc_breach(uint64_t bytes)
{
    (void)bytes;
    if (!armed_for(FaultSite::kAlloc))
        return false;
    const uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
    if (h < plan_.trigger)
        return false;
    if (h == plan_.trigger)
        fires_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

uint64_t
corrupt_bytes(std::string& bytes, FaultKind kind, uint64_t seed,
              uint64_t min_offset)
{
    if (bytes.size() <= min_offset)
        return bytes.size();
    const uint64_t span = bytes.size() - min_offset;
    const uint64_t offset = min_offset + mix64(seed) % span;
    switch (kind) {
      case FaultKind::kBitFlip:
        bytes[offset] ^= static_cast<char>(1 << (mix64(seed + 1) % 8));
        break;
      case FaultKind::kTruncate:
        bytes.resize(offset);
        break;
      case FaultKind::kGarbage: {
        uint64_t r = mix64(seed + 2);
        const uint64_t n = std::min<uint64_t>(16, bytes.size() - offset);
        for (uint64_t i = 0; i < n; ++i) {
            r = mix64(r);
            bytes[offset + i] = static_cast<char>(r & 0xff);
        }
        break;
      }
      default:
        break;
    }
    return offset;
}

} // namespace aero
