#pragma once

/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A FaultPlan names one fault: a *site* (where the fault class lives), a
 * *kind* (what goes wrong), a *trigger* (fire on the trigger-th hit of
 * that site, 0-based), and a seed that derandomizes the payload (which
 * bit flips, which garbage byte). The singleton FaultInjector is armed
 * with one plan — via the API or the AERO_FAULT_PLAN environment
 * variable — and the instrumented code paths consult it through cheap
 * site hooks (one relaxed atomic load when disarmed).
 *
 * Two gating tiers keep the disarmed cost honest:
 *  - the per-byte trace-reader hooks (FaultSite::kTraceByte) are hot and
 *    only compiled under -DAERO_FAULTS=ON (fault_points_compiled());
 *    without it they expand to nothing and provably cost zero;
 *  - the worker/ring/alloc hooks sit on paths that already do atomics per
 *    item (or on cold poll paths) and are always compiled, so the shard
 *    recovery suites run in every build.
 *
 * Arm/disarm must not race an active run: tests arm before run_sharded /
 * run_checker and disarm after.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace aero {

/** Where a fault is injected. */
enum class FaultSite : uint8_t {
    kTraceByte = 0, ///< byte-level corruption inside a trace reader
    kWorker = 1,    ///< shard worker misbehavior (threaded driver)
    kRingPush = 2,  ///< producer-side SPSC push sees a full ring
    kAlloc = 3,     ///< allocation-cap breach at the runner's poll point
};

/** What goes wrong at the site. */
enum class FaultKind : uint8_t {
    kNone = 0,
    // kTraceByte kinds
    kBitFlip,  ///< flip one bit of one byte
    kTruncate, ///< end the stream at the trigger byte
    kGarbage,  ///< replace bytes with seeded garbage
    // kWorker kinds
    kWorkerDelay, ///< sleep `duration` ms once, then continue
    kWorkerStall, ///< stop making progress until evicted (bounded)
    kWorkerKill,  ///< return from the worker thread (simulated death)
    // kRingPush kind
    kRingFull, ///< force `duration` consecutive pushes to see a full ring
    // kAlloc kind
    kAllocCap, ///< report the allocation cap breached from trigger on
};

const char* fault_site_name(FaultSite site);
const char* fault_kind_name(FaultKind kind);

/** One seeded fault: site x kind x trigger count (+ payload knobs). */
struct FaultPlan {
    /** `shard` value meaning "any shard". */
    static constexpr uint32_t kAnyShard = UINT32_MAX;

    FaultSite site = FaultSite::kTraceByte;
    FaultKind kind = FaultKind::kNone;
    /** Fire on the trigger-th hit of the site (0-based). Binary trace
     *  hooks count post-header bytes; text hooks count lines; worker
     *  hooks count popped items; ring hooks count pushes; alloc hooks
     *  count budget polls. */
    uint64_t trigger = 0;
    /** Target shard for kWorker / kRingPush sites. */
    uint32_t shard = kAnyShard;
    /** Derandomizes the payload (bit index, garbage bytes). */
    uint64_t seed = 1;
    /** Kind-specific magnitude: kWorkerDelay sleep in ms (default 10),
     *  kWorkerStall cap in ms (default 30000), kRingFull burst length in
     *  pushes (default 256). 0 selects the default. */
    uint64_t duration = 0;
};

/**
 * Parse "site:kind:trigger[:shard][:seed][:duration]" — the
 * AERO_FAULT_PLAN syntax. Sites: trace-byte, worker, ring, alloc.
 * Kinds: bit-flip, truncate, garbage, delay, stall, kill, ring-full,
 * alloc-cap. The kind must belong to the site. shard may be "any".
 * @return nullopt on malformed or mismatched specs.
 */
std::optional<FaultPlan> parse_fault_plan(const std::string& spec);

/** True when the hot per-byte trace-reader injection points were
 *  compiled in (cmake -DAERO_FAULTS=ON). Gated tests skip when false. */
bool fault_points_compiled();

/** Process-wide injector; disarmed by default. */
class FaultInjector {
public:
    static FaultInjector& instance();

    /** Arm `plan`; resets hit/fire counters. Not to race an active run. */
    void arm(const FaultPlan& plan);
    void disarm();
    bool armed() const;
    /** One relaxed load: armed and the plan targets `site`. */
    bool
    armed_for(FaultSite site) const
    {
        return armed_site_.load(std::memory_order_relaxed) ==
               static_cast<uint8_t>(site);
    }

    /** Arm from AERO_FAULT_PLAN; false when unset or unparseable. */
    bool arm_from_env();

    /** Times the armed fault actually fired (test assertions). */
    uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
    const FaultPlan& plan() const { return plan_; }

    // --- site hooks -------------------------------------------------------

    /** kTraceByte (binary): filter one decoded byte. May flip/garble
     *  `byte`; @return false to truncate the stream here (sticky). */
    bool filter_byte(uint64_t offset, int& byte);

    /** kTraceByte (text): filter one input line. May corrupt `line` in
     *  place; @return false to truncate the stream here (sticky). */
    bool filter_text_line(uint64_t line_no, std::string& line);

    /** kWorker: action for the item a worker of `shard` popped;
     *  kNone when nothing fires. */
    FaultKind worker_action(uint32_t shard);

    /** kRingPush: true when this push to `shard` must observe a full
     *  ring. Called from the single reader thread only. */
    bool ring_full(uint32_t shard);

    /** kAlloc: true when the armed allocation cap counts as breached
     *  (sticky from the trigger-th poll on). `bytes` is informational. */
    bool alloc_breach(uint64_t bytes);

private:
    FaultInjector() = default;

    static constexpr uint8_t kNoSite = 0xff;

    std::mutex mu_; // serializes arm/disarm
    std::atomic<uint8_t> armed_site_{kNoSite};
    FaultPlan plan_{};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> fires_{0};
    std::atomic<uint64_t> burst_left_{0}; // remaining kRingFull pushes
    std::atomic<bool> truncated_{false};  // sticky injected EOF
};

/**
 * Deterministically corrupt a serialized trace image in place — the
 * byte-level FaultPlan kinds as a pure helper, available in every build
 * (the corruption fuzzer uses it; no AERO_FAULTS needed). The offset is
 * derived from `seed` within [min_offset, bytes.size()).
 * @return the chosen offset (bytes.size() when the image is too small).
 */
uint64_t corrupt_bytes(std::string& bytes, FaultKind kind, uint64_t seed,
                       uint64_t min_offset = 0);

} // namespace aero
