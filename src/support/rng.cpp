#include "support/rng.hpp"

#include "support/assert.hpp"

namespace aero {

namespace {

uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::next_below(uint64_t bound)
{
    AERO_ASSERT(bound > 0, "next_below requires positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next_u64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::next_range(int64_t lo, int64_t hi)
{
    AERO_ASSERT(lo <= hi, "next_range requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next_below(span));
}

double
Rng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

size_t
Rng::next_weighted(const std::vector<double>& weights)
{
    double total = 0;
    for (double w : weights) {
        AERO_ASSERT(w >= 0, "weights must be non-negative");
        total += w;
    }
    AERO_ASSERT(total > 0, "at least one weight must be positive");
    double r = next_double() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

uint64_t
Rng::next_geometric(double p, uint64_t cap)
{
    uint64_t n = 0;
    while (n < cap && next_bool(p))
        ++n;
    return n;
}

} // namespace aero
