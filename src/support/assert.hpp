#pragma once

/**
 * @file
 * Failure handling in the spirit of gem5's panic()/fatal() split.
 *
 * - AERO_ASSERT / aero::panic: internal invariant broken (a bug in this
 *   library). Aborts.
 * - aero::fatal: the caller/user supplied an impossible input (malformed
 *   trace, bad configuration). Throws aero::FatalError so library users and
 *   tests can recover.
 */

#include <stdexcept>
#include <string>

namespace aero {

/** Error thrown when user-supplied input (trace, config) is invalid. */
class FatalError : public std::runtime_error {
public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Abort with a message; used for internal invariant violations. */
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

/** Throw FatalError; used for invalid user input. */
[[noreturn]] void fatal(const std::string& msg);

} // namespace aero

#define AERO_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::aero::panic(__FILE__, __LINE__,                                \
                          std::string("assertion failed: ") + #cond +       \
                              " -- " + (msg));                               \
        }                                                                    \
    } while (0)
