#pragma once

/**
 * @file
 * Failure handling in the spirit of gem5's panic()/fatal() split.
 *
 * - AERO_ASSERT / aero::panic: internal invariant broken (a bug in this
 *   library). Routed through a pluggable PanicHandler; the default
 *   handler prints and aborts, and a host service that must survive a
 *   sick component installs throwing_panic_handler to turn panics into
 *   catchable InternalError exceptions instead.
 * - aero::fatal: the caller/user supplied an impossible input (malformed
 *   trace, bad configuration). Throws aero::FatalError so library users
 *   and tests can recover.
 *
 * Panic messages carry the current event index / shard id when the
 * runner has registered a PanicContextScope on the panicking thread, so
 * field crash reports name the trace position, not just the source line.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

namespace aero {

/** Error thrown when user-supplied input (trace, config) is invalid. */
class FatalError : public std::runtime_error {
public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Error thrown *instead of aborting* when throwing_panic_handler is
 *  installed: an internal invariant broke, the library state that hit it
 *  is unusable, but the process can contain the blast radius. */
class InternalError : public std::runtime_error {
public:
    explicit InternalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Receives the fully composed panic message (location + context). Must
 *  not return; if it does, the process aborts anyway. */
using PanicHandler = void (*)(const std::string& msg);

/** Install `handler` (nullptr restores the print-and-abort default).
 *  @return the previously installed handler (nullptr = default). */
PanicHandler set_panic_handler(PanicHandler handler);

/** Ready-made handler that throws InternalError. */
[[noreturn]] void throwing_panic_handler(const std::string& msg);

/**
 * Thread-local analysis position, appended to panic messages: "while
 * processing event 1234 (shard 2)". Runners keep one scope per checking
 * thread and bump event_index as they go (a plain store — the hot loop
 * pays one word write per event).
 */
struct PanicContext {
    static constexpr uint64_t kNoIndex = UINT64_MAX;
    static constexpr uint32_t kNoShard = UINT32_MAX;

    uint64_t event_index = kNoIndex;
    uint32_t shard = kNoShard;
};

/** RAII registration of a PanicContext on the current thread. Scopes
 *  nest; the innermost one wins. */
class PanicContextScope {
public:
    explicit PanicContextScope(uint32_t shard = PanicContext::kNoShard);
    ~PanicContextScope();

    PanicContextScope(const PanicContextScope&) = delete;
    PanicContextScope& operator=(const PanicContextScope&) = delete;

    void set_index(uint64_t index) { ctx_.event_index = index; }

private:
    PanicContext ctx_;
    PanicContext* prev_;
};

/** Report an internal invariant violation; routed through the installed
 *  PanicHandler (default: print and abort). */
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

/** Throw FatalError; used for invalid user input. */
[[noreturn]] void fatal(const std::string& msg);

} // namespace aero

#define AERO_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::aero::panic(__FILE__, __LINE__,                                \
                          std::string("assertion failed: ") + #cond +       \
                              " -- " + (msg));                               \
        }                                                                    \
    } while (0)
