#include "support/stopwatch.hpp"

namespace aero {

void
Stopwatch::reset()
{
    start_ = std::chrono::steady_clock::now();
}

double
Stopwatch::elapsed_seconds()  const
{
    return static_cast<double>(elapsed_ns()) * 1e-9;
}

uint64_t
Stopwatch::elapsed_ns() const
{
    auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

} // namespace aero
