#pragma once

/**
 * @file
 * Minimal string helpers shared by trace I/O and report formatting.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aero {

/** Split `s` on `sep`, keeping empty fields. */
std::vector<std::string_view> split(std::string_view s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string_view trim(std::string_view s);

/** True if `s` starts with `prefix`. */
bool starts_with(std::string_view s, std::string_view prefix);

/**
 * Parse a non-negative decimal integer. Returns false on any non-digit or
 * overflow; on success stores the value in `out`.
 */
bool parse_u64(std::string_view s, uint64_t& out);

/** Format a count with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string with_commas(uint64_t n);

/**
 * Human-readable duration: "1.5ms", "2.34s", "55m40s" — the style the paper
 * uses in Table 1.
 */
std::string format_duration(double seconds);

} // namespace aero
