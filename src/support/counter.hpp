#pragma once

/**
 * @file
 * RelaxedCounter — a statistic counter that is safe to *read* from other
 * threads while its single owner keeps incrementing it.
 *
 * The checker engines bump several counters on every event. When a
 * sharded run (src/shard/) wants live progress — or a monitoring thread
 * polls counters() mid-run — plain uint64_t fields would be a data race.
 * A full atomic RMW (`lock xadd`) on every event would instead tax the
 * single-writer hot path for a property it does not need: each counter
 * has exactly one writer (the shard worker that owns the engine), so a
 * relaxed load + relaxed store compiles to the same plain `add` as a
 * non-atomic field on every mainstream ISA while making concurrent
 * readers well-defined (they see some recent value, never garbage).
 *
 * The single-writer discipline is a contract, not something the type
 * enforces: concurrent increments from two threads would lose updates
 * (acceptable for statistics, still race-free for the language).
 */

#include <atomic>
#include <cstdint>

namespace aero {

/** Single-writer statistic counter with race-free concurrent readers. */
class RelaxedCounter {
public:
    constexpr RelaxedCounter(uint64_t v = 0) noexcept : v_(v) {}

    RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.load()) {}

    RelaxedCounter&
    operator=(const RelaxedCounter& o) noexcept
    {
        store(o.load());
        return *this;
    }

    RelaxedCounter&
    operator=(uint64_t v) noexcept
    {
        store(v);
        return *this;
    }

    /** Owner-only increment (relaxed load + store, not an RMW). */
    RelaxedCounter&
    operator++() noexcept
    {
        store(load() + 1);
        return *this;
    }

    /** Owner-only add (relaxed load + store, not an RMW). */
    RelaxedCounter&
    operator+=(uint64_t d) noexcept
    {
        store(load() + d);
        return *this;
    }

    operator uint64_t() const noexcept { return load(); }

    uint64_t
    load() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    store(uint64_t v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
    }

private:
    std::atomic<uint64_t> v_;
};

} // namespace aero
