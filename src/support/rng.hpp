#pragma once

/**
 * @file
 * Small, fast, reproducible pseudo-random number generation.
 *
 * All workload generators in this repository take an explicit seed and use
 * this generator, so every trace and every benchmark run is reproducible
 * bit-for-bit across platforms (unlike std::mt19937 + distribution objects,
 * whose distributions are implementation-defined).
 *
 * The core generator is xoshiro256**, seeded via splitmix64.
 */

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aero {

/** xoshiro256** PRNG with convenience sampling helpers. */
class Rng {
public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next_u64();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t next_below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t next_range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli trial with probability p of returning true. */
    bool next_bool(double p = 0.5);

    /**
     * Sample an index from a discrete distribution given by non-negative
     * weights. At least one weight must be positive.
     */
    size_t next_weighted(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(next_below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Geometric-ish sample: number of trials until failure with continue
     * probability p, capped at `cap`. Used for transaction length draws.
     */
    uint64_t next_geometric(double p, uint64_t cap);

private:
    uint64_t s_[4];
};

} // namespace aero
