#pragma once

/**
 * @file
 * Wall-clock stopwatch used by the analysis harness to time checker runs
 * and enforce the paper's timeout ("TO") semantics.
 */

#include <chrono>

namespace aero {

/** Monotonic wall-clock stopwatch. */
class Stopwatch {
public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset();

    /** Seconds elapsed since construction or the last reset(). */
    double elapsed_seconds() const;

    /** Nanoseconds elapsed since construction or the last reset(). */
    uint64_t elapsed_ns() const;

private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace aero
