#include "support/str.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace aero {

std::vector<std::string_view>
split(std::string_view s, char sep)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
starts_with(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
parse_u64(std::string_view s, uint64_t& out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

std::string
with_commas(uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i > 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
format_duration(double seconds)
{
    char buf[64];
    if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
    } else if (seconds < 120.0) {
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    } else {
        uint64_t total = static_cast<uint64_t>(std::llround(seconds));
        std::snprintf(buf, sizeof(buf), "%llum%llus",
                      static_cast<unsigned long long>(total / 60),
                      static_cast<unsigned long long>(total % 60));
    }
    return buf;
}

} // namespace aero
