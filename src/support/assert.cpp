#include "support/assert.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace aero {

namespace {

std::atomic<PanicHandler> g_panic_handler{nullptr};

/** Innermost registered context of the current thread, or null. */
thread_local PanicContext* tls_panic_ctx = nullptr;

} // namespace

PanicHandler
set_panic_handler(PanicHandler handler)
{
    return g_panic_handler.exchange(handler, std::memory_order_acq_rel);
}

void
throwing_panic_handler(const std::string& msg)
{
    throw InternalError(msg);
}

PanicContextScope::PanicContextScope(uint32_t shard)
{
    ctx_.shard = shard;
    prev_ = tls_panic_ctx;
    tls_panic_ctx = &ctx_;
}

PanicContextScope::~PanicContextScope()
{
    tls_panic_ctx = prev_;
}

void
panic(const char* file, int line, const std::string& msg)
{
    std::string full = std::string(file) + ":" + std::to_string(line) +
                       ": " + msg;
    if (const PanicContext* ctx = tls_panic_ctx) {
        if (ctx->event_index != PanicContext::kNoIndex) {
            full += " while processing event " +
                    std::to_string(ctx->event_index);
            if (ctx->shard != PanicContext::kNoShard)
                full += " (shard " + std::to_string(ctx->shard) + ")";
        }
    }
    if (PanicHandler handler =
            g_panic_handler.load(std::memory_order_acquire)) {
        handler(full); // expected not to return (e.g. throws)
    }
    std::fprintf(stderr, "panic: %s\n", full.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

} // namespace aero
