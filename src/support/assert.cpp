#include "support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace aero {

void
panic(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

} // namespace aero
