#pragma once

/**
 * @file
 * Offline reference decision procedure for conflict serializability
 * (Definition 1 of the paper), used as the ground-truth oracle in tests.
 *
 * Construction: assign every event to a transaction (outermost atomic
 * blocks; each event outside a block is its own *unary* transaction,
 * Section 4.1.4), add a directed edge T -> T' for every *direct* conflict
 * between an event of T and a later event of T' (program order, w/w, w/r,
 * r/w on a variable, rel->acq on a lock, fork/join), and decide.
 *
 * Because conflict-happens-before is the transitive closure of direct
 * conflicts, T <Txn T' holds exactly when T' is reachable from T in this
 * graph; a witness T0 < T1 < ... < T0 with k > 1 distinct transactions
 * exists exactly when some strongly connected component contains >= 2
 * transactions. Tarjan's algorithm decides this in linear time, and direct
 * conflicts only require the *last* writer / last readers-per-thread /
 * last releaser because older conflicts are subsumed transitively through
 * the per-thread program-order chain.
 *
 * The oracle decides Definition 1 exactly. It additionally reports whether
 * a witness exists in which all transactions except possibly one are
 * completed — the precise class AeroDrome detects (Theorem 3) — so tests
 * can assert both the exact semantics and the online algorithms' contract.
 */

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace aero {

/** Source-level description of one transaction-graph node. */
struct TxnInfo {
    ThreadId thread = kNoThread;
    /** Trace index of the node's first event (the begin, for block
     *  transactions; the event itself, for unary ones). */
    size_t first_event = 0;
    /** Trace index of the node's last event seen (the end event once the
     *  transaction completes). */
    size_t last_event = 0;
    /** True for single-event (unary) transactions. */
    bool unary = false;
    /** True if the transaction completed within the trace. */
    bool completed = false;
};

/** Result of the offline serializability decision. */
struct OracleResult {
    /** True iff the trace is conflict serializable (Definition 1). */
    bool serializable = true;
    /**
     * True iff a witness cycle exists whose transactions are all completed
     * except possibly one (the class of violations AeroDrome reports per
     * Theorem 3). Implies !serializable.
     */
    bool detectable_with_one_open = false;
    /** Number of transaction-graph nodes (incl. unary transactions). */
    uint64_t num_transactions = 0;
    /** Number of distinct edges. */
    uint64_t num_edges = 0;
    /** When not serializable: node ids of one offending SCC. */
    std::vector<uint32_t> witness_scc;
    /** Populated when OracleOptions::collect_txn_info: node -> source
     *  description, usable to render the witness cycle. */
    std::vector<TxnInfo> txn_info;
};

/** Options for the oracle. */
struct OracleOptions {
    /** Record per-node thread/event-range info (costs O(#transactions)
     *  memory; used for witness reporting). */
    bool collect_txn_info = false;
};

/** Decide conflict serializability of `trace`. */
OracleResult check_serializability(const Trace& trace,
                                   const OracleOptions& opts = {});

} // namespace aero
