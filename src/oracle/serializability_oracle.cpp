#include "oracle/serializability_oracle.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/txn_tracker.hpp"
#include "support/assert.hpp"

namespace aero {

namespace {

constexpr uint32_t kNone = UINT32_MAX;

/** Transaction graph under construction. */
class TxnGraph {
public:
    uint32_t
    new_node(bool completed)
    {
        adj_.emplace_back();
        completed_.push_back(completed);
        return static_cast<uint32_t>(adj_.size() - 1);
    }

    void
    mark_completed(uint32_t n)
    {
        completed_[n] = true;
    }

    /** Add edge a->b; self-loops and duplicates are dropped. */
    void
    add_edge(uint32_t a, uint32_t b)
    {
        if (a == kNone || b == kNone || a == b)
            return;
        uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
        if (edge_set_.insert(key).second)
            adj_[a].push_back(b);
    }

    size_t size() const { return adj_.size(); }
    uint64_t num_edges() const { return edge_set_.size(); }
    const std::vector<uint32_t>& succ(uint32_t n) const { return adj_[n]; }
    bool completed(uint32_t n) const { return completed_[n]; }

private:
    std::vector<std::vector<uint32_t>> adj_;
    std::vector<bool> completed_;
    std::unordered_set<uint64_t> edge_set_;
};

/** Iterative Tarjan SCC; returns component id per node. */
class TarjanScc {
public:
    explicit TarjanScc(const TxnGraph& g) : g_(g) {}

    /** Run and return (component id per node, number of components). */
    std::pair<std::vector<uint32_t>, uint32_t>
    run()
    {
        size_t n = g_.size();
        index_.assign(n, kNone);
        lowlink_.assign(n, 0);
        on_stack_.assign(n, false);
        comp_.assign(n, kNone);
        for (uint32_t v = 0; v < n; ++v) {
            if (index_[v] == kNone)
                strongconnect(v);
        }
        return {std::move(comp_), num_comps_};
    }

private:
    struct Frame {
        uint32_t v;
        size_t child;
    };

    void
    strongconnect(uint32_t root)
    {
        std::vector<Frame> stack{{root, 0}};
        while (!stack.empty()) {
            Frame& f = stack.back();
            uint32_t v = f.v;
            if (f.child == 0) {
                index_[v] = lowlink_[v] = next_index_++;
                scc_stack_.push_back(v);
                on_stack_[v] = true;
            }
            const auto& succ = g_.succ(v);
            if (f.child < succ.size()) {
                uint32_t w = succ[f.child++];
                if (index_[w] == kNone) {
                    stack.push_back({w, 0});
                } else if (on_stack_[w]) {
                    lowlink_[v] = std::min(lowlink_[v], index_[w]);
                }
            } else {
                if (lowlink_[v] == index_[v]) {
                    uint32_t c = num_comps_++;
                    for (;;) {
                        uint32_t w = scc_stack_.back();
                        scc_stack_.pop_back();
                        on_stack_[w] = false;
                        comp_[w] = c;
                        if (w == v)
                            break;
                    }
                }
                stack.pop_back();
                if (!stack.empty()) {
                    uint32_t parent = stack.back().v;
                    lowlink_[parent] =
                        std::min(lowlink_[parent], lowlink_[v]);
                }
            }
        }
    }

    const TxnGraph& g_;
    std::vector<uint32_t> index_;
    std::vector<uint32_t> lowlink_;
    std::vector<bool> on_stack_;
    std::vector<uint32_t> comp_;
    std::vector<uint32_t> scc_stack_;
    uint32_t next_index_ = 0;
    uint32_t num_comps_ = 0;
};

/**
 * Check whether a cycle exists in the subgraph induced by completed nodes
 * plus (optionally) one open node `open_node` (kNone for completed-only).
 * Restricting the search to one SCC keeps it cheap.
 */
bool
cycle_with_at_most_one_open(const TxnGraph& g,
                            const std::vector<uint32_t>& comp,
                            uint32_t target_comp, uint32_t open_node)
{
    // DFS cycle detection (colors: 0 white, 1 grey, 2 black) over nodes of
    // `target_comp` that are completed or equal to open_node.
    std::vector<uint8_t> color(g.size(), 0);
    auto eligible = [&](uint32_t v) {
        return comp[v] == target_comp &&
               (g.completed(v) || v == open_node);
    };
    for (uint32_t start = 0; start < g.size(); ++start) {
        if (!eligible(start) || color[start] != 0)
            continue;
        std::vector<std::pair<uint32_t, size_t>> stack{{start, 0}};
        color[start] = 1;
        while (!stack.empty()) {
            auto& [v, child] = stack.back();
            const auto& succ = g.succ(v);
            bool descended = false;
            while (child < succ.size()) {
                uint32_t w = succ[child++];
                if (!eligible(w))
                    continue;
                if (color[w] == 1)
                    return true; // back edge: cycle
                if (color[w] == 0) {
                    color[w] = 1;
                    stack.push_back({w, 0});
                    descended = true;
                    break;
                }
            }
            if (!descended && child >= succ.size()) {
                color[v] = 2;
                stack.pop_back();
            }
        }
    }
    return false;
}

} // namespace

OracleResult
check_serializability(const Trace& trace, const OracleOptions& opts)
{
    const uint32_t nt = trace.num_threads();
    const uint32_t nv = trace.num_vars();
    const uint32_t nl = trace.num_locks();

    TxnGraph graph;
    TxnTracker txns(nt);

    OracleResult result;
    size_t current_index = 0;
    auto record_node = [&](uint32_t n, ThreadId t, bool unary) {
        if (!opts.collect_txn_info)
            return;
        if (n >= result.txn_info.size())
            result.txn_info.resize(n + 1);
        TxnInfo& info = result.txn_info[n];
        info.thread = t;
        info.first_event = current_index;
        info.last_event = current_index;
        info.unary = unary;
        info.completed = unary;
    };
    auto record_touch = [&](uint32_t n, bool completed) {
        if (!opts.collect_txn_info || n >= result.txn_info.size())
            return;
        result.txn_info[n].last_event = current_index;
        if (completed)
            result.txn_info[n].completed = true;
    };

    // Current node of each thread (kNone when between transactions).
    std::vector<uint32_t> cur(nt, kNone);
    // Most recent node of each thread (for program-order chaining and join).
    std::vector<uint32_t> last(nt, kNone);
    // Conflict sources.
    std::vector<uint32_t> last_write(nv, kNone);
    std::vector<uint32_t> last_rel(nl, kNone);
    // last_read[x * nt + t]: node of thread t's last read of x.
    std::vector<uint32_t> last_read(static_cast<size_t>(nv) * nt, kNone);

    // Returns the node for an event of thread t, materializing a unary
    // transaction when t has no open block. Adds the program-order edge.
    auto node_for_event = [&](ThreadId t) -> uint32_t {
        uint32_t n = cur[t];
        if (n == kNone) {
            n = graph.new_node(/*completed=*/true); // unary: instantly done
            graph.add_edge(last[t], n);
            last[t] = n;
            record_node(n, t, /*unary=*/true);
        } else {
            record_touch(n, /*completed=*/false);
        }
        return n;
    };

    for (size_t i = 0; i < trace.size(); ++i) {
        const Event& e = trace[i];
        const ThreadId t = e.tid;
        current_index = i;
        switch (e.op) {
          case Op::kBegin:
            if (txns.on_begin(t)) {
                uint32_t n = graph.new_node(/*completed=*/false);
                graph.add_edge(last[t], n);
                cur[t] = n;
                last[t] = n;
                record_node(n, t, /*unary=*/false);
            }
            break;
          case Op::kEnd:
            if (txns.on_end(t)) {
                record_touch(cur[t], /*completed=*/true);
                graph.mark_completed(cur[t]);
                cur[t] = kNone;
            }
            break;
          case Op::kRead: {
            uint32_t n = node_for_event(t);
            graph.add_edge(last_write[e.target], n);
            last_read[static_cast<size_t>(e.target) * nt + t] = n;
            break;
          }
          case Op::kWrite: {
            uint32_t n = node_for_event(t);
            graph.add_edge(last_write[e.target], n);
            for (uint32_t u = 0; u < nt; ++u) {
                graph.add_edge(
                    last_read[static_cast<size_t>(e.target) * nt + u], n);
            }
            last_write[e.target] = n;
            break;
          }
          case Op::kAcquire: {
            uint32_t n = node_for_event(t);
            graph.add_edge(last_rel[e.target], n);
            break;
          }
          case Op::kRelease: {
            uint32_t n = node_for_event(t);
            last_rel[e.target] = n;
            break;
          }
          case Op::kFork: {
            uint32_t n = node_for_event(t);
            // The fork event conflicts with every event of the child; the
            // edge to the child's first node suffices because the child's
            // later nodes are chained in program order.
            ThreadId u = e.target;
            AERO_ASSERT(u < nt, "fork target out of range");
            // Record as the child's "previous node" so the child's first
            // node picks up the edge.
            if (last[u] == kNone)
                last[u] = n;
            break;
          }
          case Op::kJoin: {
            uint32_t n = node_for_event(t);
            ThreadId u = e.target;
            AERO_ASSERT(u < nt, "join target out of range");
            graph.add_edge(last[u], n);
            break;
          }
        }
    }

    result.num_transactions = graph.size();
    result.num_edges = graph.num_edges();

    auto [comp, num_comps] = TarjanScc(graph).run();
    std::vector<uint32_t> comp_size(num_comps, 0);
    for (uint32_t v = 0; v < graph.size(); ++v)
        ++comp_size[comp[v]];

    std::vector<bool> comp_checked(num_comps, false);
    for (uint32_t v = 0;
         v < graph.size() && !result.detectable_with_one_open; ++v) {
        uint32_t c = comp[v];
        if (comp_size[c] < 2 || comp_checked[c])
            continue;
        comp_checked[c] = true;
        if (result.serializable) {
            result.serializable = false;
            for (uint32_t w = 0; w < graph.size(); ++w) {
                if (comp[w] == c)
                    result.witness_scc.push_back(w);
            }
        }
        // Completed-only cycle?
        if (cycle_with_at_most_one_open(graph, comp, c, kNone)) {
            result.detectable_with_one_open = true;
            break;
        }
        // Otherwise try each open node of this SCC as the single open one.
        for (uint32_t w = 0; w < graph.size(); ++w) {
            if (comp[w] == c && !graph.completed(w) &&
                cycle_with_at_most_one_open(graph, comp, c, w)) {
                result.detectable_with_one_open = true;
                break;
            }
        }
    }
    return result;
}

} // namespace aero
