#include "shard/sharded_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "shard/spsc_queue.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"
#include "trace/stream.hpp"

namespace aero {
namespace {

/** One queue slot: an event tagged with its global index, or a control
 *  marker (merge barrier / end of stream). */
struct ShardItem {
    enum Kind : uint8_t { kEvent = 0, kMerge = 1, kEof = 2 };

    Event event{0, 0, Op::kBegin};
    uint64_t index = 0;
    uint8_t kind = kEvent;
};

/** Per-shard state shared by both drivers. */
struct Lane {
    std::unique_ptr<AtomicityChecker> engine;
    std::unique_ptr<SpscQueue<ShardItem>> queue; // threaded driver only
    std::optional<Violation> violation;          // this lane's first fire
    uint64_t processed = 0;                      // events fed to the engine
    /** Highest global index this worker has consumed (UINT64_MAX once the
     *  lane can never fire again) — the window log's pruning horizon.
     *  Single-writer; the reader polls it relaxed. */
    std::atomic<uint64_t> progress{0};
};

/** Pointwise-max of every lane's per-thread clocks, pushed back to all:
 *  after a merge each C_t is the best bound any shard has derived. */
class FrontierMerger {
public:
    void
    merge(std::vector<Lane>& lanes)
    {
        if (lanes.size() < 2)
            return;
        // Seed with lane 0's export (reset keeps the buffer's capacity)
        // and join the rest in. After the first merge every engine has
        // adopted the same thread count, so the exports share dimensions
        // and join() never takes its reallocating grow path again —
        // steady-state merges are allocation-free.
        lanes[0].engine->export_frontier(merged_);
        for (size_t i = 1; i < lanes.size(); ++i) {
            lanes[i].engine->export_frontier(scratch_);
            merged_.join(scratch_);
        }
        for (auto& lane : lanes)
            lane.engine->adopt_frontier(merged_);
    }

private:
    ClockFrontier merged_;
    ClockFrontier scratch_;
};

/**
 * Joined per-merge engine seeds for the suspect-window confirmation
 * replay, keyed by merge generation. capture() runs wherever the merge
 * itself runs (under the threaded barrier's mutex, or inline), so
 * accesses are serialized; the reader trims old generations through the
 * atomic watermark and the final lookup happens after the workers have
 * joined.
 */
class SeedLog {
public:
    explicit SeedLog(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    void
    capture(std::vector<Lane>& lanes, uint64_t generation)
    {
        if (!enabled_)
            return;
        const uint64_t min_needed =
            min_needed_.load(std::memory_order_relaxed);
        seeds_.erase(seeds_.begin(), seeds_.lower_bound(min_needed));
        EngineSeed joined;
        lanes[0].engine->export_seed(joined);
        for (size_t i = 1; i < lanes.size(); ++i) {
            lanes[i].engine->export_seed(scratch_);
            joined.join(scratch_);
        }
        seeds_[generation] = std::move(joined);
    }

    void
    set_min_needed(uint64_t generation)
    {
        min_needed_.store(generation, std::memory_order_relaxed);
    }

    /** Lookup after the run has quiesced; null if pruned/absent. */
    const EngineSeed*
    find(uint64_t generation) const
    {
        auto it = seeds_.find(generation);
        return it == seeds_.end() ? nullptr : &it->second;
    }

private:
    bool enabled_;
    std::map<uint64_t, EngineSeed> seeds_;
    EngineSeed scratch_;
    std::atomic<uint64_t> min_needed_{0};
};

/** One buffered suspect window: the full (unprojected) event run between
 *  two merges, plus the generation of the merge that opened it. */
struct ReplayWindow {
    static constexpr uint64_t kNoGeneration = UINT64_MAX;

    uint64_t generation = kNoGeneration; // merge that started this window
    uint64_t start = 0;
    std::vector<ProjectedEvent> events;
};

/**
 * Rolling store of suspect windows (confirmation-replay mode only).
 * Windows are dropped once every lane's progress has passed them —
 * no violation can be raised inside them anymore — unless they contain
 * the current first-violation candidate.
 */
class WindowLog {
public:
    explicit WindowLog(bool enabled) : enabled_(enabled)
    {
        if (enabled_)
            windows_.emplace_back(); // initial window: fresh engines
    }

    bool enabled() const { return enabled_; }

    void
    record(const Event& e, uint64_t index)
    {
        if (enabled_)
            windows_.back().events.push_back({e, index});
    }

    /** Start the window opened by merge `generation` at `start`. */
    void
    rotate(uint64_t generation, uint64_t start)
    {
        if (!enabled_)
            return;
        ReplayWindow w;
        w.generation = generation;
        w.start = start;
        windows_.push_back(std::move(w));
    }

    /** Drop windows that end at or before `min_progress`, keeping the
     *  one containing `suspect_min`; advance the seed watermark. */
    void
    prune(uint64_t min_progress, uint64_t suspect_min, SeedLog& seeds)
    {
        if (!enabled_)
            return;
        while (windows_.size() > 1) {
            const uint64_t end = windows_[1].start;
            if (end > min_progress)
                break;
            if (windows_.front().start <= suspect_min && suspect_min < end)
                break;
            windows_.pop_front();
        }
        if (windows_.front().generation != ReplayWindow::kNoGeneration)
            seeds.set_min_needed(windows_.front().generation);
    }

    /** Window containing global index `i`, or null if it was pruned. */
    const ReplayWindow*
    find(uint64_t i) const
    {
        for (size_t w = 0; w < windows_.size(); ++w) {
            const uint64_t end = w + 1 < windows_.size()
                                     ? windows_[w + 1].start
                                     : UINT64_MAX;
            if (windows_[w].start <= i && i < end)
                return &windows_[w];
        }
        return nullptr;
    }

private:
    bool enabled_;
    std::deque<ReplayWindow> windows_;
};

/**
 * Generation barrier for the threaded driver. Workers arrive when they
 * pop a kMerge marker; the last arriver — while every other active
 * worker is parked in wait() and every retired worker has left its
 * engine quiescent behind the same mutex — performs the frontier merge
 * (and, in replay mode, captures the joined engine seed), then releases
 * the generation. retire() removes a finished worker from the head count
 * (and completes a merge it was the last straggler of).
 */
class MergeBarrier {
public:
    MergeBarrier(std::vector<Lane>& lanes, uint64_t& merges, SeedLog& seeds)
        : lanes_(lanes), merges_(merges), seeds_(seeds),
          active_(lanes.size())
    {}

    void
    arrive()
    {
        std::unique_lock<std::mutex> lk(mu_);
        const uint64_t gen = generation_;
        if (++arrived_ == active_) {
            run_merge();
            lk.unlock();
            cv_.notify_all();
            return;
        }
        cv_.wait(lk, [&] { return generation_ != gen; });
    }

    void
    retire()
    {
        std::unique_lock<std::mutex> lk(mu_);
        --active_;
        if (active_ > 0 && arrived_ == active_) {
            run_merge();
            lk.unlock();
            cv_.notify_all();
        }
    }

private:
    void
    run_merge() // caller holds mu_
    {
        merger_.merge(lanes_);
        seeds_.capture(lanes_, generation_);
        ++merges_;
        arrived_ = 0;
        ++generation_;
    }

    std::vector<Lane>& lanes_;
    uint64_t& merges_;
    SeedLog& seeds_;
    FrontierMerger merger_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t active_;
    size_t arrived_ = 0;
    uint64_t generation_ = 0;
};

/** Pin the calling thread to one core (ShardOptions::pin_workers).
 *  Best-effort: a failed or unsupported set_affinity is ignored. */
void
pin_to_core(uint32_t core)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % CPU_SETSIZE, &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)core;
#endif
}

/**
 * Shard worker: drain the queue, feeding events to the engine until it
 * fires or the global violation horizon passes them by. A fired lane
 * keeps draining (and keeps arriving at merge barriers) so the pipeline
 * never stalls; its engine is simply not fed again.
 */
void
worker_loop(Lane& lane, MergeBarrier& barrier,
            std::atomic<uint64_t>& stop_at, int pin_core)
{
    if (pin_core >= 0)
        pin_to_core(static_cast<uint32_t>(pin_core));
    for (;;) {
        ShardItem it = lane.queue->pop();
        if (it.kind == ShardItem::kEof) {
            lane.progress.store(UINT64_MAX, std::memory_order_relaxed);
            barrier.retire();
            return;
        }
        if (it.kind == ShardItem::kMerge) {
            barrier.arrive();
            continue;
        }
        if (lane.violation)
            continue; // progress stays pinned at UINT64_MAX
        lane.progress.store(it.index, std::memory_order_relaxed);
        // Events past the earliest known violation can never win the
        // first-violation join; events at or before it are always fed
        // (stop_at only ever decreases, and never below the winner).
        if (it.index > stop_at.load(std::memory_order_relaxed))
            continue;
        ++lane.processed;
        if (lane.engine->process(it.event, it.index)) {
            lane.violation = lane.engine->violation();
            uint64_t cur = stop_at.load(std::memory_order_relaxed);
            while (it.index < cur &&
                   !stop_at.compare_exchange_weak(
                       cur, it.index, std::memory_order_relaxed)) {
            }
            // Publish stop_at strictly before the progress sentinel: the
            // reader prunes replay windows by (progress horizon,
            // suspect minimum), and must never observe a fired lane's
            // "cannot fire again" progress without its suspect index —
            // that would let it drop the window the verdict needs.
            lane.progress.store(UINT64_MAX, std::memory_order_release);
        }
    }
}

std::vector<Lane>
make_lanes(const EngineFactory& factory, uint32_t shards, bool with_queues,
           size_t queue_capacity)
{
    if (shards > ShardOptions::kMaxShards) {
        fatal("shard count " + std::to_string(shards) +
              " exceeds the supported maximum of " +
              std::to_string(ShardOptions::kMaxShards));
    }
    std::vector<Lane> lanes(shards);
    for (auto& lane : lanes) {
        lane.engine = factory();
        AERO_ASSERT(lane.engine != nullptr,
                    "EngineFactory returned a null checker");
        if (with_queues)
            lane.queue =
                std::make_unique<SpscQueue<ShardItem>>(queue_capacity);
    }
    // Rejected regardless of merge cadence: even a merge-free sharded run
    // relies on the frontier contract existing for the mode toggles to be
    // meaningful, and a frontier-less engine sharded without merges would
    // silently miss cross-shard cycles.
    if (shards > 1 && !lanes[0].engine->supports_frontier()) {
        fatal("engine '" + std::string(lanes[0].engine->name()) +
              "' does not maintain a per-thread clock frontier; it cannot "
              "be sharded (run with --shards 1)");
    }
    return lanes;
}

void
reserve_lanes(std::vector<Lane>& lanes, uint32_t threads, uint32_t vars,
              uint32_t locks)
{
    for (auto& lane : lanes)
        lane.engine->reserve(threads, vars, locks);
}

/** True when this configuration runs the exact divergence barriers. */
bool
barriers_active(const ShardOptions& opts, uint32_t shards)
{
    return opts.divergence_barriers && shards > 1 &&
           opts.merge_epoch >= 2; // 0 = never merge, 1 = lockstep
}

/** True when shard violations are suspects needing confirmation replay. */
bool
replay_active(const ShardOptions& opts, uint32_t shards)
{
    return opts.confirm_replay && shards > 1 && opts.merge_epoch != 1 &&
           !barriers_active(opts, shards);
}

/** First violation wins (ties broken by lowest shard id). */
const Lane*
pick_winner(const std::vector<Lane>& lanes, uint32_t& winner_shard)
{
    const Lane* winner = nullptr;
    for (uint32_t s = 0; s < lanes.size(); ++s) {
        const Lane& lane = lanes[s];
        if (lane.violation &&
            (!winner || lane.violation->event_index <
                            winner->violation->event_index)) {
            winner = &lane;
            winner_shard = s;
        }
    }
    return winner;
}

/**
 * Confirmation replay of a suspect: sequentially re-check the buffered
 * window containing the suspect through a fresh engine reseeded from the
 * joined per-shard seeds of the merge that opened the window. The replay
 * engine's clocks under-approximate the single engine's (missing
 * variable/lock clocks are bottom), so anything it fires is real; a fire
 * *before* the suspect index refines the verdict toward the exact one,
 * and a miss upholds the shard's (still sound) violation.
 */
void
confirm_suspect(const EngineFactory& factory, const WindowLog& windows,
                const SeedLog& seeds, std::optional<Violation>& verdict,
                uint32_t winner_shard, ShardRunResult& out)
{
    ++out.suspects;
    const uint64_t suspect = verdict->event_index;
    const ReplayWindow* window = windows.find(suspect);
    if (!window)
        return; // pruned (cannot happen; defensively keep the suspect)
    const EngineSeed* seed = nullptr;
    if (window->generation != ReplayWindow::kNoGeneration) {
        seed = seeds.find(window->generation);
        if (!seed)
            return; // seed pruned: uphold the suspect
    }

    ++out.replays;
    std::unique_ptr<AtomicityChecker> engine = factory();
    if (seed)
        engine->reseed(*seed);
    std::optional<Violation> refired;
    for (const ProjectedEvent& pe : window->events) {
        if (pe.index > suspect)
            break;
        if (engine->process(pe.event, pe.index)) {
            refired = engine->violation();
            break;
        }
    }
    if (!refired) {
        ++out.replay_upheld;
        return;
    }
    if (refired->event_index >= suspect) {
        ++out.replay_confirmed;
        return; // same index: keep the shard's own evidence
    }
    ++out.replay_refined;
    refired->shard = winner_shard;
    verdict = std::move(refired);
}

/** Assemble the joined verdict and the counter aggregation. */
void
join_verdicts(const EngineFactory& factory, std::vector<Lane>& lanes,
              const WindowLog& windows, const SeedLog& seeds,
              ShardRunResult& out, uint64_t events_routed)
{
    RunResult& r = out.result;
    uint32_t winner_shard = 0;
    const Lane* winner = pick_winner(lanes, winner_shard);
    if (winner) {
        std::optional<Violation> verdict = winner->violation;
        verdict->shard = winner_shard;
        if (windows.enabled())
            confirm_suspect(factory, windows, seeds, verdict, winner_shard,
                            out);
        r.violation = true;
        r.timed_out = false; // a found violation is a definitive verdict
        r.events_processed = verdict->event_index + 1;
        r.details = std::move(verdict);
    } else {
        r.events_processed = events_routed;
    }

    for (auto& lane : lanes) {
        out.shard_counters.push_back(lane.engine->counters());
        out.shard_events.push_back(lane.processed);
        uint64_t bytes = lane.engine->memory_bytes();
        if (lane.queue)
            bytes += (lane.queue->capacity() + 1) * sizeof(ShardItem);
        out.shard_memory_bytes.push_back(bytes);
    }
    for (const StatList& counters : out.shard_counters) {
        for (const auto& entry : counters) {
            auto it = std::find_if(r.counters.begin(), r.counters.end(),
                                   [&entry](const auto& kv) {
                                       return kv.first == entry.first;
                                   });
            if (it == r.counters.end())
                r.counters.push_back(entry);
            else
                it->second += entry.second;
        }
    }
}

/** Lowest index any still-fireable lane may yet fire at. Acquire pairs
 *  with the fired lane's release store, so a UINT64_MAX read here
 *  guarantees that lane's stop_at update is visible too. */
uint64_t
min_progress(const std::vector<Lane>& lanes)
{
    uint64_t f = UINT64_MAX;
    for (const Lane& lane : lanes)
        f = std::min(f, lane.progress.load(std::memory_order_acquire));
    return f;
}

} // namespace

ShardRunResult
run_sharded(const EngineFactory& factory, EventSource& source,
            const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes = make_lanes(factory, shards,
                                         /*with_queues=*/true,
                                         opts.queue_capacity);

    uint32_t threads = 0, vars = 0, locks = 0;
    if (source.dimensions(threads, vars, locks))
        reserve_lanes(lanes, threads, vars, locks);

    ShardRunResult out;
    out.shards = shards;
    SeedLog seeds(replay_active(opts, shards));
    WindowLog windows(replay_active(opts, shards));
    MergeBarrier barrier(lanes, out.frontier_merges, seeds);
    MergePlanner planner(router, shards > 1 ? opts.merge_epoch : 0,
                         opts.divergence_barriers,
                         lanes[0].engine->uses_live_clock_proxies());
    std::atomic<uint64_t> stop_at{UINT64_MAX};

    const unsigned cores = std::thread::hardware_concurrency();
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (uint32_t s = 0; s < shards; ++s) {
        const int pin_core =
            opts.pin_workers && cores > 0 ? static_cast<int>(s % cores) : -1;
        workers.emplace_back(worker_loop, std::ref(lanes[s]),
                             std::ref(barrier), std::ref(stop_at), pin_core);
    }

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    uint64_t index = 0;
    uint64_t merge_generation = 0;

    auto shut_down = [&] {
        ShardItem eof;
        eof.kind = ShardItem::kEof;
        for (auto& lane : lanes)
            lane.queue->push(eof);
        for (auto& w : workers)
            w.join();
    };

    try {
        Event e;
        while (source.next(e)) {
            if (limited && (index % opts.budget.check_interval) == 0 &&
                watch.elapsed_seconds() > opts.budget.max_seconds) {
                out.result.timed_out = true;
                break;
            }
            // Anything past the earliest reported violation cannot affect
            // the joined verdict; stop decoding.
            if (index > stop_at.load(std::memory_order_relaxed))
                break;
            if (planner.merge_before(e, index)) {
                // Markers go to *every* queue before any later event, so
                // each barrier generation is complete once issued.
                ShardItem m;
                m.kind = ShardItem::kMerge;
                for (auto& lane : lanes)
                    lane.queue->push(m);
                windows.rotate(merge_generation++, index);
                // Horizon first, suspect minimum second: the acquire in
                // min_progress orders any fired lane's stop_at update
                // before this load.
                const uint64_t horizon = min_progress(lanes);
                windows.prune(horizon,
                              stop_at.load(std::memory_order_relaxed),
                              seeds);
            }
            windows.record(e, index);
            ShardItem it;
            it.event = e;
            it.index = index;
            it.kind = ShardItem::kEvent;
            const uint32_t dst = router.shard_of(e);
            if (dst == ShardRouter::kBroadcast) {
                for (auto& lane : lanes)
                    lane.queue->push(it);
            } else {
                lanes[dst].queue->push(it);
            }
            ++index;
        }
    } catch (...) {
        shut_down(); // corrupt input mid-stream: unwind the pipeline first
        throw;
    }
    shut_down();

    out.barrier_merges = planner.barrier_merges();
    join_verdicts(factory, lanes, windows, seeds, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

ShardRunResult
run_sharded(const EngineFactory& factory, const Trace& trace,
            const ShardOptions& opts)
{
    TraceSource source(trace);
    return run_sharded(factory, source, opts);
}

ShardRunResult
run_sharded_inline(const EngineFactory& factory, const Trace& trace,
                   const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes =
        make_lanes(factory, shards, /*with_queues=*/false, 0);
    reserve_lanes(lanes, trace.num_threads(), trace.num_vars(),
                  trace.num_locks());

    ShardRunResult out;
    out.shards = shards;
    SeedLog seeds(replay_active(opts, shards));
    WindowLog windows(replay_active(opts, shards));
    FrontierMerger merger;
    MergePlanner planner(router, shards > 1 ? opts.merge_epoch : 0,
                         opts.divergence_barriers,
                         lanes[0].engine->uses_live_clock_proxies());
    uint64_t stop_at = UINT64_MAX;
    uint64_t merge_generation = 0;
    std::vector<std::vector<ProjectedEvent>> pending(shards);

    // Between two merges the lanes share no state, so processing each
    // lane's pending slice in turn is observably identical to the
    // threaded driver's arbitrary interleaving.
    auto flush = [&] {
        for (uint32_t s = 0; s < shards; ++s) {
            Lane& lane = lanes[s];
            for (const ProjectedEvent& pe : pending[s]) {
                if (lane.violation || pe.index > stop_at)
                    continue;
                ++lane.processed;
                if (lane.engine->process(pe.event, pe.index)) {
                    lane.violation = lane.engine->violation();
                    if (pe.index < stop_at)
                        stop_at = pe.index;
                }
            }
            pending[s].clear();
        }
    };

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    const auto& events = trace.events();
    uint64_t index = 0;
    for (; index < events.size(); ++index) {
        const Event& e = events[index];
        if (limited && (index % opts.budget.check_interval) == 0 &&
            watch.elapsed_seconds() > opts.budget.max_seconds) {
            out.result.timed_out = true;
            break;
        }
        if (index > stop_at)
            break;
        if (planner.merge_before(e, index)) {
            flush();
            merger.merge(lanes);
            seeds.capture(lanes, merge_generation);
            ++out.frontier_merges;
            windows.rotate(merge_generation++, index);
            windows.prune(index, stop_at, seeds);
        }
        windows.record(e, index);
        const uint32_t dst = router.shard_of(e);
        if (dst == ShardRouter::kBroadcast) {
            for (auto& lane : pending)
                lane.push_back({e, index});
        } else {
            pending[dst].push_back({e, index});
        }
    }
    flush();

    out.barrier_merges = planner.barrier_merges();
    join_verdicts(factory, lanes, windows, seeds, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

} // namespace aero
