#include "shard/sharded_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "shard/spsc_queue.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"
#include "trace/stream.hpp"

namespace aero {
namespace {

/** One queue slot: an event tagged with its global index, or a control
 *  marker (merge barrier / end of stream). */
struct ShardItem {
    enum Kind : uint8_t { kEvent = 0, kMerge = 1, kEof = 2 };

    Event event{0, 0, Op::kBegin};
    uint64_t index = 0;
    uint8_t kind = kEvent;
};

/** Per-shard state shared by both drivers. */
struct Lane {
    std::unique_ptr<AtomicityChecker> engine;
    std::unique_ptr<SpscQueue<ShardItem>> queue; // threaded driver only
    std::optional<Violation> violation;          // this lane's first fire
    uint64_t processed = 0;                      // events fed to the engine
};

/** Pointwise-max of every lane's per-thread clocks, pushed back to all:
 *  after a merge each C_t is the best bound any shard has derived. */
class FrontierMerger {
public:
    void
    merge(std::vector<Lane>& lanes)
    {
        if (lanes.size() < 2)
            return;
        // Seed with lane 0's export (reset keeps the buffer's capacity)
        // and join the rest in. After the first merge every engine has
        // adopted the same thread count, so the exports share dimensions
        // and join() never takes its reallocating grow path again —
        // steady-state merges are allocation-free.
        lanes[0].engine->export_frontier(merged_);
        for (size_t i = 1; i < lanes.size(); ++i) {
            lanes[i].engine->export_frontier(scratch_);
            merged_.join(scratch_);
        }
        for (auto& lane : lanes)
            lane.engine->adopt_frontier(merged_);
    }

private:
    ClockFrontier merged_;
    ClockFrontier scratch_;
};

/**
 * Generation barrier for the threaded driver. Workers arrive when they
 * pop a kMerge marker; the last arriver — while every other active
 * worker is parked in wait() and every retired worker has left its
 * engine quiescent behind the same mutex — performs the frontier merge,
 * then releases the generation. retire() removes a finished worker from
 * the head count (and completes a merge it was the last straggler of).
 */
class MergeBarrier {
public:
    MergeBarrier(std::vector<Lane>& lanes, uint64_t& merges)
        : lanes_(lanes), merges_(merges), active_(lanes.size())
    {}

    void
    arrive()
    {
        std::unique_lock<std::mutex> lk(mu_);
        const uint64_t gen = generation_;
        if (++arrived_ == active_) {
            run_merge();
            lk.unlock();
            cv_.notify_all();
            return;
        }
        cv_.wait(lk, [&] { return generation_ != gen; });
    }

    void
    retire()
    {
        std::unique_lock<std::mutex> lk(mu_);
        --active_;
        if (active_ > 0 && arrived_ == active_) {
            run_merge();
            lk.unlock();
            cv_.notify_all();
        }
    }

private:
    void
    run_merge() // caller holds mu_
    {
        merger_.merge(lanes_);
        ++merges_;
        arrived_ = 0;
        ++generation_;
    }

    std::vector<Lane>& lanes_;
    uint64_t& merges_;
    FrontierMerger merger_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t active_;
    size_t arrived_ = 0;
    uint64_t generation_ = 0;
};

/**
 * Shard worker: drain the queue, feeding events to the engine until it
 * fires or the global violation horizon passes them by. A fired lane
 * keeps draining (and keeps arriving at merge barriers) so the pipeline
 * never stalls; its engine is simply not fed again.
 */
void
worker_loop(Lane& lane, MergeBarrier& barrier,
            std::atomic<uint64_t>& stop_at)
{
    for (;;) {
        ShardItem it = lane.queue->pop();
        if (it.kind == ShardItem::kEof) {
            barrier.retire();
            return;
        }
        if (it.kind == ShardItem::kMerge) {
            barrier.arrive();
            continue;
        }
        if (lane.violation)
            continue;
        // Events past the earliest known violation can never win the
        // first-violation join; events at or before it are always fed
        // (stop_at only ever decreases, and never below the winner).
        if (it.index > stop_at.load(std::memory_order_relaxed))
            continue;
        ++lane.processed;
        if (lane.engine->process(it.event, it.index)) {
            lane.violation = lane.engine->violation();
            uint64_t cur = stop_at.load(std::memory_order_relaxed);
            while (it.index < cur &&
                   !stop_at.compare_exchange_weak(
                       cur, it.index, std::memory_order_relaxed)) {
            }
        }
    }
}

std::vector<Lane>
make_lanes(const EngineFactory& factory, uint32_t shards, bool with_queues,
           size_t queue_capacity)
{
    if (shards > ShardOptions::kMaxShards) {
        fatal("shard count " + std::to_string(shards) +
              " exceeds the supported maximum of " +
              std::to_string(ShardOptions::kMaxShards));
    }
    std::vector<Lane> lanes(shards);
    for (auto& lane : lanes) {
        lane.engine = factory();
        AERO_ASSERT(lane.engine != nullptr,
                    "EngineFactory returned a null checker");
        if (with_queues)
            lane.queue =
                std::make_unique<SpscQueue<ShardItem>>(queue_capacity);
    }
    // Rejected regardless of merge cadence: even a merge-free sharded run
    // relies on the frontier contract existing for the mode toggles to be
    // meaningful, and a frontier-less engine sharded without merges would
    // silently miss cross-shard cycles.
    if (shards > 1 && !lanes[0].engine->supports_frontier()) {
        fatal("engine '" + std::string(lanes[0].engine->name()) +
              "' does not maintain a per-thread clock frontier; it cannot "
              "be sharded (run with --shards 1)");
    }
    return lanes;
}

void
reserve_lanes(std::vector<Lane>& lanes, uint32_t threads, uint32_t vars,
              uint32_t locks)
{
    for (auto& lane : lanes)
        lane.engine->reserve(threads, vars, locks);
}

/** First violation wins (ties broken by lowest shard id); counters are
 *  summed name-wise across shards and kept per shard. */
void
join_verdicts(std::vector<Lane>& lanes, ShardRunResult& out,
              uint64_t events_routed)
{
    RunResult& r = out.result;
    const Lane* winner = nullptr;
    uint32_t winner_shard = 0;
    for (uint32_t s = 0; s < lanes.size(); ++s) {
        const Lane& lane = lanes[s];
        if (lane.violation &&
            (!winner || lane.violation->event_index <
                            winner->violation->event_index)) {
            winner = &lane;
            winner_shard = s;
        }
    }
    if (winner) {
        r.violation = true;
        r.timed_out = false; // a found violation is a definitive verdict
        r.details = winner->violation;
        r.details->shard = winner_shard;
        r.events_processed = winner->violation->event_index + 1;
    } else {
        r.events_processed = events_routed;
    }

    for (auto& lane : lanes) {
        out.shard_counters.push_back(lane.engine->counters());
        out.shard_events.push_back(lane.processed);
    }
    for (const StatList& counters : out.shard_counters) {
        for (const auto& entry : counters) {
            auto it = std::find_if(r.counters.begin(), r.counters.end(),
                                   [&entry](const auto& kv) {
                                       return kv.first == entry.first;
                                   });
            if (it == r.counters.end())
                r.counters.push_back(entry);
            else
                it->second += entry.second;
        }
    }
}

} // namespace

ShardRunResult
run_sharded(const EngineFactory& factory, EventSource& source,
            const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes = make_lanes(factory, shards,
                                         /*with_queues=*/true,
                                         opts.queue_capacity);

    uint32_t threads = 0, vars = 0, locks = 0;
    if (source.dimensions(threads, vars, locks))
        reserve_lanes(lanes, threads, vars, locks);

    ShardRunResult out;
    out.shards = shards;
    MergeBarrier barrier(lanes, out.frontier_merges);
    std::atomic<uint64_t> stop_at{UINT64_MAX};

    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (auto& lane : lanes) {
        workers.emplace_back(worker_loop, std::ref(lane), std::ref(barrier),
                             std::ref(stop_at));
    }

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    const uint64_t k = (opts.merge_epoch && shards > 1) ? opts.merge_epoch
                                                        : 0;
    uint64_t next_merge = k ? k : UINT64_MAX;
    uint64_t index = 0;

    auto shut_down = [&] {
        ShardItem eof;
        eof.kind = ShardItem::kEof;
        for (auto& lane : lanes)
            lane.queue->push(eof);
        for (auto& w : workers)
            w.join();
    };

    try {
        Event e;
        while (source.next(e)) {
            if (limited && (index % opts.budget.check_interval) == 0 &&
                watch.elapsed_seconds() > opts.budget.max_seconds) {
                out.result.timed_out = true;
                break;
            }
            // Anything past the earliest reported violation cannot affect
            // the joined verdict; stop decoding.
            if (index > stop_at.load(std::memory_order_relaxed))
                break;
            if (index >= next_merge) {
                // Markers go to *every* queue before any later event, so
                // each barrier generation is complete once issued.
                ShardItem m;
                m.kind = ShardItem::kMerge;
                for (auto& lane : lanes)
                    lane.queue->push(m);
                next_merge += k;
            }
            ShardItem it;
            it.event = e;
            it.index = index;
            it.kind = ShardItem::kEvent;
            const uint32_t dst = router.shard_of(e);
            if (dst == ShardRouter::kBroadcast) {
                for (auto& lane : lanes)
                    lane.queue->push(it);
            } else {
                lanes[dst].queue->push(it);
            }
            ++index;
        }
    } catch (...) {
        shut_down(); // corrupt input mid-stream: unwind the pipeline first
        throw;
    }
    shut_down();

    join_verdicts(lanes, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

ShardRunResult
run_sharded(const EngineFactory& factory, const Trace& trace,
            const ShardOptions& opts)
{
    TraceSource source(trace);
    return run_sharded(factory, source, opts);
}

ShardRunResult
run_sharded_inline(const EngineFactory& factory, const Trace& trace,
                   const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes =
        make_lanes(factory, shards, /*with_queues=*/false, 0);
    reserve_lanes(lanes, trace.num_threads(), trace.num_vars(),
                  trace.num_locks());

    ShardRunResult out;
    out.shards = shards;
    FrontierMerger merger;
    uint64_t stop_at = UINT64_MAX;
    std::vector<std::vector<ProjectedEvent>> pending(shards);

    // Between two merges the lanes share no state, so processing each
    // lane's pending slice in turn is observably identical to the
    // threaded driver's arbitrary interleaving.
    auto flush = [&] {
        for (uint32_t s = 0; s < shards; ++s) {
            Lane& lane = lanes[s];
            for (const ProjectedEvent& pe : pending[s]) {
                if (lane.violation || pe.index > stop_at)
                    continue;
                ++lane.processed;
                if (lane.engine->process(pe.event, pe.index)) {
                    lane.violation = lane.engine->violation();
                    if (pe.index < stop_at)
                        stop_at = pe.index;
                }
            }
            pending[s].clear();
        }
    };

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    const uint64_t k = (opts.merge_epoch && shards > 1) ? opts.merge_epoch
                                                        : 0;
    uint64_t next_merge = k ? k : UINT64_MAX;
    const auto& events = trace.events();
    uint64_t index = 0;
    for (; index < events.size(); ++index) {
        if (limited && (index % opts.budget.check_interval) == 0 &&
            watch.elapsed_seconds() > opts.budget.max_seconds) {
            out.result.timed_out = true;
            break;
        }
        if (index > stop_at)
            break;
        if (index >= next_merge) {
            flush();
            merger.merge(lanes);
            ++out.frontier_merges;
            next_merge += k;
        }
        const Event& e = events[index];
        const uint32_t dst = router.shard_of(e);
        if (dst == ShardRouter::kBroadcast) {
            for (auto& lane : pending)
                lane.push_back({e, index});
        } else {
            pending[dst].push_back({e, index});
        }
    }
    flush();

    join_verdicts(lanes, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

} // namespace aero
