#include "shard/sharded_runner.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "shard/spsc_queue.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/stopwatch.hpp"
#include "trace/stream.hpp"

namespace aero {
namespace {

/** One queue slot: an event tagged with its global index, or a control
 *  marker (merge barrier / end of stream). A kMerge marker's `index`
 *  carries the merge generation it completes, so the barrier can ignore
 *  arrivals for generations that already completed without this lane
 *  (possible only across an eviction/re-admission). */
struct ShardItem {
    enum Kind : uint8_t { kEvent = 0, kMerge = 1, kEof = 2 };

    Event event{0, 0, Op::kBegin};
    uint64_t index = 0;
    uint8_t kind = kEvent;
};

/** Resolve ShardOptions::batch_size: 0 falls back to the AERO_BATCH
 *  environment variable, then to 256. Clamped to [1, 65536]. */
uint32_t
resolve_batch_size(uint32_t configured)
{
    uint64_t batch = configured;
    if (batch == 0) {
        batch = 256;
        if (const char* env = std::getenv("AERO_BATCH")) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v >= 1)
                batch = v;
        }
    }
    return static_cast<uint32_t>(
        std::min<uint64_t>(std::max<uint64_t>(batch, 1), 65536));
}

/** Worker pop slice: long enough to stay off the fast path, short enough
 *  that an evicted worker notices `failed` and exits promptly. */
constexpr uint64_t kPopSliceUs = 50 * 1000;
/** Reader push slice while the watchdog is active: the cadence at which
 *  a blocked reader re-runs the health sweep. */
constexpr uint64_t kPushSliceUs = 20 * 1000;

/** Per-shard state shared by both drivers. */
struct Lane {
    std::unique_ptr<AtomicityChecker> engine;
    std::unique_ptr<SpscQueue<ShardItem>> queue; // threaded driver only

    /** Guards violation and worker_error: a late fire from an evicted
     *  worker and the recovery replay may race to publish evidence. */
    std::mutex verdict_mu;
    std::optional<Violation> violation; // this lane's first fire
    std::string worker_error;           // contained engine panic, if any

    std::atomic<uint64_t> processed{0}; // events fed to the engine
    /** Highest global index this worker has consumed (UINT64_MAX once the
     *  lane can never fire again) — the window log's pruning horizon.
     *  Single-writer; the reader polls it relaxed. */
    std::atomic<uint64_t> progress{0};
    /** Bumped once per popped item; the watchdog's liveness signal. */
    std::atomic<uint64_t> heartbeat{0};
    /** Set (under the barrier mutex) when the reader evicts this worker;
     *  cleared on admit of a replacement. The worker must stop touching
     *  shared state once it observes it. */
    std::atomic<bool> failed{false};
    /** Bumped (under the barrier mutex) each time a replacement worker is
     *  admitted. A worker that survives its own eviction — a stalled
     *  thread that wakes after `failed` was already cleared for its
     *  replacement — detects the mismatch against the incarnation it was
     *  spawned with and exits instead of haunting the retired queue. */
    std::atomic<uint64_t> incarnation{0};
    /** Worker is parked inside the merge barrier (healthy by definition:
     *  parked is progress, not a stall). */
    std::atomic<bool> at_barrier{false};
    /** Worker consumed kEof and retired cleanly. */
    std::atomic<bool> done{false};

    // Reader-owned bookkeeping (never touched by workers).
    uint32_t recovery_count = 0;
    bool abandoned = false;
    bool recovered_final = false; // shutdown-time replay already ran
};

/** Publish a fire into the lane, keeping the earliest evidence — both a
 *  (possibly already evicted) worker and the recovery replay call this. */
void
publish_violation(Lane& lane, std::optional<Violation> v,
                  std::atomic<uint64_t>& stop_at)
{
    if (!v)
        return;
    const uint64_t index = v->event_index;
    {
        std::lock_guard<std::mutex> lk(lane.verdict_mu);
        if (!lane.violation || index < lane.violation->event_index)
            lane.violation = std::move(v);
    }
    uint64_t cur = stop_at.load(std::memory_order_relaxed);
    while (index < cur && !stop_at.compare_exchange_weak(
                              cur, index, std::memory_order_relaxed)) {
    }
}

/** Pointwise-max of every live lane's per-thread clocks, pushed back to
 *  all of them: after a merge each C_t is the best bound any shard has
 *  derived. Failed lanes are excluded — their engines may be mid-flight
 *  on an evicted worker and their state is being reconstructed. */
class FrontierMerger {
public:
    void
    merge(std::vector<Lane>& lanes)
    {
        Lane* first = nullptr;
        size_t active = 0;
        for (auto& lane : lanes) {
            if (lane.failed.load(std::memory_order_relaxed))
                continue;
            ++active;
            if (!first)
                first = &lane;
        }
        if (active < 2)
            return;
        // Seed with the first live lane's export (reset keeps the
        // buffer's capacity) and join the rest in. After the first merge
        // every engine has adopted the same thread count, so the exports
        // share dimensions and join() never takes its reallocating grow
        // path again — steady-state merges are allocation-free.
        first->engine->export_frontier(merged_);
        for (auto& lane : lanes) {
            if (&lane == first || lane.failed.load(std::memory_order_relaxed))
                continue;
            lane.engine->export_frontier(scratch_);
            merged_.join(scratch_);
        }
        for (auto& lane : lanes) {
            if (!lane.failed.load(std::memory_order_relaxed))
                lane.engine->adopt_frontier(merged_);
        }
    }

private:
    ClockFrontier merged_;
    ClockFrontier scratch_;
};

/** One buffered suspect window: the full (unprojected) event run between
 *  two merges, plus the generation of the merge that opened it. */
struct ReplayWindow {
    static constexpr uint64_t kNoGeneration = UINT64_MAX;

    uint64_t generation = kNoGeneration; // merge that started this window
    uint64_t start = 0;
    std::vector<ProjectedEvent> events;
};

/**
 * Joined per-merge engine seeds for the suspect-window confirmation
 * replay, keyed by merge generation. capture() runs wherever the merge
 * itself runs (under the threaded barrier's mutex, or inline), so
 * accesses are serialized; the reader trims old generations through the
 * atomic watermark and the final lookup happens after the workers have
 * joined.
 */
class SeedLog {
public:
    explicit SeedLog(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    void
    capture(std::vector<Lane>& lanes, uint64_t generation)
    {
        if (!enabled_)
            return;
        const uint64_t min_needed =
            min_needed_.load(std::memory_order_relaxed);
        seeds_.erase(seeds_.begin(), seeds_.lower_bound(min_needed));
        EngineSeed joined;
        bool first = true;
        for (auto& lane : lanes) {
            if (lane.failed.load(std::memory_order_relaxed))
                continue;
            if (first) {
                lane.engine->export_seed(joined);
                first = false;
            } else {
                lane.engine->export_seed(scratch_);
                joined.join(scratch_);
            }
        }
        if (first)
            return; // no live lane to capture from
        seeds_[generation] = std::move(joined);
    }

    void
    set_min_needed(uint64_t generation)
    {
        min_needed_.store(generation, std::memory_order_relaxed);
    }

    /** Lookup after the run has quiesced; null if pruned/absent. */
    const EngineSeed*
    find(uint64_t generation) const
    {
        auto it = seeds_.find(generation);
        return it == seeds_.end() ? nullptr : &it->second;
    }

private:
    bool enabled_;
    std::map<uint64_t, EngineSeed> seeds_;
    EngineSeed scratch_;
    std::atomic<uint64_t> min_needed_{0};
};

/**
 * Rolling store of suspect windows (confirmation-replay mode only).
 * Windows are dropped once every lane's progress has passed them —
 * no violation can be raised inside them anymore — unless they contain
 * the current first-violation candidate.
 */
class WindowLog {
public:
    explicit WindowLog(bool enabled) : enabled_(enabled)
    {
        if (enabled_)
            windows_.emplace_back(); // initial window: fresh engines
    }

    bool enabled() const { return enabled_; }

    void
    record(const Event& e, uint64_t index)
    {
        if (enabled_)
            windows_.back().events.push_back({e, index});
    }

    /** Start the window opened by merge `generation` at `start`. */
    void
    rotate(uint64_t generation, uint64_t start)
    {
        if (!enabled_)
            return;
        ReplayWindow w;
        w.generation = generation;
        w.start = start;
        windows_.push_back(std::move(w));
    }

    /** Drop windows that end at or before `min_progress`, keeping the
     *  one containing `suspect_min`; advance the seed watermark. */
    void
    prune(uint64_t min_progress, uint64_t suspect_min, SeedLog& seeds)
    {
        if (!enabled_)
            return;
        while (windows_.size() > 1) {
            const uint64_t end = windows_[1].start;
            if (end > min_progress)
                break;
            if (windows_.front().start <= suspect_min && suspect_min < end)
                break;
            windows_.pop_front();
        }
        if (windows_.front().generation != ReplayWindow::kNoGeneration)
            seeds.set_min_needed(windows_.front().generation);
    }

    /** Window containing global index `i`, or null if it was pruned. */
    const ReplayWindow*
    find(uint64_t i) const
    {
        for (size_t w = 0; w < windows_.size(); ++w) {
            const uint64_t end = w + 1 < windows_.size()
                                     ? windows_[w + 1].start
                                     : UINT64_MAX;
            if (windows_[w].start <= i && i < end)
                return &windows_[w];
        }
        return nullptr;
    }

private:
    bool enabled_;
    std::deque<ReplayWindow> windows_;
};

/**
 * Reader-owned event log for worker recovery (watchdog mode only): the
 * full unprojected stream since the last checkpointed merge, windowed by
 * merge generation like WindowLog. A replacement engine reseeded from
 * the checkpoint replays this to reconstruct the dead worker's state.
 * Bounded by `cap` events: overflow sheds the oldest coverage, and a
 * recovery that needed the shed span completes degraded instead of
 * exact.
 */
class RecoveryLog {
public:
    RecoveryLog(bool enabled, size_t cap)
        : enabled_(enabled), cap_(cap ? cap : 1)
    {
        if (enabled_)
            windows_.emplace_back();
    }

    bool enabled() const { return enabled_; }
    bool complete() const { return !shed_; }

    uint64_t
    front_generation() const
    {
        return windows_.empty() ? ReplayWindow::kNoGeneration
                                : windows_.front().generation;
    }

    const std::deque<ReplayWindow>& windows() const { return windows_; }

    void
    record(const Event& e, uint64_t index)
    {
        if (!enabled_)
            return;
        windows_.back().events.push_back({e, index});
        if (++buffered_ > cap_)
            shed();
    }

    void
    rotate(uint64_t generation, uint64_t start)
    {
        if (!enabled_)
            return;
        ReplayWindow w;
        w.generation = generation;
        w.start = start;
        windows_.push_back(std::move(w));
    }

    /** Drop windows wholly covered by checkpoint generation `ckpt_gen`
     *  (replay starts at the checkpoint's own window). */
    void
    prune_to(uint64_t ckpt_gen)
    {
        if (!enabled_ || ckpt_gen == ReplayWindow::kNoGeneration)
            return;
        while (windows_.size() > 1 &&
               (windows_.front().generation == ReplayWindow::kNoGeneration ||
                windows_.front().generation < ckpt_gen)) {
            buffered_ -= windows_.front().events.size();
            windows_.pop_front();
        }
    }

private:
    void
    shed()
    {
        shed_ = true;
        if (windows_.size() > 1) {
            buffered_ -= windows_.front().events.size();
            windows_.pop_front();
            return;
        }
        auto& events = windows_.front().events;
        events.erase(events.begin(),
                     events.begin() +
                         static_cast<long>(events.size() / 2));
        buffered_ = events.size();
    }

    bool enabled_;
    size_t cap_;
    uint64_t buffered_ = 0;
    bool shed_ = false;
    std::deque<ReplayWindow> windows_;
};

/** Last merge-barrier checkpoint for worker recovery: the joined seed of
 *  every live engine, captured while the barrier mutex holds all of them
 *  quiescent. The reader reads it (under mu) when reseeding a
 *  replacement engine. */
struct RecoveryCheckpoint {
    std::mutex mu;
    bool has = false;
    uint64_t generation = ReplayWindow::kNoGeneration;
    EngineSeed seed;
    EngineSeed scratch;
};

/**
 * Generation barrier for the threaded driver. Workers arrive when they
 * pop a kMerge marker; the last arriver — while every other active
 * worker is parked in wait() and every retired worker has left its
 * engine quiescent behind the same mutex — performs the frontier merge
 * (and, in replay mode, captures the joined engine seed), then releases
 * the generation. retire() removes a finished worker from the head count
 * (and completes a merge it was the last straggler of). evict()/admit()
 * are the reader-side recovery hooks: eviction removes a sick worker
 * from the head count mid-generation, admission re-adds its replacement
 * and reports how many generations of markers the replacement still owes
 * an arrival for.
 */
class MergeBarrier {
public:
    MergeBarrier(std::vector<Lane>& lanes, uint64_t& merges, SeedLog& seeds,
                 RecoveryCheckpoint* ckpt)
        : lanes_(lanes), merges_(merges), seeds_(seeds), ckpt_(ckpt),
          active_(lanes.size())
    {}

    void
    arrive(uint32_t shard, uint64_t incarnation, uint64_t marker_gen)
    {
        Lane& lane = lanes_[shard];
        std::unique_lock<std::mutex> lk(mu_);
        if (lane.failed.load(std::memory_order_relaxed) ||
            lane.incarnation.load(std::memory_order_relaxed) != incarnation) {
            return; // evicted (or replaced) while this marker was queued
        }
        const uint64_t gen = generation_.load(std::memory_order_relaxed);
        if (marker_gen < gen) {
            // This generation already completed without us: the lane was
            // evicted while parked-out peers finished it solo, and the
            // marker was redelivered to the replacement. Counting it now
            // would let a later merge run while this worker is mid-event.
            return;
        }
        lane.at_barrier.store(true, std::memory_order_relaxed);
        if (++arrived_ == active_) {
            run_merge();
            lane.at_barrier.store(false, std::memory_order_relaxed);
            lk.unlock();
            cv_.notify_all();
            return;
        }
        cv_.wait(lk, [&] {
            return generation_.load(std::memory_order_relaxed) != gen;
        });
        lane.at_barrier.store(false, std::memory_order_relaxed);
    }

    void
    retire(uint32_t shard, uint64_t incarnation)
    {
        std::unique_lock<std::mutex> lk(mu_);
        Lane& lane = lanes_[shard];
        if (lane.failed.load(std::memory_order_relaxed) ||
            lane.incarnation.load(std::memory_order_relaxed) != incarnation) {
            return; // eviction already adjusted the head count
        }
        --active_;
        maybe_complete(lk);
    }

    /** Reader: remove a sick worker from the head count. Refuses lanes
     *  that are parked at the barrier (parked is healthy), already done,
     *  or already failed. @return true when the lane was evicted. */
    bool
    evict(uint32_t shard)
    {
        std::unique_lock<std::mutex> lk(mu_);
        Lane& lane = lanes_[shard];
        if (lane.failed.load(std::memory_order_relaxed) ||
            lane.done.load(std::memory_order_relaxed) ||
            lane.at_barrier.load(std::memory_order_relaxed))
            return false;
        lane.failed.store(true, std::memory_order_release);
        --active_;
        maybe_complete(lk);
        return true;
    }

    /** Reader: re-admit an evicted lane with a replacement worker.
     *  @return how many merge generations the replacement still owes an
     *  arrival for (`issued` markers delivered to this lane so far minus
     *  generations completed). While the evicted lane was out, its peers
     *  may have completed generations solo — even past `issued`, when
     *  the reader was evicting mid-marker-distribution — so the
     *  difference is clamped at zero. Once admitted, the generation
     *  counter cannot advance until the replacement arrives, so the
     *  answer stays exact from here on. */
    uint64_t
    admit(uint32_t shard, uint64_t issued)
    {
        std::unique_lock<std::mutex> lk(mu_);
        // Retire the evicted incarnation before clearing `failed`: a
        // stalled predecessor that wakes later must see either the flag
        // or the bump, never a healthy-looking lane it no longer owns.
        lanes_[shard].incarnation.fetch_add(1, std::memory_order_release);
        lanes_[shard].failed.store(false, std::memory_order_release);
        ++active_;
        const uint64_t gen = generation_.load(std::memory_order_relaxed);
        return gen >= issued ? 0 : issued - gen;
    }

    uint64_t
    completed_generations() const
    {
        return generation_.load(std::memory_order_relaxed);
    }

private:
    void
    maybe_complete(std::unique_lock<std::mutex>& lk) // caller holds mu_
    {
        if (active_ > 0 && arrived_ == active_) {
            run_merge();
            lk.unlock();
            cv_.notify_all();
        }
    }

    void
    run_merge() // caller holds mu_
    {
        merger_.merge(lanes_);
        const uint64_t gen = generation_.load(std::memory_order_relaxed);
        seeds_.capture(lanes_, gen);
        if (ckpt_)
            capture_checkpoint(gen);
        ++merges_;
        arrived_ = 0;
        generation_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    capture_checkpoint(uint64_t gen) // caller holds mu_
    {
        std::lock_guard<std::mutex> clk(ckpt_->mu);
        bool first = true;
        for (auto& lane : lanes_) {
            if (lane.failed.load(std::memory_order_relaxed))
                continue;
            if (first) {
                lane.engine->export_seed(ckpt_->seed);
                first = false;
            } else {
                lane.engine->export_seed(ckpt_->scratch);
                ckpt_->seed.join(ckpt_->scratch);
            }
        }
        if (first)
            return; // every lane failed: keep the previous checkpoint
        ckpt_->has = true;
        ckpt_->generation = gen;
    }

    std::vector<Lane>& lanes_;
    uint64_t& merges_;
    SeedLog& seeds_;
    RecoveryCheckpoint* ckpt_;
    FrontierMerger merger_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t active_;
    size_t arrived_ = 0;
    std::atomic<uint64_t> generation_{0};
};

/** Pin the calling thread to one core (ShardOptions::pin_workers).
 *  Best-effort: a failed or unsupported set_affinity is ignored. */
void
pin_to_core(uint32_t core)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % CPU_SETSIZE, &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)core;
#endif
}

/**
 * Shard worker: drain the queue, feeding events to the engine until it
 * fires or the global violation horizon passes them by. A fired lane
 * keeps draining (and keeps arriving at merge barriers) so the pipeline
 * never stalls; its engine is simply not fed again.
 *
 * Queue and engine are raw pointers captured at spawn: after an
 * eviction the reader replaces `lane.engine`/`lane.queue`, and the old
 * worker — possibly still mid-process() — must keep using the retired
 * instances (kept alive in a graveyard) until it observes `failed` and
 * exits. An engine that throws (contained panic via
 * throwing_panic_handler, or any std::exception) poisons the lane:
 * the error is recorded and the worker degrades to draining.
 */
void
worker_loop(Lane& lane, SpscQueue<ShardItem>* queue,
            AtomicityChecker* engine, MergeBarrier& barrier,
            std::atomic<uint64_t>& stop_at, uint32_t shard, int pin_core,
            uint64_t my_incarnation, size_t batch)
{
    if (pin_core >= 0)
        pin_to_core(static_cast<uint32_t>(pin_core));
    PanicContextScope panic_scope(shard);
    // Evicted, or (if this worker outlived its own eviction — e.g. a
    // stall that ended after a replacement was admitted) superseded.
    auto deposed = [&] {
        return lane.failed.load(std::memory_order_acquire) ||
               lane.incarnation.load(std::memory_order_acquire) !=
                   my_incarnation;
    };
    bool fired;
    {
        std::lock_guard<std::mutex> lk(lane.verdict_mu);
        fired = lane.violation.has_value(); // replacement after a replay fire
    }
    bool poisoned = false;
    std::vector<ShardItem> block(batch ? batch : 1);
    for (;;) {
        size_t got;
        while ((got = queue->pop_n_wait(block.data(), block.size(),
                                        kPopSliceUs)) == 0) {
            if (deposed())
                return; // evicted while idle
        }
        if (deposed())
            return; // a replacement owns the lane now
        // One heartbeat covers the whole block: the watchdog keys on
        // per-batch liveness, and a worker wedged mid-block freezes the
        // signal just the same.
        lane.heartbeat.fetch_add(1, std::memory_order_relaxed);
        for (size_t at = 0; at < got; ++at) {
        const ShardItem& it = block[at];
        if (at > 0 && deposed())
            return; // evicted mid-block: stop touching shared state
        if (FaultInjector::instance().armed_for(FaultSite::kWorker)) {
            switch (FaultInjector::instance().worker_action(shard)) {
              case FaultKind::kWorkerKill:
                return; // simulated death: no retire, no progress update
              case FaultKind::kWorkerStall: {
                // Stop making progress until evicted; bounded by the
                // plan's duration cap so a watchdog-less run still ends.
                const uint64_t cap_ms =
                    FaultInjector::instance().plan().duration
                        ? FaultInjector::instance().plan().duration
                        : 30000;
                for (uint64_t ms = 0; ms < cap_ms; ++ms) {
                    if (deposed())
                        return;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
                break; // cap expired un-evicted: resume processing
              }
              case FaultKind::kWorkerDelay: {
                const uint64_t ms =
                    FaultInjector::instance().plan().duration
                        ? FaultInjector::instance().plan().duration
                        : 10;
                std::this_thread::sleep_for(std::chrono::milliseconds(ms));
                break;
              }
              default:
                break;
            }
            if (deposed())
                return;
        }
        if (it.kind == ShardItem::kEof) {
            lane.progress.store(UINT64_MAX, std::memory_order_relaxed);
            lane.done.store(true, std::memory_order_release);
            barrier.retire(shard, my_incarnation);
            return;
        }
        if (it.kind == ShardItem::kMerge) {
            barrier.arrive(shard, my_incarnation, it.index);
            continue;
        }
        if (fired || poisoned)
            continue; // progress stays pinned at UINT64_MAX
        lane.progress.store(it.index, std::memory_order_relaxed);
        // Events past the earliest known violation can never win the
        // first-violation join; events at or before it are always fed
        // (stop_at only ever decreases, and never below the winner).
        if (it.index > stop_at.load(std::memory_order_relaxed))
            continue;
        lane.processed.fetch_add(1, std::memory_order_relaxed);
        panic_scope.set_index(it.index);
        bool fire = false;
        try {
            fire = engine->process(it.event, it.index);
        } catch (const std::exception& ex) {
            {
                std::lock_guard<std::mutex> lk(lane.verdict_mu);
                if (lane.worker_error.empty())
                    lane.worker_error = ex.what();
            }
            poisoned = true;
            lane.progress.store(UINT64_MAX, std::memory_order_release);
            continue; // keep draining so the pipeline never stalls
        }
        if (fire) {
            fired = true;
            publish_violation(lane, engine->violation(), stop_at);
            // Publish stop_at strictly before the progress sentinel: the
            // reader prunes replay windows by (progress horizon,
            // suspect minimum), and must never observe a fired lane's
            // "cannot fire again" progress without its suspect index —
            // that would let it drop the window the verdict needs.
            lane.progress.store(UINT64_MAX, std::memory_order_release);
        }
        } // per-item loop over the popped block
    }
}

std::vector<Lane>
make_lanes(const EngineFactory& factory, uint32_t shards, bool with_queues,
           size_t queue_capacity)
{
    if (shards > ShardOptions::kMaxShards) {
        fatal("shard count " + std::to_string(shards) +
              " exceeds the supported maximum of " +
              std::to_string(ShardOptions::kMaxShards));
    }
    std::vector<Lane> lanes(shards);
    for (auto& lane : lanes) {
        lane.engine = factory();
        AERO_ASSERT(lane.engine != nullptr,
                    "EngineFactory returned a null checker");
        if (with_queues)
            lane.queue =
                std::make_unique<SpscQueue<ShardItem>>(queue_capacity);
    }
    // Rejected regardless of merge cadence: even a merge-free sharded run
    // relies on the frontier contract existing for the mode toggles to be
    // meaningful, and a frontier-less engine sharded without merges would
    // silently miss cross-shard cycles.
    if (shards > 1 && !lanes[0].engine->supports_frontier()) {
        fatal("engine '" + std::string(lanes[0].engine->name()) +
              "' does not maintain a per-thread clock frontier; it cannot "
              "be sharded (run with --shards 1)");
    }
    return lanes;
}

void
reserve_lanes(std::vector<Lane>& lanes, uint32_t threads, uint32_t vars,
              uint32_t locks)
{
    if (!reserve_hint_sane(threads, vars, locks))
        return; // untrusted header dimensions: grow on demand instead
    for (auto& lane : lanes)
        lane.engine->reserve(threads, vars, locks);
}

/** True when this configuration runs the exact divergence barriers. */
bool
barriers_active(const ShardOptions& opts, uint32_t shards)
{
    return opts.divergence_barriers && shards > 1 &&
           opts.merge_epoch >= 2; // 0 = never merge, 1 = lockstep
}

/** True when shard violations are suspects needing confirmation replay. */
bool
replay_active(const ShardOptions& opts, uint32_t shards)
{
    return opts.confirm_replay && shards > 1 && opts.merge_epoch != 1 &&
           !barriers_active(opts, shards);
}

/** First violation wins (ties broken by lowest shard id). */
const Lane*
pick_winner(const std::vector<Lane>& lanes, uint32_t& winner_shard)
{
    const Lane* winner = nullptr;
    for (uint32_t s = 0; s < lanes.size(); ++s) {
        const Lane& lane = lanes[s];
        if (lane.violation &&
            (!winner || lane.violation->event_index <
                            winner->violation->event_index)) {
            winner = &lane;
            winner_shard = s;
        }
    }
    return winner;
}

/**
 * Confirmation replay of a suspect: sequentially re-check the buffered
 * window containing the suspect through a fresh engine reseeded from the
 * joined per-shard seeds of the merge that opened the window. The replay
 * engine's clocks under-approximate the single engine's (missing
 * variable/lock clocks are bottom), so anything it fires is real; a fire
 * *before* the suspect index refines the verdict toward the exact one,
 * and a miss upholds the shard's (still sound) violation.
 */
void
confirm_suspect(const EngineFactory& factory, const WindowLog& windows,
                const SeedLog& seeds, std::optional<Violation>& verdict,
                uint32_t winner_shard, ShardRunResult& out)
{
    ++out.suspects;
    const uint64_t suspect = verdict->event_index;
    const ReplayWindow* window = windows.find(suspect);
    if (!window)
        return; // pruned (cannot happen; defensively keep the suspect)
    const EngineSeed* seed = nullptr;
    if (window->generation != ReplayWindow::kNoGeneration) {
        seed = seeds.find(window->generation);
        if (!seed)
            return; // seed pruned: uphold the suspect
    }

    ++out.replays;
    std::unique_ptr<AtomicityChecker> engine = factory();
    if (seed)
        engine->reseed(*seed);
    std::optional<Violation> refired;
    for (const ProjectedEvent& pe : window->events) {
        if (pe.index > suspect)
            break;
        if (engine->process(pe.event, pe.index)) {
            refired = engine->violation();
            break;
        }
    }
    if (!refired) {
        ++out.replay_upheld;
        return;
    }
    if (refired->event_index >= suspect) {
        ++out.replay_confirmed;
        return; // same index: keep the shard's own evidence
    }
    ++out.replay_refined;
    refired->shard = winner_shard;
    verdict = std::move(refired);
}

/** Assemble the joined verdict and the counter aggregation. */
void
join_verdicts(const EngineFactory& factory, std::vector<Lane>& lanes,
              const WindowLog& windows, const SeedLog& seeds,
              ShardRunResult& out, uint64_t events_routed)
{
    RunResult& r = out.result;
    uint32_t winner_shard = 0;
    const Lane* winner = pick_winner(lanes, winner_shard);
    if (winner) {
        std::optional<Violation> verdict = winner->violation;
        verdict->shard = winner_shard;
        if (windows.enabled())
            confirm_suspect(factory, windows, seeds, verdict, winner_shard,
                            out);
        r.violation = true;
        r.timed_out = false; // a found violation is a definitive verdict
        r.events_processed = verdict->event_index + 1;
        r.details = std::move(verdict);
    } else {
        r.events_processed = events_routed;
    }

    for (uint32_t s = 0; s < lanes.size(); ++s) {
        Lane& lane = lanes[s];
        if (!lane.worker_error.empty()) {
            if (!r.internal_error.empty())
                r.internal_error += "; ";
            r.internal_error += "shard " + std::to_string(s) +
                                " engine failed: " + lane.worker_error;
        }
        out.shard_counters.push_back(lane.engine ? lane.engine->counters()
                                                 : StatList{});
        out.shard_events.push_back(
            lane.processed.load(std::memory_order_relaxed));
        uint64_t bytes = lane.engine ? lane.engine->memory_bytes() : 0;
        if (lane.queue)
            bytes += (lane.queue->capacity() + 1) * sizeof(ShardItem);
        out.shard_memory_bytes.push_back(bytes);
    }
    for (const StatList& counters : out.shard_counters) {
        for (const auto& entry : counters) {
            auto it = std::find_if(r.counters.begin(), r.counters.end(),
                                   [&entry](const auto& kv) {
                                       return kv.first == entry.first;
                                   });
            if (it == r.counters.end())
                r.counters.push_back(entry);
            else
                it->second += entry.second;
        }
    }
}

/** Lowest index any still-fireable lane may yet fire at. Acquire pairs
 *  with the fired lane's release store, so a UINT64_MAX read here
 *  guarantees that lane's stop_at update is visible too. */
uint64_t
min_progress(const std::vector<Lane>& lanes)
{
    uint64_t f = UINT64_MAX;
    for (const Lane& lane : lanes)
        f = std::min(f, lane.progress.load(std::memory_order_acquire));
    return f;
}

} // namespace

ShardRunResult
run_sharded(const EngineFactory& factory, EventSource& source,
            const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes = make_lanes(factory, shards,
                                         /*with_queues=*/true,
                                         opts.queue_capacity);

    uint32_t dim_threads = 0, dim_vars = 0, dim_locks = 0;
    const bool have_dims =
        source.dimensions(dim_threads, dim_vars, dim_locks);
    if (have_dims)
        reserve_lanes(lanes, dim_threads, dim_vars, dim_locks);

    // Worker-fault injection must be able to kill a worker outright; a
    // hang is never an acceptable outcome, so arm a default watchdog
    // when the fault plan targets workers and none was configured.
    uint32_t watchdog_ms = opts.watchdog_ms;
    if (watchdog_ms == 0 &&
        FaultInjector::instance().armed_for(FaultSite::kWorker))
        watchdog_ms = 1000;
    const bool recovery_on = watchdog_ms > 0 && opts.max_recoveries > 0;
    const uint32_t batch = resolve_batch_size(opts.batch_size);

    ShardRunResult out;
    out.shards = shards;
    out.batch = batch;
    SeedLog seeds(replay_active(opts, shards));
    WindowLog windows(replay_active(opts, shards));
    RecoveryCheckpoint ckpt;
    RecoveryLog recovery_log(recovery_on, opts.recovery_buffer_cap);
    MergeBarrier barrier(lanes, out.frontier_merges, seeds,
                         recovery_on ? &ckpt : nullptr);
    MergePlanner planner(router, shards > 1 ? opts.merge_epoch : 0,
                         opts.divergence_barriers,
                         lanes[0].engine->uses_live_clock_proxies());
    std::atomic<uint64_t> stop_at{UINT64_MAX};

    // Retired engines/queues stay alive until every worker thread has
    // joined: an evicted worker may be mid-process() on them.
    std::vector<std::unique_ptr<AtomicityChecker>> retired_engines;
    std::vector<std::unique_ptr<SpscQueue<ShardItem>>> retired_queues;

    const unsigned cores = std::thread::hardware_concurrency();
    std::vector<std::thread> workers;
    workers.reserve(shards);
    auto spawn_worker = [&](uint32_t s) {
        const int pin_core =
            opts.pin_workers && cores > 0 ? static_cast<int>(s % cores) : -1;
        workers.emplace_back(worker_loop, std::ref(lanes[s]),
                             lanes[s].queue.get(), lanes[s].engine.get(),
                             std::ref(barrier), std::ref(stop_at), s,
                             pin_core,
                             lanes[s].incarnation.load(
                                 std::memory_order_relaxed),
                             static_cast<size_t>(batch));
    };
    for (uint32_t s = 0; s < shards; ++s)
        spawn_worker(s);

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    uint64_t index = 0;
    uint64_t merge_generation = 0; // kMerge marker sets issued so far

    auto degrade = [&](const std::string& reason) {
        out.result.degraded = true;
        if (!out.result.degraded_reason.empty())
            out.result.degraded_reason += "; ";
        out.result.degraded_reason += reason;
    };

    /**
     * The control item the reader is currently blocked pushing, if a
     * recovery is triggered from inside push_item. Events travel in
     * staged blocks (below), so the only single-item pushes left are
     * kMerge markers and kEof; the recovery replay must know about a
     * blocked marker because one already delivered to an earlier lane's
     * (now discarded) queue is one more generation that lane's
     * replacement owes.
     */
    struct InFlight {
        bool have = false;
        uint32_t shard = 0; // blocked destination
        uint64_t index = 0;
        uint8_t kind = ShardItem::kEvent;
    } inflight;

    /**
     * Per-shard staging blocks: the reader appends routed events here and
     * publishes each block into its ring with one batched push when it
     * reaches `batch` events — or earlier, at merge barriers, end of
     * stream, and abandonment (a partial flush). Events enter the
     * recovery/window logs at staging time, so a block that has not
     * reached its ring yet is exactly the log suffix the reader will
     * still deliver itself; recovery replay skips it (redeliver_floor)
     * or those events would be fed twice.
     */
    std::vector<std::vector<ShardItem>> staged(shards);
    for (auto& block : staged)
        block.reserve(batch);
    uint32_t flushing_shard = UINT32_MAX; // lane mid-flush, if any
    size_t flush_pos = 0;                 // its items already in the ring

    /** Global index of the first event staged for `s` that is not yet in
     *  its ring: the reader redelivers everything at or past it, so
     *  recovery replay stops there. UINT64_MAX when nothing is pending. */
    auto redeliver_floor = [&](uint32_t s) -> uint64_t {
        const std::vector<ShardItem>& block = staged[s];
        const size_t pos = flushing_shard == s ? flush_pos : 0;
        return pos < block.size() ? block[pos].index : UINT64_MAX;
    };

    /**
     * Replace (or, past max_recoveries, abandon) an already-evicted
     * lane. Builds a fresh engine, reseeds it from the last checkpoint,
     * replays the buffered window — inline up to the first merge
     * generation the barrier still owes, through the new queue (with the
     * owed kMerge markers interleaved at window boundaries) beyond it —
     * and re-admits the lane. With spawn=false (shutdown) everything
     * replays inline and the lane stays evicted.
     */
    auto recover_lane = [&](uint32_t s, bool spawn) {
        Lane& lane = lanes[s];
        retired_engines.push_back(std::move(lane.engine));
        retired_queues.push_back(std::move(lane.queue));
        if (!recovery_on || lane.recovery_count >= opts.max_recoveries) {
            lane.abandoned = true;
            ++out.shards_abandoned;
            degrade("shard " + std::to_string(s) +
                    " abandoned after repeated worker failure");
            return;
        }
        ++lane.recovery_count;
        ++out.recoveries;

        std::unique_ptr<AtomicityChecker> engine = factory();
        if (have_dims && reserve_hint_sane(dim_threads, dim_vars, dim_locks))
            engine->reserve(dim_threads, dim_vars, dim_locks);
        uint64_t ckpt_gen = ReplayWindow::kNoGeneration;
        {
            std::lock_guard<std::mutex> lk(ckpt.mu);
            if (ckpt.has) {
                engine->reseed(ckpt.seed);
                ckpt_gen = ckpt.generation;
            }
        }
        recovery_log.prune_to(ckpt_gen);

        // Admission (spawn mode) freezes the barrier's generation counter
        // — the replacement is active but has not arrived — so the split
        // between inline replay and queued replay stays exact. Markers
        // this lane's discarded queue already held count toward `issued`:
        // merge_generation lags by one while the reader is still blocked
        // distributing a marker this lane received before the eviction.
        uint64_t owed = 0;
        if (spawn) {
            uint64_t issued_hi = merge_generation;
            if (inflight.have && inflight.kind == ShardItem::kMerge &&
                s < inflight.shard)
                ++issued_hi;
            owed = barrier.admit(s, issued_hi);
        }
        const uint64_t completed = barrier.completed_generations();
        const uint64_t floor = redeliver_floor(s);

        bool exact = ckpt_gen == ReplayWindow::kNoGeneration &&
                     completed == 0 && recovery_log.complete() &&
                     recovery_log.front_generation() ==
                         ReplayWindow::kNoGeneration;
        if (ckpt_gen != ReplayWindow::kNoGeneration &&
            recovery_log.front_generation() != ckpt_gen)
            degrade("shard " + std::to_string(s) +
                    " recovery window was shed before replay");

        // Phase 1: inline replay of the windows every live lane has
        // already merged past ([checkpoint, completed)) — and, at
        // shutdown, of everything — into the not-yet-shared engine.
        bool replay_failed = false;
        std::string replay_error;
        {
            PanicContextScope replay_scope(s);
            try {
                for (const ReplayWindow& w : recovery_log.windows()) {
                    if (spawn &&
                        w.generation != ReplayWindow::kNoGeneration &&
                        w.generation >= completed)
                        break; // queued behind the owed markers below
                    for (const ProjectedEvent& pe : w.events) {
                        const uint32_t dst = router.shard_of(pe.event);
                        if (dst != s && dst != ShardRouter::kBroadcast)
                            continue;
                        // Staged but not yet in any ring: the reader
                        // still delivers it itself once the sweep
                        // returns; replaying it too would feed it twice.
                        if (pe.index >= floor)
                            continue;
                        if (pe.index >
                            stop_at.load(std::memory_order_relaxed))
                            continue;
                        replay_scope.set_index(pe.index);
                        lane.processed.fetch_add(
                            1, std::memory_order_relaxed);
                        if (engine->process(pe.event, pe.index)) {
                            publish_violation(lane, engine->violation(),
                                              stop_at);
                            break; // fired: stop feeding this engine
                        }
                    }
                }
            } catch (const std::exception& ex) {
                replay_failed = true;
                replay_error = ex.what();
            }
        }
        if (replay_failed) {
            if (spawn)
                barrier.evict(s); // undo the admission: lane is lost
            lane.abandoned = true;
            ++out.shards_abandoned;
            {
                std::lock_guard<std::mutex> lk(lane.verdict_mu);
                if (lane.worker_error.empty())
                    lane.worker_error = "recovery replay failed: " +
                                        replay_error;
            }
            degrade("shard " + std::to_string(s) +
                    " abandoned: recovery replay failed");
            return;
        }
        if (!spawn)
            exact = exact &&
                    barrier.completed_generations() == completed;
        if (!exact)
            degrade("shard " + std::to_string(s) +
                    " recovered from a merge checkpoint (verdict no "
                    "longer exact)");

        lane.engine = std::move(engine);
        if (!spawn) {
            lane.recovered_final = true;
            return;
        }

        // Phase 2: spawn the replacement *first*, then stream the owed
        // generations [completed, completed + owed) through its queue —
        // each generation's kMerge marker (tagged, so the barrier can
        // drop it if stale) followed by that generation's buffered
        // window. The backlog can exceed the queue's capacity — a dead
        // worker leaves at least one full retired ring behind — so the
        // consumer must already be draining while we push. A generation
        // whose window is missing still gets its marker (the barrier's
        // head count needs the arrival): missing past the newest window
        // means no events followed that merge yet; missing before it
        // means the window was shed, which recovery_log.complete()
        // already downgraded.
        lane.queue =
            std::make_unique<SpscQueue<ShardItem>>(opts.queue_capacity);
        lane.heartbeat.store(0, std::memory_order_relaxed);
        spawn_worker(s);
        SpscQueue<ShardItem>* q = lane.queue.get();
        auto wit = recovery_log.windows().begin();
        const auto wend = recovery_log.windows().end();
        for (uint64_t g = completed; g < completed + owed; ++g) {
            ShardItem m;
            m.kind = ShardItem::kMerge;
            m.index = g;
            q->push(m);
            while (wit != wend &&
                   (wit->generation == ReplayWindow::kNoGeneration ||
                    wit->generation < g))
                ++wit;
            if (wit == wend || wit->generation != g) {
                // g >= merge_generation: that marker's window was never
                // opened (the reader is blocked mid-distribution on it),
                // so there are no events to miss.
                if (g < merge_generation && exact) {
                    exact = false;
                    degrade("shard " + std::to_string(s) +
                            " recovery window was incomplete");
                }
                continue;
            }
            for (const ProjectedEvent& pe : wit->events) {
                const uint32_t dst = router.shard_of(pe.event);
                if (dst != s && dst != ShardRouter::kBroadcast)
                    continue;
                if (pe.index >= floor)
                    continue; // still staged: the reader redelivers it
                ShardItem it;
                it.event = pe.event;
                it.index = pe.index;
                it.kind = ShardItem::kEvent;
                q->push(it);
            }
        }
    };

    // Watchdog state: one (heartbeat snapshot, stopwatch) per lane.
    struct WatchState {
        uint64_t hb_seen = 0;
        Stopwatch since;
        bool tracking = false;
    };
    std::vector<WatchState> watch_state(shards);
    bool in_sweep = false;

    /**
     * Health sweep (reader thread): a lane is sick when its heartbeat
     * has been frozen past the deadline while it is not parked at a
     * barrier, not done — and has work it is refusing: a non-empty
     * queue, a merge generation the barrier is waiting on, or (while
     * draining) an unconsumed kEof.
     */
    auto watchdog_sweep = [&](bool draining) {
        if (watchdog_ms == 0 || in_sweep)
            return;
        in_sweep = true;
        for (uint32_t s = 0; s < shards; ++s) {
            Lane& lane = lanes[s];
            WatchState& ws = watch_state[s];
            if (lane.abandoned || !lane.queue ||
                lane.done.load(std::memory_order_relaxed) ||
                lane.failed.load(std::memory_order_relaxed) ||
                lane.at_barrier.load(std::memory_order_relaxed)) {
                ws.tracking = false;
                continue;
            }
            const bool owes_work =
                draining || lane.queue->size_approx() > 0 ||
                merge_generation > barrier.completed_generations();
            if (!owes_work) {
                ws.tracking = false;
                continue;
            }
            const uint64_t hb =
                lane.heartbeat.load(std::memory_order_relaxed);
            if (!ws.tracking || hb != ws.hb_seen) {
                ws.tracking = true;
                ws.hb_seen = hb;
                ws.since.reset();
                continue;
            }
            if (ws.since.elapsed_seconds() * 1000.0 < watchdog_ms)
                continue;
            ws.tracking = false;
            if (barrier.evict(s))
                recover_lane(s, /*spawn=*/!draining);
        }
        in_sweep = false;
    };

    const uint64_t push_slice = watchdog_ms > 0 ? kPushSliceUs : 0;
    const bool ring_faults =
        FaultInjector::instance().armed_for(FaultSite::kRingPush);

    /** Route one item to shard `s`, sweeping for sick workers whenever
     *  the push blocks past a slice. Abandoned shards drop events. */
    auto push_item = [&](uint32_t s, const ShardItem& it) {
        for (;;) {
            Lane& lane = lanes[s];
            if (lane.abandoned || !lane.queue) {
                if (it.kind == ShardItem::kEvent)
                    ++out.events_dropped;
                return;
            }
            if (ring_faults && FaultInjector::instance().ring_full(s)) {
                // Simulated full ring: behave exactly like a failed
                // try_push — back off briefly, then retry.
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                continue;
            }
            if (lane.queue->push_wait(it, push_slice))
                return;
            inflight = {true, s, it.index, it.kind};
            watchdog_sweep(/*draining=*/false);
            inflight.have = false;
        }
    };

    /**
     * Publish shard `s`'s staged block into its ring: each iteration
     * reserves as many slots as the ring has free with one
     * acquire/release pair (spsc_queue.hpp's batch push). A push that
     * makes no progress for a full slice re-runs the health sweep, which
     * may recover or abandon the lane mid-flush — redeliver_floor keeps
     * the not-yet-pushed suffix out of the recovery replay, and the loop
     * resumes into the replacement queue, so shutdown-while-full drains
     * the partial block without loss or duplication. With ring faults
     * armed the loop degrades to per-item pushes so the injector's
     * one-hit-per-push-attempt accounting is preserved.
     */
    auto flush_lane = [&](uint32_t s) {
        std::vector<ShardItem>& block = staged[s];
        if (block.empty())
            return;
        ++out.blocks_pushed;
        if (block.size() < batch)
            ++out.partial_flushes;
        flushing_shard = s;
        flush_pos = 0;
        while (flush_pos < block.size()) {
            Lane& lane = lanes[s]; // recovery may swap the queue
            if (lane.abandoned || !lane.queue) {
                out.events_dropped += block.size() - flush_pos;
                break;
            }
            if (ring_faults && FaultInjector::instance().ring_full(s)) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                continue;
            }
            const size_t want = block.size() - flush_pos;
            const size_t pushed =
                ring_faults
                    ? (lane.queue->push_wait(block[flush_pos], push_slice)
                           ? 1
                           : 0)
                    : lane.queue->push_n_wait(block.data() + flush_pos,
                                              want, push_slice);
            flush_pos += pushed;
            if (pushed < want)
                watchdog_sweep(/*draining=*/false);
        }
        flushing_shard = UINT32_MAX;
        block.clear();
    };

    /** Orderly pipeline drain: staged partial blocks out first, then
     *  kEof to every live lane, then wait (still sweeping — a worker may
     *  die holding the eof) for each lane to settle, then join every
     *  thread ever spawned. */
    auto shut_down = [&] {
        for (uint32_t s = 0; s < shards; ++s)
            flush_lane(s);
        ShardItem eof;
        eof.kind = ShardItem::kEof;
        for (uint32_t s = 0; s < shards; ++s)
            push_item(s, eof);
        for (uint32_t s = 0; s < shards; ++s) {
            Lane& lane = lanes[s];
            while (!lane.abandoned && !lane.recovered_final &&
                   !lane.done.load(std::memory_order_acquire) &&
                   !(lane.failed.load(std::memory_order_acquire) &&
                     !recovery_on)) {
                watchdog_sweep(/*draining=*/true);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
        for (auto& w : workers)
            w.join();
        // Lanes evicted at the very end (or by a watchdog-less fault
        // plan) still need their window replayed for the verdict join.
        for (uint32_t s = 0; s < shards; ++s) {
            Lane& lane = lanes[s];
            if (lane.failed.load(std::memory_order_relaxed) &&
                !lane.abandoned && !lane.recovered_final)
                recover_lane(s, /*spawn=*/false);
        }
    };

    /** Double-buffered decode: a dedicated thread runs EventSource::
     *  next_n into one of two block slots while this thread routes the
     *  other, so batched decode (the mmap kernel) overlaps route_chunk
     *  and the queue pushes. Strict-mode corruption travels through the
     *  slot as data — the prefix decoded before it still routes, exactly
     *  like the old inline loop. Slot handoff is a full/empty flag under
     *  one mutex; the decode thread exits on its own after delivering a
     *  terminal slot (eof or error) and the destructor quits + joins it
     *  on every other path. */
    struct DecodeSlot {
        std::vector<Event> events;
        size_t count = 0;
        bool eof = false;
        bool has_error = false;
        StreamError error;
        bool full = false;
    };
    struct DecodePipe {
        EventSource& src;
        const size_t batch;
        std::mutex mu;
        std::condition_variable cv;
        DecodeSlot slots[2];
        bool quit = false;
        std::thread th;

        DecodePipe(EventSource& s, size_t b) : src(s), batch(b)
        {
            slots[0].events.resize(batch);
            slots[1].events.resize(batch);
            th = std::thread([this] { run(); });
        }
        ~DecodePipe()
        {
            {
                std::lock_guard<std::mutex> lk(mu);
                quit = true;
            }
            cv.notify_all();
            th.join();
        }
        void
        run()
        {
            uint32_t w = 0;
            for (;;) {
                DecodeSlot& slot = slots[w];
                {
                    std::unique_lock<std::mutex> lk(mu);
                    cv.wait(lk, [&] { return quit || !slot.full; });
                    if (quit)
                        return;
                }
                slot.count = 0;
                slot.has_error = false;
                try {
                    slot.count = src.next_n(slot.events.data(), batch);
                } catch (const StreamCorruption& ex) {
                    slot.has_error = true;
                    slot.error = ex.error();
                }
                slot.eof = !slot.has_error && slot.count == 0;
                const bool terminal = slot.eof || slot.has_error;
                {
                    std::lock_guard<std::mutex> lk(mu);
                    slot.full = true;
                }
                cv.notify_all();
                if (terminal)
                    return;
                w ^= 1;
            }
        }
        DecodeSlot&
        acquire(uint32_t r)
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return slots[r].full; });
            return slots[r];
        }
        void
        release(uint32_t r)
        {
            {
                std::lock_guard<std::mutex> lk(mu);
                slots[r].full = false;
            }
            cv.notify_all();
        }
    };

    try {
        // A tiny batch (the AERO_BATCH=1 per-event CI pass) skips the
        // pipe: per-slot signaling would cost more than it overlaps.
        const bool use_pipe = batch >= 16;
        std::unique_ptr<DecodePipe> pipe;
        if (use_pipe)
            pipe = std::make_unique<DecodePipe>(source, batch);
        std::vector<Event> chunk(use_pipe ? 0 : batch);
        std::vector<uint32_t> chunk_dst(batch);
        std::vector<ShardRun> runs;
        uint64_t next_sweep = 1024;
        uint64_t next_poll = 0;
        uint32_t rslot = 0;
        bool eof = false;
        bool stop = false;
        while (!eof && !stop) {
            // Take the next decoded block (or decode one inline), then
            // apply the stop and budget cuts at block granularity.
            // Corrupt input is a structured outcome, not an unwind: the
            // events that did decode still route below.
            size_t n = 0;
            const Event* cptr = nullptr;
            if (use_pipe) {
                DecodeSlot& slot = pipe->acquire(rslot);
                if (slot.has_error) {
                    out.result.stream_error = slot.error;
                    stop = true;
                } else if (slot.eof) {
                    eof = true;
                }
                n = slot.count;
                cptr = slot.events.data();
            } else {
                while (n < batch) {
                    bool got = false;
                    try {
                        got = source.next(chunk[n]);
                    } catch (const StreamCorruption& ex) {
                        out.result.stream_error = ex.error();
                        stop = true;
                        break;
                    }
                    if (!got) {
                        eof = true;
                        break;
                    }
                    ++n;
                }
                cptr = chunk.data();
            }
            // Anything past the earliest reported violation cannot
            // affect the joined verdict; cut the block there.
            const uint64_t sa = stop_at.load(std::memory_order_relaxed);
            if (index > sa) {
                n = 0;
                stop = true;
            } else if (n > 0 && index + n - 1 > sa) {
                n = static_cast<size_t>(sa - index + 1);
                stop = true;
            }
            // Budget polls fire on the first event boundary at-or-after
            // each check_interval — blocks may be larger than the
            // interval — and a timeout cuts the block at that boundary.
            if (limited) {
                while (next_poll < index + n) {
                    if (watch.elapsed_seconds() >
                        opts.budget.max_seconds) {
                        out.result.timed_out = true;
                        n = static_cast<size_t>(next_poll - index);
                        stop = true;
                        break;
                    }
                    next_poll += opts.budget.check_interval;
                }
            }
            // One classification pass over the chunk, then contiguous
            // same-shard runs. Runs are cut at every planned merge, so
            // block boundaries never move a barrier.
            runs.clear();
            route_chunk(router, planner, cptr, n, index,
                        chunk_dst.data(), runs);
            for (const ShardRun& run : runs) {
                if (run.merge_before) {
                    // Staged blocks out first, then markers to *every*
                    // queue before any later event: each barrier
                    // generation is complete once issued, and no staged
                    // event may straddle it.
                    for (uint32_t s = 0; s < shards; ++s)
                        flush_lane(s);
                    ShardItem m;
                    m.kind = ShardItem::kMerge;
                    m.index = merge_generation; // generation it completes
                    for (uint32_t s = 0; s < shards; ++s)
                        push_item(s, m);
                    windows.rotate(merge_generation, index + run.begin);
                    recovery_log.rotate(merge_generation,
                                        index + run.begin);
                    ++merge_generation;
                    {
                        std::lock_guard<std::mutex> lk(ckpt.mu);
                        if (ckpt.has)
                            recovery_log.prune_to(ckpt.generation);
                    }
                    // Horizon first, suspect minimum second: the acquire
                    // in min_progress orders any fired lane's stop_at
                    // update before this load.
                    const uint64_t horizon = min_progress(lanes);
                    windows.prune(horizon,
                                  stop_at.load(std::memory_order_relaxed),
                                  seeds);
                }
                ++out.transport_runs;
                out.transport_run_events += run.len;
                for (uint32_t i = run.begin; i < run.begin + run.len;
                     ++i) {
                    const uint64_t gi = index + i;
                    windows.record(cptr[i], gi);
                    recovery_log.record(cptr[i], gi);
                    ShardItem it;
                    it.event = cptr[i];
                    it.index = gi;
                    it.kind = ShardItem::kEvent;
                    if (run.shard == ShardRouter::kBroadcast) {
                        for (uint32_t s = 0; s < shards; ++s) {
                            staged[s].push_back(it);
                            if (staged[s].size() >= batch)
                                flush_lane(s);
                        }
                    } else {
                        staged[run.shard].push_back(it);
                        if (staged[run.shard].size() >= batch)
                            flush_lane(run.shard);
                    }
                }
            }
            index += n;
            if (use_pipe) {
                pipe->release(rslot);
                rslot ^= 1;
            }
            if (watchdog_ms > 0 && index >= next_sweep) {
                watchdog_sweep(/*draining=*/false);
                next_sweep = index + 1024;
            }
        }
    } catch (...) {
        shut_down(); // unexpected failure: unwind the pipeline first
        throw;
    }
    shut_down();

    out.result.stream_errors_recovered = source.recovered_error_count();
    out.barrier_merges = planner.barrier_merges();
    join_verdicts(factory, lanes, windows, seeds, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

ShardRunResult
run_sharded(const EngineFactory& factory, const Trace& trace,
            const ShardOptions& opts)
{
    TraceSource source(trace);
    return run_sharded(factory, source, opts);
}

ShardRunResult
run_sharded_inline(const EngineFactory& factory, const Trace& trace,
                   const ShardOptions& opts)
{
    const uint32_t shards = opts.shards ? opts.shards : 1;
    ShardRouter router(shards, opts.policy);
    std::vector<Lane> lanes =
        make_lanes(factory, shards, /*with_queues=*/false, 0);
    reserve_lanes(lanes, trace.num_threads(), trace.num_vars(),
                  trace.num_locks());

    const uint32_t batch = resolve_batch_size(opts.batch_size);

    ShardRunResult out;
    out.shards = shards;
    out.batch = batch;
    SeedLog seeds(replay_active(opts, shards));
    WindowLog windows(replay_active(opts, shards));
    FrontierMerger merger;
    MergePlanner planner(router, shards > 1 ? opts.merge_epoch : 0,
                         opts.divergence_barriers,
                         lanes[0].engine->uses_live_clock_proxies());
    uint64_t stop_at = UINT64_MAX;
    uint64_t merge_generation = 0;

    PanicContextScope panic_scope;

    // Feed one event straight to a lane's engine: same-shard runs are
    // processed in place — no pending buffers, no queue machinery.
    // Between two merges the lanes share no state, so per-run processing
    // order is observably identical to the threaded driver's arbitrary
    // interleaving.
    auto feed = [&](Lane& lane, const Event& e, uint64_t gi) {
        if (lane.violation || gi > stop_at)
            return;
        lane.processed.fetch_add(1, std::memory_order_relaxed);
        panic_scope.set_index(gi);
        if (lane.engine->process(e, gi)) {
            lane.violation = lane.engine->violation();
            if (gi < stop_at)
                stop_at = gi;
        }
    };

    Stopwatch watch;
    const bool limited = opts.budget.max_seconds > 0;
    const auto& events = trace.events();
    std::vector<uint32_t> chunk_dst(batch);
    std::vector<ShardRun> runs;
    uint64_t index = 0;
    bool stop = false;
    while (index < events.size() && !stop) {
        // Size the chunk with the same per-event budget/stop cadence the
        // threaded reader uses, then classify it in one pass.
        const size_t want =
            std::min<size_t>(batch, events.size() - index);
        size_t n = 0;
        while (n < want) {
            const uint64_t gi = index + n;
            if (limited && (gi % opts.budget.check_interval) == 0 &&
                watch.elapsed_seconds() > opts.budget.max_seconds) {
                out.result.timed_out = true;
                stop = true;
                break;
            }
            if (gi > stop_at) {
                stop = true;
                break;
            }
            ++n;
        }
        runs.clear();
        route_chunk(router, planner, events.data() + index, n, index,
                    chunk_dst.data(), runs);
        for (const ShardRun& run : runs) {
            if (run.merge_before) {
                merger.merge(lanes);
                seeds.capture(lanes, merge_generation);
                ++out.frontier_merges;
                windows.rotate(merge_generation++, index + run.begin);
                windows.prune(index + run.begin, stop_at, seeds);
            }
            ++out.transport_runs;
            out.transport_run_events += run.len;
            for (uint32_t i = run.begin; i < run.begin + run.len; ++i) {
                const uint64_t gi = index + i;
                windows.record(events[index + i], gi);
                if (run.shard == ShardRouter::kBroadcast) {
                    for (auto& lane : lanes)
                        feed(lane, events[index + i], gi);
                } else {
                    feed(lanes[run.shard], events[index + i], gi);
                }
            }
        }
        index += n;
    }

    out.barrier_merges = planner.barrier_merges();
    join_verdicts(factory, lanes, windows, seeds, out, index);
    out.result.seconds = watch.elapsed_seconds();
    return out;
}

} // namespace aero
