#pragma once

/**
 * @file
 * Bounded single-producer/single-consumer ring buffer — the event channel
 * between the sharded runner's reader thread and one shard worker.
 *
 * Classic two-index design: the producer owns `tail_`, the consumer owns
 * `head_`, each published with release stores and observed with acquire
 * loads, so an item's payload is fully visible before its slot is claimed
 * by the other side. Both sides keep a *cached* copy of the opposite
 * index and only re-read the shared atomic when the cache says
 * full/empty, which keeps the steady-state cost to one predictable
 * branch and no cache-line ping-pong per item.
 *
 * Capacity is rounded up to a power of two; one slot is sacrificed to
 * distinguish full from empty. Blocking push/pop spin briefly and then
 * yield — the runner targets machines where shards may outnumber cores
 * (CI boxes), where a hot spin would invert priorities.
 *
 * Both blocking sides take an optional wait bound (push_wait/pop_wait):
 * a sick partner must surface as a timeout the caller can act on — evict
 * the worker, run the watchdog — never as an unbounded spin. The bound
 * is accounted coarsely (whole sleep quanta) to keep the fast path free
 * of clock reads.
 *
 * Batch variants (try_push_n/try_pop_n and the waiting forms) move a
 * whole block of slots per reservation: one acquire of the opposite
 * index and one release of the own index cover the entire block, so the
 * per-item synchronization cost of the transport is paid once per block.
 * Slot storage is contiguous, so the copies are straight memmoves for
 * trivially copyable T (split in two at the wrap point).
 */

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace aero {

/**
 * Wait policy for full/empty rings: spin briefly (the partner is usually
 * one store away), then yield, then sleep. The sleep phase matters when
 * shards outnumber cores: a compute-bound worker must not lose its
 * timeslices to siblings busy-yielding on empty queues (measured ~1.75x
 * end-to-end on a single-core host without it).
 *
 * Constructed with a wait budget, pause() returns false once the total
 * (coarsely accounted: only full sleep quanta count, so the bound is a
 * floor, not a deadline) exceeds it. Budget 0 = wait forever.
 */
class SpscBackoff {
public:
    explicit SpscBackoff(uint64_t max_wait_us = 0) : max_wait_us_(max_wait_us)
    {}

    /** One wait step. @return false when the wait budget is spent. */
    bool
    pause()
    {
        ++spins_;
        if (spins_ < 64)
            return true;
        if (spins_ < 256) {
            std::this_thread::yield();
            return true;
        }
        if (max_wait_us_ != 0 && slept_us_ >= max_wait_us_)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(kSleepUs));
        slept_us_ += kSleepUs;
        return true;
    }

    void
    reset()
    {
        spins_ = 0;
        slept_us_ = 0;
    }

private:
    static constexpr uint64_t kSleepUs = 100;

    int spins_ = 0;
    uint64_t slept_us_ = 0;
    uint64_t max_wait_us_ = 0;
};

template <typename T>
class SpscQueue {
public:
    explicit SpscQueue(size_t min_capacity = 1024)
    {
        size_t cap = 2;
        while (cap < min_capacity + 1)
            cap *= 2;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    SpscQueue(const SpscQueue&) = delete;
    SpscQueue& operator=(const SpscQueue&) = delete;

    /** Producer side. @return false when the ring is full. */
    bool
    try_push(const T& item)
    {
        const size_t tail = tail_.load(std::memory_order_relaxed);
        const size_t next = (tail + 1) & mask_;
        if (next == head_cache_) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (next == head_cache_)
                return false;
        }
        buf_[tail] = item;
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /** Producer side; backs off while the ring is full for at most
     *  `max_wait_us` microseconds (0 = forever).
     *  @return false on timeout (item not pushed). */
    bool
    push_wait(const T& item, uint64_t max_wait_us)
    {
        SpscBackoff backoff(max_wait_us);
        while (!try_push(item)) {
            if (!backoff.pause())
                return false;
        }
        return true;
    }

    /** Producer side; backs off while the ring is full. */
    void push(const T& item) { push_wait(item, 0); }

    /**
     * Producer side, batched: push up to `n` items from `items` with one
     * reservation — a single acquire of the consumer's index and a single
     * release of the producer's, however many items fit.
     * @return items pushed (0 when the ring is full).
     */
    size_t
    try_push_n(const T* items, size_t n)
    {
        const size_t tail = tail_.load(std::memory_order_relaxed);
        size_t free_slots = (head_cache_ + mask_ - tail) & mask_;
        if (free_slots < n) {
            head_cache_ = head_.load(std::memory_order_acquire);
            free_slots = (head_cache_ + mask_ - tail) & mask_;
            if (free_slots == 0)
                return 0;
        }
        const size_t m = std::min(n, free_slots);
        const size_t first = std::min(m, buf_.size() - tail);
        std::copy_n(items, first, buf_.begin() + tail);
        std::copy_n(items + first, m - first, buf_.begin());
        tail_.store((tail + m) & mask_, std::memory_order_release);
        return m;
    }

    /**
     * Producer side, batched and blocking: pushes all `n` items, backing
     * off whenever the ring fills, for at most `max_wait_us` total
     * (0 = wait forever, the same convention as push_wait).
     * @return items pushed — `n` on success, fewer on timeout. Partial
     * progress is durable: items [0, return) sit in the ring exactly
     * once, so a caller that later retries with the remainder neither
     * loses nor duplicates (the shutdown-while-full drain contract).
     */
    size_t
    push_n_wait(const T* items, size_t n, uint64_t max_wait_us)
    {
        size_t done = 0;
        SpscBackoff backoff(max_wait_us);
        while (done < n) {
            const size_t pushed = try_push_n(items + done, n - done);
            if (pushed > 0) {
                done += pushed;
                backoff.reset();
                continue;
            }
            if (!backoff.pause())
                break;
        }
        return done;
    }

    /** Consumer side. @return false when the ring is empty. */
    bool
    try_pop(T& out)
    {
        const size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_cache_) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head == tail_cache_)
                return false;
        }
        out = buf_[head];
        head_.store((head + 1) & mask_, std::memory_order_release);
        return true;
    }

    /** Consumer side; backs off while the ring is empty for at most
     *  `max_wait_us` microseconds (0 = forever).
     *  @return false on timeout (`out` untouched). */
    bool
    pop_wait(T& out, uint64_t max_wait_us)
    {
        SpscBackoff backoff(max_wait_us);
        while (!try_pop(out)) {
            if (!backoff.pause())
                return false;
        }
        return true;
    }

    /** Consumer side; backs off while the ring is empty. */
    T
    pop()
    {
        T out;
        pop_wait(out, 0);
        return out;
    }

    /**
     * Consumer side, batched: pop up to `n` items into `out` with one
     * reservation (one acquire of the producer's index, one release of
     * the consumer's). @return items popped (0 when empty).
     */
    size_t
    try_pop_n(T* out, size_t n)
    {
        const size_t head = head_.load(std::memory_order_relaxed);
        size_t avail = (tail_cache_ - head) & mask_;
        if (avail == 0) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            avail = (tail_cache_ - head) & mask_;
            if (avail == 0)
                return 0;
        }
        const size_t m = std::min(n, avail);
        const size_t first = std::min(m, buf_.size() - head);
        std::copy_n(buf_.begin() + head, first, out);
        std::copy_n(buf_.begin(), m - first, out + first);
        head_.store((head + m) & mask_, std::memory_order_release);
        return m;
    }

    /**
     * Consumer side, batched and blocking: waits until at least one item
     * is available, then pops as many as are ready (up to `n`). Backs
     * off on empty for at most `max_wait_us` total (0 = wait forever,
     * the same convention as pop_wait).
     * @return items popped; 0 only on timeout.
     */
    size_t
    pop_n_wait(T* out, size_t n, uint64_t max_wait_us)
    {
        SpscBackoff backoff(max_wait_us);
        for (;;) {
            const size_t popped = try_pop_n(out, n);
            if (popped > 0)
                return popped;
            if (!backoff.pause())
                return 0;
        }
    }

    size_t capacity() const { return buf_.size() - 1; }

    /** Racy size estimate (either side / the watchdog); exact only when
     *  both sides are quiescent. */
    size_t
    size_approx() const
    {
        const size_t tail = tail_.load(std::memory_order_relaxed);
        const size_t head = head_.load(std::memory_order_relaxed);
        return (tail - head) & mask_;
    }

private:
    // Producer and consumer indices live on separate cache lines so the
    // two sides never false-share; the caches are plain fields owned by
    // one side each.
    alignas(64) std::atomic<size_t> tail_{0}; ///< producer-owned
    size_t head_cache_ = 0;                   ///< producer's view of head
    alignas(64) std::atomic<size_t> head_{0}; ///< consumer-owned
    size_t tail_cache_ = 0;                   ///< consumer's view of tail

    std::vector<T> buf_;
    size_t mask_ = 0;
};

} // namespace aero
