#pragma once

/**
 * @file
 * ShardedRunner — parallel multi-engine checking with a per-shard verdict
 * join.
 *
 * A trace is projected by a ShardRouter into per-shard streams (variables
 * partitioned, synchronization events replicated), each checked by its
 * own engine instance built from an EngineFactory. Shard-local clocks are
 * an *under-approximation* of the single-engine clocks, so any violation
 * a shard reports is real; the runner periodically merges the per-thread
 * clock frontiers across shards (every `merge_epoch` events) so
 * cross-variable communication edges propagate between shards.
 *
 * Modes (see src/shard/README.md for the full soundness argument):
 *   - merge_epoch == 1 ("lockstep"): a frontier merge after every event.
 *     Provably bit-exact with the single-engine run — same verdict, same
 *     violating event, same thread. The correctness anchor; the parity
 *     suite enforces it across the fuzz corpus.
 *   - merge_epoch == K > 1 ("epoch"): merges every K events. Sound
 *     (never a false violation) and fast, but a cross-shard cycle whose
 *     closing edge crosses shards *within* one epoch window while the
 *     carrier transaction is still open may be detected later than the
 *     single-engine run, or — if nothing re-touches the affected state —
 *     missed. First-violation-wins joining keeps the reported verdict
 *     deterministic regardless of thread scheduling.
 *   - merge_epoch == 0: no merges; per-shard verdicts are still sound.
 *
 * Two drivers share all routing/merge/join logic:
 *   - run_sharded: reader thread + bounded SPSC queues + worker threads;
 *   - run_sharded_inline: deterministic single-threaded execution with
 *     identical semantics (lanes share no state between merges, so the
 *     interleaving is immaterial) — used by differential tests and as a
 *     reference for the threaded pipeline.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/runner.hpp"
#include "shard/router.hpp"
#include "trace/trace.hpp"

namespace aero {

class EventSource;

/** Builds one engine instance per shard (must be thread-compatible:
 *  instances are only ever touched by their owning shard worker and, at
 *  merge barriers, by one thread at a time). */
using EngineFactory = std::function<std::unique_ptr<AtomicityChecker>()>;

/** Configuration of one sharded run. */
struct ShardOptions {
    /** Hard ceiling on `shards` (enforced with a FatalError): a wrapped
     *  or hostile count must not translate into thousands of threads. */
    static constexpr uint32_t kMaxShards = 1024;

    /** Number of engine instances / worker threads. */
    uint32_t shards = 2;
    /** Frontier-merge period in events: 1 = lockstep (exact), K > 1 =
     *  epoch mode (sound, detection may lag), 0 = never merge. */
    uint64_t merge_epoch = 1024;
    /** Variable placement policy. */
    ShardPolicy policy = &hash_shard_policy;
    /** Bounded per-shard queue size (threaded driver only). */
    size_t queue_capacity = 4096;
    /** Wall-clock budget, enforced by the reader thread. */
    RunBudget budget;
};

/** Outcome of a sharded run: the joined verdict plus per-shard detail. */
struct ShardRunResult {
    /** Joined verdict. `result.details->shard` names the winning shard;
     *  `result.counters` holds the name-wise sums over all shards. */
    RunResult result;
    uint32_t shards = 1;
    /** Frontier merges performed. */
    uint64_t frontier_merges = 0;
    /** Per-shard counters() breakdown, indexed by shard. */
    std::vector<StatList> shard_counters;
    /** Events each shard actually processed (after projection). */
    std::vector<uint64_t> shard_events;
};

/** Threaded driver: stream `source` through `opts.shards` workers. */
ShardRunResult run_sharded(const EngineFactory& factory, EventSource& source,
                           const ShardOptions& opts = {});

/** Convenience wrapper over an in-memory trace. */
ShardRunResult run_sharded(const EngineFactory& factory, const Trace& trace,
                           const ShardOptions& opts = {});

/**
 * Deterministic single-threaded driver with semantics identical to
 * run_sharded (same projection, merge cadence and verdict join; no
 * queues or threads). The differential suite's workhorse.
 */
ShardRunResult run_sharded_inline(const EngineFactory& factory,
                                  const Trace& trace,
                                  const ShardOptions& opts = {});

} // namespace aero
