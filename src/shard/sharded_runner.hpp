#pragma once

/**
 * @file
 * ShardedRunner — parallel multi-engine checking with a per-shard verdict
 * join.
 *
 * A trace is projected by a ShardRouter into per-shard streams (variables
 * partitioned, synchronization events replicated), each checked by its
 * own engine instance built from an EngineFactory. Shard-local clocks are
 * an *under-approximation* of the single-engine clocks, so any violation
 * a shard reports is real; the runner periodically merges the per-thread
 * clock frontiers across shards (every `merge_epoch` events) so
 * cross-variable communication edges propagate between shards.
 *
 * Modes (see src/shard/README.md for the full exactness argument):
 *   - merge_epoch == 1 ("lockstep"): a frontier merge before every event.
 *     Provably bit-exact with the single-engine run — same verdict, same
 *     violating event, same thread. The historical correctness anchor.
 *   - merge_epoch == K > 1 or kMergeEndOnly ("epoch", the default): a
 *     periodic merge every K events *plus* the MergePlanner's divergence
 *     barriers — merge-on-end and the publish/consume/switch/proxy rules
 *     (router.hpp) — which make these cadences bit-exact too: every
 *     clock an engine check consults is merged to its single-engine
 *     value just before the consult, while runs of same-shard accesses
 *     proceed barrier-free. kMergeEndOnly drops the periodic component
 *     and relies on barriers alone.
 *   - divergence_barriers == false (legacy PR 3 epoch mode): merges only
 *     every K events. Sound (never a false violation) but detection may
 *     lag or miss a cross-shard cycle whose hops share one window. With
 *     confirm_replay, any violation a shard raises between merges is
 *     demoted to a *suspect*: the runner buffers the event window since
 *     the preceding merge, replays it sequentially through a fresh
 *     confirmation engine reseeded from the joined per-shard seeds
 *     (EngineSeed), and either refines the verdict to the earlier exact
 *     index the replay finds or upholds the shard's (still sound) one.
 *   - merge_epoch == 0: no merges at all; per-shard verdicts are still
 *     sound, and confirm_replay still applies (one trace-long window).
 *
 * Two drivers share all routing/merge/join/replay logic:
 *   - run_sharded: reader thread + bounded SPSC queues + worker threads;
 *   - run_sharded_inline: deterministic single-threaded execution with
 *     identical semantics (lanes share no state between merges, so the
 *     interleaving is immaterial) — used by differential tests and as a
 *     reference for the threaded pipeline.
 *
 * Failure model (src/shard/README.md, "Failure model"): with
 * `watchdog_ms` set, the reader doubles as a watchdog. A worker whose
 * heartbeat freezes past the deadline while it has work queued (and is
 * not parked at a merge barrier) is marked failed, evicted from the
 * merge barrier, and replaced: a fresh engine is reseeded from the last
 * merge-barrier EngineSeed checkpoint, the buffered event window since
 * that checkpoint is replayed, and the replacement rejoins the barrier
 * protocol. The recovered verdict is exact when no checkpoint was needed
 * (death before the first merge with the full window intact); otherwise
 * the run completes with RunResult::degraded set — never a hang, never a
 * torn result. A shard that exceeds `max_recoveries` is abandoned:
 * subsequent events for it are counted in events_dropped and the run is
 * degraded.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/runner.hpp"
#include "shard/router.hpp"
#include "trace/trace.hpp"

namespace aero {

class EventSource;

/** Builds one engine instance per shard (must be thread-compatible:
 *  instances are only ever touched by their owning shard worker and, at
 *  merge barriers, by one thread at a time). */
using EngineFactory = std::function<std::unique_ptr<AtomicityChecker>()>;

/** Configuration of one sharded run. */
struct ShardOptions {
    /** Hard ceiling on `shards` (enforced with a FatalError): a wrapped
     *  or hostile count must not translate into thousands of threads. */
    static constexpr uint32_t kMaxShards = 1024;

    /** merge_epoch value meaning "divergence barriers only, no periodic
     *  merges" (MergePlanner::kEndOnly). */
    static constexpr uint64_t kMergeEndOnly = MergePlanner::kEndOnly;

    /** Number of engine instances / worker threads. */
    uint32_t shards = 2;
    /** Frontier-merge period in events: 1 = lockstep, K > 1 = epoch mode
     *  (exact too while divergence_barriers is on), kMergeEndOnly =
     *  barriers only, 0 = never merge (sound only). */
    uint64_t merge_epoch = 64;
    /** Insert the MergePlanner's divergence barriers (merge-on-end and
     *  friends), making every cadence above except 0 bit-exact. Off
     *  reproduces the PR 3 sound-but-lagging epoch mode. */
    bool divergence_barriers = true;
    /** In non-exact modes (divergence_barriers off, merge_epoch != 1),
     *  demote between-merge violations to suspects and confirm them by
     *  sequentially replaying the buffered suspect window through a
     *  reseeded confirmation engine. */
    bool confirm_replay = true;
    /** Variable placement policy. */
    ShardPolicy policy = &hash_shard_policy;
    /** Bounded per-shard queue size (threaded driver only). */
    size_t queue_capacity = 4096;
    /** Transport block size in events: how many events the reader stages
     *  per shard before publishing them into the ring as one block (one
     *  reservation), and the unit of worker pops, heartbeats and
     *  watchdog accounting. Blocks are cut early at merge barriers,
     *  end-of-stream and shard abandonment, so barrier placement is
     *  unaffected. 0 resolves from the AERO_BATCH environment variable,
     *  falling back to 256; 1 degenerates to per-event transport. */
    uint32_t batch_size = 0;
    /** Pin shard worker s to core s mod hardware_concurrency (threaded
     *  driver, Linux only; elsewhere a no-op). Keeps each engine's banks
     *  and arena resident in one core's cache — and, on NUMA machines,
     *  on the node that first touched them (aerocheck --pin). */
    bool pin_workers = false;
    /** Stalled-worker deadline in milliseconds (threaded driver only).
     *  0 disables the watchdog and all recovery bookkeeping — the
     *  default, so un-opted runs pay nothing on the hot path. */
    uint32_t watchdog_ms = 0;
    /** Times one shard may be evicted and replaced before it is
     *  abandoned (run completes degraded, shard's events dropped). */
    uint32_t max_recoveries = 2;
    /** Cap, in buffered events, on the recovery replay log. Overflow
     *  sheds the oldest coverage; a later recovery that needed it
     *  completes degraded instead of exact. */
    size_t recovery_buffer_cap = 1 << 20;
    /** Wall-clock budget, enforced by the reader thread. */
    RunBudget budget;
};

/** Outcome of a sharded run: the joined verdict plus per-shard detail. */
struct ShardRunResult {
    /** Joined verdict. `result.details->shard` names the winning shard;
     *  `result.counters` holds the name-wise sums over all shards. */
    RunResult result;
    uint32_t shards = 1;
    /** Frontier merges performed. */
    uint64_t frontier_merges = 0;
    /** Subset of frontier_merges forced by divergence barriers
     *  (merge-on-end + publish/consume/switch/proxy rules). */
    uint64_t barrier_merges = 0;
    /** Shard violations demoted to suspects (non-exact modes only). */
    uint64_t suspects = 0;
    /** Confirmation replays executed. */
    uint64_t replays = 0;
    /** Replays that re-fired at exactly the suspect's index. */
    uint64_t replay_confirmed = 0;
    /** Replays that found an earlier (exact) violation index. */
    uint64_t replay_refined = 0;
    /** Replays that did not re-fire; the sound shard verdict was kept. */
    uint64_t replay_upheld = 0;
    /** Worker evictions that installed a replacement engine. */
    uint64_t recoveries = 0;
    /** Shards abandoned after exhausting max_recoveries. */
    uint64_t shards_abandoned = 0;
    /** Events routed to an abandoned shard and discarded. */
    uint64_t events_dropped = 0;
    /** Resolved transport block size (ShardOptions::batch_size after the
     *  AERO_BATCH fallback). */
    uint32_t batch = 1;
    /** Blocks published into the rings (threaded driver). */
    uint64_t blocks_pushed = 0;
    /** Blocks flushed before reaching `batch` events (cut at a merge
     *  barrier, end of stream, stop, or shard abandonment). */
    uint64_t partial_flushes = 0;
    /** Contiguous same-destination runs the routing kernel emitted, and
     *  the events they covered (avg run length = events / runs). */
    uint64_t transport_runs = 0;
    uint64_t transport_run_events = 0;
    /** Per-shard counters() breakdown, indexed by shard. */
    std::vector<StatList> shard_counters;
    /** Events each shard actually processed (after projection). */
    std::vector<uint64_t> shard_events;
    /** Bytes of analysis state per shard at the end of the run: the
     *  engine's banks + adaptive table (arena) + bookkeeping, plus the
     *  shard's queue buffer in the threaded driver. */
    std::vector<uint64_t> shard_memory_bytes;
};

/** Threaded driver: stream `source` through `opts.shards` workers. */
ShardRunResult run_sharded(const EngineFactory& factory, EventSource& source,
                           const ShardOptions& opts = {});

/** Convenience wrapper over an in-memory trace. */
ShardRunResult run_sharded(const EngineFactory& factory, const Trace& trace,
                           const ShardOptions& opts = {});

/**
 * Deterministic single-threaded driver with semantics identical to
 * run_sharded (same projection, merge cadence and verdict join; no
 * queues or threads). The differential suite's workhorse.
 */
ShardRunResult run_sharded_inline(const EngineFactory& factory,
                                  const Trace& trace,
                                  const ShardOptions& opts = {});

} // namespace aero
