#include "shard/router.hpp"

namespace aero {

uint32_t
hash_shard_policy(VarId x, uint32_t shards)
{
    // Fibonacci hashing: odd multiplier, top bits are well mixed.
    uint32_t h = x * 2654435761u;
    return (h >> 16) % shards;
}

uint32_t
modulo_shard_policy(VarId x, uint32_t shards)
{
    return x % shards;
}

void
ShardRouter::classify(const Event* events, size_t n, uint32_t* dst) const
{
    if (policy_ == &hash_shard_policy) {
        // The common policy, inlined: the loop body is a handful of
        // arithmetic ops and a predictable branch per event.
        for (size_t i = 0; i < n; ++i) {
            const Event& e = events[i];
            dst[i] = op_targets_var(e.op)
                         ? (shards_ == 1
                                ? 0u
                                : ((e.target * 2654435761u) >> 16) % shards_)
                         : kBroadcast;
        }
        return;
    }
    for (size_t i = 0; i < n; ++i)
        dst[i] = shard_of(events[i]);
}

void
route_chunk(const ShardRouter& router, MergePlanner& planner,
            const Event* events, size_t n, uint64_t base_index,
            uint32_t* dst, std::vector<ShardRun>& runs)
{
    router.classify(events, n, dst);
    ShardRun cur;
    for (size_t i = 0; i < n; ++i) {
        const bool merge = planner.merge_before(events[i], base_index + i);
        if (cur.len != 0 && !merge && dst[i] == cur.shard) {
            ++cur.len;
            continue;
        }
        if (cur.len != 0)
            runs.push_back(cur);
        cur.shard = dst[i];
        cur.begin = static_cast<uint32_t>(i);
        cur.len = 1;
        cur.merge_before = merge;
    }
    if (cur.len != 0)
        runs.push_back(cur);
}

MergePlanner::MergePlanner(const ShardRouter& router, uint64_t merge_epoch,
                           bool barriers, bool lazy_proxies)
    : router_(router), merge_epoch_(merge_epoch),
      barriers_(barriers && merge_epoch != 0 && router.shards() > 1),
      lazy_proxies_(lazy_proxies),
      next_periodic_(merge_epoch == 0 || merge_epoch == kEndOnly
                         ? kEndOnly
                         : merge_epoch)
{}

MergePlanner::ThreadState&
MergePlanner::state(ThreadId t)
{
    if (t >= threads_.size())
        threads_.resize(t + 1);
    return threads_[t];
}

/** Would processing `e` read or publish a clock that may be stale in
 *  some shard? (Rules E1-E4; E5 is the `pending_` flag.) */
bool
MergePlanner::barrier_due(const Event& e)
{
    ThreadState& ts = state(e.tid);
    switch (e.op) {
      case Op::kEnd:
        // E1: the end propagation publishes C_t everywhere and its peer
        // loop consults every C_u — all clocks must be exact. Inner ends
        // are no-ops for every engine (TxnTracker).
        return ts.depth == 1 && diverged_threads_ > 0;
      case Op::kBegin:
        // E2: the outermost begin snapshots C_t^b in every shard.
        return ts.depth == 0 && ts.home != kNoShard;
      case Op::kRelease:
      case Op::kFork:
        // E2: publishes C_t into every shard's L_l / C_child.
        return ts.home != kNoShard;
      case Op::kJoin:
        // E3: consults (and checks against) the target's full clock in
        // every shard.
        return state(e.target).home != kNoShard;
      case Op::kRead:
      case Op::kWrite:
        // E4: publishing C_t into a different owner shard than the one
        // holding t's since-merge gains.
        return ts.home != kNoShard &&
               ts.home != router_.shard_of_var(e.target);
      case Op::kAcquire:
        // Consults L_l, which is identical and exact in every shard
        // (releases are replicated and gated by E2), and grows C_t
        // identically everywhere.
        return false;
    }
    return false;
}

void
MergePlanner::apply(const Event& e)
{
    ThreadState& ts = state(e.tid);
    switch (e.op) {
      case Op::kBegin:
        ++ts.depth;
        break;
      case Op::kEnd:
        if (ts.depth > 0 && --ts.depth == 0) {
            // The engines flush and clear all lazy state (stale writes,
            // stale readers, update sets) at the outermost end.
            ts.txn_shard = kNoShard;
            ts.txn_multi = false;
        }
        break;
      case Op::kRead:
      case Op::kWrite: {
        const uint32_t s = router_.shard_of_var(e.target);
        if (ts.home == kNoShard) {
            ts.home = s;
            ++diverged_threads_;
        }
        if (ts.depth > 0) {
            if (ts.txn_shard == kNoShard)
                ts.txn_shard = s;
            else if (ts.txn_shard != s)
                ts.txn_multi = true;
            // E5 (lazy engines only): other shards may consult this
            // thread's live clock through its lazy stale-access state;
            // growth in one shard of a multi-shard transaction must be
            // merged out immediately.
            if (ts.txn_multi && lazy_proxies_)
                pending_ = true;
        }
        break;
      }
      default:
        break;
    }
}

void
MergePlanner::reset_divergence()
{
    if (diverged_threads_ > 0) {
        for (ThreadState& ts : threads_)
            ts.home = kNoShard;
        diverged_threads_ = 0;
    }
    pending_ = false;
}

bool
MergePlanner::merge_before(const Event& e, uint64_t index)
{
    if (merge_epoch_ == 0 || router_.shards() < 2)
        return false; // never merging: no divergence tracking either
    if (merge_epoch_ == 1) { // lockstep: a merge before every event
        return index >= 1;
    }
    bool merge = false;
    bool barrier = false;
    if (barriers_ && (pending_ || barrier_due(e)))
        merge = barrier = true;
    if (index >= next_periodic_) {
        merge = true;
        next_periodic_ += merge_epoch_;
    }
    if (merge) {
        reset_divergence();
        if (barrier)
            ++barrier_merges_;
    }
    if (barriers_)
        apply(e);
    return merge;
}

std::vector<std::vector<ProjectedEvent>>
project(const Trace& trace, const ShardRouter& router)
{
    std::vector<std::vector<ProjectedEvent>> out(router.shards());
    const auto& events = trace.events();
    for (uint64_t i = 0; i < events.size(); ++i) {
        uint32_t dst = router.shard_of(events[i]);
        if (dst == ShardRouter::kBroadcast) {
            for (auto& lane : out)
                lane.push_back({events[i], i});
        } else {
            out[dst].push_back({events[i], i});
        }
    }
    return out;
}

} // namespace aero
