#include "shard/router.hpp"

namespace aero {

uint32_t
hash_shard_policy(VarId x, uint32_t shards)
{
    // Fibonacci hashing: odd multiplier, top bits are well mixed.
    uint32_t h = x * 2654435761u;
    return (h >> 16) % shards;
}

uint32_t
modulo_shard_policy(VarId x, uint32_t shards)
{
    return x % shards;
}

std::vector<std::vector<ProjectedEvent>>
project(const Trace& trace, const ShardRouter& router)
{
    std::vector<std::vector<ProjectedEvent>> out(router.shards());
    const auto& events = trace.events();
    for (uint64_t i = 0; i < events.size(); ++i) {
        uint32_t dst = router.shard_of(events[i]);
        if (dst == ShardRouter::kBroadcast) {
            for (auto& lane : out)
                lane.push_back({events[i], i});
        } else {
            out[dst].push_back({events[i], i});
        }
    }
    return out;
}

} // namespace aero
