#pragma once

/**
 * @file
 * ShardRouter — projects one event stream into per-shard event streams.
 *
 * The projection rule (see src/shard/README.md for the soundness
 * argument):
 *
 *   - read/write events are *partitioned*: variable x belongs to exactly
 *     one shard, chosen by a pluggable policy (multiplicative hash by
 *     default), and only that shard sees x's accesses;
 *   - everything else — begin/end, acquire/release, fork/join — is
 *     *replicated* to every shard, so each shard observes the complete
 *     synchronization spine of the trace and lock-induced, fork/join and
 *     program-order (transaction-boundary) edges survive projection.
 *
 * Per-shard order equals trace order restricted to the shard's event set;
 * each projected event carries its global index so violations report the
 * position in the original trace.
 */

#include <cstdint>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace aero {

/**
 * Variable placement policy: maps (variable, shard count) to a shard in
 * [0, shards). Must be pure — the reader thread and any re-projection
 * (tests, witness reconstruction) have to agree.
 */
using ShardPolicy = uint32_t (*)(VarId x, uint32_t shards);

/** Default policy: multiplicative (Fibonacci) hash of the variable id,
 *  spreading adjacent ids — which generators hand out in creation order
 *  to hot variables — across shards. */
uint32_t hash_shard_policy(VarId x, uint32_t shards);

/** Round-robin by raw id (x % shards): predictable placement for tests
 *  and for workloads whose ids are already uniform. */
uint32_t modulo_shard_policy(VarId x, uint32_t shards);

/** Routes events to shards; stateless apart from its configuration. */
class ShardRouter {
public:
    /** Destination meaning "every shard" (replicated events). */
    static constexpr uint32_t kBroadcast = UINT32_MAX;

    explicit ShardRouter(uint32_t shards,
                         ShardPolicy policy = &hash_shard_policy)
        : shards_(shards ? shards : 1), policy_(policy)
    {}

    uint32_t shards() const { return shards_; }

    uint32_t
    shard_of_var(VarId x) const
    {
        return shards_ == 1 ? 0 : policy_(x, shards_);
    }

    /** Owning shard for `e`, or kBroadcast for replicated events. */
    uint32_t
    shard_of(const Event& e) const
    {
        if (op_targets_var(e.op))
            return shard_of_var(e.target);
        return kBroadcast;
    }

    /** Classify a span of decoded events in one tight pass: dst[i] is
     *  the owner shard of events[i], or kBroadcast for replicated ops.
     *  The default hash policy is inlined so the loop stays branch- and
     *  call-light. */
    void classify(const Event* events, size_t n, uint32_t* dst) const;

private:
    uint32_t shards_;
    ShardPolicy policy_;
};

/** One event of a projected stream, tagged with its global index. */
struct ProjectedEvent {
    Event event;
    uint64_t index;
};

/**
 * One contiguous run of a routed chunk: `len` events starting at
 * chunk-relative offset `begin` that share a single destination (an
 * owner shard or kBroadcast). `merge_before` marks a planned frontier
 * merge immediately before the run's first event — runs are always cut
 * at merge points, so a merge never lands inside one and block
 * boundaries cannot move a barrier.
 */
struct ShardRun {
    uint32_t shard = 0;        ///< owner shard, or ShardRouter::kBroadcast
    uint32_t begin = 0;        ///< chunk-relative index of the first event
    uint32_t len = 0;          ///< events in the run (>= 1)
    bool merge_before = false; ///< frontier merge due before events[begin]
};

class MergePlanner;

/**
 * Chunked routing kernel: classify `events[0..n)` (at global indices
 * `base_index + i`), consult the planner once per event in trace order —
 * so barrier placement is bit-identical to per-event routing — and
 * append contiguous same-destination runs to `runs`, cut at every
 * destination change and every planned merge point. `dst` is caller
 * scratch with room for `n` entries (filled by classify).
 */
void route_chunk(const ShardRouter& router, MergePlanner& planner,
                 const Event* events, size_t n, uint64_t base_index,
                 uint32_t* dst, std::vector<ShardRun>& runs);

/**
 * Decides, deterministically from the event stream alone, the global
 * indices at which the sharded runner must merge the per-shard clock
 * frontiers. Two merge sources compose:
 *
 *   - a *periodic* merge every `merge_epoch` events (the PR 3 cadence; a
 *     staleness latency bound), and
 *   - *divergence barriers* — the merges that make epoch mode (K > 1)
 *     bit-exact with the single engine (src/shard/README.md has the full
 *     argument). A thread's clock C_t diverges across shards exactly when
 *     t performs owned (read/write) events, which only its owner shard
 *     sees; every clock any engine check consults is re-synchronized just
 *     before the consult:
 *
 *       E1 merge-on-end: before an outermost `end` while any thread has
 *          owned accesses since the last merge (the end propagation and
 *          peer loop read every C_u, and publish C_t into all entries);
 *       E2 publish: before a release/fork by a diverged thread, and
 *          before an outermost begin by a diverged thread (the begin
 *          clock C_t^b snapshot must be exact — it seeds every later
 *          violation check of that transaction);
 *       E3 consume: before a join(u) while u is diverged (the join
 *          checks and adopts u's full clock in every shard);
 *       E4 switch: before a read/write whose owner shard differs from
 *          the shard the thread's since-merge accesses live in (the
 *          access publishes C_t into that shard's W/R tables);
 *       E5 proxy: after a read/write by a thread whose *open
 *          transaction* spans more than one shard (Algorithms 2/3 defer
 *          clock updates and let other shards' events consult the
 *          thread's *live* clock — any growth must be visible in the
 *          shards holding its lazy state before the next event).
 *
 * Lockstep (merge_epoch == 1) merges before every event; merge_epoch ==
 * 0 disables all merging, barriers included (the legacy sound-only
 * mode). Both drivers feed the planner every event in trace order, so
 * threaded and inline runs merge at identical indices.
 */
class MergePlanner {
public:
    /** merge_epoch semantics: 0 = never, 1 = lockstep, K > 1 = periodic
     *  every K, kEndOnly = no periodic component (barriers only). */
    static constexpr uint64_t kEndOnly = UINT64_MAX;

    /** `lazy_proxies`: the engine consults live thread clocks through
     *  lazy stale-access state (AtomicityChecker::
     *  uses_live_clock_proxies), requiring rule E5; eager engines skip
     *  those barriers. */
    MergePlanner(const ShardRouter& router, uint64_t merge_epoch,
                 bool barriers, bool lazy_proxies = true);

    /**
     * Must be called once per event, in trace order, *before* routing
     * it. @return true iff a frontier merge must run immediately before
     * `e`; the planner then assumes the caller performed it.
     */
    bool merge_before(const Event& e, uint64_t index);

    /** Merges demanded by divergence barriers (E1-E5), as opposed to the
     *  periodic cadence. */
    uint64_t barrier_merges() const { return barrier_merges_; }

private:
    static constexpr uint32_t kNoShard = UINT32_MAX;

    struct ThreadState {
        /** Owner shard of this thread's reads/writes since the last
         *  merge; kNoShard when none (clock identical in all shards). */
        uint32_t home = kNoShard;
        /** begin/end nesting depth. */
        uint32_t depth = 0;
        /** Owner shard of the first access of the current outermost
         *  transaction (lazy-state location), kNoShard before one. */
        uint32_t txn_shard = kNoShard;
        /** The open transaction has accessed >= 2 distinct shards. */
        bool txn_multi = false;
    };

    ThreadState& state(ThreadId t);
    bool barrier_due(const Event& e);
    void apply(const Event& e);
    void reset_divergence();

    const ShardRouter& router_;
    uint64_t merge_epoch_;
    bool barriers_;
    bool lazy_proxies_;
    uint64_t next_periodic_;
    uint64_t barrier_merges_ = 0;
    /** Set by E5: a merge is due before the next event. */
    bool pending_ = false;
    /** Number of threads with home != kNoShard. */
    uint32_t diverged_threads_ = 0;
    std::vector<ThreadState> threads_;
};

/** Materialize the full projection of `trace` (tests, inline runner). */
std::vector<std::vector<ProjectedEvent>> project(const Trace& trace,
                                                 const ShardRouter& router);

} // namespace aero
