#pragma once

/**
 * @file
 * ShardRouter — projects one event stream into per-shard event streams.
 *
 * The projection rule (see src/shard/README.md for the soundness
 * argument):
 *
 *   - read/write events are *partitioned*: variable x belongs to exactly
 *     one shard, chosen by a pluggable policy (multiplicative hash by
 *     default), and only that shard sees x's accesses;
 *   - everything else — begin/end, acquire/release, fork/join — is
 *     *replicated* to every shard, so each shard observes the complete
 *     synchronization spine of the trace and lock-induced, fork/join and
 *     program-order (transaction-boundary) edges survive projection.
 *
 * Per-shard order equals trace order restricted to the shard's event set;
 * each projected event carries its global index so violations report the
 * position in the original trace.
 */

#include <cstdint>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace aero {

/**
 * Variable placement policy: maps (variable, shard count) to a shard in
 * [0, shards). Must be pure — the reader thread and any re-projection
 * (tests, witness reconstruction) have to agree.
 */
using ShardPolicy = uint32_t (*)(VarId x, uint32_t shards);

/** Default policy: multiplicative (Fibonacci) hash of the variable id,
 *  spreading adjacent ids — which generators hand out in creation order
 *  to hot variables — across shards. */
uint32_t hash_shard_policy(VarId x, uint32_t shards);

/** Round-robin by raw id (x % shards): predictable placement for tests
 *  and for workloads whose ids are already uniform. */
uint32_t modulo_shard_policy(VarId x, uint32_t shards);

/** Routes events to shards; stateless apart from its configuration. */
class ShardRouter {
public:
    /** Destination meaning "every shard" (replicated events). */
    static constexpr uint32_t kBroadcast = UINT32_MAX;

    explicit ShardRouter(uint32_t shards,
                         ShardPolicy policy = &hash_shard_policy)
        : shards_(shards ? shards : 1), policy_(policy)
    {}

    uint32_t shards() const { return shards_; }

    uint32_t
    shard_of_var(VarId x) const
    {
        return shards_ == 1 ? 0 : policy_(x, shards_);
    }

    /** Owning shard for `e`, or kBroadcast for replicated events. */
    uint32_t
    shard_of(const Event& e) const
    {
        if (op_targets_var(e.op))
            return shard_of_var(e.target);
        return kBroadcast;
    }

private:
    uint32_t shards_;
    ShardPolicy policy_;
};

/** One event of a projected stream, tagged with its global index. */
struct ProjectedEvent {
    Event event;
    uint64_t index;
};

/** Materialize the full projection of `trace` (tests, inline runner). */
std::vector<std::vector<ProjectedEvent>> project(const Trace& trace,
                                                 const ShardRouter& router);

} // namespace aero
