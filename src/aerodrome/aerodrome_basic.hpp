#pragma once

/**
 * @file
 * AeroDrome, basic variant — a faithful implementation of the paper's
 * Algorithm 1.
 *
 * The algorithm maintains:
 *  - C_t:  timestamp of the last event of thread t;
 *  - C_t^b ("C-begin"): timestamp of the last (outermost) begin of t;
 *  - L_l:  timestamp of the last release of lock l;
 *  - W_x:  timestamp of the last write to variable x;
 *  - R_{t,x}: timestamp of the last read of x by thread t;
 *  - lastRelThr_l / lastWThr_x: thread of the last release/write.
 *
 * All timestamps are prefix-relative (they grow as later events reveal new
 * orderings — the end-event propagation in lines 38-46 of Algorithm 1), and
 * capture the paper's <=_E relation. checkAndGet(clk, t) declares a
 * violation when clk is ordered at-or-after the begin event of t's active
 * transaction (Theorem 2's condition), and otherwise advances C_t.
 *
 * This variant keeps O(|Thr| * Vars) read clocks and iterates all locks,
 * variables, and threads at each end event — exactly the state layout of
 * Algorithm 1. See aerodrome_readopt.hpp and aerodrome_opt.hpp for the
 * paper's optimized versions (Algorithms 2 and 3).
 *
 * Clock storage is bank-based (vc/clock_bank.hpp): every clock family
 * lives in one contiguous arena whose dimension is the number of threads
 * seen so far, kept in sync across all banks by ensure_thread.
 */

#include <cstdint>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/clock_bank.hpp"
#include "vc/vector_clock.hpp"

namespace aero {

/** Statistics for the evaluation harness. */
struct AeroDromeStats {
    /** Number of vector-clock join operations performed. */
    uint64_t joins = 0;
    /** Number of vector-clock ordering comparisons performed. */
    uint64_t comparisons = 0;
};

/** AeroDrome, Algorithm 1 (basic). */
class AeroDromeBasic : public CheckerBase {
public:
    AeroDromeBasic(uint32_t num_threads, uint32_t num_vars,
                   uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome-basic"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    const AeroDromeStats& stats() const { return stats_; }

    /** Test hook: current clock of thread t (C_t). */
    VectorClock clock_of(ThreadId t) const
    {
        return c_[t].to_vector_clock();
    }

    /** Test hook: begin clock of thread t (C_t^b). */
    VectorClock begin_clock_of(ThreadId t) const
    {
        return cb_[t].to_vector_clock();
    }

    /** Test hook: last-write clock of variable x (W_x). */
    VectorClock write_clock_of(VarId x) const
    {
        return w_[x].to_vector_clock();
    }

private:
    /**
     * The paper's checkAndGet(clk, t): declare a violation if t has an
     * active transaction whose begin clock is ordered before `clk`;
     * otherwise C_t := C_t |_| clk.
     * @return true iff a violation was declared.
     */
    bool check_and_get(ConstClockRef clk, ThreadId t, size_t index,
                       const char* reason);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);

    /** Grow the clock dimension of every bank to n (threads seen). */
    void grow_dim(size_t n);

    bool handle_end(ThreadId t, size_t index);

    TxnTracker txns_;

    ClockBank c_;   // C_t, one row per thread
    ClockBank cb_;  // C_t^begin, one row per thread
    ClockBank l_;   // L_lock, one row per lock
    ClockBank w_;   // W_var, one row per var
    /** r_[x] holds R_{t,x} rows for variable x; rows materialize on the
     *  first read of x (mirroring Algorithm 1's lazily-extended table). */
    std::vector<ClockBank> r_;

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;

    AeroDromeStats stats_;
};

} // namespace aero
