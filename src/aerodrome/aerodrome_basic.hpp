#pragma once

/**
 * @file
 * AeroDrome, basic variant — a faithful implementation of the paper's
 * Algorithm 1.
 *
 * The algorithm maintains:
 *  - C_t:  timestamp of the last event of thread t;
 *  - C_t^b ("C-begin"): timestamp of the last (outermost) begin of t;
 *  - L_l:  timestamp of the last release of lock l;
 *  - W_x:  timestamp of the last write to variable x;
 *  - R_{t,x}: timestamp of the last read of x by thread t;
 *  - lastRelThr_l / lastWThr_x: thread of the last release/write.
 *
 * All timestamps are prefix-relative (they grow as later events reveal new
 * orderings — the end-event propagation in lines 38-46 of Algorithm 1), and
 * capture the paper's <=_E relation. checkAndGet(clk, t) declares a
 * violation when clk is ordered at-or-after the begin event of t's active
 * transaction (Theorem 2's condition), and otherwise advances C_t.
 *
 * This variant keeps O(|Thr| * Vars) read clocks — exactly the state
 * layout of Algorithm 1. See aerodrome_readopt.hpp and aerodrome_opt.hpp
 * for the paper's optimized versions (Algorithms 2 and 3). End events,
 * however, no longer scan that whole state: Algorithm 3's per-thread
 * update sets are ported back onto the fused table (the table's update
 * windows, vc/adaptive_clock.hpp), so a sweep visits only the entries
 * whose gate can fire — O(|updated since begin|), not O(locks + vars) —
 * with AERO_UPDATE_SETS=0 restoring the literal full sweep.
 *
 * Storage is epoch-adaptive (vc/adaptive_clock.hpp): L_l, W_x and every
 * R_{t,x} are entries of ONE AdaptiveClockTable — a compact (value@thread)
 * epoch until first contention, a shared-arena bank row after. Because
 * Algorithm 1 applies the *same* gate-and-join to every lock, write and
 * read clock at an end event, the per-lock and per-variable propagation
 * loops fuse into a single homogeneous pass over the table (bank-aware
 * end-event batching). Per-thread clocks C_t / C_t^b stay in ClockBanks
 * with purity bits enabling O(1) comparisons in the uncontended case.
 */

#include <cstdint>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/thread_slots.hpp"
#include "analysis/txn_tracker.hpp"
#include "support/counter.hpp"
#include "trace/trace.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/gc.hpp"
#include "vc/vector_clock.hpp"

namespace aero {

/** Statistics for the evaluation harness. */
struct AeroDromeStats {
    /** Number of vector-clock join operations performed. */
    RelaxedCounter joins;
    /** Number of vector-clock ordering comparisons performed. */
    RelaxedCounter comparisons;
    /** Table entries visited by end-event sweeps (basic/readopt): the
     *  update-set size when tracked, the whole table when not — the
     *  complexity-guard suite asserts this scales with the former. */
    RelaxedCounter end_swept_entries;
    /** Visited entries whose propagation gate was false (enrollment is an
     *  over-approximation; a full sweep skips most of the table). */
    RelaxedCounter end_gate_skipped;
};

/** AeroDrome, Algorithm 1 (basic). */
class AeroDromeBasic : public CheckerBase {
public:
    AeroDromeBasic(uint32_t num_threads, uint32_t num_vars,
                   uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome-basic"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    bool supports_frontier() const override { return true; }
    void export_frontier(ClockFrontier& out) const override;
    void adopt_frontier(const ClockFrontier& in) override;
    void export_seed(EngineSeed& seed) const override;
    void reseed(const EngineSeed& seed) override;

    const AeroDromeStats& stats() const { return stats_; }

    /** Epoch-adaptive storage statistics (hits, inflations). */
    const AdaptiveClockStats& epoch_stats() const { return tbl_.stats(); }

    /** Toggle the epoch representation and its purity fast paths; call
     *  before the first event. Off reproduces the full-vector baseline. */
    void
    set_epochs(bool on)
    {
        epochs_ = on;
        tbl_.set_epochs_enabled(on);
    }

    /** Toggle end-event update sets (Algorithm 3's sets ported back onto
     *  the fused table); call before the first event. Off reproduces the
     *  full-table end sweep. */
    void set_update_sets(bool on) { tbl_.set_update_sets_enabled(on); }

    /** Toggle dead-state reclamation (clock-entry GC + thread-slot
     *  recycling); call before the first event. */
    void set_gc(bool on) override { gc_ = on; }
    bool gc_enabled() const { return gc_; }

    /** Test hook: with gc on, sweep every n outermost ends (0 restores
     *  the arena-growth trigger). */
    void set_gc_sweep_every(uint32_t n) { gc_sweep_every_ = n; }

    uint64_t gc_sweeps() const { return gc_sweeps_; }
    const ThreadSlotMap& thread_slots() const { return slots_; }

    StatList counters() const override;

    size_t memory_bytes() const override;

    /** Test hook: current clock of thread t (C_t). */
    VectorClock clock_of(ThreadId t) const
    {
        return c_[t].to_vector_clock();
    }

    /** Test hook: begin clock of thread t (C_t^b). */
    VectorClock begin_clock_of(ThreadId t) const
    {
        return cb_[t].to_vector_clock();
    }

    /** Test hook: last-write clock of variable x (W_x). */
    VectorClock write_clock_of(VarId x) const
    {
        if (x >= w_slot_.size() || w_slot_[x] == kNoSlot)
            return VectorClock(); // never accessed: still bottom
        return tbl_.to_vector_clock(w_slot_[x]);
    }

private:
    static constexpr uint32_t kNoSlot = UINT32_MAX;

    /** Purity of C_u / C_u^b as consumed by fast paths (gated by the
     *  epochs toggle). */
    bool
    pure_of(ThreadId u) const
    {
        return epochs_ && c_pure_[u] != 0;
    }
    bool
    begin_pure_of(ThreadId u) const
    {
        return epochs_ && cb_pure_[u] != 0;
    }

    /** External tid a violation at row t is charged to. */
    ThreadId
    rid(ThreadId t) const
    {
        if (!gc_)
            return t;
        ThreadId ext = slots_.ext_of(t);
        return ext == kNoThread ? t : ext;
    }

    /** Row for external tid `ext` under gc (allocating reuse-first). */
    uint32_t
    slot_of(ThreadId ext)
    {
        bool fresh = false;
        uint32_t s = slots_.resolve(ext, fresh);
        ensure_thread(s);
        return s;
    }

    void retire_slot(uint32_t s);
    void gc_sweep_now();
    void maybe_gc_sweep();

    /**
     * The paper's checkAndGet(clk, t) against table entry `slot`: declare
     * a violation if t has an active transaction whose begin clock is
     * ordered before the entry; otherwise C_t := C_t |_| entry.
     * @return true iff a violation was declared.
     */
    bool check_and_get_entry(size_t slot, ThreadId t, size_t index,
                             const char* reason);

    /** checkAndGet against the clock of thread `src` (pure iff src_pure). */
    bool check_and_get_clock(ConstClockRef clk, ThreadId src, bool src_pure,
                             ThreadId t, size_t index, const char* reason);

    /** Entry for R_{t,x}, materialized on t's first read of x. */
    uint32_t reader_slot(VarId x, ThreadId t);

    /** W_x's table entry, allocated on first access of x — untouched
     *  variables own no entries, so the fused end sweep scales with the
     *  variables actually seen (a shard sees only its partition). */
    uint32_t w_slot(VarId x);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);

    /** Grow the clock dimension of every bank to n (threads seen). */
    void grow_dim(size_t n);

    bool handle_end(ThreadId t, size_t index);

    TxnTracker txns_;

    ClockBank c_;  // C_t, one row per thread
    ClockBank cb_; // C_t^begin, one row per thread

    /** L_l, W_x and R_{t,x} in one adaptive table; Algorithm 1 treats
     *  them uniformly at end events, so the table needs no entry kinds. */
    AdaptiveClockTable tbl_;
    std::vector<uint32_t> lock_slot_; // LockId -> entry
    std::vector<uint32_t> w_slot_;    // VarId -> entry
    /** r_slot_[x][t] -> entry of R_{t,x}, kNoSlot until t reads x
     *  (mirroring Algorithm 1's lazily-extended table). */
    std::vector<std::vector<uint32_t>> r_slot_;
    /** Reader entries of retired slots that were still live (non-bottom)
     *  at retirement. They keep their Algorithm 1 role — every later
     *  write to x checks them — until a sweep proves them dead, which
     *  resets them to bottom and releases their indices for
     *  add_entry_reusable. Only populated under gc. */
    std::vector<std::vector<uint32_t>> orphan_r_;

    /** Purity bits: c_pure_[t] iff C_t == bot[v/t]; cb_pure_[t] the same
     *  for C_t^b. Sound but conservative. */
    std::vector<uint8_t> c_pure_;
    std::vector<uint8_t> cb_pure_;
    bool epochs_ = epochs_enabled_default();

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;

    /** Dead-state reclamation (src/vc/README.md, "Reclamation"). */
    bool gc_ = gc_enabled_default();
    ThreadSlotMap slots_;
    GcFrontier gcf_;
    uint64_t gc_sweeps_ = 0;
    uint64_t gc_live_entries_ = 0;
    size_t gc_rows_baseline_ = 0;
    uint32_t gc_sweep_every_ = 0;
    uint32_t gc_ends_ = 0;

    AeroDromeStats stats_;
};

} // namespace aero
