#include "aerodrome/aerodrome_readopt.hpp"

namespace aero {

AeroDromeReadOpt::AeroDromeReadOpt(uint32_t num_threads, uint32_t num_vars,
                                   uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    l_.ensure_rows(num_locks);
    w_.ensure_rows(num_vars);
    rx_.ensure_rows(num_vars);
    hrx_.ensure_rows(num_vars);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    last_rel_thr_.assign(num_locks, kNoThread);
    last_w_thr_.assign(num_vars, kNoThread);
}

void
AeroDromeReadOpt::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    if (threads > 0)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeReadOpt::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    l_.ensure_dim(n);
    w_.ensure_dim(n);
    rx_.ensure_dim(n);
    hrx_.ensure_dim(n);
}

void
AeroDromeReadOpt::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeReadOpt::ensure_var(VarId x)
{
    if (x >= w_.rows()) {
        w_.ensure_rows(x + 1);
        rx_.ensure_rows(x + 1);
        hrx_.ensure_rows(x + 1);
        last_w_thr_.resize(x + 1, kNoThread);
    }
}

void
AeroDromeReadOpt::ensure_lock(LockId l)
{
    if (l >= l_.rows()) {
        l_.ensure_rows(l + 1);
        last_rel_thr_.resize(l + 1, kNoThread);
    }
}

bool
AeroDromeReadOpt::check_and_get(ConstClockRef check_clk,
                                ConstClockRef join_clk, ThreadId t,
                                size_t index, const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, check_clk))
        return report(index, t, reason);
    ++stats_.joins;
    c_[t].join(join_clk);
    return false;
}

bool
AeroDromeReadOpt::handle_end(ThreadId t, size_t index)
{
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];
    const ClockValue cbt_t = cbt.get(t);

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt_t <= c_[u].get(t)) {
            if (check_and_get(ct, ct, u, index,
                              "active peer ordered into completed "
                              "transaction")) {
                return true;
            }
        }
    }
    for (LockId l = 0; l < l_.rows(); ++l) {
        ++stats_.comparisons;
        if (cbt_t <= l_[l].get(t)) {
            ++stats_.joins;
            l_[l].join(ct);
        }
    }
    for (VarId x = 0; x < w_.rows(); ++x) {
        ++stats_.comparisons;
        if (cbt_t <= w_[x].get(t)) {
            ++stats_.joins;
            w_[x].join(ct);
        }
        ++stats_.comparisons;
        if (cbt_t <= rx_[x].get(t)) {
            stats_.joins += 2;
            rx_[x].join(ct);
            hrx_[x].join_except(ct, t);
        }
    }
    return false;
}

bool
AeroDromeReadOpt::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t);
            cb_[t].assign(c_[t]);
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t))
            return handle_end(t, index);
        return false;

      case Op::kAcquire:
        ensure_lock(e.target);
        if (last_rel_thr_[e.target] != t) {
            return check_and_get(l_[e.target], l_[e.target], t, index,
                                 "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(e.target);
        l_[e.target].assign(c_[t]);
        last_rel_thr_[e.target] = t;
        return false;

      case Op::kFork:
        ensure_thread(e.target);
        ++stats_.joins;
        c_[e.target].join(c_[t]);
        return false;

      case Op::kJoin:
        ensure_thread(e.target);
        return check_and_get(c_[e.target], c_[e.target], t, index,
                             "join saw child's events");

      case Op::kRead: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], w_[e.target], t, index,
                              "read saw conflicting write")) {
                return true;
            }
        }
        stats_.joins += 2;
        rx_[e.target].join(c_[t]);
        hrx_[e.target].join_except(c_[t], t);
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], w_[e.target], t, index,
                              "write saw conflicting write")) {
                return true;
            }
        }
        if (check_and_get(hrx_[e.target], rx_[e.target], t, index,
                          "write saw conflicting read")) {
            return true;
        }
        w_[e.target].assign(c_[t]);
        last_w_thr_[e.target] = t;
        return false;
      }
    }
    return false;
}

} // namespace aero
