#include "aerodrome/aerodrome_readopt.hpp"

namespace aero {

AeroDromeReadOpt::AeroDromeReadOpt(uint32_t num_threads, uint32_t num_vars,
                                   uint32_t num_locks)
    : txns_(num_threads)
{
    c_.resize(num_threads);
    cb_.resize(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    l_.resize(num_locks);
    w_.resize(num_vars);
    rx_.resize(num_vars);
    hrx_.resize(num_vars);
    last_rel_thr_.assign(num_locks, kNoThread);
    last_w_thr_.assign(num_vars, kNoThread);
}

void
AeroDromeReadOpt::ensure_thread(ThreadId t)
{
    if (t >= c_.size()) {
        size_t old = c_.size();
        c_.resize(t + 1);
        cb_.resize(t + 1);
        for (size_t u = old; u < c_.size(); ++u)
            c_[u].set(u, 1);
        txns_.ensure(t + 1);
    }
}

void
AeroDromeReadOpt::ensure_var(VarId x)
{
    if (x >= w_.size()) {
        w_.resize(x + 1);
        rx_.resize(x + 1);
        hrx_.resize(x + 1);
        last_w_thr_.resize(x + 1, kNoThread);
    }
}

void
AeroDromeReadOpt::ensure_lock(LockId l)
{
    if (l >= l_.size()) {
        l_.resize(l + 1);
        last_rel_thr_.resize(l + 1, kNoThread);
    }
}

bool
AeroDromeReadOpt::check_and_get(const VectorClock& check_clk,
                                const VectorClock& join_clk, ThreadId t,
                                size_t index, const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, check_clk))
        return report(index, t, reason);
    ++stats_.joins;
    c_[t].join(join_clk);
    return false;
}

bool
AeroDromeReadOpt::handle_end(ThreadId t, size_t index)
{
    const VectorClock& ct = c_[t];
    const VectorClock& cbt = cb_[t];

    for (ThreadId u = 0; u < c_.size(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt.get(t) <= c_[u].get(t)) {
            if (check_and_get(ct, ct, u, index,
                              "active peer ordered into completed "
                              "transaction")) {
                return true;
            }
        }
    }
    for (auto& ll : l_) {
        ++stats_.comparisons;
        if (cbt.get(t) <= ll.get(t)) {
            ++stats_.joins;
            ll.join(ct);
        }
    }
    for (VarId x = 0; x < w_.size(); ++x) {
        ++stats_.comparisons;
        if (cbt.get(t) <= w_[x].get(t)) {
            ++stats_.joins;
            w_[x].join(ct);
        }
        ++stats_.comparisons;
        if (cbt.get(t) <= rx_[x].get(t)) {
            stats_.joins += 2;
            rx_[x].join(ct);
            hrx_[x].join_except(ct, t);
        }
    }
    return false;
}

bool
AeroDromeReadOpt::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t);
            cb_[t] = c_[t];
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t))
            return handle_end(t, index);
        return false;

      case Op::kAcquire:
        ensure_lock(e.target);
        if (last_rel_thr_[e.target] != t) {
            return check_and_get(l_[e.target], l_[e.target], t, index,
                                 "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(e.target);
        l_[e.target] = c_[t];
        last_rel_thr_[e.target] = t;
        return false;

      case Op::kFork:
        ensure_thread(e.target);
        ++stats_.joins;
        c_[e.target].join(c_[t]);
        return false;

      case Op::kJoin:
        ensure_thread(e.target);
        return check_and_get(c_[e.target], c_[e.target], t, index,
                             "join saw child's events");

      case Op::kRead: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], w_[e.target], t, index,
                              "read saw conflicting write")) {
                return true;
            }
        }
        stats_.joins += 2;
        rx_[e.target].join(c_[t]);
        hrx_[e.target].join_except(c_[t], t);
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], w_[e.target], t, index,
                              "write saw conflicting write")) {
                return true;
            }
        }
        if (check_and_get(hrx_[e.target], rx_[e.target], t, index,
                          "write saw conflicting read")) {
            return true;
        }
        w_[e.target] = c_[t];
        last_w_thr_[e.target] = t;
        return false;
      }
    }
    return false;
}

} // namespace aero
