#include "aerodrome/aerodrome_readopt.hpp"

#include "aerodrome/frontier_util.hpp"

namespace aero {

AeroDromeReadOpt::AeroDromeReadOpt(uint32_t num_threads, uint32_t num_vars,
                                   uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    c_pure_.assign(num_threads, 1);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    if (num_vars > 0)
        ensure_var(num_vars - 1);
    if (num_locks > 0)
        ensure_lock(num_locks - 1);
}

void
AeroDromeReadOpt::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    // With gc on the hint counts *external* tids (possibly millions on a
    // churning stream) while rows are recycled slots sized by the live
    // thread count — pre-sizing would defeat the recycling.
    if (threads > 0 && !gc_)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeReadOpt::export_frontier(ClockFrontier& out) const
{
    detail::export_bank_frontier(c_, out);
}

void
AeroDromeReadOpt::adopt_frontier(const ClockFrontier& in)
{
    if (in.threads == 0)
        return;
    ensure_thread(in.threads - 1);
    if (in.dim > c_.dim())
        grow_dim(in.dim);
    detail::adopt_bank_frontier(c_, c_pure_, in, [](ThreadId) {});
}

void
AeroDromeReadOpt::export_seed(EngineSeed& seed) const
{
    detail::export_engine_seed(c_, cb_, txns_, seed);
    detail::export_slot_seed(slots_, gc_, seed);
}

void
AeroDromeReadOpt::reseed(const EngineSeed& seed)
{
    detail::adopt_slot_seed(slots_, gc_, seed);
    const uint32_t threads = detail::seed_thread_count(seed);
    if (threads == 0)
        return;
    ensure_thread(threads - 1);
    const uint32_t dim = detail::seed_dim(seed);
    if (dim > c_.dim())
        grow_dim(dim);
    std::vector<uint8_t> no_cb_pure; // this engine keeps no begin purity
    detail::adopt_engine_seed(c_, c_pure_, cb_, no_cb_pure, txns_, seed,
                              [](ThreadId) {});
    detail::reopen_update_windows(tbl_, txns_, cb_, c_.rows());
}

void
AeroDromeReadOpt::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    tbl_.ensure_dim(n);
}

void
AeroDromeReadOpt::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        c_pure_.resize(n, 1);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeReadOpt::ensure_var(VarId x)
{
    // Only the per-variable bookkeeping is sized by id range; the three
    // table entries are allocated by var_slots() on first access.
    while (x >= var_base_.size()) {
        var_base_.push_back(kNoSlot);
        last_w_thr_.push_back(kNoThread);
    }
}

size_t
AeroDromeReadOpt::var_slots(VarId x)
{
    if (var_base_[x] == kNoSlot) {
        var_base_[x] = add_entry(kWEntry);
        add_entry(kREntry);
        add_entry(kHREntry);
    }
    return var_base_[x];
}

void
AeroDromeReadOpt::ensure_lock(LockId l)
{
    while (l >= lock_slot_.size()) {
        lock_slot_.push_back(add_entry(kLockEntry));
        last_rel_thr_.push_back(kNoThread);
    }
}

bool
AeroDromeReadOpt::check_and_get_entry(size_t slot, ThreadId t, size_t index,
                                      const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && cb_[t].get(t) <= tbl_.get(slot, t))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], slot, t, c_pure_[t]);
    return false;
}

bool
AeroDromeReadOpt::check_and_get_clock(ConstClockRef clk, ThreadId src,
                                      bool src_pure, ThreadId t,
                                      size_t index, const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && cb_[t].get(t) <= clk.get(t))
        return report(index, rid(t), reason);
    ++stats_.joins;
    join_qualified(c_[t], t, c_pure_[t], clk, src, src_pure);
    return false;
}

bool
AeroDromeReadOpt::handle_end(ThreadId t, size_t index)
{
    ConstClockRef ct = c_[t];
    const ClockValue cbt_t = cb_[t].get(t);
    const bool ct_pure = pure_of(t);

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt_t <= c_[u].get(t)) {
            if (check_and_get_clock(ct, t, ct_pure, u, index,
                                    "active peer ordered into completed "
                                    "transaction")) {
                return true;
            }
        }
    }

    // Fused propagation sweep: locks, W_x, R_x and hR_x all live in one
    // adaptive table, so the per-lock and per-variable loops of the
    // original algorithm collapse into a single pass — epoch entries are
    // one-word gates, inflated entries stream through the shared arena.
    // hR_x is driven by its R_x partner (the algorithm gates both updates
    // on R_x, which subsumes hR_x). With update sets tracked the pass
    // visits only the entries enrolled since this transaction's begin —
    // every entry whose gate could fire is among them (the gate tests
    // only the R/W/L entry, so an enrolled hR entry is skipped here like
    // in the full sweep). The window is sealed first so the sweep's own
    // joins enroll into *other* threads' windows without growing the list
    // being iterated; sweep order is immaterial (gates read only their
    // own entry, joins touch distinct entries).
    auto sweep = [&](size_t i) {
        ++stats_.end_swept_entries;
        switch (static_cast<EntryKind>(kinds_[i])) {
          case kLockEntry:
          case kWEntry:
            ++stats_.comparisons;
            if (cbt_t <= tbl_.get(i, t)) {
                ++stats_.joins;
                tbl_.join(i, ct, t, ct_pure);
            } else {
                ++stats_.end_gate_skipped;
            }
            break;
          case kREntry:
            ++stats_.comparisons;
            if (cbt_t <= tbl_.get(i, t)) {
                stats_.joins += 2;
                tbl_.join(i, ct, t, ct_pure);
                tbl_.join_except(i + 1, ct, t, ct_pure);
            } else {
                ++stats_.end_gate_skipped;
            }
            break;
          case kHREntry:
            ++stats_.end_gate_skipped;
            break; // handled with its R_x partner at i - 1
        }
    };
    tbl_.seal_update_window(t);
    if (tbl_.update_window_tracked(t)) {
        for (uint32_t i : tbl_.update_entries(t))
            sweep(i);
    } else {
        const size_t n = tbl_.size();
        for (size_t i = 0; i < n; ++i)
            sweep(i);
    }
    tbl_.close_update_window(t);
    return false;
}

bool
AeroDromeReadOpt::process(const Event& e, size_t index)
{
    ThreadId t = e.tid;
    ThreadId target = e.target;
    if (gc_) {
        // Rows are recycled slots: translate the actor — and, for the two
        // thread-target ops, the target — through the slot map. All other
        // targets are variable/lock ids and pass through.
        t = slot_of(e.tid);
        if (e.op == Op::kFork || e.op == Op::kJoin)
            target = slot_of(e.target);
    } else {
        ensure_thread(t);
    }

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t); // purity preserved: the own component grew
            cb_[t].assign(c_[t]);
            // The tick minted cb_t(t) fresh: no table entry satisfies the
            // end gate yet, so the window starts provably empty.
            tbl_.open_update_window(t, cb_[t].get(t));
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            if (handle_end(t, index))
                return true;
            if (gc_)
                maybe_gc_sweep();
        }
        return false;

      case Op::kAcquire:
        ensure_lock(target);
        if (last_rel_thr_[target] != t) {
            return check_and_get_entry(lock_slot_[target], t, index,
                                       "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(target);
        tbl_.assign(lock_slot_[target], c_[t], t, pure_of(t));
        last_rel_thr_[target] = t;
        return false;

      case Op::kFork:
        ensure_thread(target);
        ++stats_.joins;
        join_qualified(c_[target], target, c_pure_[target], c_[t], t,
                       pure_of(t));
        return false;

      case Op::kJoin: {
        ensure_thread(target);
        if (check_and_get_clock(c_[target], target, pure_of(target), t,
                                index, "join saw child's events")) {
            return true;
        }
        // The joined thread is dead: its clock was just absorbed, so its
        // row can be retired for reissue.
        if (gc_ && target != t)
            retire_slot(target);
        return false;
      }

      case Op::kRead: {
        const VarId x = target;
        ensure_var(x);
        const size_t base = var_slots(x);
        if (last_w_thr_[x] != t) {
            if (check_and_get_entry(base, t, index,
                                    "read saw conflicting write")) {
                return true;
            }
        }
        stats_.joins += 2;
        const bool pure = pure_of(t);
        tbl_.join(base + 1, c_[t], t, pure);        // R_x
        tbl_.join_except(base + 2, c_[t], t, pure); // hR_x
        return false;
      }

      case Op::kWrite: {
        const VarId x = target;
        ensure_var(x);
        const size_t base = var_slots(x);
        if (last_w_thr_[x] != t) {
            if (check_and_get_entry(base, t, index,
                                    "write saw conflicting write")) {
                return true;
            }
        }
        ++stats_.comparisons;
        if (txns_.active(t) && cb_[t].get(t) <= tbl_.get(base + 2, t))
            return report(index, rid(t), "write saw conflicting read");
        ++stats_.joins;
        tbl_.join_into(c_[t], base + 1, t, c_pure_[t]);
        tbl_.assign(base, c_[t], t, pure_of(t));
        last_w_thr_[x] = t;
        return false;
      }
    }
    return false;
}

void
AeroDromeReadOpt::retire_slot(uint32_t s)
{
    if (txns_.active(s))
        return; // ill-formed join mid-transaction: leak the row, stay safe
    // Scrub cached same-owner facts: the reissued thread must not inherit
    // the dead thread's check-skipping rights.
    for (ThreadId& r : last_rel_thr_) {
        if (r == s)
            r = kNoThread;
    }
    for (ThreadId& w : last_w_thr_) {
        if (w == s)
            w = kNoThread;
    }
    // Continue the clock one past every value the dead thread minted, so
    // reissued begin gates exceed every stale epoch still naming this row.
    const ClockValue v = c_[s].get(s);
    c_[s].clear();
    c_[s].set(s, v + 1);
    cb_[s].clear();
    c_pure_[s] = 1;
    tbl_.close_update_window(s);
    slots_.retire(s);
}

void
AeroDromeReadOpt::gc_sweep_now()
{
    gcf_.reset(c_.dim());
    const std::vector<ThreadId>& bound = slots_.bindings();
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread)
            gcf_.accumulate(c_[s]);
    }
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread && txns_.active(s))
            gcf_.cap_active(s, c_[s].get(s));
    }
    gc_live_entries_ = tbl_.gc_sweep(gcf_);
    ++gc_sweeps_;
    gc_rows_baseline_ = tbl_.arena_rows_live();
    gc_ends_ = 0;
}

void
AeroDromeReadOpt::maybe_gc_sweep()
{
    if (gc_sweep_every_ != 0) {
        if (++gc_ends_ >= gc_sweep_every_)
            gc_sweep_now();
        return;
    }
    // Growth trigger: the live arena doubled since the last sweep.
    const size_t rows = tbl_.arena_rows_live();
    if (rows >= 128 && rows >= 2 * gc_rows_baseline_)
        gc_sweep_now();
}

StatList
AeroDromeReadOpt::counters() const
{
    const AdaptiveClockStats& es = tbl_.stats();
    return {
        {"joins", stats_.joins},
        {"comparisons", stats_.comparisons},
        {"epoch_fast_ops", es.epoch_fast},
        {"vector_ops", es.vector_ops},
        {"inflations", es.inflations},
        {"upd_enrolled", es.upd_enrolled},
        {"end_swept_entries", stats_.end_swept_entries},
        {"end_gate_skipped", stats_.end_gate_skipped},
        {"gc_reclaimed", es.gc_reclaimed},
        {"gc_rows_freed", es.gc_rows_freed},
        {"gc_sweeps", gc_sweeps_},
        {"gc_live_entries", gc_live_entries_},
        {"slots_retired", slots_.retired()},
        {"slots_recycled", slots_.recycled()},
    };
}

size_t
AeroDromeReadOpt::memory_bytes() const
{
    size_t n = c_.memory_bytes() + cb_.memory_bytes() + tbl_.memory_bytes();
    n += (lock_slot_.capacity() + var_base_.capacity()) * sizeof(uint32_t);
    n += kinds_.capacity() + c_pure_.capacity();
    n += (last_rel_thr_.capacity() + last_w_thr_.capacity()) *
         sizeof(ThreadId);
    n += slots_.memory_bytes() + gcf_.memory_bytes() + txns_.memory_bytes();
    return n;
}

} // namespace aero
