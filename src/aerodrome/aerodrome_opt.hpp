#pragma once

/**
 * @file
 * AeroDrome, fully optimized — the paper's Algorithm 3 (Appendix C.2).
 *
 * Three optimizations over Algorithm 2:
 *
 * 1. Lazy clock updates ("Stale" sets). A variable repeatedly read (or
 *    written) by a thread inside one transaction does not update R_x/hR_x
 *    (resp. W_x) at every access. Instead the reader is recorded in the
 *    per-variable set staleReaders_x (resp. the flag staleWrite_x is set),
 *    and the flush happens at the next write to x or at transaction end.
 *    While a write is stale, conflict checks use the *live* clock of the
 *    writing thread: within one transaction that clock only adds orderings
 *    that hold at transaction granularity anyway, so verdicts are
 *    unaffected. Events *outside* transactions (unary transactions) are
 *    handled eagerly — their "transaction" completes immediately, so the
 *    live-clock proxy would be unsound for them.
 *
 * 2. Per-thread update sets. Algorithm 2 scans every variable at each end
 *    event. Here each read/write enrolls the variable in UpdateSet^r/w_u of
 *    exactly those threads u whose active transaction is ordered before the
 *    access, so an end event touches only the variables it must.
 *
 * 3. Garbage collection ("hasIncomingEdge"). A completed transaction that
 *    received no orderings from other threads since its begin (its clock is
 *    unchanged outside its own component) and whose forking transaction is
 *    no longer alive can never be part of a violating cycle — mirroring
 *    Velodrome's no-incoming-edge rule — so its end event skips the entire
 *    propagation phase.
 *
 * All ordering tests use the one-component ("lightweight timestamp") form;
 * see aerodrome_readopt.hpp for why this is equivalent.
 *
 * Storage is epoch-adaptive (vc/adaptive_clock.hpp): L_l, W_x, R_x and
 * hR_x share one AdaptiveClockTable (a variable's W/R/hR are adjacent
 * entries), giving O(1) conflict checks and updates while the touched
 * state stays epoch-shaped, inflating into the shared arena on first
 * contention. Purity bits on C_t drive the fast paths.
 */

#include <cstdint>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp" // for AeroDromeStats
#include "analysis/checker.hpp"
#include "analysis/thread_slots.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/gc.hpp"

namespace aero {

/** Extra statistics for the optimized engine. */
struct AeroDromeOptStats {
    /** End events whose propagation was skipped by hasIncomingEdge. */
    RelaxedCounter gc_skipped_ends;
    /** End events that ran the full propagation. */
    RelaxedCounter propagated_ends;
    /** Lazy read enrollments that avoided an eager clock join. */
    RelaxedCounter lazy_reads;
    /** Lazy write enrollments that avoided an eager clock copy. */
    RelaxedCounter lazy_writes;
};

/** AeroDrome, Algorithm 3 (lazy updates + update sets + GC). */
class AeroDromeOpt : public CheckerBase {
public:
    AeroDromeOpt(uint32_t num_threads, uint32_t num_vars,
                 uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    bool supports_frontier() const override { return true; }
    /** Lazy stale-write/stale-reader state: conflict checks consult the
     *  last accessor's live clock (optimization 1 above). */
    bool uses_live_clock_proxies() const override { return true; }
    void export_frontier(ClockFrontier& out) const override;
    void adopt_frontier(const ClockFrontier& in) override;
    void export_seed(EngineSeed& seed) const override;
    void reseed(const EngineSeed& seed) override;

    const AeroDromeStats& stats() const { return stats_; }
    const AeroDromeOptStats& opt_stats() const { return opt_stats_; }

    /** Epoch-adaptive storage statistics (hits, inflations). */
    const AdaptiveClockStats& epoch_stats() const { return tbl_.stats(); }

    /** Toggle the epoch representation and its purity fast paths; call
     *  before the first event. Off reproduces the full-vector baseline. */
    void
    set_epochs(bool on)
    {
        epochs_ = on;
        tbl_.set_epochs_enabled(on);
    }

    /** Toggle dead-state reclamation (clock-entry GC + thread-slot
     *  recycling); call before the first event. */
    void set_gc(bool on) override { gc_ = on; }
    bool gc_enabled() const { return gc_; }

    /** Test hook: with gc on, sweep every n outermost ends (0 restores
     *  the arena-growth trigger). */
    void set_gc_sweep_every(uint32_t n) { gc_sweep_every_ = n; }

    uint64_t gc_sweeps() const { return gc_sweeps_; }
    const ThreadSlotMap& thread_slots() const { return slots_; }

    StatList counters() const override;

    size_t memory_bytes() const override;

private:
    /** Purity of C_u as consumed by fast paths (gated by the toggle). */
    bool
    pure_of(ThreadId u) const
    {
        return epochs_ && c_pure_[u] != 0;
    }

    /** External tid a violation at row t is charged to. */
    ThreadId
    rid(ThreadId t) const
    {
        if (!gc_)
            return t;
        ThreadId ext = slots_.ext_of(t);
        return ext == kNoThread ? t : ext;
    }

    /** Row for external tid `ext` under gc (allocating reuse-first). */
    uint32_t
    slot_of(ThreadId ext)
    {
        bool fresh = false;
        uint32_t s = slots_.resolve(ext, fresh);
        ensure_thread(s);
        return s;
    }

    void retire_slot(uint32_t s);
    void gc_sweep_now();
    void maybe_gc_sweep();

    /** checkAndGet where both the check and the join use table entry
     *  `slot` (locks, W_x). */
    bool check_and_get_entry(size_t slot, ThreadId t, size_t index,
                             const char* reason);

    /** checkAndGet checking `check_slot` but joining `join_slot` (the
     *  hR_x / R_x pair at writes). */
    bool check_and_get_entry2(size_t check_slot, size_t join_slot,
                              ThreadId t, size_t index, const char* reason);

    /** checkAndGet against the clock of thread `src` (pure iff src_pure). */
    bool check_and_get_clock(ConstClockRef clk, ThreadId src, bool src_pure,
                             ThreadId t, size_t index, const char* reason);

    bool
    begin_before(ThreadId t, ClockValue comp) const
    {
        return cb_[t].get(t) <= comp;
    }

    /** Algorithm 3's hasIncomingEdge(t), evaluated at t's end event. */
    bool has_incoming_edge(ThreadId t) const;

    /** Flush staleReaders_x into R_x / hR_x (before a write's checks). */
    void flush_stale_readers(VarId x);

    /** Enroll x in the read/write update set of every thread with an
     *  active transaction ordered before C_t. */
    void enroll_update_sets(ThreadId t, VarId x, bool is_write);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);
    void grow_dim(size_t n);

    bool handle_end(ThreadId t, size_t index);

    TxnTracker txns_;

    ClockBank c_;  // one row per thread
    ClockBank cb_; // one row per thread

    /** L_l, W_x, R_x, hR_x — one adaptive table; var x occupies entries
     *  var_base_[x] + {0: W, 1: R, 2: hR}. */
    AdaptiveClockTable tbl_;
    std::vector<uint32_t> lock_slot_; // LockId -> entry
    std::vector<uint32_t> var_base_;  // VarId -> W entry

    /** c_pure_[t] != 0 iff C_t == bot[v/t]; sound but conservative. */
    std::vector<uint8_t> c_pure_;
    bool epochs_ = epochs_enabled_default();

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;

    /** staleWrite_x: W_x lags behind the last write, whose timestamp is
     *  the live clock of last_w_thr_[x] (within that thread's still-active
     *  transaction). */
    std::vector<uint8_t> stale_write_;
    /** staleReaders_x: threads whose last read of x is not yet in R_x. */
    std::vector<std::vector<ThreadId>> stale_readers_;

    /** UpdateSet^r_t / UpdateSet^w_t as a list plus membership bytes. */
    struct UpdateSet {
        std::vector<VarId> list;
        std::vector<uint8_t> member; // indexed by VarId
        void
        insert(VarId x)
        {
            if (x >= member.size())
                member.resize(x + 1, 0);
            if (!member[x]) {
                member[x] = 1;
                list.push_back(x);
            }
        }
        void
        clear()
        {
            for (VarId x : list)
                member[x] = 0;
            list.clear();
        }
    };
    std::vector<UpdateSet> upd_r_;
    std::vector<UpdateSet> upd_w_;

    /** Fork bookkeeping for hasIncomingEdge's "parentTr is alive". */
    std::vector<ThreadId> parent_thread_;
    std::vector<uint64_t> parent_txn_seq_; // 0 = fork outside a transaction

    /** Dead-state reclamation (src/vc/README.md, "Reclamation"). */
    bool gc_ = gc_enabled_default();
    ThreadSlotMap slots_;
    GcFrontier gcf_;
    uint64_t gc_sweeps_ = 0;
    uint64_t gc_live_entries_ = 0;
    size_t gc_rows_baseline_ = 0;
    uint32_t gc_sweep_every_ = 0;
    uint32_t gc_ends_ = 0;

    AeroDromeStats stats_;
    AeroDromeOptStats opt_stats_;
};

} // namespace aero
