#pragma once

/**
 * @file
 * AeroDrome with the read-clock reduction — the paper's Algorithm 2
 * (Section 4.3 / Appendix C.1).
 *
 * Algorithm 1 keeps a read clock R_{t,x} per (thread, variable) pair:
 * O(|Thr| * V) clocks. This variant replaces them with two clocks per
 * variable:
 *
 *   - R_x  = |_|_u R_{u,x}          (used to *update* C_t at writes)
 *   - hR_x = |_|_u R_{u,x}[0/u]     (used to *check* violations at writes)
 *
 * hR_x zeroes each reader's own component so a thread's own reads cannot
 * trigger a self-violation. Soundness of the single-clock check rests on
 * the paper's lightweight-timestamp invariant: for an event e1 of thread
 * t1, C_{e1} sqsubseteq C_{e2} holds iff C_{e1}(t1) <= C_{e2}(t1), so
 * comparisons against the begin clock C_t^b reduce to its component t —
 * and against a *join* of clocks that component-wise test is exactly
 * "exists u with C_t^b sqsubseteq R_{u,x}". For that reason every ordering
 * test in this variant uses the one-component form.
 *
 * Storage is epoch-adaptive (vc/adaptive_clock.hpp): L_l, W_x, R_x and
 * hR_x live in ONE AdaptiveClockTable whose entries are compact epochs
 * until first contention and rows of a shared inflation arena after. A
 * variable occupies three adjacent entries (W, R, hR) and the end-event
 * propagation is a single fused pass (the bank-aware end-event batching
 * of the ROADMAP) over the entries enrolled in the ending thread's
 * update window (Algorithm 3's update sets ported back onto the table;
 * vc/adaptive_clock.hpp) — O(|updated since begin|) instead of the whole
 * table, with AERO_UPDATE_SETS=0 restoring the literal full sweep.
 * Per-thread clocks C_t / C_t^b stay in ClockBanks; a purity
 * bit per thread ("C_t == bot[v/t]") drives the O(1) fast paths.
 */

#include <cstdint>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp" // for AeroDromeStats
#include "analysis/checker.hpp"
#include "analysis/thread_slots.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/gc.hpp"

namespace aero {

/** AeroDrome, Algorithm 2 (read-clock reduction). */
class AeroDromeReadOpt : public CheckerBase {
public:
    AeroDromeReadOpt(uint32_t num_threads, uint32_t num_vars,
                     uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome-readopt"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    bool supports_frontier() const override { return true; }
    void export_frontier(ClockFrontier& out) const override;
    void adopt_frontier(const ClockFrontier& in) override;
    void export_seed(EngineSeed& seed) const override;
    void reseed(const EngineSeed& seed) override;

    const AeroDromeStats& stats() const { return stats_; }

    /** Epoch-adaptive storage statistics (hits, inflations). */
    const AdaptiveClockStats& epoch_stats() const { return tbl_.stats(); }

    /** Toggle the epoch representation and its purity fast paths; call
     *  before the first event. Off reproduces the full-vector baseline. */
    void
    set_epochs(bool on)
    {
        epochs_ = on;
        tbl_.set_epochs_enabled(on);
    }

    /** Toggle end-event update sets (Algorithm 3's sets ported back onto
     *  the fused table); call before the first event. Off reproduces the
     *  full-table end sweep. */
    void set_update_sets(bool on) { tbl_.set_update_sets_enabled(on); }

    /** Toggle dead-state reclamation (clock-entry GC + thread-slot
     *  recycling); call before the first event. */
    void set_gc(bool on) override { gc_ = on; }
    bool gc_enabled() const { return gc_; }

    /** Test hook: with gc on, run a full sweep every n outermost end
     *  events instead of waiting for the arena-growth trigger (0 restores
     *  the trigger). Makes parity fuzzing reclaim as aggressively as
     *  possible. */
    void set_gc_sweep_every(uint32_t n) { gc_sweep_every_ = n; }

    uint64_t gc_sweeps() const { return gc_sweeps_; }
    const ThreadSlotMap& thread_slots() const { return slots_; }

    StatList counters() const override;

    size_t memory_bytes() const override;

private:
    /** What a table entry stores; drives the fused end-event sweep. */
    enum EntryKind : uint8_t { kLockEntry, kWEntry, kREntry, kHREntry };

    /** Purity of C_u as consumed by fast paths (gated by the toggle). */
    bool
    pure_of(ThreadId u) const
    {
        return epochs_ && c_pure_[u] != 0;
    }

    uint32_t
    add_entry(EntryKind kind)
    {
        kinds_.push_back(kind);
        return tbl_.add_entry();
    }

    /**
     * checkAndGet against table entry `slot`: violation if t's active
     * begin is ordered before it (one-component test); else join it into
     * C_t.
     */
    bool check_and_get_entry(size_t slot, ThreadId t, size_t index,
                             const char* reason);

    /** checkAndGet against the clock of thread `src` (C_src or a bank
     *  row owned by src), pure iff src_pure. */
    bool check_and_get_clock(ConstClockRef clk, ThreadId src, bool src_pure,
                             ThreadId t, size_t index, const char* reason);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);
    void grow_dim(size_t n);

    /**
     * W/R/hR table entries of x, allocated on first access. Untouched
     * variables own no table entries, so the fused end sweep — and a
     * shard's memory — scale with the variables actually seen, not with
     * the id space (a sharded engine sees only its own partition).
     */
    size_t var_slots(VarId x);

    static constexpr uint32_t kNoSlot = UINT32_MAX;

    bool handle_end(ThreadId t, size_t index);

    /** External tid a violation at row t is charged to: the slot binding
     *  under gc, the identity otherwise. */
    ThreadId
    rid(ThreadId t) const
    {
        if (!gc_)
            return t;
        ThreadId ext = slots_.ext_of(t);
        return ext == kNoThread ? t : ext;
    }

    /** Row for external tid `ext` under gc (allocating reuse-first). */
    uint32_t
    slot_of(ThreadId ext)
    {
        bool fresh = false;
        uint32_t s = slots_.resolve(ext, fresh);
        ensure_thread(s);
        return s;
    }

    /** Retire the joined thread in row s: scrub cached same-owner facts,
     *  continue the clock one past every value it minted, and hand the
     *  row back for reissue. Refused (row leaks, stays live) if an
     *  ill-formed trace joins a thread mid-transaction. */
    void retire_slot(uint32_t s);

    /** Recompute the live-row minimum frontier and sweep the table. */
    void gc_sweep_now();

    /** Sweep when due (growth trigger or the sweep-every test hook);
     *  piggybacks on outermost end events, right after their window
     *  sweep. */
    void maybe_gc_sweep();

    TxnTracker txns_;

    ClockBank c_;  // C_t, one row per thread
    ClockBank cb_; // C_t^begin, one row per thread

    /** L_l, W_x, R_x, hR_x — one adaptive table; var x occupies the
     *  adjacent entries var_base_[x] + {0: W, 1: R, 2: hR}. */
    AdaptiveClockTable tbl_;
    std::vector<uint8_t> kinds_;     // EntryKind per table entry
    std::vector<uint32_t> lock_slot_; // LockId -> entry
    std::vector<uint32_t> var_base_;  // VarId -> W entry (R/hR adjacent)

    /** c_pure_[t] != 0 iff C_t == bot[C_t(t)/t] (never received a foreign
     *  ordering); sound but conservative. */
    std::vector<uint8_t> c_pure_;
    bool epochs_ = epochs_enabled_default();

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;

    /** Dead-state reclamation (src/vc/README.md, "Reclamation"). With
     *  gc_ on, every per-thread row is a recycled *slot* and events are
     *  translated through slots_ before processing. */
    bool gc_ = gc_enabled_default();
    ThreadSlotMap slots_;
    GcFrontier gcf_;
    uint64_t gc_sweeps_ = 0;
    uint64_t gc_live_entries_ = 0;
    size_t gc_rows_baseline_ = 0;
    uint32_t gc_sweep_every_ = 0;
    uint32_t gc_ends_ = 0;

    AeroDromeStats stats_;
};

} // namespace aero
