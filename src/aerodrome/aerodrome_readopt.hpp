#pragma once

/**
 * @file
 * AeroDrome with the read-clock reduction — the paper's Algorithm 2
 * (Section 4.3 / Appendix C.1).
 *
 * Algorithm 1 keeps a read clock R_{t,x} per (thread, variable) pair:
 * O(|Thr| * V) clocks. This variant replaces them with two clocks per
 * variable:
 *
 *   - R_x  = |_|_u R_{u,x}          (used to *update* C_t at writes)
 *   - hR_x = |_|_u R_{u,x}[0/u]     (used to *check* violations at writes)
 *
 * hR_x zeroes each reader's own component so a thread's own reads cannot
 * trigger a self-violation. Soundness of the single-clock check rests on
 * the paper's lightweight-timestamp invariant: for an event e1 of thread
 * t1, C_{e1} sqsubseteq C_{e2} holds iff C_{e1}(t1) <= C_{e2}(t1), so
 * comparisons against the begin clock C_t^b reduce to its component t —
 * and against a *join* of clocks that component-wise test is exactly
 * "exists u with C_t^b sqsubseteq R_{u,x}". For that reason every ordering
 * test in this variant uses the one-component form.
 *
 * All clock families live in contiguous ClockBank arenas (one row per
 * thread/lock/var) whose shared dimension is the thread count.
 */

#include <cstdint>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp" // for AeroDromeStats
#include "analysis/checker.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/clock_bank.hpp"

namespace aero {

/** AeroDrome, Algorithm 2 (read-clock reduction). */
class AeroDromeReadOpt : public CheckerBase {
public:
    AeroDromeReadOpt(uint32_t num_threads, uint32_t num_vars,
                     uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome-readopt"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    const AeroDromeStats& stats() const { return stats_; }

private:
    /**
     * checkAndGet(check_clk, join_clk, t): violation if t's active begin is
     * ordered before check_clk (one-component test); else join join_clk
     * into C_t.
     */
    bool check_and_get(ConstClockRef check_clk, ConstClockRef join_clk,
                       ThreadId t, size_t index, const char* reason);

    /** One-component ordering test: C_t^b sqsubseteq clk. */
    bool
    begin_before(ThreadId t, ConstClockRef clk) const
    {
        return cb_[t].get(t) <= clk.get(t);
    }

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);
    void grow_dim(size_t n);

    bool handle_end(ThreadId t, size_t index);

    TxnTracker txns_;

    ClockBank c_;   // one row per thread
    ClockBank cb_;  // one row per thread
    ClockBank l_;   // one row per lock
    ClockBank w_;   // one row per var
    ClockBank rx_;  // R_x, one row per var
    ClockBank hrx_; // hR_x, one row per var

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;

    AeroDromeStats stats_;
};

} // namespace aero
