#include "aerodrome/aerodrome_tuned.hpp"

#include <algorithm>

namespace aero {

AeroDromeTuned::AeroDromeTuned(uint32_t num_threads, uint32_t num_vars,
                               uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    l_.ensure_rows(num_locks);
    w_.ensure_rows(num_vars);
    rx_.ensure_rows(num_vars);
    hrx_.ensure_rows(num_vars);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    last_rel_thr_.assign(num_locks, kNoThread);
    last_w_thr_.assign(num_vars, kNoThread);
    stale_write_.assign(num_vars, 0);
    stale_readers_.resize(num_vars);
    upd_r_.resize(num_threads);
    upd_w_.resize(num_threads);
    parent_thread_.assign(num_threads, kNoThread);
    parent_txn_seq_.assign(num_threads, 0);
    active_pos_.assign(num_threads, kNoActive);
    clock_version_.assign(num_threads, 1);
    var_version_.assign(num_vars, 1);
    last_reader_.assign(num_vars, kNoThread);
    last_reader_cv_.assign(num_vars, 0);
    last_reader_vv_.assign(num_vars, 0);
    last_writer_cv_.assign(num_vars, 0);
    last_writer_vv_.assign(num_vars, 0);
}

void
AeroDromeTuned::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    if (threads > 0)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeTuned::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    l_.ensure_dim(n);
    w_.ensure_dim(n);
    rx_.ensure_dim(n);
    hrx_.ensure_dim(n);
}

void
AeroDromeTuned::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        upd_r_.resize(n);
        upd_w_.resize(n);
        parent_thread_.resize(n, kNoThread);
        parent_txn_seq_.resize(n, 0);
        active_pos_.resize(n, kNoActive);
        clock_version_.resize(n, 1);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeTuned::ensure_var(VarId x)
{
    if (x >= w_.rows()) {
        w_.ensure_rows(x + 1);
        rx_.ensure_rows(x + 1);
        hrx_.ensure_rows(x + 1);
        last_w_thr_.resize(x + 1, kNoThread);
        stale_write_.resize(x + 1, 0);
        stale_readers_.resize(x + 1);
        var_version_.resize(x + 1, 1);
        last_reader_.resize(x + 1, kNoThread);
        last_reader_cv_.resize(x + 1, 0);
        last_reader_vv_.resize(x + 1, 0);
        last_writer_cv_.resize(x + 1, 0);
        last_writer_vv_.resize(x + 1, 0);
    }
}

void
AeroDromeTuned::ensure_lock(LockId l)
{
    if (l >= l_.rows()) {
        l_.ensure_rows(l + 1);
        last_rel_thr_.resize(l + 1, kNoThread);
    }
}

void
AeroDromeTuned::add_active(ThreadId t)
{
    if (active_pos_[t] == kNoActive) {
        active_pos_[t] = static_cast<uint32_t>(active_threads_.size());
        active_threads_.push_back(t);
    }
}

void
AeroDromeTuned::remove_active(ThreadId t)
{
    uint32_t pos = active_pos_[t];
    if (pos == kNoActive)
        return;
    ThreadId moved = active_threads_.back();
    active_threads_[pos] = moved;
    active_pos_[moved] = pos;
    active_threads_.pop_back();
    active_pos_[t] = kNoActive;
}

bool
AeroDromeTuned::check_and_get(ConstClockRef check_clk,
                              ConstClockRef join_clk, ThreadId t,
                              size_t index, const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, check_clk))
        return report(index, t, reason);
    ++stats_.joins;
    c_[t].join(join_clk);
    bump_clock_version(t);
    return false;
}

bool
AeroDromeTuned::has_incoming_edge(ThreadId t) const
{
    ThreadId p = parent_thread_[t];
    if (p != kNoThread && parent_txn_seq_[t] != 0 && txns_.active(p) &&
        txns_.seq(p) == parent_txn_seq_[t]) {
        return true;
    }
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];
    for (size_t u = 0; u < ct.dim(); ++u) {
        if (u != t && ct.get(u) != cbt.get(u))
            return true;
    }
    // Transit-ancestry guard (see aerodrome_opt.cpp for the argument):
    // propagate when another still-active transaction's begin is already
    // visible in C_t^b, because dropping this transaction's lazy state
    // would sever a program-order transit chain that active transaction
    // may still need to close a cycle.
    for (ThreadId u : active_threads_) {
        if (u != t && cb_[u].get(u) > 0 && cb_[u].get(u) <= cbt.get(u))
            return true;
    }
    return false;
}

void
AeroDromeTuned::flush_stale_readers(VarId x)
{
    for (ThreadId u : stale_readers_[x]) {
        stats_.joins += 2;
        rx_[x].join(c_[u]);
        hrx_[x].join_except(c_[u], u);
    }
    stale_readers_[x].clear();
}

void
AeroDromeTuned::enroll_update_sets(ThreadId t, VarId x, bool is_write)
{
    // Only transaction-holding threads can qualify: scan the active list
    // instead of all of Thr.
    auto& sets = is_write ? upd_w_ : upd_r_;
    for (ThreadId u : active_threads_) {
        if (cb_[u].get(u) <= c_[t].get(u))
            sets[u].insert(x);
    }
}

bool
AeroDromeTuned::handle_end(ThreadId t, size_t index)
{
    if (!has_incoming_edge(t)) {
        ++opt_stats_.gc_skipped_ends;
        for (VarId x : upd_r_[t].list) {
            auto& sr = stale_readers_[x];
            sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
            if (last_reader_[x] == t)
                last_reader_[x] = kNoThread;
            ++var_version_[x];
        }
        upd_r_[t].clear();
        for (VarId x : upd_w_[t].list) {
            if (last_w_thr_[x] == t) {
                stale_write_[x] = 0;
                last_w_thr_[x] = kNoThread;
            }
            ++var_version_[x];
        }
        upd_w_[t].clear();
        for (LockId l = 0; l < last_rel_thr_.size(); ++l) {
            if (last_rel_thr_[l] == t)
                last_rel_thr_[l] = kNoThread;
        }
        return false;
    }

    ++opt_stats_.propagated_ends;
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt.get(t) <= c_[u].get(t)) {
            if (check_and_get(ct, ct, u, index,
                              "active peer ordered into completed "
                              "transaction")) {
                return true;
            }
        }
    }
    for (LockId l = 0; l < l_.rows(); ++l) {
        ++stats_.comparisons;
        if (cbt.get(t) <= l_[l].get(t)) {
            ++stats_.joins;
            l_[l].join(ct);
        }
    }
    for (VarId x : upd_w_[t].list) {
        if (!stale_write_[x] || last_w_thr_[x] == t) {
            ++stats_.joins;
            w_[x].join(ct);
        }
        if (last_w_thr_[x] == t)
            stale_write_[x] = 0;
        ++var_version_[x];
    }
    upd_w_[t].clear();
    for (VarId x : upd_r_[t].list) {
        stats_.joins += 2;
        rx_[x].join(ct);
        hrx_[x].join_except(ct, t);
        auto& sr = stale_readers_[x];
        sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
        if (last_reader_[x] == t)
            last_reader_[x] = kNoThread;
        ++var_version_[x];
    }
    upd_r_[t].clear();
    return false;
}

bool
AeroDromeTuned::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t);
            cb_[t].assign(c_[t]);
            bump_clock_version(t);
            add_active(t);
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            remove_active(t);
            return handle_end(t, index);
        }
        return false;

      case Op::kAcquire:
        ensure_lock(e.target);
        if (last_rel_thr_[e.target] != t) {
            return check_and_get(l_[e.target], l_[e.target], t, index,
                                 "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(e.target);
        l_[e.target].assign(c_[t]);
        last_rel_thr_[e.target] = t;
        return false;

      case Op::kFork:
        ensure_thread(e.target);
        ++stats_.joins;
        c_[e.target].join(c_[t]);
        bump_clock_version(e.target);
        parent_thread_[e.target] = t;
        parent_txn_seq_[e.target] = txns_.active(t) ? txns_.seq(t) : 0;
        return false;

      case Op::kJoin:
        ensure_thread(e.target);
        return check_and_get(c_[e.target], c_[e.target], t, index,
                             "join saw child's events");

      case Op::kRead: {
        const VarId x = e.target;
        ensure_var(x);
        // Same-epoch fast path: this exact read already happened and
        // nothing observable changed since.
        if (txns_.active(t) && last_reader_[x] == t &&
            last_reader_cv_[x] == clock_version_[t] &&
            last_reader_vv_[x] == var_version_[x]) {
            ++tuned_stats_.same_epoch_reads;
            return false;
        }
        if (last_w_thr_[x] != t) {
            ConstClockRef wclk =
                stale_write_[x] ? c_[last_w_thr_[x]] : w_[x];
            if (check_and_get(wclk, wclk, t, index,
                              "read saw conflicting write")) {
                return true;
            }
        }
        if (txns_.active(t)) {
            auto& sr = stale_readers_[x];
            if (std::find(sr.begin(), sr.end(), t) == sr.end()) {
                sr.push_back(t);
                ++var_version_[x];
            }
            ++opt_stats_.lazy_reads;
            last_reader_[x] = t;
            last_reader_cv_[x] = clock_version_[t];
            last_reader_vv_[x] = var_version_[x];
        } else {
            stats_.joins += 2;
            rx_[x].join(c_[t]);
            hrx_[x].join_except(c_[t], t);
            ++var_version_[x];
        }
        enroll_update_sets(t, x, /*is_write=*/false);
        return false;
      }

      case Op::kWrite: {
        const VarId x = e.target;
        ensure_var(x);
        // Same-epoch fast path: t already is the pending stale writer,
        // its clock is unchanged, and no read of x intervened.
        if (txns_.active(t) && stale_write_[x] && last_w_thr_[x] == t &&
            last_writer_cv_[x] == clock_version_[t] &&
            last_writer_vv_[x] == var_version_[x]) {
            ++tuned_stats_.same_epoch_writes;
            return false;
        }
        if (last_w_thr_[x] != t) {
            ConstClockRef wclk =
                stale_write_[x] ? c_[last_w_thr_[x]] : w_[x];
            if (check_and_get(wclk, wclk, t, index,
                              "write saw conflicting write")) {
                return true;
            }
        }
        flush_stale_readers(x);
        if (check_and_get(hrx_[x], rx_[x], t, index,
                          "write saw conflicting read")) {
            return true;
        }
        if (txns_.active(t)) {
            stale_write_[x] = 1;
            ++opt_stats_.lazy_writes;
        } else {
            stale_write_[x] = 0;
            w_[x].assign(c_[t]);
        }
        last_w_thr_[x] = t;
        ++var_version_[x];
        last_writer_cv_[x] = clock_version_[t];
        last_writer_vv_[x] = var_version_[x];
        // The write invalidates pending same-epoch reads of x.
        last_reader_[x] = kNoThread;
        enroll_update_sets(t, x, /*is_write=*/true);
        return false;
      }
    }
    return false;
}

} // namespace aero
