#include "aerodrome/aerodrome_tuned.hpp"

#include <algorithm>

#include "aerodrome/frontier_util.hpp"

namespace aero {

AeroDromeTuned::AeroDromeTuned(uint32_t num_threads, uint32_t num_vars,
                               uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    c_pure_.assign(num_threads, 1);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    upd_r_.resize(num_threads);
    upd_w_.resize(num_threads);
    parent_thread_.assign(num_threads, kNoThread);
    parent_txn_seq_.assign(num_threads, 0);
    active_pos_.assign(num_threads, kNoActive);
    clock_version_.assign(num_threads, 1);
    if (num_vars > 0)
        ensure_var(num_vars - 1);
    if (num_locks > 0)
        ensure_lock(num_locks - 1);
}

void
AeroDromeTuned::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    // With gc on the hint counts external tids; rows are recycled slots.
    if (threads > 0 && !gc_)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeTuned::export_frontier(ClockFrontier& out) const
{
    detail::export_bank_frontier(c_, out);
}

void
AeroDromeTuned::adopt_frontier(const ClockFrontier& in)
{
    if (in.threads == 0)
        return;
    ensure_thread(in.threads - 1);
    if (in.dim > c_.dim())
        grow_dim(in.dim);
    // A merged-in ordering invalidates the same-epoch skips, which assume
    // "this thread's clock has not changed since the remembered access".
    detail::adopt_bank_frontier(c_, c_pure_, in,
                                [this](ThreadId t) { bump_clock_version(t); });
}

void
AeroDromeTuned::export_seed(EngineSeed& seed) const
{
    detail::export_engine_seed(c_, cb_, txns_, seed);
    detail::export_slot_seed(slots_, gc_, seed);
}

void
AeroDromeTuned::reseed(const EngineSeed& seed)
{
    detail::adopt_slot_seed(slots_, gc_, seed);
    const uint32_t threads = detail::seed_thread_count(seed);
    if (threads == 0)
        return;
    ensure_thread(threads - 1);
    const uint32_t dim = detail::seed_dim(seed);
    if (dim > c_.dim())
        grow_dim(dim);
    std::vector<uint8_t> no_cb_pure; // this engine keeps no begin purity
    // Reseeded clocks invalidate the same-epoch skips, exactly like a
    // frontier adoption.
    detail::adopt_engine_seed(c_, c_pure_, cb_, no_cb_pure, txns_, seed,
                              [this](ThreadId t) { bump_clock_version(t); });
    // Re-opened transactions must appear on the active-thread list.
    for (ThreadId t = 0; t < threads; ++t) {
        if (txns_.active(t))
            add_active(t);
    }
}

void
AeroDromeTuned::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    tbl_.ensure_dim(n);
}

void
AeroDromeTuned::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        c_pure_.resize(n, 1);
        upd_r_.resize(n);
        upd_w_.resize(n);
        parent_thread_.resize(n, kNoThread);
        parent_txn_seq_.resize(n, 0);
        active_pos_.resize(n, kNoActive);
        clock_version_.resize(n, 1);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeTuned::ensure_var(VarId x)
{
    while (x >= var_base_.size()) {
        uint32_t base = tbl_.add_entry(); // W_x
        tbl_.add_entry();                 // R_x
        tbl_.add_entry();                 // hR_x
        var_base_.push_back(base);
        last_w_thr_.push_back(kNoThread);
        stale_write_.push_back(0);
        stale_readers_.emplace_back();
        var_version_.push_back(1);
        last_reader_.push_back(kNoThread);
        last_reader_cv_.push_back(0);
        last_reader_vv_.push_back(0);
        last_writer_cv_.push_back(0);
        last_writer_vv_.push_back(0);
    }
}

void
AeroDromeTuned::ensure_lock(LockId l)
{
    while (l >= lock_slot_.size()) {
        lock_slot_.push_back(tbl_.add_entry());
        last_rel_thr_.push_back(kNoThread);
    }
}

void
AeroDromeTuned::add_active(ThreadId t)
{
    if (active_pos_[t] == kNoActive) {
        active_pos_[t] = static_cast<uint32_t>(active_threads_.size());
        active_threads_.push_back(t);
    }
}

void
AeroDromeTuned::remove_active(ThreadId t)
{
    uint32_t pos = active_pos_[t];
    if (pos == kNoActive)
        return;
    ThreadId moved = active_threads_.back();
    active_threads_[pos] = moved;
    active_pos_[moved] = pos;
    active_threads_.pop_back();
    active_pos_[t] = kNoActive;
}

bool
AeroDromeTuned::check_and_get_entry(size_t slot, ThreadId t, size_t index,
                                    const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, tbl_.get(slot, t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], slot, t, c_pure_[t]);
    bump_clock_version(t);
    return false;
}

bool
AeroDromeTuned::check_and_get_entry2(size_t check_slot, size_t join_slot,
                                     ThreadId t, size_t index,
                                     const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, tbl_.get(check_slot, t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], join_slot, t, c_pure_[t]);
    bump_clock_version(t);
    return false;
}

bool
AeroDromeTuned::check_and_get_clock(ConstClockRef clk, ThreadId src,
                                    bool src_pure, ThreadId t, size_t index,
                                    const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, clk.get(t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    join_qualified(c_[t], t, c_pure_[t], clk, src, src_pure);
    bump_clock_version(t);
    return false;
}

bool
AeroDromeTuned::has_incoming_edge(ThreadId t) const
{
    ThreadId p = parent_thread_[t];
    if (p != kNoThread && parent_txn_seq_[t] != 0 && txns_.active(p) &&
        txns_.seq(p) == parent_txn_seq_[t]) {
        return true;
    }
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];
    for (size_t u = 0; u < ct.dim(); ++u) {
        if (u != t && ct.get(u) != cbt.get(u))
            return true;
    }
    // Transit-ancestry guard (see aerodrome_opt.cpp for the argument):
    // propagate when another still-active transaction's begin is already
    // visible in C_t^b, because dropping this transaction's lazy state
    // would sever a program-order transit chain that active transaction
    // may still need to close a cycle.
    for (ThreadId u : active_threads_) {
        if (u != t && cb_[u].get(u) > 0 && cb_[u].get(u) <= cbt.get(u))
            return true;
    }
    return false;
}

void
AeroDromeTuned::flush_stale_readers(VarId x)
{
    const size_t base = var_base_[x];
    for (ThreadId u : stale_readers_[x]) {
        stats_.joins += 2;
        const bool pure = pure_of(u);
        tbl_.join(base + 1, c_[u], u, pure);        // R_x
        tbl_.join_except(base + 2, c_[u], u, pure); // hR_x
    }
    stale_readers_[x].clear();
}

void
AeroDromeTuned::enroll_update_sets(ThreadId t, VarId x, bool is_write)
{
    // Only transaction-holding threads can qualify: scan the active list
    // instead of all of Thr.
    auto& sets = is_write ? upd_w_ : upd_r_;
    for (ThreadId u : active_threads_) {
        if (cb_[u].get(u) <= c_[t].get(u))
            sets[u].insert(x);
    }
}

bool
AeroDromeTuned::handle_end(ThreadId t, size_t index)
{
    if (!has_incoming_edge(t)) {
        ++opt_stats_.gc_skipped_ends;
        for (VarId x : upd_r_[t].list) {
            auto& sr = stale_readers_[x];
            sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
            if (last_reader_[x] == t)
                last_reader_[x] = kNoThread;
            ++var_version_[x];
        }
        upd_r_[t].clear();
        for (VarId x : upd_w_[t].list) {
            if (last_w_thr_[x] == t) {
                stale_write_[x] = 0;
                last_w_thr_[x] = kNoThread;
            }
            ++var_version_[x];
        }
        upd_w_[t].clear();
        for (LockId l = 0; l < last_rel_thr_.size(); ++l) {
            if (last_rel_thr_[l] == t)
                last_rel_thr_[l] = kNoThread;
        }
        return false;
    }

    ++opt_stats_.propagated_ends;
    ConstClockRef ct = c_[t];
    const ClockValue cbt_t = cb_[t].get(t);
    const bool ct_pure = pure_of(t);

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt_t <= c_[u].get(t)) {
            if (check_and_get_clock(ct, t, ct_pure, u, index,
                                    "active peer ordered into completed "
                                    "transaction")) {
                return true;
            }
        }
    }
    for (size_t l = 0; l < lock_slot_.size(); ++l) {
        ++stats_.comparisons;
        if (cbt_t <= tbl_.get(lock_slot_[l], t)) {
            ++stats_.joins;
            tbl_.join(lock_slot_[l], ct, t, ct_pure);
        }
    }
    for (VarId x : upd_w_[t].list) {
        if (!stale_write_[x] || last_w_thr_[x] == t) {
            ++stats_.joins;
            tbl_.join(var_base_[x], ct, t, ct_pure);
        }
        if (last_w_thr_[x] == t)
            stale_write_[x] = 0;
        ++var_version_[x];
    }
    upd_w_[t].clear();
    for (VarId x : upd_r_[t].list) {
        stats_.joins += 2;
        const size_t base = var_base_[x];
        tbl_.join(base + 1, ct, t, ct_pure);
        tbl_.join_except(base + 2, ct, t, ct_pure);
        auto& sr = stale_readers_[x];
        sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
        if (last_reader_[x] == t)
            last_reader_[x] = kNoThread;
        ++var_version_[x];
    }
    upd_r_[t].clear();
    return false;
}

bool
AeroDromeTuned::process(const Event& e, size_t index)
{
    ThreadId t = e.tid;
    ThreadId target = e.target;
    if (gc_) {
        // Rows are recycled slots: translate the actor and, for the two
        // thread-target ops, the target through the slot map.
        t = slot_of(e.tid);
        if (e.op == Op::kFork || e.op == Op::kJoin)
            target = slot_of(e.target);
    } else {
        ensure_thread(t);
    }

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t); // purity preserved
            cb_[t].assign(c_[t]);
            bump_clock_version(t);
            add_active(t);
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            remove_active(t);
            if (handle_end(t, index))
                return true;
            if (gc_)
                maybe_gc_sweep();
        }
        return false;

      case Op::kAcquire:
        ensure_lock(target);
        if (last_rel_thr_[target] != t) {
            return check_and_get_entry(lock_slot_[target], t, index,
                                       "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(target);
        tbl_.assign(lock_slot_[target], c_[t], t, pure_of(t));
        last_rel_thr_[target] = t;
        return false;

      case Op::kFork:
        ensure_thread(target);
        ++stats_.joins;
        join_qualified(c_[target], target, c_pure_[target], c_[t], t,
                       pure_of(t));
        bump_clock_version(target);
        parent_thread_[target] = t;
        parent_txn_seq_[target] = txns_.active(t) ? txns_.seq(t) : 0;
        return false;

      case Op::kJoin: {
        ensure_thread(target);
        if (check_and_get_clock(c_[target], target, pure_of(target), t,
                                index, "join saw child's events")) {
            return true;
        }
        if (gc_ && target != t)
            retire_slot(target);
        return false;
      }

      case Op::kRead: {
        const VarId x = target;
        ensure_var(x);
        // Same-epoch fast path: this exact read already happened and
        // nothing observable changed since.
        if (txns_.active(t) && last_reader_[x] == t &&
            last_reader_cv_[x] == clock_version_[t] &&
            last_reader_vv_[x] == var_version_[x]) {
            ++tuned_stats_.same_epoch_reads;
            return false;
        }
        const size_t base = var_base_[x];
        if (last_w_thr_[x] != t) {
            bool v;
            if (stale_write_[x]) {
                ThreadId lw = last_w_thr_[x];
                v = check_and_get_clock(c_[lw], lw, pure_of(lw), t,
                                        index,
                                        "read saw conflicting write");
            } else {
                v = check_and_get_entry(base, t, index,
                                        "read saw conflicting write");
            }
            if (v)
                return true;
        }
        if (txns_.active(t)) {
            auto& sr = stale_readers_[x];
            if (std::find(sr.begin(), sr.end(), t) == sr.end()) {
                sr.push_back(t);
                ++var_version_[x];
            }
            ++opt_stats_.lazy_reads;
            last_reader_[x] = t;
            last_reader_cv_[x] = clock_version_[t];
            last_reader_vv_[x] = var_version_[x];
        } else {
            stats_.joins += 2;
            const bool pure = pure_of(t);
            tbl_.join(base + 1, c_[t], t, pure);
            tbl_.join_except(base + 2, c_[t], t, pure);
            ++var_version_[x];
        }
        enroll_update_sets(t, x, /*is_write=*/false);
        return false;
      }

      case Op::kWrite: {
        const VarId x = target;
        ensure_var(x);
        // Same-epoch fast path: t already is the pending stale writer,
        // its clock is unchanged, and no read of x intervened.
        if (txns_.active(t) && stale_write_[x] && last_w_thr_[x] == t &&
            last_writer_cv_[x] == clock_version_[t] &&
            last_writer_vv_[x] == var_version_[x]) {
            ++tuned_stats_.same_epoch_writes;
            return false;
        }
        const size_t base = var_base_[x];
        if (last_w_thr_[x] != t) {
            bool v;
            if (stale_write_[x]) {
                ThreadId lw = last_w_thr_[x];
                v = check_and_get_clock(c_[lw], lw, pure_of(lw), t,
                                        index,
                                        "write saw conflicting write");
            } else {
                v = check_and_get_entry(base, t, index,
                                        "write saw conflicting write");
            }
            if (v)
                return true;
        }
        flush_stale_readers(x);
        if (check_and_get_entry2(base + 2, base + 1, t, index,
                                 "write saw conflicting read")) {
            return true;
        }
        if (txns_.active(t)) {
            stale_write_[x] = 1;
            ++opt_stats_.lazy_writes;
        } else {
            stale_write_[x] = 0;
            tbl_.assign(base, c_[t], t, pure_of(t));
        }
        last_w_thr_[x] = t;
        ++var_version_[x];
        last_writer_cv_[x] = clock_version_[t];
        last_writer_vv_[x] = var_version_[x];
        // The write invalidates pending same-epoch reads of x.
        last_reader_[x] = kNoThread;
        enroll_update_sets(t, x, /*is_write=*/true);
        return false;
      }
    }
    return false;
}

void
AeroDromeTuned::retire_slot(uint32_t s)
{
    if (txns_.active(s))
        return; // ill-formed join mid-transaction: leak the row, stay safe
    // Scrub every cached fact naming this row; flush the lazy proxies
    // BEFORE the clock reset (they stand in for c_[s]).
    for (VarId x = 0; x < var_base_.size(); ++x) {
        if (last_w_thr_[x] == s) {
            if (stale_write_[x]) {
                // Defensive: a well-formed trace cleared this at s's end.
                tbl_.assign(var_base_[x], c_[s], s, pure_of(s));
                stale_write_[x] = 0;
            }
            last_w_thr_[x] = kNoThread;
            ++var_version_[x];
        }
        if (last_reader_[x] == s) {
            last_reader_[x] = kNoThread;
            ++var_version_[x];
        }
        auto& sr = stale_readers_[x];
        for (size_t k = 0; k < sr.size(); ++k) {
            if (sr[k] == s) {
                stats_.joins += 2;
                const size_t base = var_base_[x];
                const bool pure = pure_of(s);
                tbl_.join(base + 1, c_[s], s, pure);
                tbl_.join_except(base + 2, c_[s], s, pure);
                sr.erase(sr.begin() + static_cast<ptrdiff_t>(k));
                ++var_version_[x];
                break;
            }
        }
    }
    for (ThreadId& r : last_rel_thr_) {
        if (r == s)
            r = kNoThread;
    }
    upd_r_[s].clear();
    upd_w_[s].clear();
    parent_thread_[s] = kNoThread;
    parent_txn_seq_[s] = 0;
    remove_active(s);
    const ClockValue v = c_[s].get(s);
    c_[s].clear();
    c_[s].set(s, v + 1);
    cb_[s].clear();
    c_pure_[s] = 1;
    // Any remembered (clock version, s) pair must die with the binding.
    bump_clock_version(s);
    slots_.retire(s);
}

void
AeroDromeTuned::gc_sweep_now()
{
    gcf_.reset(c_.dim());
    const std::vector<ThreadId>& bound = slots_.bindings();
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread)
            gcf_.accumulate(c_[s]);
    }
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread && txns_.active(s))
            gcf_.cap_active(s, c_[s].get(s));
    }
    gc_live_entries_ = tbl_.gc_sweep(gcf_);
    ++gc_sweeps_;
    gc_rows_baseline_ = tbl_.arena_rows_live();
    gc_ends_ = 0;
}

void
AeroDromeTuned::maybe_gc_sweep()
{
    if (gc_sweep_every_ != 0) {
        if (++gc_ends_ >= gc_sweep_every_)
            gc_sweep_now();
        return;
    }
    const size_t rows = tbl_.arena_rows_live();
    if (rows >= 128 && rows >= 2 * gc_rows_baseline_)
        gc_sweep_now();
}

StatList
AeroDromeTuned::counters() const
{
    const AdaptiveClockStats& es = tbl_.stats();
    return {
        {"joins", stats_.joins},
        {"comparisons", stats_.comparisons},
        {"lazy_reads", opt_stats_.lazy_reads},
        {"lazy_writes", opt_stats_.lazy_writes},
        {"propagated_ends", opt_stats_.propagated_ends},
        {"gc_skipped_ends", opt_stats_.gc_skipped_ends},
        {"same_epoch_reads", tuned_stats_.same_epoch_reads},
        {"same_epoch_writes", tuned_stats_.same_epoch_writes},
        {"epoch_fast_ops", es.epoch_fast},
        {"vector_ops", es.vector_ops},
        {"inflations", es.inflations},
        {"gc_reclaimed", es.gc_reclaimed},
        {"gc_rows_freed", es.gc_rows_freed},
        {"gc_sweeps", gc_sweeps_},
        {"gc_live_entries", gc_live_entries_},
        {"slots_retired", slots_.retired()},
        {"slots_recycled", slots_.recycled()},
    };
}

size_t
AeroDromeTuned::memory_bytes() const
{
    size_t n = c_.memory_bytes() + cb_.memory_bytes() + tbl_.memory_bytes();
    n += (lock_slot_.capacity() + var_base_.capacity() +
          active_pos_.capacity()) *
         sizeof(uint32_t);
    n += c_pure_.capacity() + stale_write_.capacity();
    n += (last_rel_thr_.capacity() + last_w_thr_.capacity() +
          parent_thread_.capacity() + active_threads_.capacity() +
          last_reader_.capacity()) *
         sizeof(ThreadId);
    n += (parent_txn_seq_.capacity() + clock_version_.capacity() +
          var_version_.capacity() + last_reader_cv_.capacity() +
          last_reader_vv_.capacity() + last_writer_cv_.capacity() +
          last_writer_vv_.capacity()) *
         sizeof(uint64_t);
    for (const auto& sr : stale_readers_)
        n += sr.capacity() * sizeof(ThreadId);
    for (const auto* sets : {&upd_r_, &upd_w_}) {
        for (const auto& s : *sets)
            n += s.list.capacity() * sizeof(VarId) + s.member.capacity();
    }
    n += slots_.memory_bytes() + gcf_.memory_bytes() + txns_.memory_bytes();
    return n;
}

} // namespace aero
