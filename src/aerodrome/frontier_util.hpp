#pragma once

/**
 * @file
 * Shared bodies for the engines' clock-frontier export/adopt hooks
 * (AtomicityChecker::export_frontier / adopt_frontier, consumed by the
 * sharded runner in src/shard/).
 *
 * Every AeroDrome variant stores C_t as rows of a ClockBank with a
 * per-thread purity byte, so the two operations are identical across the
 * four engines; only the "clock changed" side effects differ (the tuned
 * engine must additionally invalidate its same-epoch versions). The
 * caller is responsible for growing its state (ensure_thread / grow_dim)
 * before adopting, so these helpers never reallocate mid-loop.
 */

#include <cstdint>
#include <vector>

#include "analysis/checker.hpp"
#include "vc/clock_bank.hpp"

namespace aero::detail {

/** Snapshot every row of `c` into `out` (resets it first). */
inline void
export_bank_frontier(const ClockBank& c, ClockFrontier& out)
{
    const uint32_t n = static_cast<uint32_t>(c.rows());
    const uint32_t d = static_cast<uint32_t>(c.dim());
    out.reset(n, d);
    for (uint32_t t = 0; t < n; ++t) {
        ConstClockRef ct = c[t];
        for (uint32_t j = 0; j < d; ++j)
            out.set(t, j, ct.get(j));
    }
}

/**
 * c[t] := c[t] |_| in[t] for every imported thread, clearing the purity
 * byte of any clock that grew in a foreign component and invoking
 * `on_changed(t)` for any clock that grew at all. `c` must already cover
 * in.threads rows and in.dim components.
 */
template <typename OnChanged>
inline void
adopt_bank_frontier(ClockBank& c, std::vector<uint8_t>& pure,
                    const ClockFrontier& in, OnChanged on_changed)
{
    for (uint32_t t = 0; t < in.threads; ++t) {
        ClockRef ct = c[t];
        bool changed = false;
        bool foreign = false;
        for (uint32_t j = 0; j < in.dim; ++j) {
            ClockValue v = in.get(t, j);
            if (v > ct.get(j)) {
                ct.set(j, v);
                changed = true;
                if (j != t)
                    foreign = true;
            }
        }
        if (foreign)
            pure[t] = 0;
        if (changed)
            on_changed(t);
    }
}

} // namespace aero::detail
