#pragma once

/**
 * @file
 * Shared bodies for the engines' clock-frontier export/adopt hooks
 * (AtomicityChecker::export_frontier / adopt_frontier, consumed by the
 * sharded runner in src/shard/).
 *
 * Every AeroDrome variant stores C_t as rows of a ClockBank with a
 * per-thread purity byte, so the two operations are identical across the
 * four engines; only the "clock changed" side effects differ (the tuned
 * engine must additionally invalidate its same-epoch versions). The
 * caller is responsible for growing its state (ensure_thread / grow_dim)
 * before adopting, so these helpers never reallocate mid-loop.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include "analysis/checker.hpp"
#include "analysis/thread_slots.hpp"
#include "analysis/txn_tracker.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"

namespace aero::detail {

/**
 * Seed-export counterpart of the slot-recycling map: with gc on the
 * frontier rows are slots, so a seed must carry the slot->ext binding
 * table for the replay engine to keep reporting external tids (and to
 * reissue the same slots the checkpointed engine would).
 */
inline void
export_slot_seed(const ThreadSlotMap& slots, bool gc, EngineSeed& seed)
{
    seed.slot_ext.clear();
    seed.slot_free.clear();
    if (!gc)
        return;
    seed.slot_ext = slots.bindings();
    seed.slot_free.assign(slots.free_slots().begin(),
                          slots.free_slots().end());
}

/**
 * Restore the slot map from a seed. A seed with bindings implies the
 * checkpointed engine ran with gc on, so the replay engine must too —
 * its frontier rows are slots; `gc` is forced on then.
 */
inline void
adopt_slot_seed(ThreadSlotMap& slots, bool& gc, const EngineSeed& seed)
{
    if (seed.slot_ext.empty())
        return;
    gc = true;
    slots.restore(seed.slot_ext, seed.slot_free);
}

/**
 * Re-establish the adaptive table's per-thread update windows after a
 * reseed (basic/readopt engines). Reseeding restores transactions the
 * engine never saw begin — and can grow C_t^b mid-transaction — so every
 * existing window is stale: close them all, then reopen one per restored
 * active transaction with the restored gate cb_t(t).
 *
 * The windows' enrollment invariant ("every entry whose gate can fire is
 * enrolled") holds trivially when the table is empty — the fresh
 * confirmation engines of the sharded runner's suspect replay, the only
 * in-tree reseed consumers. A *populated* table may already hold entries
 * at or above a restored gate that no mutation will re-announce, so its
 * windows are left untracked and those transactions' end events fall
 * back to the (always exact) full-table sweep.
 *
 * Frontier *adoption* needs no counterpart: adopt_frontier only grows
 * C_t, never a table entry or a begin clock, so gates and enrollment are
 * untouched — future mutations see the grown source clocks at mutation
 * time.
 */
inline void
reopen_update_windows(AdaptiveClockTable& tbl, const TxnTracker& txns,
                      const ClockBank& cb, size_t threads)
{
    const bool clean = tbl.size() == 0;
    for (ThreadId t = 0; t < threads; ++t) {
        tbl.close_update_window(t);
        if (clean && txns.active(t))
            tbl.open_update_window(t, cb[t].get(t));
    }
}

/** Snapshot every row of `c` into `out`: one contiguous memcpy per row
 *  straight out of the bank's arena (the frontier's dim equals the
 *  bank's, so rows copy whole — no per-component accessors). */
inline void
export_bank_frontier(const ClockBank& c, ClockFrontier& out)
{
    const uint32_t n = static_cast<uint32_t>(c.rows());
    const uint32_t d = static_cast<uint32_t>(c.dim());
    out.threads = n;
    out.dim = d;
    out.values.resize(static_cast<size_t>(n) * d);
    ClockValue* dst = out.values.data();
    for (uint32_t t = 0; t < n; ++t, dst += d)
        std::memcpy(dst, c[t].data(), d * sizeof(ClockValue));
}

/**
 * c[t] := c[t] |_| in[t] for every imported thread, clearing the purity
 * byte of any clock that grew in a foreign component and invoking
 * `on_changed(t)` for any clock that grew at all. `c` must already cover
 * in.threads rows and in.dim components.
 *
 * The hot case after a frontier merge is "this row already dominates"
 * (the merged frontier is the pointwise max of all shards, and most rows
 * came from *this* shard), so each row first runs the SIMD leq kernel
 * over the raw arrays and only rows that actually grow take the scalar
 * component loop.
 */
template <typename OnChanged>
inline void
adopt_bank_frontier(ClockBank& c, std::vector<uint8_t>& pure,
                    const ClockFrontier& in, OnChanged on_changed)
{
    const ClockValue* row = in.values.data();
    for (uint32_t t = 0; t < in.threads; ++t, row += in.dim) {
        ClockRef ct = c[t];
        if (in.dim <= ct.dim() && vck::leq(row, ct.data(), in.dim))
            continue; // already dominates: nothing grows
        bool foreign = false;
        ClockValue* dst = ct.data();
        for (uint32_t j = 0; j < in.dim; ++j) {
            const ClockValue v = row[j];
            if (v > dst[j]) {
                dst[j] = v;
                if (j != t)
                    foreign = true;
            }
        }
        if (foreign)
            pure[t] = 0;
        on_changed(t);
    }
}

/** Thread rows a seed demands: the max across BOTH frontiers and the
 *  nesting state (a seed may carry begin clocks for threads whose C_t
 *  rows happen to be narrower). */
inline uint32_t
seed_thread_count(const EngineSeed& seed)
{
    return std::max({seed.clocks.threads, seed.begin_clocks.threads,
                     static_cast<uint32_t>(seed.txn_depth.size()),
                     static_cast<uint32_t>(seed.txn_seq.size())});
}

/** Clock components a seed demands. */
inline uint32_t
seed_dim(const EngineSeed& seed)
{
    return std::max(seed.clocks.dim, seed.begin_clocks.dim);
}

/** Shared body of the engines' export_seed hook: snapshot C_t, C_t^b and
 *  the transaction nesting state. */
inline void
export_engine_seed(const ClockBank& c, const ClockBank& cb,
                   const TxnTracker& txns, EngineSeed& seed)
{
    export_bank_frontier(c, seed.clocks);
    export_bank_frontier(cb, seed.begin_clocks);
    txns.snapshot(seed.txn_depth, seed.txn_seq);
}

/**
 * Shared body of the engines' reseed hook. The caller must already have
 * grown its thread state (ensure_thread / grow_dim) to cover the seed;
 * this joins both frontiers in (clearing purity on foreign growth,
 * invoking `on_changed(t)` for grown C_t rows) and restores the nesting
 * state. `cb_pure` may be empty for engines without begin purity bits.
 */
template <typename OnChanged>
inline void
adopt_engine_seed(ClockBank& c, std::vector<uint8_t>& pure, ClockBank& cb,
                  std::vector<uint8_t>& cb_pure, TxnTracker& txns,
                  const EngineSeed& seed, OnChanged on_changed)
{
    adopt_bank_frontier(c, pure, seed.clocks, on_changed);
    const ClockFrontier& in = seed.begin_clocks;
    for (uint32_t t = 0; t < in.threads; ++t) {
        ClockRef cbt = cb[t];
        bool foreign = false;
        for (uint32_t j = 0; j < in.dim; ++j) {
            ClockValue v = in.get(t, j);
            if (v > cbt.get(j)) {
                cbt.set(j, v);
                if (j != t)
                    foreign = true;
            }
        }
        if (foreign && t < cb_pure.size())
            cb_pure[t] = 0;
    }
    txns.restore(seed.txn_depth, seed.txn_seq);
}

} // namespace aero::detail
