#include "aerodrome/aerodrome_opt.hpp"

#include <algorithm>

#include "aerodrome/frontier_util.hpp"

namespace aero {

AeroDromeOpt::AeroDromeOpt(uint32_t num_threads, uint32_t num_vars,
                           uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    c_pure_.assign(num_threads, 1);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1);
    upd_r_.resize(num_threads);
    upd_w_.resize(num_threads);
    parent_thread_.assign(num_threads, kNoThread);
    parent_txn_seq_.assign(num_threads, 0);
    if (num_vars > 0)
        ensure_var(num_vars - 1);
    if (num_locks > 0)
        ensure_lock(num_locks - 1);
}

void
AeroDromeOpt::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    // With gc on the hint counts external tids; rows are recycled slots.
    if (threads > 0 && !gc_)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeOpt::export_frontier(ClockFrontier& out) const
{
    detail::export_bank_frontier(c_, out);
}

void
AeroDromeOpt::adopt_frontier(const ClockFrontier& in)
{
    if (in.threads == 0)
        return;
    ensure_thread(in.threads - 1);
    if (in.dim > c_.dim())
        grow_dim(in.dim);
    detail::adopt_bank_frontier(c_, c_pure_, in, [](ThreadId) {});
}

void
AeroDromeOpt::export_seed(EngineSeed& seed) const
{
    detail::export_engine_seed(c_, cb_, txns_, seed);
    detail::export_slot_seed(slots_, gc_, seed);
}

void
AeroDromeOpt::reseed(const EngineSeed& seed)
{
    detail::adopt_slot_seed(slots_, gc_, seed);
    const uint32_t threads = detail::seed_thread_count(seed);
    if (threads == 0)
        return;
    ensure_thread(threads - 1);
    const uint32_t dim = detail::seed_dim(seed);
    if (dim > c_.dim())
        grow_dim(dim);
    std::vector<uint8_t> no_cb_pure; // this engine keeps no begin purity
    detail::adopt_engine_seed(c_, c_pure_, cb_, no_cb_pure, txns_, seed,
                              [](ThreadId) {});
}

void
AeroDromeOpt::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    tbl_.ensure_dim(n);
}

void
AeroDromeOpt::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        c_pure_.resize(n, 1);
        upd_r_.resize(n);
        upd_w_.resize(n);
        parent_thread_.resize(n, kNoThread);
        parent_txn_seq_.resize(n, 0);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeOpt::ensure_var(VarId x)
{
    while (x >= var_base_.size()) {
        uint32_t base = tbl_.add_entry(); // W_x
        tbl_.add_entry();                 // R_x
        tbl_.add_entry();                 // hR_x
        var_base_.push_back(base);
        last_w_thr_.push_back(kNoThread);
        stale_write_.push_back(0);
        stale_readers_.emplace_back();
    }
}

void
AeroDromeOpt::ensure_lock(LockId l)
{
    while (l >= lock_slot_.size()) {
        lock_slot_.push_back(tbl_.add_entry());
        last_rel_thr_.push_back(kNoThread);
    }
}

bool
AeroDromeOpt::check_and_get_entry(size_t slot, ThreadId t, size_t index,
                                  const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, tbl_.get(slot, t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], slot, t, c_pure_[t]);
    return false;
}

bool
AeroDromeOpt::check_and_get_entry2(size_t check_slot, size_t join_slot,
                                   ThreadId t, size_t index,
                                   const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, tbl_.get(check_slot, t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], join_slot, t, c_pure_[t]);
    return false;
}

bool
AeroDromeOpt::check_and_get_clock(ConstClockRef clk, ThreadId src,
                                  bool src_pure, ThreadId t, size_t index,
                                  const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && begin_before(t, clk.get(t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    join_qualified(c_[t], t, c_pure_[t], clk, src, src_pure);
    return false;
}

bool
AeroDromeOpt::has_incoming_edge(ThreadId t) const
{
    // "parentTr is alive": the transaction that forked this thread is still
    // active, so the fork edge into every transaction of this thread may
    // yet participate in a cycle.
    ThreadId p = parent_thread_[t];
    if (p != kNoThread && parent_txn_seq_[t] != 0 && txns_.active(p) &&
        txns_.seq(p) == parent_txn_seq_[t]) {
        return true;
    }
    // Did C_t grow beyond C_t^b in any foreign component, i.e. did this
    // transaction receive an ordering from elsewhere since begin?
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];
    for (size_t u = 0; u < ct.dim(); ++u) {
        if (u != t && ct.get(u) != cbt.get(u))
            return true;
    }
    // Transit-ancestry guard. The literal check above (the paper's
    // C_t^b[0/t] != C_t[0/t]) only sees orderings received *during* the
    // transaction, but skipping the propagation also drops orderings the
    // thread absorbed *before* the begin and that later readers would
    // inherit through this transaction's accesses (program-order transit:
    // P -> T -> future-reader). That transit chain can only close a cycle
    // through a transaction that was already active when T ended (a
    // completed transaction's incoming edges are final), and any such
    // candidate's begin clock is necessarily contained in C_t^b. So the
    // fast path stays sound-and-complete if we propagate whenever some
    // *other still-active* transaction's begin is visible in C_t^b.
    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u != t && txns_.active(u) && cb_[u].get(u) > 0 &&
            cb_[u].get(u) <= cbt.get(u)) {
            return true;
        }
    }
    return false;
}

void
AeroDromeOpt::flush_stale_readers(VarId x)
{
    const size_t base = var_base_[x];
    for (ThreadId u : stale_readers_[x]) {
        stats_.joins += 2;
        const bool pure = pure_of(u);
        tbl_.join(base + 1, c_[u], u, pure);        // R_x
        tbl_.join_except(base + 2, c_[u], u, pure); // hR_x
    }
    stale_readers_[x].clear();
}

void
AeroDromeOpt::enroll_update_sets(ThreadId t, VarId x, bool is_write)
{
    // Enroll x with every thread whose active transaction is ordered
    // before the current access: those transactions must push their final
    // timestamps into R_x/W_x when they complete (Algorithm 3, lines 34-36
    // and 50-52). The one-component test keeps this O(|Thr|).
    auto& sets = is_write ? upd_w_ : upd_r_;
    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (txns_.active(u) && cb_[u].get(u) <= c_[t].get(u))
            sets[u].insert(x);
    }
}

bool
AeroDromeOpt::handle_end(ThreadId t, size_t index)
{
    if (!has_incoming_edge(t)) {
        // Garbage-collected end: this transaction can never lie on a
        // cycle, so skip the propagation entirely and only tidy the lazy
        // bookkeeping (Algorithm 3, lines 75-86).
        ++opt_stats_.gc_skipped_ends;
        for (VarId x : upd_r_[t].list) {
            auto& sr = stale_readers_[x];
            sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
        }
        upd_r_[t].clear();
        for (VarId x : upd_w_[t].list) {
            if (last_w_thr_[x] == t) {
                stale_write_[x] = 0;
                last_w_thr_[x] = kNoThread;
            }
        }
        upd_w_[t].clear();
        for (LockId l = 0; l < last_rel_thr_.size(); ++l) {
            if (last_rel_thr_[l] == t)
                last_rel_thr_[l] = kNoThread;
        }
        return false;
    }

    ++opt_stats_.propagated_ends;
    ConstClockRef ct = c_[t];
    const ClockValue cbt_t = cb_[t].get(t);
    const bool ct_pure = pure_of(t);

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt_t <= c_[u].get(t)) {
            if (check_and_get_clock(ct, t, ct_pure, u, index,
                                    "active peer ordered into completed "
                                    "transaction")) {
                return true;
            }
        }
    }
    for (size_t l = 0; l < lock_slot_.size(); ++l) {
        ++stats_.comparisons;
        if (cbt_t <= tbl_.get(lock_slot_[l], t)) {
            ++stats_.joins;
            tbl_.join(lock_slot_[l], ct, t, ct_pure);
        }
    }
    for (VarId x : upd_w_[t].list) {
        // If another thread's *stale* write supersedes ours, skip: future
        // readers will pick the ordering up from that thread's live clock
        // (which already absorbed C_t via the thread loop above).
        if (!stale_write_[x] || last_w_thr_[x] == t) {
            ++stats_.joins;
            tbl_.join(var_base_[x], ct, t, ct_pure);
        }
        if (last_w_thr_[x] == t)
            stale_write_[x] = 0;
    }
    upd_w_[t].clear();
    for (VarId x : upd_r_[t].list) {
        stats_.joins += 2;
        const size_t base = var_base_[x];
        tbl_.join(base + 1, ct, t, ct_pure);
        tbl_.join_except(base + 2, ct, t, ct_pure);
        auto& sr = stale_readers_[x];
        sr.erase(std::remove(sr.begin(), sr.end(), t), sr.end());
    }
    upd_r_[t].clear();
    return false;
}

bool
AeroDromeOpt::process(const Event& e, size_t index)
{
    ThreadId t = e.tid;
    ThreadId target = e.target;
    if (gc_) {
        // Rows are recycled slots: translate the actor and, for the two
        // thread-target ops, the target through the slot map.
        t = slot_of(e.tid);
        if (e.op == Op::kFork || e.op == Op::kJoin)
            target = slot_of(e.target);
    } else {
        ensure_thread(t);
    }

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t); // purity preserved
            cb_[t].assign(c_[t]);
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            if (handle_end(t, index))
                return true;
            if (gc_)
                maybe_gc_sweep();
        }
        return false;

      case Op::kAcquire:
        ensure_lock(target);
        if (last_rel_thr_[target] != t) {
            return check_and_get_entry(lock_slot_[target], t, index,
                                       "acquire saw conflicting release");
        }
        return false;

      case Op::kRelease:
        ensure_lock(target);
        tbl_.assign(lock_slot_[target], c_[t], t, pure_of(t));
        last_rel_thr_[target] = t;
        return false;

      case Op::kFork:
        ensure_thread(target);
        ++stats_.joins;
        join_qualified(c_[target], target, c_pure_[target], c_[t], t,
                       pure_of(t));
        parent_thread_[target] = t;
        parent_txn_seq_[target] = txns_.active(t) ? txns_.seq(t) : 0;
        return false;

      case Op::kJoin: {
        ensure_thread(target);
        if (check_and_get_clock(c_[target], target, pure_of(target), t,
                                index, "join saw child's events")) {
            return true;
        }
        if (gc_ && target != t)
            retire_slot(target);
        return false;
      }

      case Op::kRead: {
        const VarId x = target;
        ensure_var(x);
        const size_t base = var_base_[x];
        if (last_w_thr_[x] != t) {
            bool v;
            if (stale_write_[x]) {
                ThreadId lw = last_w_thr_[x];
                v = check_and_get_clock(c_[lw], lw, pure_of(lw), t,
                                        index,
                                        "read saw conflicting write");
            } else {
                v = check_and_get_entry(base, t, index,
                                        "read saw conflicting write");
            }
            if (v)
                return true;
        }
        if (txns_.active(t)) {
            // Lazy: defer the R_x/hR_x update to the next write of x or to
            // our transaction end.
            auto& sr = stale_readers_[x];
            if (std::find(sr.begin(), sr.end(), t) == sr.end())
                sr.push_back(t);
            ++opt_stats_.lazy_reads;
        } else {
            // Unary read: its transaction completes now; flush eagerly so
            // the live-clock proxy is never applied to a finished
            // transaction.
            stats_.joins += 2;
            const bool pure = pure_of(t);
            tbl_.join(base + 1, c_[t], t, pure);
            tbl_.join_except(base + 2, c_[t], t, pure);
        }
        enroll_update_sets(t, x, /*is_write=*/false);
        return false;
      }

      case Op::kWrite: {
        const VarId x = target;
        ensure_var(x);
        const size_t base = var_base_[x];
        if (last_w_thr_[x] != t) {
            bool v;
            if (stale_write_[x]) {
                ThreadId lw = last_w_thr_[x];
                v = check_and_get_clock(c_[lw], lw, pure_of(lw), t,
                                        index,
                                        "write saw conflicting write");
            } else {
                v = check_and_get_entry(base, t, index,
                                        "write saw conflicting write");
            }
            if (v)
                return true;
        }
        flush_stale_readers(x);
        if (check_and_get_entry2(base + 2, base + 1, t, index,
                                 "write saw conflicting read")) {
            return true;
        }
        if (txns_.active(t)) {
            stale_write_[x] = 1;
            ++opt_stats_.lazy_writes;
        } else {
            stale_write_[x] = 0;
            tbl_.assign(base, c_[t], t, pure_of(t));
        }
        last_w_thr_[x] = t;
        enroll_update_sets(t, x, /*is_write=*/true);
        return false;
      }
    }
    return false;
}

void
AeroDromeOpt::retire_slot(uint32_t s)
{
    if (txns_.active(s))
        return; // ill-formed join mid-transaction: leak the row, stay safe
    // Scrub every cached fact that names this row. The lazy proxies must
    // be materialized/flushed BEFORE the clock reset: they stand in for
    // c_[s], which is about to become the reissue continuation.
    for (VarId x = 0; x < var_base_.size(); ++x) {
        if (last_w_thr_[x] == s) {
            if (stale_write_[x]) {
                // Defensive: a well-formed trace cleared this at s's last
                // end. Materialize W_x from the proxy before it vanishes.
                tbl_.assign(var_base_[x], c_[s], s, pure_of(s));
                stale_write_[x] = 0;
            }
            last_w_thr_[x] = kNoThread;
        }
        auto& sr = stale_readers_[x];
        for (size_t k = 0; k < sr.size(); ++k) {
            if (sr[k] == s) {
                stats_.joins += 2;
                const size_t base = var_base_[x];
                const bool pure = pure_of(s);
                tbl_.join(base + 1, c_[s], s, pure);
                tbl_.join_except(base + 2, c_[s], s, pure);
                sr.erase(sr.begin() + static_cast<ptrdiff_t>(k));
                break;
            }
        }
    }
    for (ThreadId& r : last_rel_thr_) {
        if (r == s)
            r = kNoThread;
    }
    upd_r_[s].clear();
    upd_w_[s].clear();
    parent_thread_[s] = kNoThread;
    parent_txn_seq_[s] = 0;
    const ClockValue v = c_[s].get(s);
    c_[s].clear();
    c_[s].set(s, v + 1);
    cb_[s].clear();
    c_pure_[s] = 1;
    slots_.retire(s);
}

void
AeroDromeOpt::gc_sweep_now()
{
    gcf_.reset(c_.dim());
    const std::vector<ThreadId>& bound = slots_.bindings();
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread)
            gcf_.accumulate(c_[s]);
    }
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread && txns_.active(s))
            gcf_.cap_active(s, c_[s].get(s));
    }
    gc_live_entries_ = tbl_.gc_sweep(gcf_);
    ++gc_sweeps_;
    gc_rows_baseline_ = tbl_.arena_rows_live();
    gc_ends_ = 0;
}

void
AeroDromeOpt::maybe_gc_sweep()
{
    if (gc_sweep_every_ != 0) {
        if (++gc_ends_ >= gc_sweep_every_)
            gc_sweep_now();
        return;
    }
    const size_t rows = tbl_.arena_rows_live();
    if (rows >= 128 && rows >= 2 * gc_rows_baseline_)
        gc_sweep_now();
}

StatList
AeroDromeOpt::counters() const
{
    const AdaptiveClockStats& es = tbl_.stats();
    return {
        {"joins", stats_.joins},
        {"comparisons", stats_.comparisons},
        {"lazy_reads", opt_stats_.lazy_reads},
        {"lazy_writes", opt_stats_.lazy_writes},
        {"propagated_ends", opt_stats_.propagated_ends},
        {"gc_skipped_ends", opt_stats_.gc_skipped_ends},
        {"epoch_fast_ops", es.epoch_fast},
        {"vector_ops", es.vector_ops},
        {"inflations", es.inflations},
        {"gc_reclaimed", es.gc_reclaimed},
        {"gc_rows_freed", es.gc_rows_freed},
        {"gc_sweeps", gc_sweeps_},
        {"gc_live_entries", gc_live_entries_},
        {"slots_retired", slots_.retired()},
        {"slots_recycled", slots_.recycled()},
    };
}

size_t
AeroDromeOpt::memory_bytes() const
{
    size_t n = c_.memory_bytes() + cb_.memory_bytes() + tbl_.memory_bytes();
    n += (lock_slot_.capacity() + var_base_.capacity()) * sizeof(uint32_t);
    n += c_pure_.capacity() + stale_write_.capacity();
    n += (last_rel_thr_.capacity() + last_w_thr_.capacity() +
          parent_thread_.capacity()) *
         sizeof(ThreadId);
    n += parent_txn_seq_.capacity() * sizeof(uint64_t);
    for (const auto& sr : stale_readers_)
        n += sr.capacity() * sizeof(ThreadId);
    for (const auto* sets : {&upd_r_, &upd_w_}) {
        for (const auto& s : *sets)
            n += s.list.capacity() * sizeof(VarId) + s.member.capacity();
    }
    n += slots_.memory_bytes() + gcf_.memory_bytes() + txns_.memory_bytes();
    return n;
}

} // namespace aero
