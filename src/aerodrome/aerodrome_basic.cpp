#include "aerodrome/aerodrome_basic.hpp"

namespace aero {

AeroDromeBasic::AeroDromeBasic(uint32_t num_threads, uint32_t num_vars,
                               uint32_t num_locks)
    : txns_(num_threads)
{
    c_.resize(num_threads);
    cb_.resize(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1); // C_t := bot[1/t]
    l_.resize(num_locks);
    w_.resize(num_vars);
    r_.resize(num_vars);
    last_rel_thr_.assign(num_locks, kNoThread);
    last_w_thr_.assign(num_vars, kNoThread);
}

void
AeroDromeBasic::ensure_thread(ThreadId t)
{
    if (t >= c_.size()) {
        size_t old = c_.size();
        c_.resize(t + 1);
        cb_.resize(t + 1);
        for (size_t u = old; u < c_.size(); ++u)
            c_[u].set(u, 1);
        txns_.ensure(t + 1);
    }
}

void
AeroDromeBasic::ensure_var(VarId x)
{
    if (x >= w_.size()) {
        w_.resize(x + 1);
        r_.resize(x + 1);
        last_w_thr_.resize(x + 1, kNoThread);
    }
}

void
AeroDromeBasic::ensure_lock(LockId l)
{
    if (l >= l_.size()) {
        l_.resize(l + 1);
        last_rel_thr_.resize(l + 1, kNoThread);
    }
}

bool
AeroDromeBasic::check_and_get(const VectorClock& clk, ThreadId t,
                              size_t index, const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && cb_[t].leq(clk))
        return report(index, t, reason);
    ++stats_.joins;
    c_[t].join(clk);
    return false;
}

bool
AeroDromeBasic::handle_end(ThreadId t, size_t index)
{
    // Propagate the completed transaction's final timestamp C_t into every
    // clock that is ordered after its begin event (Algorithm 1, lines
    // 38-46): this is what makes the timestamps prefix-relative and lets
    // later events observe paths through this (now completed) transaction.
    const VectorClock& ct = c_[t];
    const VectorClock& cbt = cb_[t];

    for (ThreadId u = 0; u < c_.size(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt.leq(c_[u])) {
            if (check_and_get(ct, u, index, "active peer ordered into "
                                            "completed transaction"))
                return true;
        }
    }
    for (auto& ll : l_) {
        ++stats_.comparisons;
        if (cbt.leq(ll)) {
            ++stats_.joins;
            ll.join(ct);
        }
    }
    for (VarId x = 0; x < w_.size(); ++x) {
        ++stats_.comparisons;
        if (cbt.leq(w_[x])) {
            ++stats_.joins;
            w_[x].join(ct);
        }
        for (auto& rux : r_[x]) {
            ++stats_.comparisons;
            if (cbt.leq(rux)) {
                ++stats_.joins;
                rux.join(ct);
            }
        }
    }
    return false;
}

bool
AeroDromeBasic::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t);
            cb_[t] = c_[t];
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t))
            return handle_end(t, index);
        return false;

      case Op::kAcquire: {
        ensure_lock(e.target);
        if (last_rel_thr_[e.target] != t) {
            return check_and_get(l_[e.target], t, index,
                                 "acquire saw conflicting release");
        }
        return false;
      }

      case Op::kRelease:
        ensure_lock(e.target);
        l_[e.target] = c_[t];
        last_rel_thr_[e.target] = t;
        return false;

      case Op::kFork: {
        ensure_thread(e.target);
        ++stats_.joins;
        c_[e.target].join(c_[t]);
        return false;
      }

      case Op::kJoin: {
        ensure_thread(e.target);
        return check_and_get(c_[e.target], t, index,
                             "join saw child's events");
      }

      case Op::kRead: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], t, index,
                              "read saw conflicting write")) {
                return true;
            }
        }
        auto& rx = r_[e.target];
        if (rx.size() < c_.size())
            rx.resize(c_.size());
        rx[t] = c_[t];
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], t, index,
                              "write saw conflicting write")) {
                return true;
            }
        }
        auto& rx = r_[e.target];
        for (ThreadId u = 0; u < rx.size(); ++u) {
            if (u == t)
                continue;
            if (check_and_get(rx[u], t, index,
                              "write saw conflicting read")) {
                return true;
            }
        }
        w_[e.target] = c_[t];
        last_w_thr_[e.target] = t;
        return false;
      }
    }
    return false;
}

} // namespace aero
