#include "aerodrome/aerodrome_basic.hpp"

namespace aero {

AeroDromeBasic::AeroDromeBasic(uint32_t num_threads, uint32_t num_vars,
                               uint32_t num_locks)
    : txns_(num_threads)
{
    // Create every bank (r_ included) before grow_dim so the dimension is
    // set bank-wide first, and rows are then allocated at the final
    // stride in one layout pass.
    r_.resize(num_vars);
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    l_.ensure_rows(num_locks);
    w_.ensure_rows(num_vars);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1); // C_t := bot[1/t]
    last_rel_thr_.assign(num_locks, kNoThread);
    last_w_thr_.assign(num_vars, kNoThread);
}

void
AeroDromeBasic::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    if (threads > 0)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeBasic::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    l_.ensure_dim(n);
    w_.ensure_dim(n);
    for (auto& bank : r_)
        bank.ensure_dim(n);
}

void
AeroDromeBasic::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeBasic::ensure_var(VarId x)
{
    if (x >= w_.rows()) {
        size_t old = r_.size();
        w_.ensure_rows(x + 1);
        r_.resize(x + 1);
        for (size_t i = old; i < r_.size(); ++i)
            r_[i].ensure_dim(c_.dim());
        last_w_thr_.resize(x + 1, kNoThread);
    }
}

void
AeroDromeBasic::ensure_lock(LockId l)
{
    if (l >= l_.rows()) {
        l_.ensure_rows(l + 1);
        last_rel_thr_.resize(l + 1, kNoThread);
    }
}

bool
AeroDromeBasic::check_and_get(ConstClockRef clk, ThreadId t, size_t index,
                              const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) && cb_[t].leq(clk))
        return report(index, t, reason);
    ++stats_.joins;
    c_[t].join(clk);
    return false;
}

bool
AeroDromeBasic::handle_end(ThreadId t, size_t index)
{
    // Propagate the completed transaction's final timestamp C_t into every
    // clock that is ordered after its begin event (Algorithm 1, lines
    // 38-46): this is what makes the timestamps prefix-relative and lets
    // later events observe paths through this (now completed) transaction.
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        if (cbt.leq(c_[u])) {
            if (check_and_get(ct, u, index, "active peer ordered into "
                                            "completed transaction"))
                return true;
        }
    }
    for (LockId l = 0; l < l_.rows(); ++l) {
        ++stats_.comparisons;
        if (cbt.leq(l_[l])) {
            ++stats_.joins;
            l_[l].join(ct);
        }
    }
    for (VarId x = 0; x < w_.rows(); ++x) {
        ++stats_.comparisons;
        if (cbt.leq(w_[x])) {
            ++stats_.joins;
            w_[x].join(ct);
        }
        ClockBank& rx = r_[x];
        for (size_t u = 0; u < rx.rows(); ++u) {
            ++stats_.comparisons;
            if (cbt.leq(rx[u])) {
                ++stats_.joins;
                rx[u].join(ct);
            }
        }
    }
    return false;
}

bool
AeroDromeBasic::process(const Event& e, size_t index)
{
    const ThreadId t = e.tid;
    ensure_thread(t);

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t);
            cb_[t].assign(c_[t]);
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t))
            return handle_end(t, index);
        return false;

      case Op::kAcquire: {
        ensure_lock(e.target);
        if (last_rel_thr_[e.target] != t) {
            return check_and_get(l_[e.target], t, index,
                                 "acquire saw conflicting release");
        }
        return false;
      }

      case Op::kRelease:
        ensure_lock(e.target);
        l_[e.target].assign(c_[t]);
        last_rel_thr_[e.target] = t;
        return false;

      case Op::kFork: {
        ensure_thread(e.target);
        ++stats_.joins;
        c_[e.target].join(c_[t]);
        return false;
      }

      case Op::kJoin: {
        ensure_thread(e.target);
        return check_and_get(c_[e.target], t, index,
                             "join saw child's events");
      }

      case Op::kRead: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], t, index,
                              "read saw conflicting write")) {
                return true;
            }
        }
        ClockBank& rx = r_[e.target];
        rx.ensure_rows(c_.rows());
        rx[t].assign(c_[t]);
        return false;
      }

      case Op::kWrite: {
        ensure_var(e.target);
        if (last_w_thr_[e.target] != t) {
            if (check_and_get(w_[e.target], t, index,
                              "write saw conflicting write")) {
                return true;
            }
        }
        ClockBank& rx = r_[e.target];
        for (ThreadId u = 0; u < rx.rows(); ++u) {
            if (u == t)
                continue;
            if (check_and_get(rx[u], t, index,
                              "write saw conflicting read")) {
                return true;
            }
        }
        w_[e.target].assign(c_[t]);
        last_w_thr_[e.target] = t;
        return false;
      }
    }
    return false;
}

} // namespace aero
