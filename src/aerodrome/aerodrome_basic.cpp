#include "aerodrome/aerodrome_basic.hpp"

#include "aerodrome/frontier_util.hpp"

namespace aero {

AeroDromeBasic::AeroDromeBasic(uint32_t num_threads, uint32_t num_vars,
                               uint32_t num_locks)
    : txns_(num_threads)
{
    grow_dim(num_threads);
    c_.ensure_rows(num_threads);
    cb_.ensure_rows(num_threads);
    c_pure_.assign(num_threads, 1);
    cb_pure_.assign(num_threads, 1);
    for (uint32_t t = 0; t < num_threads; ++t)
        c_[t].set(t, 1); // C_t := bot[1/t]
    if (num_vars > 0)
        ensure_var(num_vars - 1);
    if (num_locks > 0)
        ensure_lock(num_locks - 1);
}

void
AeroDromeBasic::reserve(uint32_t threads, uint32_t vars, uint32_t locks)
{
    // Under gc, rows are slots handed out densely by the slot map;
    // pre-sizing by external tid range would defeat recycling.
    if (threads > 0 && !gc_)
        ensure_thread(threads - 1);
    if (vars > 0)
        ensure_var(vars - 1);
    if (locks > 0)
        ensure_lock(locks - 1);
}

void
AeroDromeBasic::export_frontier(ClockFrontier& out) const
{
    detail::export_bank_frontier(c_, out);
}

void
AeroDromeBasic::adopt_frontier(const ClockFrontier& in)
{
    if (in.threads == 0)
        return;
    ensure_thread(in.threads - 1);
    if (in.dim > c_.dim())
        grow_dim(in.dim);
    detail::adopt_bank_frontier(c_, c_pure_, in, [](ThreadId) {});
}

void
AeroDromeBasic::export_seed(EngineSeed& seed) const
{
    detail::export_engine_seed(c_, cb_, txns_, seed);
    detail::export_slot_seed(slots_, gc_, seed);
}

void
AeroDromeBasic::reseed(const EngineSeed& seed)
{
    detail::adopt_slot_seed(slots_, gc_, seed);
    const uint32_t threads = detail::seed_thread_count(seed);
    if (threads == 0)
        return;
    ensure_thread(threads - 1);
    const uint32_t dim = detail::seed_dim(seed);
    if (dim > c_.dim())
        grow_dim(dim);
    detail::adopt_engine_seed(c_, c_pure_, cb_, cb_pure_, txns_, seed,
                              [](ThreadId) {});
    detail::reopen_update_windows(tbl_, txns_, cb_, c_.rows());
}

void
AeroDromeBasic::grow_dim(size_t n)
{
    c_.ensure_dim(n);
    cb_.ensure_dim(n);
    tbl_.ensure_dim(n);
}

void
AeroDromeBasic::ensure_thread(ThreadId t)
{
    if (t >= c_.rows()) {
        size_t old = c_.rows();
        size_t n = t + 1;
        grow_dim(n);
        c_.ensure_rows(n);
        cb_.ensure_rows(n);
        c_pure_.resize(n, 1);
        cb_pure_.resize(n, 1);
        for (size_t u = old; u < n; ++u)
            c_[u].set(u, 1);
        txns_.ensure(static_cast<uint32_t>(n));
    }
}

void
AeroDromeBasic::ensure_var(VarId x)
{
    // Only the per-variable bookkeeping is sized by id range; the table
    // entry is allocated by w_slot() on first access.
    while (x >= w_slot_.size()) {
        w_slot_.push_back(kNoSlot);
        r_slot_.emplace_back();
        orphan_r_.emplace_back();
        last_w_thr_.push_back(kNoThread);
    }
}

uint32_t
AeroDromeBasic::w_slot(VarId x)
{
    if (w_slot_[x] == kNoSlot)
        w_slot_[x] = tbl_.add_entry();
    return w_slot_[x];
}

void
AeroDromeBasic::ensure_lock(LockId l)
{
    while (l >= lock_slot_.size()) {
        lock_slot_.push_back(tbl_.add_entry());
        last_rel_thr_.push_back(kNoThread);
    }
}

uint32_t
AeroDromeBasic::reader_slot(VarId x, ThreadId t)
{
    auto& slots = r_slot_[x];
    if (t >= slots.size())
        slots.resize(t + 1, kNoSlot);
    if (slots[t] == kNoSlot)
        slots[t] = tbl_.add_entry_reusable();
    return slots[t];
}

bool
AeroDromeBasic::check_and_get_entry(size_t slot, ThreadId t, size_t index,
                                    const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t) &&
        tbl_.vector_leq_entry(cb_[t], slot, t, begin_pure_of(t)))
        return report(index, rid(t), reason);
    ++stats_.joins;
    tbl_.join_into(c_[t], slot, t, c_pure_[t]);
    return false;
}

bool
AeroDromeBasic::check_and_get_clock(ConstClockRef clk, ThreadId src,
                                    bool src_pure, ThreadId t, size_t index,
                                    const char* reason)
{
    ++stats_.comparisons;
    if (txns_.active(t)) {
        // C_t^b sqsubseteq clk; O(1) when the begin clock is pure.
        bool ordered = begin_pure_of(t) ? cb_[t].get(t) <= clk.get(t)
                                        : cb_[t].leq(clk);
        if (ordered)
            return report(index, rid(t), reason);
    }
    ++stats_.joins;
    join_qualified(c_[t], t, c_pure_[t], clk, src, src_pure);
    return false;
}

bool
AeroDromeBasic::handle_end(ThreadId t, size_t index)
{
    // Propagate the completed transaction's final timestamp C_t into every
    // clock that is ordered after its begin event (Algorithm 1, lines
    // 38-46): this is what makes the timestamps prefix-relative and lets
    // later events observe paths through this (now completed) transaction.
    ConstClockRef ct = c_[t];
    ConstClockRef cbt = cb_[t];
    const bool ct_pure = pure_of(t);
    const bool cbt_pure = begin_pure_of(t);

    for (ThreadId u = 0; u < c_.rows(); ++u) {
        if (u == t)
            continue;
        ++stats_.comparisons;
        bool ordered = cbt_pure ? cbt.get(t) <= c_[u].get(t)
                                : cbt.leq(c_[u]);
        if (ordered) {
            if (check_and_get_clock(ct, t, ct_pure, u, index,
                                    "active peer ordered into "
                                    "completed transaction")) {
                return true;
            }
        }
    }

    // Fused propagation sweep: Algorithm 1 applies the same gate-and-join
    // to every L_l, W_x and R_{u,x}, and they all live in one adaptive
    // table, so the per-lock and per-variable loops collapse into one
    // homogeneous pass. With update sets tracked, the pass visits only
    // the entries enrolled since this transaction's begin — every entry
    // whose gate could fire is among them — instead of the whole table.
    // The window is sealed first so the sweep's own joins enroll into
    // *other* threads' windows without growing the list being iterated.
    auto sweep = [&](size_t i) {
        ++stats_.comparisons;
        ++stats_.end_swept_entries;
        if (tbl_.vector_leq_entry(cbt, i, t, cbt_pure)) {
            ++stats_.joins;
            tbl_.join(i, ct, t, ct_pure);
        } else {
            ++stats_.end_gate_skipped;
        }
    };
    tbl_.seal_update_window(t);
    if (tbl_.update_window_tracked(t)) {
        for (uint32_t i : tbl_.update_entries(t))
            sweep(i);
    } else {
        const size_t n = tbl_.size();
        for (size_t i = 0; i < n; ++i)
            sweep(i);
    }
    tbl_.close_update_window(t);
    return false;
}

bool
AeroDromeBasic::process(const Event& e, size_t index)
{
    ThreadId t = e.tid;
    ThreadId target = e.target;
    if (gc_) {
        // Rows are recycled slots: translate the actor — and, for the two
        // thread-target ops, the target — through the slot map. All other
        // targets are variable/lock ids and pass through.
        t = slot_of(e.tid);
        if (e.op == Op::kFork || e.op == Op::kJoin)
            target = slot_of(e.target);
    } else {
        ensure_thread(t);
    }

    switch (e.op) {
      case Op::kBegin:
        if (txns_.on_begin(t)) {
            c_[t].tick(t); // purity preserved: the own component grew
            cb_[t].assign(c_[t]);
            cb_pure_[t] = c_pure_[t];
            // The tick minted cb_t(t) fresh: no table entry satisfies the
            // end gate yet, so the window starts provably empty.
            tbl_.open_update_window(t, cb_[t].get(t));
        }
        return false;

      case Op::kEnd:
        if (txns_.on_end(t)) {
            if (handle_end(t, index))
                return true;
            if (gc_)
                maybe_gc_sweep();
        }
        return false;

      case Op::kAcquire: {
        ensure_lock(target);
        if (last_rel_thr_[target] != t) {
            return check_and_get_entry(lock_slot_[target], t, index,
                                       "acquire saw conflicting release");
        }
        return false;
      }

      case Op::kRelease:
        ensure_lock(target);
        tbl_.assign(lock_slot_[target], c_[t], t, pure_of(t));
        last_rel_thr_[target] = t;
        return false;

      case Op::kFork: {
        ensure_thread(target);
        ++stats_.joins;
        join_qualified(c_[target], target, c_pure_[target], c_[t], t,
                       pure_of(t));
        return false;
      }

      case Op::kJoin: {
        ensure_thread(target);
        if (check_and_get_clock(c_[target], target, pure_of(target), t,
                                index, "join saw child's events")) {
            return true;
        }
        // The joined thread is dead: its clock was just absorbed, so its
        // row can be retired for reissue.
        if (gc_ && target != t)
            retire_slot(target);
        return false;
      }

      case Op::kRead: {
        ensure_var(target);
        if (last_w_thr_[target] != t) {
            if (check_and_get_entry(w_slot(target), t, index,
                                    "read saw conflicting write")) {
                return true;
            }
        }
        uint32_t slot = reader_slot(target, t);
        tbl_.assign(slot, c_[t], t, pure_of(t));
        return false;
      }

      case Op::kWrite: {
        ensure_var(target);
        if (last_w_thr_[target] != t) {
            if (check_and_get_entry(w_slot(target), t, index,
                                    "write saw conflicting write")) {
                return true;
            }
        }
        const auto& readers = r_slot_[target];
        for (ThreadId u = 0; u < readers.size(); ++u) {
            if (u == t || readers[u] == kNoSlot)
                continue;
            if (check_and_get_entry(readers[u], t, index,
                                    "write saw conflicting read")) {
                return true;
            }
        }
        // Retired threads' R_{t,x} keep gating writes until proven dead;
        // the retiree can't be the writer, so no own-slot skip applies.
        for (uint32_t i : orphan_r_[target]) {
            if (check_and_get_entry(i, t, index,
                                    "write saw conflicting read")) {
                return true;
            }
        }
        tbl_.assign(w_slot(target), c_[t], t, pure_of(t));
        last_w_thr_[target] = t;
        return false;
      }
    }
    return false;
}

void
AeroDromeBasic::retire_slot(uint32_t s)
{
    if (txns_.active(s))
        return; // ill-formed join mid-transaction: leak the row, stay safe
    // Scrub cached same-owner facts: the reissued thread must not inherit
    // the dead thread's check-skipping rights.
    for (ThreadId& r : last_rel_thr_) {
        if (r == s)
            r = kNoThread;
    }
    for (ThreadId& w : last_w_thr_) {
        if (w == s)
            w = kNoThread;
    }
    // Detach the dead thread's R_{s,x} entries so the reissued thread
    // starts with none. A still-live entry becomes a per-var orphan —
    // writers keep checking it (Algorithm 1 checks every reader of x)
    // until a sweep proves it dead; an already-bottom one (reclaimed by
    // an earlier sweep) hands its index back immediately.
    for (VarId x = 0; x < r_slot_.size(); ++x) {
        auto& slots = r_slot_[x];
        if (s >= slots.size() || slots[s] == kNoSlot)
            continue;
        if (tbl_.is_bottom(slots[s]))
            tbl_.gc_recycle_index(slots[s]);
        else
            orphan_r_[x].push_back(slots[s]);
        slots[s] = kNoSlot;
    }
    // Continue the clock one past every value the dead thread minted, so
    // reissued begin gates exceed every stale epoch still naming this row.
    const ClockValue v = c_[s].get(s);
    c_[s].clear();
    c_[s].set(s, v + 1);
    cb_[s].clear();
    c_pure_[s] = 1;
    cb_pure_[s] = 1;
    tbl_.close_update_window(s);
    slots_.retire(s);
}

void
AeroDromeBasic::gc_sweep_now()
{
    gcf_.reset(c_.dim());
    const std::vector<ThreadId>& bound = slots_.bindings();
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread)
            gcf_.accumulate(c_[s]);
    }
    for (uint32_t s = 0; s < bound.size(); ++s) {
        if (bound[s] != kNoThread && txns_.active(s))
            gcf_.cap_active(s, c_[s].get(s));
    }
    gc_live_entries_ = tbl_.gc_sweep(gcf_);
    // Orphans the sweep reset to bottom can never gate again: drop them
    // from the writers' check lists and recycle their indices.
    for (auto& orphans : orphan_r_) {
        size_t keep = 0;
        for (uint32_t i : orphans) {
            if (tbl_.is_bottom(i))
                tbl_.gc_recycle_index(i);
            else
                orphans[keep++] = i;
        }
        orphans.resize(keep);
    }
    ++gc_sweeps_;
    gc_rows_baseline_ = tbl_.arena_rows_live();
    gc_ends_ = 0;
}

void
AeroDromeBasic::maybe_gc_sweep()
{
    if (gc_sweep_every_ != 0) {
        if (++gc_ends_ >= gc_sweep_every_)
            gc_sweep_now();
        return;
    }
    // Growth trigger: the live arena doubled since the last sweep.
    const size_t rows = tbl_.arena_rows_live();
    if (rows >= 128 && rows >= 2 * gc_rows_baseline_)
        gc_sweep_now();
}

StatList
AeroDromeBasic::counters() const
{
    const AdaptiveClockStats& es = tbl_.stats();
    return {
        {"joins", stats_.joins},
        {"comparisons", stats_.comparisons},
        {"epoch_fast_ops", es.epoch_fast},
        {"vector_ops", es.vector_ops},
        {"inflations", es.inflations},
        {"upd_enrolled", es.upd_enrolled},
        {"end_swept_entries", stats_.end_swept_entries},
        {"end_gate_skipped", stats_.end_gate_skipped},
        {"gc_reclaimed", es.gc_reclaimed},
        {"gc_rows_freed", es.gc_rows_freed},
        {"gc_sweeps", gc_sweeps_},
        {"gc_live_entries", gc_live_entries_},
        {"slots_retired", slots_.retired()},
        {"slots_recycled", slots_.recycled()},
    };
}

size_t
AeroDromeBasic::memory_bytes() const
{
    size_t n = c_.memory_bytes() + cb_.memory_bytes() + tbl_.memory_bytes();
    n += (lock_slot_.capacity() + w_slot_.capacity()) * sizeof(uint32_t);
    for (const auto& slots : r_slot_)
        n += slots.capacity() * sizeof(uint32_t);
    for (const auto& orphans : orphan_r_)
        n += orphans.capacity() * sizeof(uint32_t);
    n += c_pure_.capacity() + cb_pure_.capacity();
    n += (last_rel_thr_.capacity() + last_w_thr_.capacity()) *
         sizeof(ThreadId);
    n += slots_.memory_bytes() + gcf_.memory_bytes() + txns_.memory_bytes();
    return n;
}

} // namespace aero
