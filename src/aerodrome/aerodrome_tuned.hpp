#pragma once

/**
 * @file
 * AeroDrome-tuned — Algorithm 3 plus the engineering fast paths the paper
 * sketches as future work (Section 7: "improving the efficiency of the
 * proposed dynamic analysis ... includes the classic epoch optimizations
 * [FastTrack]"). Two additions, both semantics-preserving:
 *
 * 1. Active-thread list. Algorithm 3 enrolls every access's variable in
 *    the update sets of all threads whose active transaction is ordered
 *    before the access — an O(|Thr|) scan per event. Most threads have
 *    no open transaction most of the time, so this engine maintains the
 *    set of transaction-holding threads and scans only those.
 *
 * 2. Same-epoch skips (FastTrack's owned-access idea). A read of x by
 *    thread t is a complete no-op when t already read x, t's clock has
 *    not changed since, and x has not been written since: the conflict
 *    check would evaluate identically, t is already in staleReaders_x,
 *    and no thread's update-set membership can have changed (a
 *    transaction that began in between has a begin counter strictly
 *    above anything t's unchanged clock has seen). The same reasoning
 *    skips a repeated write when t is the stale last writer, no reader
 *    intervened, and t's clock is unchanged. Tight loops that hammer one
 *    variable — the dominant pattern the paper's lazy updates target —
 *    reduce to two array compares per event.
 *
 * The same-epoch *skips* above elide whole events; the epoch-adaptive
 * *storage* (vc/adaptive_clock.hpp) additionally makes the events that do
 * run O(1) while their state stays epoch-shaped: L_l, W_x, R_x and hR_x
 * share one AdaptiveClockTable, inflating into the shared arena on first
 * contention, with purity bits on C_t driving the fast paths.
 *
 * Every verdict must equal AeroDromeOpt's; the differential suite
 * enforces this on the fuzz corpus.
 */

#include <cstdint>
#include <vector>

#include "aerodrome/aerodrome_basic.hpp" // AeroDromeStats
#include "aerodrome/aerodrome_opt.hpp"   // AeroDromeOptStats
#include "analysis/checker.hpp"
#include "analysis/thread_slots.hpp"
#include "analysis/txn_tracker.hpp"
#include "trace/trace.hpp"
#include "vc/adaptive_clock.hpp"
#include "vc/clock_bank.hpp"
#include "vc/gc.hpp"

namespace aero {

/** Extra statistics for the tuned engine. */
struct AeroDromeTunedStats {
    /** Reads skipped by the same-epoch fast path. */
    RelaxedCounter same_epoch_reads;
    /** Writes skipped by the same-epoch fast path. */
    RelaxedCounter same_epoch_writes;
};

/** AeroDrome with active-thread and same-epoch fast paths. */
class AeroDromeTuned : public CheckerBase {
public:
    AeroDromeTuned(uint32_t num_threads, uint32_t num_vars,
                   uint32_t num_locks);

    std::string_view name() const override { return "AeroDrome-tuned"; }

    bool process(const Event& e, size_t index) override;

    void reserve(uint32_t threads, uint32_t vars, uint32_t locks) override;

    bool supports_frontier() const override { return true; }
    /** Same lazy stale-write/stale-reader proxies as AeroDromeOpt. */
    bool uses_live_clock_proxies() const override { return true; }
    void export_frontier(ClockFrontier& out) const override;
    void adopt_frontier(const ClockFrontier& in) override;
    void export_seed(EngineSeed& seed) const override;
    void reseed(const EngineSeed& seed) override;

    const AeroDromeStats& stats() const { return stats_; }
    const AeroDromeOptStats& opt_stats() const { return opt_stats_; }
    const AeroDromeTunedStats& tuned_stats() const { return tuned_stats_; }

    /** Epoch-adaptive storage statistics (hits, inflations). */
    const AdaptiveClockStats& epoch_stats() const { return tbl_.stats(); }

    /** Toggle the epoch representation and its purity fast paths; call
     *  before the first event. Off reproduces the full-vector baseline. */
    void
    set_epochs(bool on)
    {
        epochs_ = on;
        tbl_.set_epochs_enabled(on);
    }

    /** Toggle dead-state reclamation (clock-entry GC + thread-slot
     *  recycling); call before the first event. */
    void set_gc(bool on) override { gc_ = on; }
    bool gc_enabled() const { return gc_; }

    /** Test hook: with gc on, sweep every n outermost ends (0 restores
     *  the arena-growth trigger). */
    void set_gc_sweep_every(uint32_t n) { gc_sweep_every_ = n; }

    uint64_t gc_sweeps() const { return gc_sweeps_; }
    const ThreadSlotMap& thread_slots() const { return slots_; }

    StatList counters() const override;

    size_t memory_bytes() const override;

private:
    /** Purity of C_u as consumed by fast paths (gated by the toggle). */
    bool
    pure_of(ThreadId u) const
    {
        return epochs_ && c_pure_[u] != 0;
    }

    /** External tid a violation at row t is charged to. */
    ThreadId
    rid(ThreadId t) const
    {
        if (!gc_)
            return t;
        ThreadId ext = slots_.ext_of(t);
        return ext == kNoThread ? t : ext;
    }

    /** Row for external tid `ext` under gc (allocating reuse-first). */
    uint32_t
    slot_of(ThreadId ext)
    {
        bool fresh = false;
        uint32_t s = slots_.resolve(ext, fresh);
        ensure_thread(s);
        return s;
    }

    void retire_slot(uint32_t s);
    void gc_sweep_now();
    void maybe_gc_sweep();

    bool check_and_get_entry(size_t slot, ThreadId t, size_t index,
                             const char* reason);
    bool check_and_get_entry2(size_t check_slot, size_t join_slot,
                              ThreadId t, size_t index, const char* reason);
    bool check_and_get_clock(ConstClockRef clk, ThreadId src, bool src_pure,
                             ThreadId t, size_t index, const char* reason);

    bool
    begin_before(ThreadId t, ClockValue comp) const
    {
        return cb_[t].get(t) <= comp;
    }

    bool has_incoming_edge(ThreadId t) const;
    void flush_stale_readers(VarId x);
    void enroll_update_sets(ThreadId t, VarId x, bool is_write);
    bool handle_end(ThreadId t, size_t index);

    /** Record that C_t may have changed (invalidates same-epoch skips). */
    void
    bump_clock_version(ThreadId t)
    {
        ++clock_version_[t];
    }

    void add_active(ThreadId t);
    void remove_active(ThreadId t);

    void ensure_thread(ThreadId t);
    void ensure_var(VarId x);
    void ensure_lock(LockId l);
    void grow_dim(size_t n);

    TxnTracker txns_;

    ClockBank c_;  // one row per thread
    ClockBank cb_; // one row per thread

    /** L_l, W_x, R_x, hR_x — one adaptive table; var x occupies entries
     *  var_base_[x] + {0: W, 1: R, 2: hR}. */
    AdaptiveClockTable tbl_;
    std::vector<uint32_t> lock_slot_;
    std::vector<uint32_t> var_base_;

    /** c_pure_[t] != 0 iff C_t == bot[v/t]; sound but conservative. */
    std::vector<uint8_t> c_pure_;
    bool epochs_ = epochs_enabled_default();

    std::vector<ThreadId> last_rel_thr_;
    std::vector<ThreadId> last_w_thr_;
    std::vector<uint8_t> stale_write_;
    std::vector<std::vector<ThreadId>> stale_readers_;

    struct UpdateSet {
        std::vector<VarId> list;
        std::vector<uint8_t> member;
        void
        insert(VarId x)
        {
            if (x >= member.size())
                member.resize(x + 1, 0);
            if (!member[x]) {
                member[x] = 1;
                list.push_back(x);
            }
        }
        void
        clear()
        {
            for (VarId x : list)
                member[x] = 0;
            list.clear();
        }
    };
    std::vector<UpdateSet> upd_r_;
    std::vector<UpdateSet> upd_w_;

    std::vector<ThreadId> parent_thread_;
    std::vector<uint64_t> parent_txn_seq_;

    // Active-thread list with O(1) insert/remove.
    std::vector<ThreadId> active_threads_;
    std::vector<uint32_t> active_pos_; // kNoActive when absent
    static constexpr uint32_t kNoActive = UINT32_MAX;

    // Same-epoch bookkeeping. A skip is valid only if *nothing* about
    // the variable changed since the access being repeated, so
    // var_version_ is bumped on every mutation of x's analysis state
    // (writes, stale-set changes, R/W/hR clock joins, flushes, GC
    // resets) and the thread's own clock version must match too.
    std::vector<uint64_t> clock_version_;  // per thread
    std::vector<uint64_t> var_version_;    // per var
    std::vector<ThreadId> last_reader_;    // per var
    std::vector<uint64_t> last_reader_cv_; // clock version at that read
    std::vector<uint64_t> last_reader_vv_; // var version after that read
    std::vector<uint64_t> last_writer_cv_; // writer clock version
    std::vector<uint64_t> last_writer_vv_; // var version after the write

    /** Dead-state reclamation (src/vc/README.md, "Reclamation"). */
    bool gc_ = gc_enabled_default();
    ThreadSlotMap slots_;
    GcFrontier gcf_;
    uint64_t gc_sweeps_ = 0;
    uint64_t gc_live_entries_ = 0;
    size_t gc_rows_baseline_ = 0;
    uint32_t gc_sweep_every_ = 0;
    uint32_t gc_ends_ = 0;

    AeroDromeStats stats_;
    AeroDromeOptStats opt_stats_;
    AeroDromeTunedStats tuned_stats_;
};

} // namespace aero
