/**
 * @file
 * Experiment E6 — effect of Velodrome's garbage-collection optimization
 * (Section 5.1 credits it for the small graphs on Table 2 / GC-friendly
 * rows: "13 nodes in the graph for pmd, 4 nodes in sor").
 *
 * For each workload the harness runs Velodrome with GC on and off and
 * reports time, peak live graph size, and DFS work. Expected shape: on
 * independent/pipeline workloads GC keeps the graph at a handful of nodes
 * and is pure win; on the star workload GC cannot reclaim anything and
 * both configurations blow up identically.
 *
 * Usage: bench_velodrome_gc [--budget SECONDS]
 */

#include <cstdio>
#include <string>

#include "analysis/runner.hpp"
#include "gen/patterns.hpp"
#include "support/str.hpp"
#include "velodrome/velodrome.hpp"

namespace {

using namespace aero;

void
run_workload(const char* name, const Trace& t, double budget)
{
    std::printf("%-24s %10s events\n", name,
                with_commas(t.size()).c_str());
    for (bool gc : {true, false}) {
        VelodromeOptions opts;
        opts.garbage_collect = gc;
        Velodrome v(t.num_threads(), t.num_vars(), t.num_locks(), opts);
        RunBudget rb;
        rb.max_seconds = budget;
        RunResult r = run_checker(v, t, rb);
        std::printf("  gc=%-3s  %-3s  time %10s  peak nodes %10s  "
                    "dfs visits %14s  collected %10s\n",
                    gc ? "on" : "off", r.verdict(),
                    r.timed_out ? "TO" : format_duration(r.seconds).c_str(),
                    with_commas(v.stats().max_live_nodes).c_str(),
                    with_commas(v.stats().dfs_visits).c_str(),
                    with_commas(v.stats().gc_deleted).c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    double budget = 5.0;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--budget" && i + 1 < argc)
            budget = std::stod(argv[++i]);
    }
    std::printf("Velodrome garbage-collection ablation "
                "(budget %.3gs per run)\n\n", budget);

    run_workload("independent 8x20000", gen::make_independent(8, 20000, 8),
                 budget);
    run_workload("pipeline 4x50000", gen::make_pipeline(4, 50000), budget);
    {
        gen::NaiveSpecOptions n;
        n.threads = 6;
        n.events_per_thread = 100000;
        n.conflict_position = 0.9;
        run_workload("naive 6x100000", gen::make_naive_spec(n), budget);
    }
    {
        gen::StarOptions s;
        s.producers = 2;
        s.consumers = 2;
        s.rounds = 4000;
        run_workload("star p2/c2 r4000", gen::make_star(s), budget);
    }
    std::printf("\nExpected shape: GC keeps peak nodes tiny everywhere "
                "except the star,\nwhere live hub transactions pin the "
                "whole graph and GC does not help.\n");
    return 0;
}
